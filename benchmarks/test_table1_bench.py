"""Table 1 benchmark: per-graph detail on the large instances (k scaled from 1024).

Regenerates the scaled table and checks the per-row claims that transfer
across scale: Geographer is never the worst on total communication volume,
and every tool respects the 3 % balance constraint.
"""

import pytest

from repro.experiments import tables
from repro.experiments.harness import PAPER_TOOLS


@pytest.fixture(scope="module")
def rows():
    return tables.run_table1(k=32, scale=0.35, seed=0)


def test_table1_run(benchmark):
    out = benchmark.pedantic(
        lambda: tables.run_table1(k=8, scale=0.05, seed=1, instances=("hugetrace",), with_spmv=False),
        rounds=1, iterations=1,
    )
    assert len(out) == len(PAPER_TOOLS)


def test_table1_table(benchmark, rows, emit):
    text = benchmark.pedantic(
        lambda: tables.format_table(rows, "Table 1 (scaled): large graphs, k=32"), rounds=1, iterations=1
    )
    emit("table1_large_graphs", text, volatile_columns=("time",))
    emit("table1_winners", f"best totCommVol per graph: {tables.winners(rows, 'totCommVol')}")


def test_table1_balance_respected(benchmark, rows):
    """§5.2.5: the 3% imbalance cap 'was respected by all tools'."""

    def check():
        for row in rows:
            assert row.imbalance <= 0.031, (row.graph, row.tool, row.imbalance)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_table1_geographer_never_worst_totcomm(benchmark, rows):
    def check():
        by_graph = {}
        for row in rows:
            by_graph.setdefault(row.graph, []).append(row)
        for graph, graph_rows in by_graph.items():
            worst = max(graph_rows, key=lambda r: r.total_comm_vol)
            assert worst.tool != "Geographer", graph
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_table1_geographer_wins_majority_totcomm(benchmark, rows):
    wins = benchmark.pedantic(lambda: tables.winners(rows, "totCommVol"), rounds=1, iterations=1)
    geo = sum(1 for tool in wins.values() if tool == "Geographer")
    assert geo >= len(wins) / 2
