#!/usr/bin/env python
"""Hard memory-budget gate for the out-of-core pipeline.

Proves the streaming claim the honest way: a child process partitions and
shuffles a sharded dataset **at least ``--factor`` times larger than the
address-space budget it is allowed**, with the budget enforced by the kernel
via ``resource.setrlimit(RLIMIT_AS)`` — not by sampling RSS and hoping.  If
any stage materialises O(n) state, allocation fails and the gate fails.

Three processes cooperate:

* the **parent** streams a synthetic dataset to disk (never holding more
  than one chunk), launches the children, and writes the merged report;
* the **gate child** imports everything, runs a tiny warm-up partition to
  fault in lazy allocations, reads its ``VmSize`` baseline from
  ``/proc/self/status``, caps itself at ``VmSize + budget``, then runs the
  out-of-core partition + shuffle + conservation check under that cap;
* the optional **control child** (``--control``) gets the same cap and
  tries the *in-memory* path; it must die of ``MemoryError``, proving the
  cap is real and the dataset genuinely does not fit.

Per-rank state is O(n/p) and whole-rank files are memory-mapped (mappings
count toward RLIMIT_AS), so ``--nranks`` must keep ``n/p`` comfortably
inside the budget; the defaults satisfy ``dataset = 4 x budget`` with
~10x headroom per rank.

Usage (CI)::

    python benchmarks/ondisk_budget_gate.py --budget-mb 32 --out report.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:  # runnable without an installed package
    sys.path.insert(0, SRC_DIR)
DIM = 2
ROW_BYTES = (DIM + 1) * 8  # points + weight, all float64
CHUNK_ROWS = 262_144


def vm_size_bytes() -> int:
    """Current virtual address-space size from ``/proc/self/status``."""
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmSize not found in /proc/self/status")


def cap_address_space(budget_bytes: int) -> tuple[int, int]:
    """Cap RLIMIT_AS at the current VmSize plus ``budget_bytes``."""
    baseline = vm_size_bytes()
    limit = baseline + budget_bytes
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    if hard != resource.RLIM_INFINITY:
        limit = min(limit, hard)
    resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    return baseline, limit


def warm_up() -> None:
    """Fault in numpy pools, kernels and pickling before the cap lands."""
    import numpy as np

    from repro.core.config import BalancedKMeansConfig
    from repro.runtime.distributed_kmeans import distributed_balanced_kmeans

    pts = np.random.default_rng(0).random((512, DIM))
    cfg = BalancedKMeansConfig(max_iterations=2, use_sampling=False)
    distributed_balanced_kmeans(pts, 2, 2, config=cfg, rng=0)


def build_dataset(directory: str, rows: int, shard_rows: int, seed: int):
    """Stream ``rows`` random weighted points to a sharded dataset."""
    import numpy as np

    from repro.io.sharded import ShardedDatasetWriter

    writer = ShardedDatasetWriter(directory, dim=DIM, shard_rows=shard_rows,
                                  with_weights=True)
    rng = np.random.default_rng(seed)
    done = 0
    while done < rows:
        take = min(CHUNK_ROWS, rows - done)
        writer.append(rng.random((take, DIM)), weights=0.5 + rng.random(take))
        done += take
    return writer.finalize()


def run_gate_child(args) -> int:
    warm_up()
    baseline, limit = cap_address_space(args.budget_bytes)

    import numpy as np

    from repro.core.config import BalancedKMeansConfig
    from repro.runtime.ondisk import ondisk_distributed_kmeans
    from repro.runtime.shuffle import shuffle_to_disk, verify_shuffle

    cfg = BalancedKMeansConfig(epsilon=0.05, max_iterations=args.iters,
                               use_sampling=False)
    result = ondisk_distributed_kmeans(args.manifest, args.k, args.nranks,
                                       config=cfg, rng=args.seed)
    output = shuffle_to_disk(result, args.shuffle_out)
    report = verify_shuffle(output)
    ledger = result.ledger
    body = {
        "budget_bytes": args.budget_bytes,
        "baseline_vmsize_bytes": baseline,
        "limit_bytes": limit,
        "n": report["n"],
        "k": args.k,
        "nranks": args.nranks,
        "iterations": result.iterations,
        "converged": result.converged,
        "imbalance": result.imbalance,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "shuffle_counts": [int(c) for c in np.asarray(report["counts"])],
        "conserved": report["conserved"],
        "ledger": {
            "compute_seconds": ledger.compute_seconds,
            "comm_seconds": ledger.comm_seconds,
            "supersteps": ledger.supersteps,
            "collective_counts": dict(ledger.collective_counts),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(body, fh, indent=2)
        fh.write("\n")
    return 0


def run_control_child(args) -> int:
    """In-memory path under the same cap: success here means the cap is fake."""
    warm_up()
    cap_address_space(args.budget_bytes)

    from repro.core.config import BalancedKMeansConfig
    from repro.io.sharded import ShardedDataset
    from repro.runtime.distributed_kmeans import distributed_balanced_kmeans

    try:
        pts, w, _ = ShardedDataset(args.manifest).load()
        cfg = BalancedKMeansConfig(epsilon=0.05, max_iterations=args.iters,
                                   use_sampling=False)
        distributed_balanced_kmeans(pts, args.k, args.nranks, weights=w,
                                    config=cfg, rng=args.seed)
    except MemoryError:
        print("control: in-memory path hit MemoryError under the cap (expected)")
        return 0
    print("control: in-memory path SURVIVED the cap -- budget not enforced",
          file=sys.stderr)
    return 1


def child_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    return env


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget-mb", type=int, default=64,
                        help="address-space budget over the import baseline (MiB)")
    parser.add_argument("--factor", type=float, default=4.0,
                        help="dataset size as a multiple of the budget (>= 4 per the gate contract)")
    parser.add_argument("--nranks", "-p", type=int, default=48,
                        help="virtual ranks; per-rank state is O(n/p) and must fit the budget")
    parser.add_argument("-k", type=int, default=48,
                        help="blocks; keep k >= nranks or some shuffle outputs "
                             "grow to O(n/k) instead of O(n/p)")
    parser.add_argument("--iters", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shard-rows", type=int, default=CHUNK_ROWS)
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (a temp dir is created and removed by default)")
    parser.add_argument("--out", default="BUDGET_ondisk.json",
                        help="merged report path")
    parser.add_argument("--control", action="store_true",
                        help="also run the in-memory control child (must OOM)")
    parser.add_argument("--timeout", type=float, default=1800.0)
    # internal child modes
    parser.add_argument("--gate-child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--control-child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--manifest", help=argparse.SUPPRESS)
    parser.add_argument("--budget-bytes", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--shuffle-out", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.gate_child:
        return run_gate_child(args)
    if args.control_child:
        return run_control_child(args)

    budget_bytes = args.budget_mb << 20
    rows = -(-int(args.factor * budget_bytes) // ROW_BYTES)

    with tempfile.TemporaryDirectory(dir=args.workdir) as work:
        print(f"building {rows} rows ({rows * ROW_BYTES >> 20} MiB) against a "
              f"{args.budget_mb} MiB budget ...", flush=True)
        ds_dir = os.path.join(work, "dataset")
        build_dataset(ds_dir, rows, args.shard_rows, args.seed)

        report_path = os.path.join(work, "gate.json")
        common = ["--manifest", ds_dir, "--budget-bytes", str(budget_bytes),
                  "-k", str(args.k), "--nranks", str(args.nranks),
                  "--iters", str(args.iters), "--seed", str(args.seed)]
        gate = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--gate-child", *common,
             "--shuffle-out", os.path.join(work, "shuffle"),
             "--out", report_path],
            env=child_env(), timeout=args.timeout,
        )
        if gate.returncode != 0:
            print(f"FAIL: out-of-core pipeline died under the {args.budget_mb} MiB "
                  f"cap (exit {gate.returncode})", file=sys.stderr)
            return 1
        with open(report_path) as fh:
            body = json.load(fh)
        if not body.get("conserved"):
            print("FAIL: shuffle conservation check did not pass", file=sys.stderr)
            return 1

        if args.control:
            control = subprocess.run(
                [sys.executable, os.path.abspath(__file__), "--control-child", *common],
                env=child_env(), timeout=args.timeout,
            )
            body["control_oom"] = control.returncode == 0
            if control.returncode != 0:
                print("FAIL: control (in-memory) child did not OOM -- the cap "
                      "is not binding", file=sys.stderr)
                return 1

    body["dataset_bytes"] = rows * ROW_BYTES
    body["factor"] = args.factor
    with open(args.out, "w") as fh:
        json.dump(body, fh, indent=2)
        fh.write("\n")
    print(f"PASS: partitioned+shuffled {body['n']} rows "
          f"({body['dataset_bytes'] >> 20} MiB) under a {args.budget_mb} MiB cap; "
          f"peak RSS {body['ru_maxrss_kb'] >> 10} MiB; report -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
