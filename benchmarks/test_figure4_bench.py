"""Figure 4 benchmark: running time vs graph size over the whole test set.

Regenerates the scatter (one timing per tool per registry instance, k chosen
for ~constant points-per-block) and the per-tool least-squares trend fits.
"""

import numpy as np
import pytest

from repro.experiments import figure4


@pytest.fixture(scope="module")
def points():
    return figure4.run(points_per_block=600, scale=0.3, seed=0)


def test_figure4_run(benchmark):
    out = benchmark.pedantic(
        lambda: figure4.run(points_per_block=500, scale=0.05, seed=1,
                            tools=("Geographer", "HSFC"), names=("hugetric", "delaunay2d_s")),
        rounds=1, iterations=1,
    )
    assert len(out) == 4


def test_figure4_table(benchmark, points, emit):
    text = benchmark.pedantic(lambda: figure4.format_result(points), rounds=1, iterations=1)
    emit("figure4_running_times", text, volatile_columns=("seconds",),
         volatile_patterns=(r"(?<==)[+-]?\d+\.\d+",))


def test_figure4_tool_ordering(benchmark, points):
    """Median running times: HSFC and MJ below Geographer (paper Fig. 4)."""
    med = benchmark.pedantic(
        lambda: {
            tool: np.median([tp.seconds for tp in points if tp.tool == tool])
            for tool in ("Geographer", "HSFC", "MultiJagged", "RCB", "RIB")
        },
        rounds=1, iterations=1,
    )
    assert med["HSFC"] < med["Geographer"]
    assert med["MultiJagged"] < med["Geographer"]


def test_figure4_fits_near_linear(benchmark, points):
    """Times grow roughly linearly in n (fit slopes ~ 0.5..1.6 in log-log)."""
    fits = benchmark.pedantic(lambda: figure4.fit_trends(points), rounds=1, iterations=1)
    for tool, (slope, _) in fits.items():
        assert 0.2 < slope < 2.0, (tool, slope)
