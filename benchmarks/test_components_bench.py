"""§5.3.2 components benchmark: stage shares of Geographer's running time.

Paper numbers for Delaunay2B: at p=1024, redistribution 32% / k-means 47%;
at p=16384, redistribution 46% / k-means 42% — redistribution takes over as
p grows.  The modeled large-p rows must reproduce that crossover direction.
"""

import pytest

from repro.experiments import components


@pytest.fixture(scope="module")
def rows():
    return components.run(points_per_rank=2000, rank_counts=(4, 8),
                          modeled_rank_counts=(1024, 16384), seed=0)


def test_components_run(benchmark):
    out = benchmark.pedantic(
        lambda: components.run(points_per_rank=400, rank_counts=(2,), modeled_rank_counts=(1024,), seed=1),
        rounds=1, iterations=1,
    )
    assert len(out) == 2


def test_components_table(benchmark, rows, emit):
    text = benchmark.pedantic(lambda: components.format_result(rows), rounds=1, iterations=1)
    emit("components_breakdown", text,
         volatile_columns=("sfc_index", "redistribute", "kmeans"),
         row_filter=lambda line: "measured" in line)


def test_components_redistribution_share_grows(benchmark, rows):
    modeled = benchmark.pedantic(
        lambda: {r.nranks: r.fractions for r in rows if r.mode == "modeled"}, rounds=1, iterations=1
    )
    assert modeled[16384]["redistribute"] > modeled[1024]["redistribute"]


def test_components_kmeans_dominates_small_p(benchmark, rows):
    """At small p, indexing + k-means together dominate (paper)."""
    measured = benchmark.pedantic(
        lambda: [r for r in rows if r.mode == "measured"], rounds=1, iterations=1
    )
    for row in measured:
        assert row.fractions["sfc_index"] + row.fractions["kmeans"] > 0.5
