"""Balance-benchmark regression check, shared by CI and local runs.

Compares a freshly measured ``BENCH_balance.json`` against a committed
baseline and fails (exit 1) when the incremental-engine phase time
regressed beyond a threshold::

    python benchmarks/check_regression.py \\
        /tmp/BENCH_balance.committed.json BENCH_balance.json --threshold 1.2

CI calls this after the tier-1 suite re-measures the trajectory (the step
stays non-blocking there: shared runners are too noisy to gate on); local
runs can call it directly after ``pytest benchmarks/test_balance_bench.py``.
Inside GitHub Actions the failure also emits a ``::warning::`` annotation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def compare(committed: dict, fresh: dict, threshold: float) -> tuple[float, list[str]]:
    """Return ``(ratio, report lines)`` for fresh-vs-committed phase time."""
    old = committed["incremental"]["seconds"]
    new = fresh["incremental"]["seconds"]
    ratio = new / old
    lines = [
        f"incremental phase: committed {old:.2f}s, fresh {new:.2f}s ({ratio:.2f}x)",
        f"fresh speedup over full path: {fresh['speedup_incremental_vs_full']:.2f}x",
    ]
    return ratio, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="baseline BENCH_balance.json (the committed trajectory)")
    parser.add_argument("fresh", help="freshly measured BENCH_balance.json")
    parser.add_argument(
        "--threshold", type=float, default=1.2,
        help="fail when fresh/committed phase time exceeds this ratio (default 1.2)",
    )
    args = parser.parse_args(argv)
    with open(args.committed) as fh:
        committed = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    ratio, lines = compare(committed, fresh, args.threshold)
    for line in lines:
        print(line)
    if ratio > args.threshold:
        message = f"balance phase regressed {ratio:.2f}x vs committed trajectory"
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::warning::{message}")
        else:
            print(f"WARNING: {message}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
