"""Benchmark regression check, shared by CI and local runs.

Compares a freshly measured benchmark JSON against a committed baseline and
fails (exit 1) when a tracked time regressed beyond a threshold::

    python benchmarks/check_regression.py BENCH_balance.json --threshold 1.2

The benches never touch the committed baseline (that needs an explicit
``REPRO_UPDATE_BENCH=1`` run); fresh measurements land in the git-ignored
``benchmarks/results/fresh/`` sidecar, which is where the ``fresh``
argument defaults to (``fresh/<basename of the committed file>``).

Two schemas are recognised by their keys:

- ``BENCH_balance.json`` (``{"incremental": ...}``): the incremental-engine
  phase time is compared directly.
- ``BENCH_kernels.json`` (``{"entries": [...]}``): every sweep bench present
  in *both* files (matched by name) is compared on ``seconds_min``; benches
  missing on either side — e.g. numba/torch entries measured only where the
  backend is installed — are skipped with a note, never treated as a
  regression.
- ``BENCH_ondisk.json`` (``{"streaming": ...}``): the out-of-core runner's
  wall-clock is compared directly; the streaming-vs-in-memory overhead
  factor is reported alongside.

CI calls this after the tier-1 suite re-measures the trajectory (the step
stays non-blocking there: shared runners are too noisy to gate on); local
runs can call it directly after ``pytest benchmarks/test_balance_bench.py``
or ``pytest benchmarks/test_kernels_bench.py``.  Inside GitHub Actions the
failure also emits a ``::warning::`` annotation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def compare_balance(committed: dict, fresh: dict) -> tuple[float, list[str]]:
    """Return ``(ratio, report lines)`` for fresh-vs-committed phase time."""
    old = committed["incremental"]["seconds"]
    new = fresh["incremental"]["seconds"]
    ratio = new / old
    lines = [
        f"incremental phase: committed {old:.2f}s, fresh {new:.2f}s ({ratio:.2f}x)",
        f"fresh speedup over full path: {fresh['speedup_incremental_vs_full']:.2f}x",
    ]
    return ratio, lines


def compare_kernels(committed: dict, fresh: dict) -> tuple[float, list[str]]:
    """Worst fresh/committed ratio over the sweep benches both files hold."""
    old_entries = {e["bench"]: e for e in committed.get("entries", [])}
    new_entries = {e["bench"]: e for e in fresh.get("entries", [])}
    worst, lines = 0.0, []
    for name in sorted(old_entries):
        if name not in new_entries:
            lines.append(f"{name}: not measured here (backend unavailable) — skipped")
            continue
        old = old_entries[name]["seconds_min"]
        new = new_entries[name]["seconds_min"]
        ratio = new / old
        backend = new_entries[name].get("backend", "?")
        if backend == "reference":
            # the preserved pre-engine path: timed for the speedup ledger,
            # not a product path — informational only
            lines.append(
                f"{name} [reference]: committed {old * 1e3:.1f}ms, "
                f"fresh {new * 1e3:.1f}ms ({ratio:.2f}x, not guarded)"
            )
            continue
        worst = max(worst, ratio)
        lines.append(
            f"{name} [{backend}]: committed {old * 1e3:.1f}ms, "
            f"fresh {new * 1e3:.1f}ms ({ratio:.2f}x)"
        )
    for name in sorted(set(new_entries) - set(old_entries)):
        lines.append(f"{name}: new bench (no committed baseline) — recorded only")
    if worst == 0.0:
        lines.append("no overlapping benches; nothing to compare")
    return worst, lines


def compare_ondisk(committed: dict, fresh: dict) -> tuple[float, list[str]]:
    """Streaming seconds ratio for BENCH_ondisk.json (``{"streaming": ...}``)."""
    old = committed["streaming"]["seconds"]
    new = fresh["streaming"]["seconds"]
    ratio = new / old
    lines = [
        f"streaming partition: committed {old:.2f}s, fresh {new:.2f}s ({ratio:.2f}x)",
        f"fresh overhead vs in-memory: {fresh['streaming_overhead']:.2f}x "
        f"(committed {committed['streaming_overhead']:.2f}x)",
    ]
    return ratio, lines


def compare(committed: dict, fresh: dict, threshold: float) -> tuple[float, list[str]]:
    """Schema-dispatching comparison (kept for callers of the old name)."""
    if "entries" in committed or "entries" in fresh:
        return compare_kernels(committed, fresh)
    if "streaming" in committed or "streaming" in fresh:
        return compare_ondisk(committed, fresh)
    return compare_balance(committed, fresh)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed",
                        help="baseline BENCH_balance.json / BENCH_kernels.json (committed trajectory)")
    parser.add_argument("fresh", nargs="?", default=None,
                        help="freshly measured benchmark JSON (same schema; default: "
                             "benchmarks/results/fresh/<basename of committed>)")
    parser.add_argument(
        "--threshold", type=float, default=1.2,
        help="fail when fresh/committed phase time exceeds this ratio (default 1.2)",
    )
    args = parser.parse_args(argv)
    if args.fresh is None:
        args.fresh = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  "results", "fresh", os.path.basename(args.committed))
    if not os.path.exists(args.fresh):
        print(f"no fresh measurement at {args.fresh}; run the benches first")
        return 0
    with open(args.committed) as fh:
        committed = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    ratio, lines = compare(committed, fresh, args.threshold)
    for line in lines:
        print(line)
    if ratio > args.threshold:
        if "entries" in fresh:
            what = "sweep kernels"
        elif "streaming" in fresh:
            what = "streaming partition"
        else:
            what = "balance phase"
        message = f"{what} regressed {ratio:.2f}x vs committed trajectory"
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::warning::{message}")
        else:
            print(f"WARNING: {message}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
