"""Load-test benchmark for the partitioning service (``repro serve``).

Launches a scratch unix-socket server, hammers it with concurrent client
threads whose request seeds overlap (so the LRU cache, single-flight
coalescing and per-dataset batching all engage), and reports p50/p99
latency plus throughput.  The numbers land in the git-ignored
``results/fresh/service_latency.json`` sidecar, which the CI ``service``
job uploads as an artifact — every number here is wall-clock, so nothing
is committed.

Bit-identity is asserted *in-bench*: the harness compares each distinct
seed's served response against a direct ``GeographerPartitioner`` run, so
a batching/caching bug that changed results would fail the benchmark, not
just skew its timings.  Carries the ``service`` marker (real sockets +
threads — not tier 1).
"""

import json
import os

import pytest

from repro.service.loadtest import format_report, run_load_test

FRESH_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results", "fresh")
REPORT_JSON = "service_latency.json"


@pytest.mark.service
def test_bench_service_load():
    report = run_load_test(
        n_points=2000, k=8, epsilon=0.03,
        clients=16, requests_per_client=4, distinct_seeds=4,
        cache_capacity=128, compute_threads=1, seed=0,
        verify_identity=True,
    )
    # the in-bench identity gate: batched/coalesced/cached responses must be
    # bit-identical to the direct, unbatched partitioner calls
    assert report["errors"] == []
    assert report["identity_ok"] is True
    assert report["requests_total"] == 16 * 4

    counters = report["server"]["counters"]
    assert counters["cache_hit"] >= 1, "request mix never hit the LRU cache"
    assert counters["requests_served"] == 4  # one real computation per seed

    lat = report["latency_ms"]
    assert 0 < lat["p50"] <= lat["p99"]
    assert report["throughput_rps"] > 0

    os.makedirs(FRESH_DIR, exist_ok=True)
    path = os.path.join(FRESH_DIR, REPORT_JSON)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n=== service load test ===\n{format_report(report)}\n[written to {path}]")
