"""Streaming-vs-in-memory throughput for the out-of-core runner.

One weighted ``n = 400k`` instance is partitioned twice with identical
config and seed: once from arrays (:func:`distributed_balanced_kmeans`),
once from a sharded on-disk dataset (:func:`ondisk_distributed_kmeans`,
spill files + file-mediated exchanges).  The two must agree bit-for-bit —
that is the tentpole invariant, re-asserted here so a benchmark run can
never report a speed number for a wrong answer — and the streaming
overhead factor is the trajectory being tracked.

Results land in ``results/fresh/BENCH_ondisk.json``;
``check_regression.py`` compares the streaming seconds against the
committed ``BENCH_ondisk.json`` baseline (non-blocking in CI — shared
runners are too noisy to gate on wall-clock).
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import BalancedKMeansConfig
from repro.io.sharded import write_sharded
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
from repro.runtime.ondisk import ondisk_distributed_kmeans

N = 400_000
K = 16
P = 8
SEED = 7
BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_ondisk.json"
)


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    rng = np.random.default_rng(SEED)
    pts = rng.random((N, 2))
    w = 0.5 + rng.random(N)
    ds = write_sharded(tmp_path_factory.mktemp("bench") / "ds", pts, weights=w)
    return pts, w, ds


def test_streaming_throughput(workload, bench_json_writer):
    pts, w, ds = workload
    cfg = BalancedKMeansConfig(max_iterations=8)

    t0 = time.perf_counter()
    mem = distributed_balanced_kmeans(pts, K, P, weights=w, config=cfg, rng=SEED)
    mem_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    dsk = ondisk_distributed_kmeans(ds, K, P, config=cfg, rng=SEED)
    dsk_s = time.perf_counter() - t0

    # a wrong answer must never get a perf number
    assert np.array_equal(mem.assignment, np.asarray(dsk.assignment))
    assert mem.centers.tobytes() == dsk.centers.tobytes()

    overhead = dsk_s / mem_s
    payload = {
        "n": N,
        "k": K,
        "nranks": P,
        "iterations": dsk.iterations,
        "streaming": {"seconds": dsk_s, "rows_per_second": N / dsk_s},
        "in_memory": {"seconds": mem_s, "rows_per_second": N / mem_s},
        "streaming_overhead": overhead,
    }
    written = bench_json_writer(BENCH_JSON, payload)
    print(
        f"\n[BENCH] out-of-core: in-memory {mem_s:.2f}s, streaming {dsk_s:.2f}s "
        f"({overhead:.2f}x overhead, {N / dsk_s / 1e3:.0f}k rows/s) "
        f"[written to {written}]"
    )
    if os.environ.get("CI"):
        return
    # spill I/O and file-mediated exchanges cost real time; the guard is a
    # ceiling on how much, with headroom over the quiet-machine number
    assert overhead < 12.0, f"streaming overhead blew up: {overhead:.2f}x"
