"""Figure 1 benchmark: partition hugetric into 8 blocks with every tool.

Regenerates the paper's visual comparison (SVG panels) and benchmarks each
tool's wall-clock on the same mesh — the per-tool time ordering (HSFC/MJ
fastest, Geographer slowest-but-seconds) should match Tables 1-2.
"""

import pytest

from repro.experiments import figure1
from repro.experiments.harness import PAPER_TOOLS
from repro.mesh.adaptive import hugetric_like
from repro.partitioners.base import get_partitioner

K = 8


@pytest.fixture(scope="module")
def mesh():
    return hugetric_like(6000, rng=0)


@pytest.mark.parametrize("tool", PAPER_TOOLS)
def test_figure1_partition_time(benchmark, mesh, tool):
    partitioner = get_partitioner(tool)
    assignment = benchmark(lambda: partitioner.partition_mesh(mesh, K, rng=0))
    assert assignment.max() == K - 1


def test_figure1_render_panels(benchmark, emit, results_dir):
    outputs = benchmark.pedantic(
        lambda: figure1.run(results_dir, n=6000, k=K, seed=0), rounds=1, iterations=1
    )
    emit(
        "figure1_panels",
        "\n".join(f"{name}: {path}" for name, path in outputs.items()),
    )
    assert len(outputs) == len(PAPER_TOOLS) + 1
