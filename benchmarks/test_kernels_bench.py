"""Microbenchmarks of the hot kernels (profiling anchors).

Not tied to a specific figure; these keep the per-kernel costs visible so
performance regressions in the core loops are caught by inspection of the
pytest-benchmark table.
"""

import numpy as np
import pytest

from repro.core.assign import assign_points
from repro.core.bounds import init_bounds
from repro.core.config import BalancedKMeansConfig
from repro.geometry.distances import top2_effective
from repro.metrics.commvolume import comm_volumes
from repro.metrics.cut import edge_cut
from repro.mesh.delaunay import delaunay_mesh
from repro.partitioners.base import get_partitioner
from repro.runtime.comm import VirtualComm
from repro.runtime.distsort import distributed_sort
from repro.sfc.curves import sfc_index

N = 60_000
K = 64


@pytest.fixture(scope="module")
def pts():
    return np.random.default_rng(0).random((N, 2))


@pytest.fixture(scope="module")
def mesh():
    return delaunay_mesh(20_000, rng=1)


def test_bench_hilbert_index(benchmark, pts):
    out = benchmark(lambda: sfc_index(pts))
    assert out.shape == (N,)


def test_bench_morton_index(benchmark, pts):
    benchmark(lambda: sfc_index(pts, curve="morton"))


def test_bench_top2_effective(benchmark, pts):
    centers = pts[:K]
    influence = np.ones(K)
    benchmark(lambda: top2_effective(pts[:8192], centers, influence))


def test_bench_assign_sweep_cold(benchmark, pts):
    """First sweep: all points evaluated (bounds force nothing)."""
    centers = pts[:: N // K][:K].copy()
    influence = np.ones(K)
    cfg = BalancedKMeansConfig()

    def run():
        assignment = np.zeros(N, dtype=np.int64)
        ub, lb = init_bounds(N)
        assign_points(pts, centers, influence, assignment, ub, lb, cfg)
        return assignment

    benchmark(run)


def test_bench_assign_sweep_warm(benchmark, pts):
    """Steady-state sweep: bounds certify everything (the 80% skip path)."""
    centers = pts[:: N // K][:K].copy()
    influence = np.ones(K)
    cfg = BalancedKMeansConfig()
    assignment = np.zeros(N, dtype=np.int64)
    ub, lb = init_bounds(N)
    assign_points(pts, centers, influence, assignment, ub, lb, cfg)
    benchmark(lambda: assign_points(pts, centers, influence, assignment, ub, lb, cfg))


def test_bench_edge_cut(benchmark, mesh):
    a = get_partitioner("RCB").partition_mesh(mesh, 16)
    benchmark(lambda: edge_cut(mesh, a, 16))


def test_bench_comm_volumes(benchmark, mesh):
    a = get_partitioner("RCB").partition_mesh(mesh, 16)
    benchmark(lambda: comm_volumes(mesh, a, 16))


def test_bench_distributed_sort(benchmark):
    rng = np.random.default_rng(2)
    keys = [rng.integers(0, 1 << 40, size=10_000) for _ in range(8)]

    def run():
        comm = VirtualComm(8)
        return distributed_sort(comm, keys)

    benchmark(run)


@pytest.mark.parametrize("tool", ["RCB", "MultiJagged", "HSFC"])
def test_bench_baseline_partition(benchmark, pts, tool):
    partitioner = get_partitioner(tool)
    benchmark(lambda: partitioner.partition(pts, K))
