"""Microbenchmarks of the hot kernels (profiling anchors + perf trajectory).

Not tied to a specific figure; these keep the per-kernel costs visible so
performance regressions in the core loops are caught by inspection of the
pytest-benchmark table.

The assignment-sweep benches additionally seed the repo's perf trajectory:
they time the pre-kernel-engine path (full-matrix sqrt + division, per-chunk
norms and boxes — preserved as ``top2_effective_reference``) against the
squared-space engine on the canonical ``n=200k, k=64, d=2`` workload and
write the measurements to the ``results/fresh/BENCH_kernels.json`` sidecar
(compared against the committed repo-root baseline; ``REPRO_UPDATE_BENCH=1``
rewrites the baseline too), so future PRs are held to the recorded ns/point.
"""

import os

import numpy as np
import pytest

from repro.core.assign import assign_points
from repro.core.bounds import init_bounds
from repro.core.config import BalancedKMeansConfig
from repro.core.kernels import HAVE_NUMBA, SweepWorkspace
from repro.core.xp import available_kernel_backends, kernel_backend_spec
from repro.geometry.boxes import BoundingBox
from repro.geometry.distances import top2_effective, top2_effective_reference
from repro.metrics.commvolume import comm_volumes
from repro.metrics.cut import edge_cut
from repro.mesh.delaunay import delaunay_mesh
from repro.partitioners.base import get_partitioner
from repro.runtime.comm import VirtualComm
from repro.runtime.distsort import distributed_sort
from repro.sfc.curves import sfc_index

N = 60_000
K = 64

# -- assignment-sweep trajectory workload (acceptance: n=200k, k=64, d=2) ----
SWEEP_N = 200_000
SWEEP_K = 64
SWEEP_D = 2
LEGACY_CHUNK = 8192  # the pre-kernel-engine default chunk size
BENCH_JSON = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_kernels.json")
_SWEEP_TIMINGS: dict[str, float] = {}


@pytest.fixture(scope="module")
def pts():
    return np.random.default_rng(0).random((N, 2))


@pytest.fixture(scope="module")
def mesh():
    return delaunay_mesh(20_000, rng=1)


def test_bench_hilbert_index(benchmark, pts):
    out = benchmark(lambda: sfc_index(pts))
    assert out.shape == (N,)


def test_bench_morton_index(benchmark, pts):
    benchmark(lambda: sfc_index(pts, curve="morton"))


def test_bench_top2_effective(benchmark, pts):
    centers = pts[:K]
    influence = np.ones(K)
    benchmark(lambda: top2_effective(pts[:8192], centers, influence))


def test_bench_assign_sweep_cold(benchmark, pts):
    """First sweep: all points evaluated (bounds force nothing)."""
    centers = pts[:: N // K][:K].copy()
    influence = np.ones(K)
    cfg = BalancedKMeansConfig()

    def run():
        assignment = np.zeros(N, dtype=np.int64)
        ub, lb = init_bounds(N)
        assign_points(pts, centers, influence, assignment, ub, lb, cfg)
        return assignment

    benchmark(run)


def test_bench_assign_sweep_warm(benchmark, pts):
    """Steady-state sweep: bounds certify everything (the 80% skip path)."""
    centers = pts[:: N // K][:K].copy()
    influence = np.ones(K)
    cfg = BalancedKMeansConfig()
    assignment = np.zeros(N, dtype=np.int64)
    ub, lb = init_bounds(N)
    assign_points(pts, centers, influence, assignment, ub, lb, cfg)
    benchmark(lambda: assign_points(pts, centers, influence, assignment, ub, lb, cfg))


def test_bench_edge_cut(benchmark, mesh):
    a = get_partitioner("RCB").partition_mesh(mesh, 16)
    benchmark(lambda: edge_cut(mesh, a, 16))


def test_bench_comm_volumes(benchmark, mesh):
    a = get_partitioner("RCB").partition_mesh(mesh, 16)
    benchmark(lambda: comm_volumes(mesh, a, 16))


def test_bench_distributed_sort(benchmark):
    rng = np.random.default_rng(2)
    keys = [rng.integers(0, 1 << 40, size=10_000) for _ in range(8)]

    def run():
        comm = VirtualComm(8)
        return distributed_sort(comm, keys)

    benchmark(run)


@pytest.mark.parametrize("tool", ["RCB", "MultiJagged", "HSFC"])
def test_bench_baseline_partition(benchmark, pts, tool):
    partitioner = get_partitioner(tool)
    benchmark(lambda: partitioner.partition(pts, K))


# ---------------------------------------------------------------------------
# Assignment-sweep trajectory: old path vs kernel engine -> BENCH_kernels.json
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_workload():
    """SFC-sorted points + spread centers, the state inside `balanced_kmeans`."""
    rng = np.random.default_rng(7)
    pts = rng.random((SWEEP_N, SWEEP_D))
    pts = pts[np.argsort(sfc_index(pts), kind="stable")]
    centers = pts[:: SWEEP_N // SWEEP_K][:SWEEP_K].copy()
    influence = rng.uniform(0.8, 1.2, SWEEP_K)
    return pts, centers, influence


def _legacy_sweep(pts, centers, influence, chunk_size, prune):
    """The pre-kernel-engine assignment sweep, reproduced faithfully:

    per-chunk bounding boxes rebuilt from raw points, per-chunk sqrt'd
    min/max box distances divided by influence, and a full ``(chunk, k)``
    sqrt + division inside the top-2 reduction.
    """
    n, k = pts.shape[0], centers.shape[0]
    assignment = np.empty(n, dtype=np.int64)
    ub, lb = np.empty(n), np.empty(n)
    for s in range(0, n, chunk_size):
        cpts = pts[s : s + chunk_size]
        cand = None
        if prune:
            bb = BoundingBox.from_points(cpts)
            min_eff = bb.min_dist(centers) / influence
            max_eff = bb.max_dist(centers) / influence
            threshold = np.partition(max_eff, 1)[1]
            cand = np.flatnonzero(min_eff <= threshold)
            if cand.shape[0] >= k:
                cand = None
        assign, best, second = top2_effective_reference(cpts, centers, influence, cand)
        assignment[s : s + chunk_size] = assign
        ub[s : s + chunk_size] = best
        lb[s : s + chunk_size] = second
    return assignment, ub, lb


def _engine_sweep_arrays(pts, k, cfg):
    workspace = SweepWorkspace(pts, cfg, k)
    assignment = np.zeros(pts.shape[0], dtype=np.int64)
    ub, lb = init_bounds(pts.shape[0])
    return workspace, assignment, ub, lb


def _record(name, seconds, backend):
    _SWEEP_TIMINGS[name] = seconds
    return {
        "bench": name,
        "n": SWEEP_N,
        "k": SWEEP_K,
        "d": SWEEP_D,
        "backend": backend,
        "chunk_size": LEGACY_CHUNK if name.startswith("sweep_legacy") else BalancedKMeansConfig().chunk_size,
        "seconds_min": seconds,
        "ns_per_point": seconds / SWEEP_N * 1e9,
    }


_BACKEND_OF = {
    "sweep_legacy_full": "reference",
    "sweep_legacy_pruned": "reference",
    "sweep_engine_full": "numpy",
    "sweep_engine_pruned": "numpy",
    "sweep_engine_full_numba": "numba",
    "sweep_engine_full_torch_cpu": "torch-cpu",
    "sweep_engine_full_torch_cuda": "torch-cuda",
}


def test_bench_sweep_legacy_full(benchmark, sweep_workload):
    """Old path, pruning off: the isolated full-matrix sqrt/div kernel."""
    pts, centers, influence = sweep_workload
    benchmark(lambda: _legacy_sweep(pts, centers, influence, LEGACY_CHUNK, prune=False))
    _record("sweep_legacy_full", benchmark.stats.stats.min, "reference")


def test_bench_sweep_legacy_pruned(benchmark, sweep_workload):
    """Old path with per-chunk boxes rebuilt from points every sweep."""
    pts, centers, influence = sweep_workload
    benchmark(lambda: _legacy_sweep(pts, centers, influence, LEGACY_CHUNK, prune=True))
    _record("sweep_legacy_pruned", benchmark.stats.stats.min, "reference")


def test_bench_sweep_engine_full(benchmark, sweep_workload):
    """New path, pruning off: squared-space kernel + cached norms/scratch."""
    pts, centers, influence = sweep_workload
    cfg = BalancedKMeansConfig(use_bounds=False, use_box_pruning=False, kernel_backend="numpy")
    workspace, assignment, ub, lb = _engine_sweep_arrays(pts, SWEEP_K, cfg)
    benchmark(lambda: assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=workspace))
    _record("sweep_engine_full", benchmark.stats.stats.min, "numpy")


def test_bench_sweep_engine_pruned(benchmark, sweep_workload):
    """New path with the static-block boxes cached in the workspace."""
    pts, centers, influence = sweep_workload
    cfg = BalancedKMeansConfig(use_bounds=False, kernel_backend="numpy")
    workspace, assignment, ub, lb = _engine_sweep_arrays(pts, SWEEP_K, cfg)
    benchmark(lambda: assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=workspace))
    _record("sweep_engine_pruned", benchmark.stats.stats.min, "numpy")


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_bench_sweep_engine_full_numba(benchmark, sweep_workload):
    pts, centers, influence = sweep_workload
    cfg = BalancedKMeansConfig(use_bounds=False, use_box_pruning=False, kernel_backend="numba")
    workspace, assignment, ub, lb = _engine_sweep_arrays(pts, SWEEP_K, cfg)
    assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=workspace)  # JIT warmup
    benchmark(lambda: assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=workspace))
    _record("sweep_engine_full_numba", benchmark.stats.stats.min, "numba")


def _torch_sweep_bench(benchmark, sweep_workload, backend, name):
    """Device-engine sweep in its steady state: one device session holds the
    bounds resident, so the per-sweep traffic is only the k-sized vectors —
    the shape of the assign-and-balance inner loop."""
    pts, centers, influence = sweep_workload
    cfg = BalancedKMeansConfig(use_bounds=False, use_box_pruning=False, kernel_backend=backend)
    workspace, assignment, ub, lb = _engine_sweep_arrays(pts, SWEEP_K, cfg)
    workspace.prepare(centers, influence)
    workspace.begin_device_session(assignment, ub, lb)
    try:
        workspace.device_sweep(assignment, ub, lb, use_bounds=False)  # warmup
        benchmark(lambda: workspace.device_sweep(assignment, ub, lb, use_bounds=False))
    finally:
        workspace.end_device_session()
    _record(name, benchmark.stats.stats.min, backend)


@pytest.mark.skipif(not kernel_backend_spec("torch-cpu").available, reason="torch not installed")
def test_bench_sweep_engine_full_torch_cpu(benchmark, sweep_workload):
    _torch_sweep_bench(benchmark, sweep_workload, "torch-cpu", "sweep_engine_full_torch_cpu")


@pytest.mark.skipif(not kernel_backend_spec("torch-cuda").available, reason="CUDA not available")
def test_bench_sweep_engine_full_torch_cuda(benchmark, sweep_workload):
    _torch_sweep_bench(benchmark, sweep_workload, "torch-cuda", "sweep_engine_full_torch_cuda")


def test_sweep_equivalence_and_emit_json(sweep_workload, bench_json_writer):
    """Engine output is bit-identical to the old path; record the trajectory.

    Runs last in this module: collects the timings recorded above into the
    ``results/fresh/BENCH_kernels.json`` sidecar (machine-readable perf
    floor, compared against the committed repo-root baseline by
    ``check_regression.py``; ``REPRO_UPDATE_BENCH=1`` also rewrites the
    baseline) and checks the measured kernel speedup.
    """
    pts, centers, influence = sweep_workload
    for prune in (False, True):
        cfg = BalancedKMeansConfig(use_bounds=False, use_box_pruning=prune)
        # different chunkings (legacy default vs engine default) must still
        # agree bit-for-bit: chunking and pruning are exact optimisations
        legacy = _legacy_sweep(pts, centers, influence, LEGACY_CHUNK, prune=prune)
        workspace, assignment, ub, lb = _engine_sweep_arrays(pts, SWEEP_K, cfg)
        assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=workspace)
        label = "pruned" if prune else "full"
        assert np.array_equal(legacy[0], assignment), f"assignments differ from old path ({label})"
        assert np.array_equal(legacy[1], ub), f"upper bounds differ from old path ({label})"
        assert np.array_equal(legacy[2], lb), f"lower bounds differ from old path ({label})"

    needed = {"sweep_legacy_full", "sweep_engine_full"}
    if not needed.issubset(_SWEEP_TIMINGS):
        pytest.skip("sweep benchmarks were deselected; nothing to record")
    speedup = _SWEEP_TIMINGS["sweep_legacy_full"] / _SWEEP_TIMINGS["sweep_engine_full"]
    speedups = {"kernel_full_sweep": speedup}
    if {"sweep_legacy_pruned", "sweep_engine_pruned"}.issubset(_SWEEP_TIMINGS):
        speedups["whole_sweep_with_pruning"] = (
            _SWEEP_TIMINGS["sweep_legacy_pruned"] / _SWEEP_TIMINGS["sweep_engine_pruned"]
        )
    payload = {
        "workload": {"n": SWEEP_N, "k": SWEEP_K, "d": SWEEP_D,
                     "legacy_chunk_size": LEGACY_CHUNK,
                     "engine_chunk_size": BalancedKMeansConfig().chunk_size},
        # which kernel backends this machine could measure: entries for the
        # others are absent, and check_regression.py skips them by name
        "kernel_backends_available": list(available_kernel_backends()),
        "entries": [
            _record(name, seconds, _BACKEND_OF[name])
            for name, seconds in sorted(_SWEEP_TIMINGS.items())
        ],
        "speedup_engine_vs_legacy": speedups,
    }
    written = bench_json_writer(BENCH_JSON, payload)
    print(f"\n[BENCH] kernel speedup (full sweep): {speedup:.2f}x "
          f"({_SWEEP_TIMINGS['sweep_legacy_full'] / SWEEP_N * 1e9:.0f} -> "
          f"{_SWEEP_TIMINGS['sweep_engine_full'] / SWEEP_N * 1e9:.0f} ns/point) "
          f"[written to {written}]")
    # regression guards with headroom below the controlled numbers (see the
    # committed BENCH_kernels.json: ~1.6x raw kernel, ~2.4x pruned sweep);
    # shared CI runners are too noisy for wall-clock thresholds, so there the
    # measurements are recorded but not enforced
    if os.environ.get("CI"):
        return
    assert speedup >= 1.2, f"kernel engine regressed: only {speedup:.2f}x vs legacy sweep"
    if "whole_sweep_with_pruning" in speedups:
        pruned = speedups["whole_sweep_with_pruning"]
        assert pruned >= 1.5, f"pruned sweep regressed: only {pruned:.2f}x vs legacy sweep"
