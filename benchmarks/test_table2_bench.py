"""Table 2 benchmark: per-graph detail on small/medium instances (k scaled from 64)."""

import numpy as np
import pytest

from repro.experiments import tables
from repro.experiments.harness import PAPER_TOOLS


@pytest.fixture(scope="module")
def rows():
    return tables.run_table2(k=16, scale=0.35, seed=0)


def test_table2_run(benchmark):
    out = benchmark.pedantic(
        lambda: tables.run_table2(k=8, scale=0.05, seed=1, instances=("M6",), with_spmv=False),
        rounds=1, iterations=1,
    )
    assert len(out) == len(PAPER_TOOLS)


def test_table2_table(benchmark, rows, emit):
    text = benchmark.pedantic(
        lambda: tables.format_table(rows, "Table 2 (scaled): small/medium graphs, k=16"), rounds=1, iterations=1
    )
    emit("table2_small_medium_graphs", text, volatile_columns=("time",))
    emit("table2_winners", f"best totCommVol per graph: {tables.winners(rows, 'totCommVol')}")


def test_table2_balance_respected(benchmark, rows):
    def check():
        for row in rows:
            assert row.imbalance <= 0.031, (row.graph, row.tool, row.imbalance)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_table2_all_graphs_all_tools(benchmark, rows):
    def check():
        graphs = {r.graph for r in rows}
        assert len(graphs) == len(tables.TABLE2_INSTANCES)
        for graph in graphs:
            tools = {r.tool for r in rows if r.graph == graph}
            assert tools == set(PAPER_TOOLS)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_table2_geographer_wins_majority_totcomm(benchmark, rows):
    wins = benchmark.pedantic(lambda: tables.winners(rows, "totCommVol"), rounds=1, iterations=1)
    geo = sum(1 for tool in wins.values() if tool == "Geographer")
    assert geo >= len(wins) / 2


def test_table2_hsfc_fastest_never_best_quality(benchmark, rows):
    """HSFC is among the fastest but rarely wins quality metrics (paper)."""

    def stats():
        by_tool_time = {}
        for row in rows:
            by_tool_time.setdefault(row.tool, []).append(row.time)
        cut_wins = tables.winners(rows, "edgeCut")
        return by_tool_time, cut_wins

    by_tool_time, cut_wins = benchmark.pedantic(stats, rounds=1, iterations=1)
    assert np.median(by_tool_time["HSFC"]) < np.median(by_tool_time["Geographer"])
    hsfc_wins = sum(1 for tool in cut_wins.values() if tool == "HSFC")
    assert hsfc_wins <= len(cut_wins) / 3
