"""Benchmark for the FM-refinement extension (§2, out of scope in the paper).

Regenerates the refinement table (cut before/after per tool) and asserts the
invariants at benchmark scale: cuts never rise, balance holds, and HSFC —
whose SFC chunk boundaries are the most wrinkled — gains the most.
"""

import pytest

from repro.experiments.harness import PAPER_TOOLS
from repro.mesh.delaunay import delaunay_mesh
from repro.metrics.imbalance import is_balanced
from repro.partitioners.base import get_partitioner
from repro.refine.fm import fm_refine

K = 16


@pytest.fixture(scope="module")
def mesh():
    return delaunay_mesh(10_000, rng=0)


@pytest.fixture(scope="module")
def refined(mesh):
    out = {}
    for tool in PAPER_TOOLS:
        assignment = get_partitioner(tool).partition_mesh(mesh, K, rng=0)
        out[tool] = fm_refine(mesh, assignment, K, max_passes=5)
    return out


def test_bench_fm_refine_hsfc(benchmark, mesh):
    assignment = get_partitioner("HSFC").partition_mesh(mesh, K, rng=0)
    refined_assignment, stats = benchmark(lambda: fm_refine(mesh, assignment, K, max_passes=3))
    assert stats.cut_after <= stats.cut_before


def test_refinement_table(benchmark, refined, emit):
    def fmt():
        lines = [f"{'tool':<14}{'cut before':>11}{'cut after':>11}{'gain':>8}{'moves':>7}"]
        lines.append("-" * 51)
        for tool, (_, stats) in refined.items():
            lines.append(
                f"{tool:<14}{stats.cut_before:>11}{stats.cut_after:>11}{stats.improvement:>7.1%}{stats.moves:>7}"
            )
        return "\n".join(lines)

    emit("refinement_gains", benchmark.pedantic(fmt, rounds=1, iterations=1))


def test_refinement_invariants(benchmark, mesh, refined):
    def check():
        for tool, (assignment, stats) in refined.items():
            assert stats.cut_after <= stats.cut_before, tool
            assert is_balanced(assignment, K, 0.031, mesh.node_weights), tool
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_hsfc_gains_most(benchmark, refined):
    gains = benchmark.pedantic(
        lambda: {tool: stats.improvement for tool, (_, stats) in refined.items()},
        rounds=1, iterations=1,
    )
    assert gains["HSFC"] >= max(g for t, g in gains.items() if t != "HSFC") * 0.8
