"""Shared benchmark fixtures.

Each benchmark regenerates one paper table/figure.  Reproduced rows/series
are written to ``benchmarks/results/<name>.txt`` (and printed — visible with
``pytest -s``); pytest-benchmark reports the timings in its own table.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a reproduced table to the results dir and echo it."""

    def _emit(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n=== {name} ===\n{text}\n[written to {path}]")
        return path

    return _emit
