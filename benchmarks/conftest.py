"""Shared benchmark fixtures.

Each benchmark regenerates one paper table/figure.  Reproduced rows/series
are written to ``benchmarks/results/<name>.txt`` (and printed — visible with
``pytest -s``); pytest-benchmark reports the timings in its own table.

The committed copies must be regeneration-stable: measured wall-clock
fields (named via ``volatile_columns``/``volatile_patterns``) are scrubbed
to a placeholder before writing, so rerunning the benches leaves an empty
git diff unless a *deterministic* metric actually changed.  The full
unscrubbed text goes to the git-ignored ``results/timings/`` sidecar, and
fresh machine-readable measurements (``BENCH_*.json``) go to the
git-ignored ``results/fresh/`` sidecar that ``check_regression.py`` reads.
"""

from __future__ import annotations

import os

import pytest

from repro.util.benchout import scrub_volatile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Fresh benchmark JSONs land here; the repo-root copies are the committed
#: baselines, rewritten only on an intentional REPRO_UPDATE_BENCH=1 run.
FRESH_DIR = os.path.join(RESULTS_DIR, "fresh")
TIMINGS_DIR = os.path.join(RESULTS_DIR, "timings")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a reproduced table to the results dir and echo it.

    With any of ``volatile_columns`` / ``row_filter`` / ``volatile_patterns``
    the committed copy is scrubbed via
    :func:`repro.util.benchout.scrub_volatile` and the raw text is kept in
    ``results/timings/<name>.txt`` instead.
    """

    def _emit(name: str, text: str, volatile_columns=(), row_filter=None,
              volatile_patterns=()) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        committed = text
        if volatile_columns or volatile_patterns:
            committed = scrub_volatile(
                text, columns=volatile_columns, row_filter=row_filter,
                patterns=volatile_patterns,
            )
            os.makedirs(TIMINGS_DIR, exist_ok=True)
            with open(os.path.join(TIMINGS_DIR, f"{name}.txt"), "w") as fh:
                fh.write(text + "\n")
        with open(path, "w") as fh:
            fh.write(committed + "\n")
        print(f"\n=== {name} ===\n{text}\n[written to {path}]")
        return path

    return _emit


def fresh_json_path(committed_path: str) -> str:
    """The git-ignored sidecar where a fresh copy of ``BENCH_*.json`` goes."""
    os.makedirs(FRESH_DIR, exist_ok=True)
    return os.path.join(FRESH_DIR, os.path.basename(committed_path))


@pytest.fixture(scope="session")
def bench_json_writer():
    """Write a fresh benchmark JSON; touch the committed baseline only on demand.

    Always writes to the ``results/fresh/`` sidecar (what CI's regression
    check compares against the committed file).  The committed repo-root
    baseline is rewritten only under ``REPRO_UPDATE_BENCH=1`` — an explicit
    trajectory update, never a side effect of running the benches.
    """
    import json

    def _write(committed_path: str, payload: dict) -> str:
        fresh = fresh_json_path(committed_path)
        targets = [fresh]
        if os.environ.get("REPRO_UPDATE_BENCH"):
            targets.append(committed_path)
        for target in targets:
            with open(target, "w") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
        return fresh

    return _write
