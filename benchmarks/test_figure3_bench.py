"""Figure 3 benchmark: weak and strong scaling curves.

Regenerates both panels and asserts the paper's qualitative findings:
(ii) Geographer scales like MJ/HSFC and better than the recursive methods;
all tools slow down crossing the 8192-core island boundary.
"""

import pytest

from repro.experiments import figure3


@pytest.fixture(scope="module")
def weak():
    # the paper's weak-scaling load: ~250k points per rank (modeled regime;
    # a separate test below backs the simulation with a measured small run)
    return figure3.run_weak(points_per_rank=250_000,
                            rank_counts=(32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
                            measured_max_ranks=0, seed=0)


@pytest.fixture(scope="module")
def strong():
    return figure3.run_strong(seed=0)


def test_figure3a_weak_scaling(benchmark, weak, emit):
    benchmark.pedantic(
        lambda: figure3.run_weak(points_per_rank=500, rank_counts=(4, 64), measured_max_ranks=4, seed=1),
        rounds=1, iterations=1,
    )
    emit("figure3a_weak_scaling", figure3.format_points(weak, title="Figure 3a (weak scaling, seconds)"))


def test_figure3a_measured_points_back_simulation(benchmark):
    """Small-p points execute the real SPMD run and stay balanced."""
    points = benchmark.pedantic(
        lambda: figure3.run_weak(points_per_rank=2000, rank_counts=(4, 8),
                                 measured_max_ranks=8, seed=2),
        rounds=1, iterations=1,
    )
    measured = [p for p in points if p.mode == "measured"]
    assert measured, "expected measured-mode points at small p"
    for p in measured:
        if p.tool == "Geographer":
            assert p.imbalance is not None and p.imbalance <= 0.031
        assert p.measured_wall is not None and p.measured_wall > 0


def test_figure3a_recursive_methods_scale_worst(benchmark, weak):
    def growth(tool):
        pts = {p.nranks: p.seconds for p in weak if p.tool == tool}
        return pts[8192] / pts[32]

    ratios = benchmark.pedantic(
        lambda: {tool: growth(tool) for tool in ("RCB", "RIB", "Geographer")}, rounds=1, iterations=1
    )
    assert ratios["RCB"] > 2.0 * ratios["Geographer"]
    assert ratios["RIB"] > 2.0 * ratios["Geographer"]
    assert ratios["Geographer"] < 2.5  # near-flat, paper: ~2x over last doublings


def test_figure3b_strong_scaling(benchmark, strong, emit):
    text = benchmark.pedantic(
        lambda: figure3.format_points(strong, title="Figure 3b (strong scaling Delaunay2B-scale, seconds)"),
        rounds=1, iterations=1,
    )
    emit("figure3b_strong_scaling", text)


def test_figure3b_island_kink(benchmark, strong):
    """Every tool gets slower from 8192 to 16384 ranks (island crossing)."""

    def check():
        for tool in ("Geographer", "MultiJagged", "RCB", "RIB", "HSFC"):
            pts = {p.nranks: p.seconds for p in strong if p.tool == tool}
            assert pts[16384] > pts[8192], tool
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_figure3b_scaling_until_island(benchmark, strong):
    """Before the island boundary, Geographer strong-scales (time shrinks)."""
    pts = benchmark.pedantic(
        lambda: {p.nranks: p.seconds for p in strong if p.tool == "Geographer"}, rounds=1, iterations=1
    )
    assert pts[2048] < pts[1024]
    assert pts[4096] < pts[2048]
