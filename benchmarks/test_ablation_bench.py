"""Ablation benchmarks for Geographer's design choices (DESIGN.md §5).

Microbenchmarks each optimisation and regenerates the ablation tables,
asserting the paper's claims: bounds skip ~80 % of inner loops and never
change the result; SFC seeding converges faster than random.
"""

import pytest

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.experiments import ablations
from repro.mesh.delaunay import delaunay_mesh


@pytest.fixture(scope="module")
def mesh():
    return delaunay_mesh(8000, rng=0)


@pytest.fixture(scope="module")
def pts(mesh):
    return mesh.coords


class TestBoundsAblation:
    def test_bench_with_bounds(self, benchmark, pts):
        cfg = BalancedKMeansConfig(use_sampling=False)
        benchmark(lambda: balanced_kmeans(pts, 16, config=cfg, rng=1))

    def test_bench_without_bounds(self, benchmark, pts):
        cfg = BalancedKMeansConfig(use_sampling=False, use_bounds=False, use_box_pruning=False)
        benchmark(lambda: balanced_kmeans(pts, 16, config=cfg, rng=1))

    def test_table_and_claims(self, benchmark, mesh, emit):
        rows = benchmark.pedantic(lambda: ablations.run_bounds(mesh, k=16, seed=0), rounds=1, iterations=1)
        emit("ablation_bounds", ablations.format_rows(rows), volatile_columns=("seconds",))
        assert all(r.extra["agreement"] == 1.0 for r in rows)
        with_bounds = next(r for r in rows if r.variant == "bounds+pruning")
        assert with_bounds.skip_fraction > 0.6  # ~80% in the paper


class TestSeedingAblation:
    def test_table(self, benchmark, mesh, emit):
        rows = benchmark.pedantic(lambda: ablations.run_seeding(mesh, k=16, seed=0), rounds=1, iterations=1)
        emit("ablation_seeding", ablations.format_rows(rows), volatile_columns=("seconds",))
        by = {r.variant: r for r in rows}
        assert by["sfc"].iterations <= by["random"].iterations * 1.5

    def test_bench_sfc_seeding(self, benchmark, pts):
        from repro.core.seeding import sfc_seeding

        benchmark(lambda: sfc_seeding(pts, 64))

    def test_bench_kmeanspp_seeding(self, benchmark, pts):
        from repro.core.seeding import kmeanspp_seeding

        benchmark(lambda: kmeanspp_seeding(pts, 64, rng=0))


class TestErosionSamplingCurve:
    def test_erosion_table(self, benchmark, mesh, emit):
        rows = benchmark.pedantic(lambda: ablations.run_erosion(mesh, k=16, seed=0), rounds=1, iterations=1)
        emit("ablation_erosion", ablations.format_rows(rows), volatile_columns=("seconds",))
        assert all(r.imbalance <= 0.05 for r in rows)

    def test_sampling_table(self, benchmark, mesh, emit):
        rows = benchmark.pedantic(lambda: ablations.run_sampling(mesh, k=16, seed=0), rounds=1, iterations=1)
        emit("ablation_sampling", ablations.format_rows(rows), volatile_columns=("seconds",))

    def test_curve_table(self, benchmark, mesh, emit):
        rows = benchmark.pedantic(lambda: ablations.run_curve(mesh, k=16, seed=0), rounds=1, iterations=1)
        emit("ablation_curve", ablations.format_rows(rows), volatile_columns=("seconds",))
        # Hilbert chunks beat Morton chunks on communication volume for HSFC
        hsfc = {r.variant: r.extra["totCommVol"] for r in rows if r.experiment == "curve/hsfc"}
        assert hsfc["hilbert"] <= hsfc["morton"] * 1.1
