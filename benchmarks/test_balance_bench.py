"""Balance-phase trajectory benchmark: incremental engine vs the full path.

Extends the perf trajectory started by ``test_kernels_bench.py``
(BENCH_kernels.json) with the assign-and-balance *phase*: a repartitioning
trajectory on ``n = 500k, k = 256`` where a localized refinement hot-spot
(a small region whose integer weights quadruple, moving between rounds)
keeps the affected clusters' influence adapting at the 5 % cap for many
balance iterations per phase.  This is the regime the incremental engine
targets: the pre-PR path relaxes every point's runner-up bound by the
*global* worst-case factor each iteration (``lb *= ratio.min()``), so one
capped cluster forces periodic re-evaluation of the whole point set, while
the candidate-local relaxations confine the damage to the §4.4
neighbourhoods of the adapting clusters, and the block weights are
maintained from per-sweep assignment deltas instead of a full ``bincount``
per iteration.

Integer weights make every weight sum exact in float64, so the
delta-maintained block weights must be *bit-identical* to the full path's
``np.bincount`` — asserted here, along with bit-identical assignments,
influence and imbalance for the whole trajectory.

Results land in the ``results/fresh/BENCH_balance.json`` sidecar (machine-readable
perf floor for future PRs); the ≥ 1.5x end-to-end phase speedup is enforced
outside CI (shared runners are too noisy for wall-clock thresholds).
"""

import os
import time

import numpy as np
import pytest

from repro.core.assign import assign_and_balance
from repro.core.bounds import (
    init_bounds,
    relax_for_influence,
    relax_for_influence_exclusive,
    relax_for_movement,
    relax_for_movement_exclusive,
)
from repro.core.balanced_kmeans import weighted_center_update
from repro.core.config import BalancedKMeansConfig
from repro.core.influence import erode_influence, estimate_cluster_diameters
from repro.core.kernels import SweepWorkspace
from repro.sfc.curves import sfc_index

N = 500_000
K = 256
D = 2
SETTLE_PHASES = 12
ROUNDS = 5
PHASES_PER_ROUND = 3
HOT_FRACTION = 0.002
HOT_BUMP = 4.0
EPSILON = 0.03
MAX_BALANCE_ITERATIONS = 70
BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_balance.json"
)


@pytest.fixture(scope="module")
def workload():
    """SFC-sorted points with integer weights — the state inside the driver."""
    rng = np.random.default_rng(11)
    pts = rng.random((N, D))
    pts = pts[np.argsort(sfc_index(pts), kind="stable")]
    weights = rng.integers(1, 4, N).astype(np.float64)
    centers = pts[:: N // K][:K].copy()
    return pts, weights, centers


def _run_trajectory(pts, base_w, centers0, use_incremental):
    """The balanced_kmeans movement loop under a moving refinement hot-spot.

    Mirrors the driver exactly: assign-and-balance phase, weighted center
    update, influence erosion, then the influence/movement bound
    relaxations (candidate-local via the workspace in incremental mode,
    the global-factor forms otherwise).  Only the assign_and_balance calls
    are timed — that is the phase the incremental engine accelerates.
    """
    cfg = BalancedKMeansConfig(
        use_incremental=use_incremental,
        epsilon=EPSILON,
        max_balance_iterations=MAX_BALANCE_ITERATIONS,
        incremental_block_size=64,
    )
    ws = SweepWorkspace(pts, cfg, K)
    assignment = np.zeros(N, dtype=np.int64)
    ub, lb = init_bounds(N)
    influence = np.ones(K)
    centers = centers0.copy()
    w = base_w.copy()
    targets = np.full(K, base_w.sum() / K)
    prev_bw = None
    phase_seconds = 0.0
    iterations = 0
    evaluated = 0
    timing = False

    def one_phase():
        nonlocal influence, centers, prev_bw, phase_seconds, iterations, evaluated
        t0 = time.perf_counter()
        out = assign_and_balance(
            pts, w, centers, influence, assignment, ub, lb, targets, cfg, ws,
            initial_block_weights=prev_bw,
        )
        if timing:
            phase_seconds += time.perf_counter() - t0
            iterations += out.balance_iterations
            evaluated += out.stats.points_total - out.stats.points_skipped
        influence = out.influence
        prev_bw = out.block_weights
        new_centers = weighted_center_update(pts, w, assignment, K, centers)
        deltas = np.linalg.norm(new_centers - centers, axis=1)
        old_influence = influence.copy()
        beta = estimate_cluster_diameters(pts, assignment, new_centers, w)
        positive = beta[beta > 0]
        influence = erode_influence(
            influence, deltas, float(positive.mean()) if positive.size else 0.0
        )
        centers = new_centers
        if not (ws.incremental and ws.queue_relax_influence(assignment, ub, lb, old_influence, influence)):
            relax = relax_for_influence_exclusive if ws.incremental else relax_for_influence
            relax(ub, lb, assignment, old_influence, influence)
        if not (ws.incremental and ws.queue_relax_movement(assignment, ub, lb, deltas, influence)):
            relax = relax_for_movement_exclusive if ws.incremental else relax_for_movement
            relax(ub, lb, assignment, deltas, influence)
        return out

    for _ in range(SETTLE_PHASES):
        out = one_phase()
    timing = True
    side = np.sqrt(HOT_FRACTION)
    for r in range(ROUNDS):
        cx = 0.15 + 0.7 * (r / max(ROUNDS - 1, 1))
        hot = (np.abs(pts[:, 0] - cx) < side / 2) & (np.abs(pts[:, 1] - 0.5) < side / 2)
        w = base_w.copy()
        w[hot] *= HOT_BUMP
        prev_bw = None  # weights changed: re-seed the block weights once
        for _ in range(PHASES_PER_ROUND):
            out = one_phase()
    final_bincount = np.bincount(assignment, weights=w, minlength=K)
    return {
        "seconds": phase_seconds,
        "iterations": iterations,
        "evaluated": evaluated,
        "assignment": assignment.copy(),
        "influence": influence.copy(),
        "imbalance": out.imbalance,
        "block_weights": np.asarray(out.block_weights).copy(),
        "bincount": final_bincount,
    }


def test_balance_trajectory_speedup_and_identity(workload, bench_json_writer):
    """Full vs incremental trajectory: bit-identical results, >= 1.5x phase time."""
    pts, weights, centers = workload
    # two repeats per mode, keep the faster (standard min-of-repeats timing;
    # the trajectory is deterministic, so results are identical across
    # repeats and only the wall-clock varies)
    full = min(
        (_run_trajectory(pts, weights, centers, use_incremental=False) for _ in range(2)),
        key=lambda r: r["seconds"],
    )
    inc = min(
        (_run_trajectory(pts, weights, centers, use_incremental=True) for _ in range(2)),
        key=lambda r: r["seconds"],
    )

    # --- bit-identity: the incremental engine is an exact optimisation ----
    assert np.array_equal(full["assignment"], inc["assignment"]), "assignments diverged"
    assert np.array_equal(full["influence"], inc["influence"]), "influence diverged"
    assert full["imbalance"] == inc["imbalance"], "imbalance diverged"
    assert full["iterations"] == inc["iterations"], "balance-iteration counts diverged"
    # integer weights: the delta-maintained block weights must equal the
    # full bincount bit-for-bit
    assert np.array_equal(inc["block_weights"], inc["bincount"]), (
        "incremental block weights differ from np.bincount"
    )
    assert np.array_equal(full["block_weights"], inc["block_weights"])

    speedup = full["seconds"] / inc["seconds"]
    payload = {
        "workload": {
            "n": N, "k": K, "d": D,
            "weights": "integer 1..3 (exact in float64)",
            "settle_phases": SETTLE_PHASES,
            "rounds": ROUNDS,
            "phases_per_round": PHASES_PER_ROUND,
            "hot_fraction": HOT_FRACTION,
            "hot_bump": HOT_BUMP,
            "epsilon": EPSILON,
            "max_balance_iterations": MAX_BALANCE_ITERATIONS,
        },
        "balance_iterations": full["iterations"],
        "full": {
            "seconds": full["seconds"],
            "points_evaluated": int(full["evaluated"]),
            "ms_per_balance_iteration": full["seconds"] / full["iterations"] * 1e3,
        },
        "incremental": {
            "seconds": inc["seconds"],
            "points_evaluated": int(inc["evaluated"]),
            "ms_per_balance_iteration": inc["seconds"] / inc["iterations"] * 1e3,
        },
        "speedup_incremental_vs_full": speedup,
        "evaluation_reduction": full["evaluated"] / max(inc["evaluated"], 1),
        "bit_identical": True,
    }
    written = bench_json_writer(BENCH_JSON, payload)
    print(
        f"\n[BENCH] assign_and_balance phase: {speedup:.2f}x "
        f"({full['seconds']:.2f}s -> {inc['seconds']:.2f}s over "
        f"{full['iterations']} balance iterations; evaluations "
        f"{full['evaluated'] / 1e6:.1f}M -> {inc['evaluated'] / 1e6:.1f}M) "
        f"[written to {written}]"
    )
    # shared CI runners are too noisy for wall-clock thresholds; there the
    # measurements are recorded (and uploaded as an artifact) but not enforced
    if os.environ.get("CI"):
        return
    # regression guard with headroom below the controlled number (see the
    # committed BENCH_balance.json: ~1.5-1.6x on a quiet machine), matching
    # the convention of BENCH_kernels.json
    assert speedup >= 1.3, f"incremental engine regressed: only {speedup:.2f}x vs full path"
