"""Figure 2 benchmark: per-class quality ratios vs Geographer.

Regenerates all three panels (2-D DIMACS, 2.5-D climate, 3-D meshes) at
reproduction scale and checks the paper's headline: Geographer achieves the
lowest total communication volume in every class.

Note: every test here takes the ``benchmark`` fixture so the whole file runs
under ``pytest --benchmark-only`` (the canonical regeneration command).
"""

import pytest

from repro.experiments import figure2


@pytest.fixture(scope="module")
def result():
    return figure2.run(k=16, scale=0.25, seed=0)


def test_figure2_run(benchmark):
    res = benchmark.pedantic(
        lambda: figure2.run(k=16, scale=0.12, seed=1, max_instances_per_class=2),
        rounds=1,
        iterations=1,
    )
    assert set(res.ratios) == set(figure2.CLASSES)


def test_figure2_full_panels(benchmark, result, emit):
    text = benchmark.pedantic(lambda: figure2.format_result(result), rounds=1, iterations=1)
    emit("figure2_ratios", text)
    # headline claim (i): lowest total communication volume in all classes
    wins = result.geographer_wins_totcomm()
    assert all(wins.values()), f"Geographer should win totCommVol everywhere, got {wins}"


def test_figure2_advantage_most_pronounced_on_2d(benchmark, result):
    """Paper: the totCommVol advantage is most pronounced on DIMACS 2-D."""

    def best_competitor(cls):
        matrix = result.ratios[cls]
        return min(m["totCommVol"] for tool, m in matrix.items() if tool != "Geographer")

    margin = benchmark.pedantic(lambda: best_competitor("dimacs2d"), rounds=1, iterations=1)
    assert margin >= 1.0
    # and it is a real margin, not a tie (paper reports ~15%)
    assert margin > 1.05
