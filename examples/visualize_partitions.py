#!/usr/bin/env python3
"""Reproduce Figure 1: render partitions of a hugetric-style mesh as SVG.

Writes six panels (input + RCB, RIB, MultiJagged, HSFC, Geographer) to
``figure1_out/``.  Open them in a browser: RCB/RIB give thin strips, MJ
axis-aligned rectangles, HSFC wrinkled curve chunks, Geographer curved
compact blocks — the paper's qualitative comparison.

Run:  python examples/visualize_partitions.py [out_dir]
"""

import sys

from repro.experiments import figure1


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "figure1_out"
    outputs = figure1.run(out_dir, n=6000, k=8, seed=0)
    print("Figure 1 panels written:")
    for panel, path in outputs.items():
        print(f"  {panel:<14} {path}")


if __name__ == "__main__":
    main()
