#!/usr/bin/env python3
"""Extensions: non-geometric graphs (spectral embedding) + FM refinement.

The paper names two extensions it leaves out of scope:

- §6 future work: embed non-geometric graphs into geometric space so
  Geographer can partition them;
- §2: post-process with Fiduccia-Mattheyses-style local refinement.

This example runs both: a community graph with no coordinates is embedded
and partitioned, then every geometric partition of a mesh is refined and the
edge-cut improvements reported.

Run:  python examples/nongeometric_refine.py
"""

import networkx as nx
import numpy as np

from repro.embed import partition_graph
from repro.mesh import GeometricMesh, delaunay_mesh
from repro.metrics import edge_cut, imbalance, total_comm_volume
from repro.partitioners import get_partitioner
from repro.refine import fm_refine


def nongeometric_demo() -> None:
    print("=== spectral embedding: partitioning a graph with no coordinates ===")
    sizes = [120, 120, 120, 120]
    g = nx.random_partition_graph(sizes, 0.18, 0.004, seed=7)
    coords, result = partition_graph(g, k=4, rng=0)

    adjacency = nx.to_scipy_sparse_array(g)
    mesh = GeometricMesh.from_scipy(coords, adjacency)
    rng = np.random.default_rng(1)
    random_cut = edge_cut(mesh, rng.integers(0, 4, mesh.n), 4)
    spectral_cut = edge_cut(mesh, result.assignment, 4)
    print(f"graph: {mesh.n} vertices, {mesh.m} edges, 4 planted communities")
    print(f"balanced k-means on the embedding: cut={spectral_cut}, imbalance={result.imbalance:.3f}")
    print(f"random balanced assignment:        cut={random_cut}")
    print(f"cut reduction vs random: {1 - spectral_cut / random_cut:.0%}")


def refinement_demo() -> None:
    print("\n=== FM refinement: post-processing geometric partitions ===")
    mesh = delaunay_mesh(12000, rng=3)
    k = 16
    print(f"mesh: {mesh}, k={k}\n")
    print(f"{'tool':<14}{'cut before':>11}{'cut after':>11}{'gain':>7}{'totComm after':>14}{'imbal':>7}")
    print("-" * 64)
    for tool in ("Geographer", "HSFC", "MultiJagged", "RCB", "RIB"):
        assignment = get_partitioner(tool).partition_mesh(mesh, k, rng=0).assignment
        refined, stats = fm_refine(mesh, assignment, k, epsilon=0.03, max_passes=5)
        print(
            f"{tool:<14}{stats.cut_before:>11}{stats.cut_after:>11}{stats.improvement:>6.1%}"
            f"{total_comm_volume(mesh, refined, k):>14}"
            f"{imbalance(refined, k, mesh.node_weights):>7.3f}"
        )


if __name__ == "__main__":
    nongeometric_demo()
    refinement_demo()
