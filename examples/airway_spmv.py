#!/usr/bin/env python3
"""3-D airway mesh + distributed SpMV: the end-to-end pipeline.

Builds an Alya-like branching airway mesh (the geometry where axis-aligned
cutters fragment tubes), partitions it with every tool, and runs the
distributed sparse matrix-vector product through each partition's halo plan —
verifying the result against the global product and reporting the modeled
communication time (the paper's ``timeSpMVComm``).

Run:  python examples/airway_spmv.py
"""

import numpy as np

from repro.mesh import airway_mesh
from repro.partitioners import get_partitioner
from repro.spmv import build_halo_plan, distributed_spmv


def main() -> None:
    k = 16
    mesh = airway_mesh(8000, levels=2, rng=11)
    print(f"mesh: {mesh}")

    x = np.random.default_rng(0).random(mesh.n)
    reference = mesh.to_scipy() @ x

    print(f"\n{'tool':<14}{'totVolume':>10}{'maxVolume':>10}{'messages':>10}{'timeComm':>12}{'SpMV ok':>9}")
    print("-" * 65)
    for tool in ("Geographer", "HSFC", "MultiJagged", "RCB", "RIB"):
        assignment = get_partitioner(tool).partition_mesh(mesh, k, rng=0).assignment
        plan = build_halo_plan(mesh, assignment, k)
        y, t_comm = distributed_spmv(mesh, assignment, k, x)
        ok = np.allclose(y, reference)
        print(
            f"{tool:<14}{plan.total_volume:>10}{int(plan.send_volumes.max()):>10}"
            f"{int(plan.message_counts.sum()):>10}{t_comm:>12.3e}{str(ok):>9}"
        )


if __name__ == "__main__":
    main()
