#!/usr/bin/env python3
"""Weak/strong scaling study on the simulated SPMD runtime (Figures 3a/3b).

Runs Geographer and the baselines over doubling process counts: small p
executes the full simulated MPI run (real kernels, modeled communication);
large p extrapolates local work from calibrated per-point costs.  The
printed series reproduce the paper's shapes: Geographer/MJ/HSFC nearly flat,
RCB/RIB degrading, and everyone paying the island penalty at p > 8192.

Run:  python examples/scaling_study.py
"""

from repro.experiments import figure3


def main() -> None:
    print("weak scaling (Figure 3a): p = k doubling, fixed points per rank\n")
    weak = figure3.run_weak(
        points_per_rank=2000,
        rank_counts=(32, 128, 512, 2048, 8192),
        measured_max_ranks=8,
        seed=0,
    )
    print(figure3.format_points(weak, title="seconds per run"))

    print("\nstrong scaling (Figure 3b): Delaunay2B-scale, fixed n, growing p = k\n")
    strong = figure3.run_strong(
        n=2_000_000_000,
        rank_counts=(1024, 2048, 4096, 8192, 16384),
        seed=0,
    )
    print(figure3.format_points(strong, title="seconds per run"))

    # the paper attributes the 8192 -> 16384 slowdown to island crossing
    geo = {p.nranks: p.seconds for p in strong if p.tool == "Geographer"}
    if 8192 in geo and 16384 in geo:
        print(f"\nGeographer 8192 -> 16384 ranks: {geo[8192]:.3f}s -> {geo[16384]:.3f}s "
              f"({'slower' if geo[16384] > geo[8192] else 'faster'}; paper: slower, island boundary)")


if __name__ == "__main__":
    main()
