#!/usr/bin/env python3
"""2.5-D climate-mesh partitioning (the paper's motivating workload).

Atmosphere/ocean meshes are partitioned in 2-D, but the computational load
of a surface vertex is its number of vertical levels — encoded as a node
weight.  This example builds a FESOM-like ocean mesh, shows why unweighted
partitioning fails (weighted imbalance blows past 3 %), then compares the
weighted partitions of all tools.

Run:  python examples/climate_partition.py
"""

import numpy as np

from repro.mesh import climate_mesh
from repro.metrics import imbalance
from repro.experiments.harness import PAPER_TOOLS, format_rows, run_tools_on_mesh
from repro.partitioners import get_partitioner


def main() -> None:
    k = 16
    mesh = climate_mesh(8000, max_levels=47, rng=7)
    w = mesh.node_weights
    print(f"mesh: {mesh}")
    print(f"column depth (levels): min={w.min():.0f} max={w.max():.0f} mean={w.mean():.1f}")

    # --- why node weights matter -------------------------------------------
    geographer = get_partitioner("Geographer")
    unweighted = geographer.partition(mesh.coords, k, weights=None, rng=0).assignment
    print("\nignoring the column depths:")
    print(f"  count imbalance : {imbalance(unweighted, k):>6.3f}  (balanced by construction)")
    print(f"  LOAD imbalance  : {imbalance(unweighted, k, w):>6.3f}  (what the simulation feels)")

    weighted = geographer.partition(mesh.coords, k, weights=w, rng=0).assignment
    print("balancing the column depths:")
    print(f"  LOAD imbalance  : {imbalance(weighted, k, w):>6.3f}")

    # --- full comparison -----------------------------------------------------
    print(f"\nall tools, weighted, k={k}:\n")
    rows = run_tools_on_mesh(mesh, k, tools=PAPER_TOOLS, seed=0)
    print(format_rows(rows))

    best = min(rows, key=lambda r: r.total_comm_vol)
    print(f"\nlowest total communication volume: {best.tool} ({best.total_comm_vol:.0f})")


if __name__ == "__main__":
    main()
