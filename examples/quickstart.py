#!/usr/bin/env python3
"""Quickstart: partition a Delaunay mesh with balanced k-means.

Generates a 2-D Delaunay mesh, partitions it with Geographer (the paper's
balanced k-means) and with every baseline, and prints the paper's quality
metrics side by side.

Run:  python examples/quickstart.py [n] [k]
"""

import sys

from repro import balanced_kmeans, make_instance
from repro.experiments.harness import PAPER_TOOLS, format_rows, run_tools_on_mesh


def main() -> None:
    n_scale = float(sys.argv[1]) / 17000 if len(sys.argv) > 1 else 1.0
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    # a scaled twin of the paper's delaunay250M instance
    mesh = make_instance("delaunay2d_m", scale=n_scale, seed=42)
    print(f"mesh: {mesh}")

    # --- the one-call API -------------------------------------------------
    result = balanced_kmeans(mesh.coords, k, weights=mesh.node_weights, rng=0)
    print(f"\nbalanced k-means: {result}")
    print(f"  converged in {result.iterations} movement rounds")
    print(f"  imbalance {result.imbalance:.3f} (target <= 0.03)")
    print(f"  inner-loop skip rate {result.skip_fraction:.0%} (paper reports ~80%)")

    # --- compare against the Zoltan-style baselines ------------------------
    print("\nall tools on this mesh (lower is better everywhere):\n")
    rows = run_tools_on_mesh(mesh, k, tools=PAPER_TOOLS, seed=0)
    print(format_rows(rows))


if __name__ == "__main__":
    main()
