#!/usr/bin/env python3
"""Adaptive repartitioning + topology-aware hierarchical partitioning.

Demonstrates the two scenarios the partitioner-stack refactor opens:

1. **Repartitioning** — an adaptive simulation whose refinement front moves:
   warm-started ``repartition()`` calls converge in fewer k-means iterations
   than cold restarts and keep block ids stable, so less weight migrates
   between processes (measured with ``repro.metrics.migration``).

2. **Hierarchical partitioning** — ``k = islands x nodes x cores`` from a
   :class:`MachineTopology`: each level of the machine gets its own
   partitioning level, so a block's heavy neighbours share its island.

Run:  python examples/adaptive_repartition.py [n] [k]
"""

import math
import sys

from repro.experiments import repartitioning
from repro.mesh import refinement_sequence
from repro.metrics import imbalance
from repro.partitioners import HierarchicalPartitioner
from repro.runtime import MachineTopology


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 12

    # --- 1. warm-started repartitioning over a moving refinement front -----
    rows = repartitioning.run(n=n, k=k, steps=4, seed=0)
    print(repartitioning.format_result(rows, title=f"warm vs cold repartitioning (n={n}, k={k})"))

    # --- 2. topology-aware hierarchical partitioning ------------------------
    topology = MachineTopology(branching=(2, 3, 4))
    print(f"\n{topology}")
    mesh, moved = refinement_sequence(n, steps=4, rng=0)[:2]
    partitioner = HierarchicalPartitioner(topology=topology)
    result = partitioner.partition_mesh(mesh, rng=0)
    print(f"hierarchical partition: {result}")
    for level, name in enumerate(topology.level_names):
        coarse = result.level_assignment(level)
        coarse_k = math.prod(topology.branching[: level + 1])
        print(f"  {name:>6} level: {coarse_k:>3} blocks, "
              f"imbalance {imbalance(coarse, coarse_k, mesh.node_weights):.3f}")

    # repartition the hierarchy after the front moves: every node warm-starts,
    # and migration stays *local* — points mostly move between blocks of the
    # same node/island, where migration is cheap; crossing an island is rare
    again = partitioner.repartition_mesh(result, moved, rng=1)
    from repro.metrics import migration_fraction

    print(f"after the front moves: {again}")
    print("  migrated weight fraction, by coarsest level crossed:")
    for level, name in enumerate(topology.level_names):
        frac = migration_fraction(result.level_assignment(level),
                                  again.level_assignment(level),
                                  weights=moved.node_weights)
        print(f"    beyond the {name:>6} boundary: {frac:>6.1%}")


if __name__ == "__main__":
    main()
