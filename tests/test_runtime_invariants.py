"""Property-based invariants of the runtime collectives and global results.

Hypothesis drives random rank payloads through the collective surface and
checks the algebra every backend must preserve:

- allreduce equals the elementwise sum of the parts;
- allgather concatenates in rank order;
- alltoallv conserves elements (everything sent is received exactly once)
  and delivers in rank order;
- global results (the distributed sort, the distributed k-means partition)
  are invariant under shuffling the input points.

Integer-valued payloads make the sum checks exact regardless of reduction
order.  The process backend reuses one module-wide communicator so
hypothesis examples don't each pay the worker-startup cost.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.comm import VirtualComm, make_comm
from repro.runtime.costmodel import MachineModel
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
from repro.runtime.distsort import distributed_sort

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

_MACHINE = MachineModel(alpha=1e-6, beta=1e-9)


def _virtual(p):
    return VirtualComm(p, _MACHINE)


# one shared process communicator per rank count (closed by the backend's
# atexit hook); collectives and supersteps are cheap once the workers exist
_PROC_COMMS = {}


def _process(p):
    comm = _PROC_COMMS.get(p)
    if comm is None:
        comm = _PROC_COMMS[p] = make_comm(p, backend="process")
    return comm


BACKEND_FACTORIES = {"virtual": _virtual, "process": _process}

# process-backend cases carry the marker so `-m process_backend` runs them
# and the tier-1 selection does not
BACKENDS = ["virtual", pytest.param("process", marks=pytest.mark.process_backend)]


@st.composite
def rank_payloads(draw, max_ranks=5, max_len=12):
    """Per-rank integer arrays (equal shapes), as float64 for exact sums."""
    p = draw(st.integers(1, max_ranks))
    width = draw(st.integers(1, max_len))
    rows = [
        draw(st.lists(st.integers(-1000, 1000), min_size=width, max_size=width))
        for _ in range(p)
    ]
    return [np.array(row, dtype=np.float64) for row in rows]


@st.composite
def alltoall_payloads(draw, max_ranks=4, max_len=6):
    p = draw(st.integers(1, max_ranks))
    send = []
    for _ in range(p):
        row = []
        for _ in range(p):
            vals = draw(st.lists(st.integers(-1000, 1000), min_size=0, max_size=max_len))
            row.append(np.array(vals, dtype=np.float64))
        send.append(row)
    return send


class TestCollectiveAlgebra:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(per_rank=rank_payloads())
    @SETTINGS
    def test_allreduce_is_sum_of_parts(self, backend, per_rank):
        comm = BACKEND_FACTORIES[backend](len(per_rank))
        out = comm.allreduce(per_rank)
        np.testing.assert_array_equal(out, np.sum(np.stack(per_rank), axis=0))

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(per_rank=rank_payloads())
    @SETTINGS
    def test_allgather_preserves_rank_order(self, backend, per_rank):
        comm = BACKEND_FACTORIES[backend](len(per_rank))
        out = comm.allgather(per_rank)
        np.testing.assert_array_equal(out, np.concatenate(per_rank))

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(send=alltoall_payloads())
    @SETTINGS
    def test_alltoallv_conserves_elements(self, backend, send):
        p = len(send)
        comm = BACKEND_FACTORIES[backend](p)
        recv = comm.alltoallv(send)
        sent = np.sort(np.concatenate([chunk for row in send for chunk in row] or [np.empty(0)]))
        received = np.sort(np.concatenate(recv))
        np.testing.assert_array_equal(sent, received)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(send=alltoall_payloads())
    @SETTINGS
    def test_alltoallv_delivers_in_rank_order(self, backend, send):
        p = len(send)
        comm = BACKEND_FACTORIES[backend](p)
        recv = comm.alltoallv(send)
        for j in range(p):
            expected = np.concatenate([np.atleast_1d(send[i][j]) for i in range(p)])
            np.testing.assert_array_equal(recv[j], expected)

    @given(per_rank=rank_payloads())
    @SETTINGS
    def test_broadcast_returns_value_unchanged(self, per_rank):
        comm = _virtual(len(per_rank))
        np.testing.assert_array_equal(comm.broadcast(per_rank[0]), per_rank[0])

    def test_rank_count_mismatch_rejected(self):
        comm = _virtual(3)
        with pytest.raises(ValueError, match="expected 3 per-rank entries"):
            comm.allreduce([np.zeros(2)] * 4)


class TestSortInvariants:
    @given(
        keys=st.lists(st.integers(0, 1 << 30), min_size=1, max_size=60),
        p=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @SETTINGS
    def test_global_order_invariant_under_shuffling(self, keys, p, seed):
        """The rank-order concatenation is np.sort(keys), however the input
        is permuted or distributed over ranks."""
        arr = np.array(keys, dtype=np.float64)
        shuffled = np.random.default_rng(seed).permutation(arr)
        cuts = np.linspace(0, arr.size, p + 1).astype(int)
        per_rank = [shuffled[cuts[r]:cuts[r + 1]] for r in range(p)]
        out, _ = distributed_sort(_virtual(p), per_rank)
        np.testing.assert_array_equal(np.concatenate(out), np.sort(arr))

    @given(
        keys=st.lists(st.integers(0, 1 << 30), min_size=2, max_size=40, unique=True),
        p=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @SETTINGS
    def test_payload_follows_its_key(self, keys, p, seed):
        arr = np.array(keys, dtype=np.float64)
        payload = arr * 2.0 + 1.0  # recoverable from the key
        perm = np.random.default_rng(seed).permutation(arr.size)
        cuts = np.linspace(0, arr.size, p + 1).astype(int)
        per_keys = [arr[perm][cuts[r]:cuts[r + 1]] for r in range(p)]
        per_pay = [payload[perm][cuts[r]:cuts[r + 1]] for r in range(p)]
        out_keys, out_pay = distributed_sort(_virtual(p), per_keys, per_pay)
        np.testing.assert_array_equal(np.concatenate(out_pay), np.concatenate(out_keys) * 2.0 + 1.0)

    @given(p=st.integers(1, 4), seed=st.integers(0, 2**16))
    @SETTINGS
    def test_equalized_chunks_differ_by_at_most_one(self, p, seed):
        rng = np.random.default_rng(seed)
        per_rank = [rng.random(int(rng.integers(0, 30))) for _ in range(p)]
        out, _ = distributed_sort(_virtual(p), per_rank)
        sizes = [chunk.size for chunk in out]
        if sum(sizes) > 0:
            assert max(sizes) - min(sizes) <= 1


def _lattice_points(rng, n=220, grid=64):
    """Distinct lattice points → distinct SFC keys → tie-free, exactly
    permutation-equivariant runs."""
    cells = rng.choice(grid * grid, size=n, replace=False)
    return np.column_stack([cells // grid, cells % grid]).astype(np.float64) / grid


class TestKMeansPermutationInvariance:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_partition_equivariant_under_point_shuffling(self, seed):
        """Shuffling the input points permutes the assignment and nothing else:
        the SFC redistribution restores a canonical global order."""
        rng = np.random.default_rng(seed)
        pts = _lattice_points(rng)
        perm = rng.permutation(pts.shape[0])
        base = distributed_balanced_kmeans(pts, k=4, nranks=3, rng=9)
        shuf = distributed_balanced_kmeans(pts[perm], k=4, nranks=3, rng=9)
        np.testing.assert_array_equal(shuf.assignment, base.assignment[perm])
        np.testing.assert_array_equal(shuf.centers, base.centers)
        assert shuf.imbalance == base.imbalance

    @pytest.mark.process_backend
    def test_equivariance_holds_on_process_backend(self):
        rng = np.random.default_rng(123)
        pts = _lattice_points(rng)
        perm = rng.permutation(pts.shape[0])
        base = distributed_balanced_kmeans(pts, k=4, nranks=2, rng=9, backend="process")
        shuf = distributed_balanced_kmeans(pts[perm], k=4, nranks=2, rng=9, backend="process")
        np.testing.assert_array_equal(shuf.assignment, base.assignment[perm])
        np.testing.assert_array_equal(shuf.centers, base.centers)
