"""Post-partition shuffle: conservation property, ownership, disk/memory parity."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import BalancedKMeansConfig
from repro.io.sharded import write_sharded
from repro.runtime.comm import VirtualComm
from repro.runtime.ondisk import ondisk_distributed_kmeans
from repro.runtime.shuffle import (
    ShuffleOutput,
    ShuffleVerificationError,
    block_owner,
    shuffle_partition,
    shuffle_to_disk,
    verify_shuffle,
)

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.function_scoped_fixture])

CFG = BalancedKMeansConfig(epsilon=0.02)


def _random_chunks(p, k, seed, max_rows=80):
    """Arbitrarily distributed per-rank payload chunks with a random partition."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, max_rows, size=p)
    n = int(sizes.sum())
    perm = rng.permutation(n)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    pts = rng.random((n, 2))
    w = 0.5 + rng.random(n)
    a = rng.integers(0, k, size=n)
    chunk = lambda arr: [arr[perm[bounds[r]:bounds[r + 1]]] for r in range(p)]
    ids = np.arange(n, dtype=np.int64)
    return n, chunk(pts), chunk(w), chunk(ids), chunk(a), pts, w, a


class TestBlockOwner:
    @given(k=st.integers(1, 64), p=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_contiguous_monotone_and_total(self, k, p):
        owners = block_owner(k, p)
        assert owners.shape == (k,)
        assert np.all(np.diff(owners) >= 0)  # contiguous block ranges
        assert owners.min() >= 0 and owners.max() < p
        if k >= p:
            assert np.array_equal(np.unique(owners), np.arange(p))  # every rank owns blocks


class TestConservation:
    @given(p=st.integers(1, 5), k=st.integers(1, 12), seed=st.integers(0, 2**16))
    @SETTINGS
    def test_every_id_appears_exactly_once(self, p, k, seed):
        n, cp, cw, ci, ca, pts, w, a = _random_chunks(p, k, seed)
        comm = VirtualComm(p)
        out = shuffle_partition(comm, k, cp, cw, ci, ca)
        comm.close()
        got = np.concatenate(out.ids) if n else np.zeros(0, dtype=np.int64)
        assert np.array_equal(np.sort(got), np.arange(n))  # conservation
        assert int(out.counts.sum()) == n

    @given(p=st.integers(1, 5), k=st.integers(1, 12), seed=st.integers(0, 2**16))
    @SETTINGS
    def test_rows_arrive_intact_on_their_owner(self, p, k, seed):
        n, cp, cw, ci, ca, pts, w, a = _random_chunks(p, k, seed)
        comm = VirtualComm(p)
        out = shuffle_partition(comm, k, cp, cw, ci, ca)
        comm.close()
        owners = block_owner(k, p)
        for j in range(p):
            assert np.all(owners[out.assignment[j]] == j)  # ownership
            # payload columns still belong to their original id
            assert out.points[j].tobytes() == pts[out.ids[j]].tobytes()
            assert out.weights[j].tobytes() == w[out.ids[j]].tobytes()
            assert np.array_equal(out.assignment[j], a[out.ids[j]])

    def test_canonical_order_is_distribution_independent(self):
        n, cp, cw, ci, ca, pts, w, a = _random_chunks(3, 8, seed=5)
        comm = VirtualComm(3)
        out1 = shuffle_partition(comm, 8, cp, cw, ci, ca)
        # same rows dealt round-robin instead
        ids = np.arange(n, dtype=np.int64)
        rr = lambda arr: [arr[r::3] for r in range(3)]
        out2 = shuffle_partition(comm, 8, rr(pts), rr(w), rr(ids), rr(a))
        comm.close()
        for j in range(3):
            assert np.array_equal(out1.ids[j], out2.ids[j])
            assert out1.points[j].tobytes() == out2.points[j].tobytes()


class TestShuffleToDisk:
    def _run(self, tmp_path, n=400, k=6, p=3, seed=2):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        w = 0.5 + rng.random(n)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=150)
        result = ondisk_distributed_kmeans(ds, k, p, config=CFG, rng=seed)
        return pts, w, result

    def test_matches_in_memory_shuffle_bit_for_bit(self, tmp_path):
        pts, w, result = self._run(tmp_path)
        n, p, k = pts.shape[0], result.nranks, result.centers.shape[0]
        output = shuffle_to_disk(result, tmp_path / "out")
        bounds = (np.arange(p + 1) * n) // p
        chunk = lambda arr: [arr[bounds[r]:bounds[r + 1]] for r in range(p)]
        comm = VirtualComm(p)
        mem = shuffle_partition(comm, k, chunk(pts), chunk(w),
                                chunk(np.arange(n, dtype=np.int64)),
                                chunk(np.asarray(result.assignment)))
        comm.close()
        for j in range(p):
            rank = output.load_rank(j)
            assert rank["points"].tobytes() == mem.points[j].tobytes()
            assert rank["weights"].tobytes() == mem.weights[j].tobytes()
            assert np.array_equal(rank["ids"], mem.ids[j])
            assert np.array_equal(rank["assignment"], mem.assignment[j])

    def test_verify_and_remap(self, tmp_path):
        pts, w, result = self._run(tmp_path, seed=7)
        output = shuffle_to_disk(result, tmp_path / "out")
        report = verify_shuffle(output)
        assert report["conserved"] and report["n"] == pts.shape[0]
        remap = output.remap.read()
        for j in range(output.nranks):
            ids_j = output.load_rank(j)["ids"]
            assert np.all(remap[ids_j, 0] == j)
            assert np.array_equal(remap[ids_j, 1], np.arange(ids_j.size))

    def test_reopen_from_manifest(self, tmp_path):
        _, _, result = self._run(tmp_path, seed=9)
        shuffle_to_disk(result, tmp_path / "out")
        reopened = ShuffleOutput.open(tmp_path / "out")
        assert verify_shuffle(reopened)["conserved"]

    def test_verify_detects_duplicated_id(self, tmp_path):
        _, _, result = self._run(tmp_path, seed=11)
        output = shuffle_to_disk(result, tmp_path / "out")
        ids_path = tmp_path / "out" / "rank-0000.ids.npy"
        ids = np.load(ids_path)
        ids[1] = ids[0]  # one id now appears twice, another vanishes
        np.save(ids_path, ids)
        with pytest.raises(ShuffleVerificationError):
            verify_shuffle(ShuffleOutput.open(tmp_path / "out"))

    def test_verify_detects_truncated_rank_file(self, tmp_path):
        _, _, result = self._run(tmp_path, seed=13)
        output = shuffle_to_disk(result, tmp_path / "out")
        ids_path = tmp_path / "out" / "rank-0001.ids.npy"
        np.save(ids_path, np.load(ids_path)[:-1])
        with pytest.raises(ShuffleVerificationError, match="manifest says"):
            verify_shuffle(ShuffleOutput.open(tmp_path / "out"))

    @pytest.mark.process_backend
    def test_process_backend_produces_identical_files(self, tmp_path):
        pts, w, result = self._run(tmp_path, seed=3)
        out_v = shuffle_to_disk(result, tmp_path / "v")
        out_p = shuffle_to_disk(result, tmp_path / "p", backend="process")
        assert verify_shuffle(out_p)["conserved"]
        for j in range(out_v.nranks):
            for fld in ("points", "weights", "ids", "assignment"):
                a = np.load(tmp_path / "v" / f"rank-{j:04d}.{fld}.npy")
                b = np.load(tmp_path / "p" / f"rank-{j:04d}.{fld}.npy")
                assert a.tobytes() == b.tobytes()
