"""Tests for repro.geometry.boxes — the §4.4 pruning geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.boxes import BoundingBox


def _finite_points(dim, max_n=32):
    return arrays(
        np.float64,
        st.tuples(st.integers(1, max_n), st.just(dim)),
        elements=st.floats(-100, 100, allow_nan=False),
    )


class TestConstruction:
    def test_from_points(self):
        bb = BoundingBox.from_points(np.array([[0.0, 2.0], [1.0, -1.0]]))
        assert np.array_equal(bb.lo, [0.0, -1.0])
        assert np.array_equal(bb.hi, [1.0, 2.0])

    def test_rejects_lo_above_hi(self):
        with pytest.raises(ValueError):
            BoundingBox(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points(np.zeros((0, 2)))

    def test_properties(self):
        bb = BoundingBox(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        assert bb.dim == 2
        assert np.array_equal(bb.center, [1.5, 2.0])
        assert np.array_equal(bb.extent, [3.0, 4.0])
        assert bb.diagonal == pytest.approx(5.0)
        assert bb.widest_dimension() == 1


class TestDistances:
    def setup_method(self):
        self.bb = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))

    def test_inside_is_zero(self):
        assert self.bb.min_dist(np.array([[0.5, 0.5]]))[0] == 0.0

    def test_outside_axis(self):
        assert self.bb.min_dist(np.array([[2.0, 0.5]]))[0] == pytest.approx(1.0)

    def test_outside_corner(self):
        assert self.bb.min_dist(np.array([[2.0, 2.0]]))[0] == pytest.approx(np.sqrt(2.0))

    def test_max_dist_center(self):
        # farthest corner from the center is at distance diag/2
        assert self.bb.max_dist(np.array([[0.5, 0.5]]))[0] == pytest.approx(np.sqrt(0.5))

    def test_max_dist_origin_corner(self):
        assert self.bb.max_dist(np.array([[0.0, 0.0]]))[0] == pytest.approx(np.sqrt(2.0))

    def test_contains(self):
        pts = np.array([[0.5, 0.5], [1.5, 0.5]])
        assert np.array_equal(self.bb.contains(pts), [True, False])

    @settings(max_examples=50, deadline=None)
    @given(_finite_points(2), _finite_points(2))
    def test_min_le_max_and_bracket_actual(self, cloud, queries):
        """min_dist <= dist(q, p) <= max_dist for every p in the box's cloud."""
        bb = BoundingBox.from_points(cloud)
        mn = bb.min_dist(queries)
        mx = bb.max_dist(queries)
        assert np.all(mn <= mx + 1e-9)
        for q, lo, hi in zip(queries, mn, mx):
            d = np.linalg.norm(cloud - q, axis=1)
            assert np.all(d >= lo - 1e-9)
            assert np.all(d <= hi + 1e-9)


class TestSplitUnion:
    def test_split(self):
        bb = BoundingBox(np.array([0.0, 0.0]), np.array([2.0, 1.0]))
        left, right = bb.split(0, 0.5)
        assert left.hi[0] == 0.5 and right.lo[0] == 0.5
        assert left.hi[1] == 1.0

    def test_split_out_of_range(self):
        bb = BoundingBox(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            bb.split(0, 2.0)

    def test_union(self):
        a = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = BoundingBox(np.array([-1.0, 0.5]), np.array([0.5, 2.0]))
        u = a.union(b)
        assert np.array_equal(u.lo, [-1.0, 0.0])
        assert np.array_equal(u.hi, [1.0, 2.0])
