"""Tests for migration metrics between successive partitions."""

import numpy as np
import pytest

from repro.metrics.migration import (
    migration_fraction,
    migration_matrix,
    migration_volume,
    relabel_for_stability,
)


class TestVolume:
    def test_identical_partitions(self):
        a = np.array([0, 1, 2, 0, 1])
        assert migration_volume(a, a) == 0.0
        assert migration_fraction(a, a) == 0.0

    def test_unit_weights_count_moves(self):
        prev = np.array([0, 0, 1, 1])
        cur = np.array([0, 1, 1, 0])
        assert migration_volume(prev, cur) == 2.0
        assert migration_fraction(prev, cur) == pytest.approx(0.5)

    def test_weighted(self):
        prev = np.array([0, 0, 1])
        cur = np.array([0, 1, 1])
        w = np.array([1.0, 10.0, 2.0])
        assert migration_volume(prev, cur, weights=w) == 10.0
        assert migration_fraction(prev, cur, weights=w) == pytest.approx(10.0 / 13.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different point sets"):
            migration_volume(np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64))

    def test_accepts_partition_results(self):
        from repro.partitioners import get_partitioner

        pts = np.random.default_rng(0).random((500, 2))
        a = get_partitioner("RCB").partition(pts, 4)
        b = get_partitioner("HSFC").partition(pts, 4)
        vol = migration_volume(a, b)
        assert 0.0 <= vol <= 500.0


class TestMatrix:
    def test_diagonal_is_stay_weight(self):
        prev = np.array([0, 0, 1, 1, 1])
        cur = np.array([0, 1, 1, 1, 0])
        m = migration_matrix(prev, cur, 2, 2)
        assert m[0, 0] == 1.0 and m[0, 1] == 1.0
        assert m[1, 1] == 2.0 and m[1, 0] == 1.0
        assert m.sum() == 5.0
        # off-diagonal mass equals migration volume
        assert m.sum() - np.trace(m) == migration_volume(prev, cur)

    def test_rectangular_k_change(self):
        prev = np.array([0, 0, 1, 1])
        cur = np.array([0, 1, 2, 3])
        m = migration_matrix(prev, cur, 2, 4)
        assert m.shape == (2, 4)
        assert m.sum() == 4.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            migration_matrix(np.array([0, 5]), np.array([0, 1]), 2, 2)


class TestRelabel:
    def test_permutation_fully_recovered(self):
        prev = np.array([0, 0, 1, 1, 2, 2])
        cur = np.array([2, 2, 0, 0, 1, 1])  # same blocks, permuted ids
        relabelled = relabel_for_stability(prev, cur, 3)
        assert np.array_equal(relabelled, prev)
        assert migration_volume(prev, relabelled) == 0.0

    def test_never_worse_than_raw(self):
        rng = np.random.default_rng(1)
        prev = rng.integers(0, 6, 400)
        cur = rng.integers(0, 6, 400)
        relabelled = relabel_for_stability(prev, cur, 6)
        assert migration_volume(prev, relabelled) <= migration_volume(prev, cur)

    def test_relabelling_is_a_permutation(self):
        rng = np.random.default_rng(2)
        prev = rng.integers(0, 5, 300)
        cur = rng.integers(0, 5, 300)
        relabelled = relabel_for_stability(prev, cur, 5)
        # block contents unchanged, only ids renamed
        for b in range(5):
            members_new = np.flatnonzero(cur == b)
            ids = np.unique(relabelled[members_new])
            assert ids.size == 1
