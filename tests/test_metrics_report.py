"""Tests for MetricRow, evaluate_partition and the Figure-2 aggregation."""

import numpy as np
import pytest

from repro.mesh.delaunay import delaunay_mesh
from repro.metrics.report import (
    MetricRow,
    aggregate_ratios,
    evaluate_partition,
    geometric_mean,
    harmonic_mean,
)


class TestMeans:
    def test_geometric_mean_basic(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_geometric_mean_identity(self):
        assert geometric_mean(np.array([3.0])) == pytest.approx(3.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            geometric_mean(np.array([]))

    def test_harmonic_mean_basic(self):
        assert harmonic_mean(np.array([1.0, 1.0, 2.0])) == pytest.approx(3 / 2.5)

    def test_harmonic_mean_inf_contributes_zero(self):
        # one infinite diameter should not destroy the mean
        hm = harmonic_mean(np.array([2.0, np.inf]))
        assert hm == pytest.approx(2 / 0.5)

    def test_harmonic_all_inf(self):
        assert harmonic_mean(np.array([np.inf, np.inf])) == float("inf")


class TestEvaluate:
    def test_row_fields(self):
        mesh = delaunay_mesh(300, rng=0)
        a = np.random.default_rng(1).integers(0, 4, mesh.n)
        row = evaluate_partition(mesh, a, 4, tool="X", time=1.5)
        assert row.tool == "X"
        assert row.n == 300 and row.k == 4
        assert row.cut > 0
        assert row.total_comm_vol >= row.max_comm_vol
        assert row.time_spmv_comm > 0
        assert row.metric("edgeCut") == row.cut

    def test_metric_unknown_name(self):
        row = MetricRow("g", "t", 2, 10)
        with pytest.raises(KeyError):
            row.metric("nonsense")

    def test_without_spmv(self):
        mesh = delaunay_mesh(150, rng=2)
        a = np.zeros(mesh.n, dtype=np.int64)
        row = evaluate_partition(mesh, a, 1, with_spmv=False)
        assert row.time_spmv_comm == 0.0


class TestAggregateRatios:
    def _rows(self):
        return [
            MetricRow("g1", "A", 2, 10, cut=100, max_comm_vol=10, total_comm_vol=50, harm_diameter=5, time_spmv_comm=1e-5),
            MetricRow("g1", "B", 2, 10, cut=200, max_comm_vol=20, total_comm_vol=100, harm_diameter=10, time_spmv_comm=2e-5),
            MetricRow("g2", "A", 2, 10, cut=10, max_comm_vol=1, total_comm_vol=5, harm_diameter=2, time_spmv_comm=1e-5),
            MetricRow("g2", "B", 2, 10, cut=40, max_comm_vol=2, total_comm_vol=10, harm_diameter=4, time_spmv_comm=1e-5),
        ]

    def test_baseline_is_one(self):
        ratios = aggregate_ratios(self._rows(), baseline_tool="A")
        for metric, value in ratios["A"].items():
            assert value == pytest.approx(1.0), metric

    def test_geometric_mean_of_ratios(self):
        ratios = aggregate_ratios(self._rows(), baseline_tool="A")
        # B/A cut ratios: 2 and 4 -> geometric mean sqrt(8)
        assert ratios["B"]["edgeCut"] == pytest.approx(np.sqrt(8.0))

    def test_missing_baseline_raises(self):
        with pytest.raises(ValueError):
            aggregate_ratios(self._rows(), baseline_tool="Z")

    def test_skips_zero_baseline_metric(self):
        rows = self._rows()
        rows[0].cut = 0  # g1 baseline zero -> only g2 contributes
        ratios = aggregate_ratios(rows, baseline_tool="A")
        assert ratios["B"]["edgeCut"] == pytest.approx(4.0)

    def test_infinite_values_skipped(self):
        rows = self._rows()
        rows[1].harm_diameter = float("inf")
        ratios = aggregate_ratios(rows, baseline_tool="A")
        assert ratios["B"]["harmDiam"] == pytest.approx(2.0)  # only g2
