"""Tests for spectral embedding + non-geometric partitioning."""

import networkx as nx
import numpy as np
import pytest

from repro.embed.spectral import partition_graph, spectral_embedding
from repro.metrics.cut import edge_cut
from repro.metrics.imbalance import imbalance
from repro.mesh.graph import GeometricMesh
from repro.mesh.grid import grid_mesh


class TestEmbedding:
    def test_shape_and_range(self):
        mesh = grid_mesh((12, 10))
        coords = spectral_embedding(mesh, dim=2)
        assert coords.shape == (120, 2)
        assert coords.min() >= -1e-9 and coords.max() <= 1.0 + 1e-9

    def test_neighbors_are_close(self):
        """Adjacent vertices land closer than random pairs."""
        mesh = grid_mesh((15, 15))
        coords = spectral_embedding(mesh, dim=2)
        edges = mesh.edge_array()
        edge_dist = np.linalg.norm(coords[edges[:, 0]] - coords[edges[:, 1]], axis=1).mean()
        rng = np.random.default_rng(0)
        rand_pairs = rng.integers(0, mesh.n, (2000, 2))
        rand_dist = np.linalg.norm(coords[rand_pairs[:, 0]] - coords[rand_pairs[:, 1]], axis=1).mean()
        assert edge_dist < 0.5 * rand_dist

    def test_networkx_input(self):
        g = nx.circular_ladder_graph(30)
        coords = spectral_embedding(g, dim=2)
        assert coords.shape == (60, 2)

    def test_scipy_input(self):
        mesh = grid_mesh((8, 8))
        coords = spectral_embedding(mesh.to_scipy(), dim=2)
        assert coords.shape == (64, 2)

    def test_3d(self):
        mesh = grid_mesh((6, 6, 4))
        coords = spectral_embedding(mesh, dim=3)
        assert coords.shape == (144, 3)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            spectral_embedding(grid_mesh((5, 5)), dim=4)

    def test_rejects_isolated_vertices(self):
        coords = np.random.default_rng(1).random((4, 2))
        mesh = GeometricMesh.from_edges(coords, np.array([[0, 1]]))
        with pytest.raises(ValueError, match="isolated"):
            spectral_embedding(mesh, dim=2)

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            spectral_embedding([[0, 1], [1, 0]])


class TestPartitionGraph:
    def test_balanced_on_nongeometric_graph(self):
        """The future-work pipeline: partition a graph that has no coordinates."""
        g = nx.random_partition_graph([80, 80, 80, 80], 0.15, 0.005, seed=0)
        coords, result = partition_graph(g, 4, rng=0)
        assert coords.shape == (320, 2)
        assert result.imbalance <= 0.031

    def test_respects_community_structure(self):
        """With k = #planted communities, the cut should be near the planted cut."""
        sizes = [60, 60, 60]
        g = nx.random_partition_graph(sizes, 0.25, 0.004, seed=1)
        adjacency = nx.to_scipy_sparse_array(g)
        coords_mesh = GeometricMesh.from_scipy(np.random.default_rng(0).random((180, 2)), adjacency)
        _, result = partition_graph(g, 3, rng=1)
        spectral_cut = edge_cut(coords_mesh, result.assignment, 3)
        rng = np.random.default_rng(2)
        random_cut = edge_cut(coords_mesh, rng.integers(0, 3, 180), 3)
        assert spectral_cut < 0.4 * random_cut

    def test_mesh_input_end_to_end(self):
        mesh = grid_mesh((14, 14))
        _, result = partition_graph(mesh, 4, rng=2)
        assert imbalance(result.assignment, 4) <= 0.05
