"""Backend-registry coverage: lazy resolution, precedence, errors, overrides.

Tier-1 by design: nothing here forks workers or needs ``mpi4py`` — the
lazy-import machinery is exercised through a throwaway backend module
written to ``tmp_path``, and the missing-optional-dependency path through
registry entries pointing at modules that cannot import.  The real
``process``/``mpi`` constructions are covered by their dedicated marker
suites.
"""

import importlib.util
import textwrap

import pytest

from repro.runtime import comm as comm_mod
from repro.runtime.comm import (
    BACKEND_ENV,
    BACKENDS,
    Comm,
    VirtualComm,
    available_backends,
    backend_max_ranks,
    make_comm,
    resolve_backend_name,
    register_backend,
)


class TestResolution:
    def test_default_is_virtual(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend_name() == "virtual"
        assert isinstance(make_comm(2), VirtualComm)

    def test_env_var_beats_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "mpi")
        assert resolve_backend_name() == "mpi"

    def test_explicit_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "mpi")
        assert resolve_backend_name("virtual") == "virtual"
        assert isinstance(make_comm(2, backend="virtual"), VirtualComm)

    def test_empty_env_var_falls_back_to_virtual(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "")
        assert resolve_backend_name() == "virtual"


class TestLazyBackends:
    def test_lazy_names_advertised_before_import(self):
        # both lazy backends are choices even while their modules (and the
        # optional mpi4py dependency) have never been imported
        assert {"virtual", "process", "mpi"} <= set(available_backends())

    def test_lazy_module_imported_and_registered_on_first_use(self, tmp_path, monkeypatch):
        module_name = "repro_fake_backend_for_tests"
        (tmp_path / f"{module_name}.py").write_text(
            textwrap.dedent(
                """
                from repro.runtime.comm import VirtualComm, register_backend


                class FakeComm(VirtualComm):
                    kind = "fake"


                register_backend("fake", FakeComm)
                """
            )
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setitem(comm_mod._LAZY_BACKENDS, "fake", module_name)
        assert "fake" in available_backends()
        assert "fake" not in BACKENDS  # not imported yet
        try:
            made = make_comm(3, backend="fake")
            assert made.kind == "fake" and made.nranks == 3
            assert "fake" in BACKENDS  # import happened exactly on first use
        finally:
            BACKENDS.pop("fake", None)

    def test_missing_dependency_is_a_clear_runtime_error(self, monkeypatch):
        monkeypatch.setitem(
            comm_mod._LAZY_BACKENDS, "ghost", "repro_no_such_module_anywhere"
        )
        with pytest.raises(RuntimeError, match="repro_no_such_module_anywhere"):
            make_comm(2, backend="ghost")

    @pytest.mark.skipif(
        importlib.util.find_spec("mpi4py") is not None,
        reason="mpi4py installed: the import succeeds, covered by the mpi suite",
    )
    def test_mpi_without_mpi4py_names_the_package(self):
        with pytest.raises(RuntimeError, match="mpi4py") as err:
            make_comm(2, backend="mpi")
        assert isinstance(err.value.__cause__, ImportError)  # not a bare traceback

    def test_lazy_module_that_forgets_to_register(self, tmp_path, monkeypatch):
        module_name = "repro_forgetful_backend_for_tests"
        (tmp_path / f"{module_name}.py").write_text("value = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setitem(comm_mod._LAZY_BACKENDS, "forgetful", module_name)
        with pytest.raises(RuntimeError, match="did not register"):
            make_comm(2, backend="forgetful")


class TestUnknownBackend:
    def test_value_error_lists_available_backends(self):
        with pytest.raises(ValueError) as err:
            make_comm(2, backend="quantum")
        message = str(err.value)
        assert "quantum" in message
        for name in available_backends():
            assert name in message


class TestRegisterOverride:
    def test_last_registration_wins_and_can_be_restored(self):
        class InstrumentedComm(VirtualComm):
            kind = "instrumented"

        original = BACKENDS["virtual"]
        register_backend("virtual", InstrumentedComm)
        try:
            assert isinstance(make_comm(2, backend="virtual"), InstrumentedComm)
        finally:
            register_backend("virtual", original)
        assert type(make_comm(2, backend="virtual")) is VirtualComm

    def test_new_name_appears_in_available_backends(self):
        class SideComm(VirtualComm):
            kind = "side"

        register_backend("side", SideComm)
        try:
            assert "side" in available_backends()
            assert make_comm(1, backend="side").kind == "side"
        finally:
            BACKENDS.pop("side", None)
        assert "side" not in available_backends()


class TestMaxRanks:
    def test_unbounded_backends_report_none(self):
        assert Comm.max_ranks() is None
        assert backend_max_ranks("virtual") is None

    def test_unknown_backend_still_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            backend_max_ranks("quantum")
