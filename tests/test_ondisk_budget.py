"""The memory-budget gate: RLIMIT_AS is real and the pipeline fits under it."""

import importlib.util
import json
import os
import subprocess
import sys

import pytest

GATE = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "ondisk_budget_gate.py")


def _load_gate_module():
    spec = importlib.util.spec_from_file_location("ondisk_budget_gate", GATE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCapMechanics:
    def test_vm_size_is_positive(self):
        assert _load_gate_module().vm_size_bytes() > (1 << 20)

    def test_cap_is_enforced_by_the_kernel(self):
        # a subprocess caps itself 16 MiB over baseline, then tries to
        # allocate 64 MiB -- the kernel must refuse
        code = (
            "import importlib.util\n"
            f"spec = importlib.util.spec_from_file_location('g', {os.path.abspath(GATE)!r})\n"
            "g = importlib.util.module_from_spec(spec); spec.loader.exec_module(g)\n"
            "g.cap_address_space(16 << 20)\n"
            "try:\n"
            "    buf = bytearray(64 << 20)\n"
            "except MemoryError:\n"
            "    raise SystemExit(0)\n"
            "raise SystemExit(1)\n"
        )
        proc = subprocess.run([sys.executable, "-c", code], timeout=60)
        assert proc.returncode == 0


class TestGate:
    def test_pipeline_fits_and_control_ooms(self, tmp_path):
        """End-to-end gate at 1/8 CI scale: 32 MiB dataset under an 8 MiB cap."""
        out = tmp_path / "report.json"
        proc = subprocess.run(
            [sys.executable, GATE, "--budget-mb", "8", "--nranks", "32", "-k", "32",
             "--shard-rows", "65536", "--control",
             "--workdir", str(tmp_path), "--out", str(out)],
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        body = json.loads(out.read_text())
        assert body["conserved"] is True
        assert body["control_oom"] is True
        assert body["dataset_bytes"] >= 4 * body["budget_bytes"]
        assert sum(body["shuffle_counts"]) == body["n"]
        assert body["limit_bytes"] - body["baseline_vmsize_bytes"] == body["budget_bytes"]

    def test_gate_fails_under_an_impossible_budget(self, tmp_path):
        """With a 1 MiB cap nothing fits; the gate must report failure, not hang."""
        proc = subprocess.run(
            [sys.executable, GATE, "--budget-mb", "1", "--nranks", "4", "-k", "4",
             "--shard-rows", "16384", "--workdir", str(tmp_path),
             "--out", str(tmp_path / "report.json")],
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode != 0
