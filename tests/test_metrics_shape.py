"""Tests for block-shape metrics."""

import numpy as np

from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.grid import grid_mesh
from repro.metrics.shape import (
    block_aspect_ratios,
    block_compactness,
    disconnected_blocks,
    shape_report,
)
from repro.partitioners.base import get_partitioner


class TestAspect:
    def test_square_block(self):
        pts = np.random.default_rng(0).random((100, 2))
        a = np.zeros(100, dtype=np.int64)
        ratios = block_aspect_ratios(pts, a, 1)
        assert ratios[0] < 1.5

    def test_strip_block(self):
        rng = np.random.default_rng(1)
        pts = np.column_stack([rng.random(100), 0.05 * rng.random(100)])
        ratios = block_aspect_ratios(pts, np.zeros(100, dtype=np.int64), 1)
        assert ratios[0] > 5.0

    def test_empty_and_singleton_blocks(self):
        pts = np.random.default_rng(2).random((3, 2))
        a = np.array([0, 0, 1])
        ratios = block_aspect_ratios(pts, a, 3)
        assert ratios[1] == 1.0  # singleton
        assert ratios[2] == 1.0  # empty

    def test_rcb_strips_vs_kmeans_blobs(self):
        """Figure 1 quantified: on an elongated domain RCB makes worse-aspect
        blocks than balanced k-means."""
        rng = np.random.default_rng(3)
        pts = np.column_stack([rng.random(4000) * 8.0, rng.random(4000)])
        k = 8
        rcb = get_partitioner("RCB").partition(pts, k)
        geo = get_partitioner("Geographer").partition(pts, k, rng=0)
        # Not asserting strict dominance per block, only on the mean
        assert block_aspect_ratios(pts, geo, k).mean() <= block_aspect_ratios(pts, rcb, k).mean() * 1.5


class TestCompactness:
    def test_ball_is_near_one(self):
        rng = np.random.default_rng(4)
        angles = rng.uniform(0, 2 * np.pi, 2000)
        radii = np.sqrt(rng.random(2000))
        pts = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        c = block_compactness(pts, np.zeros(2000, dtype=np.int64), 1)
        assert 0.7 < c[0] < 1.4

    def test_fragmented_block_scores_high(self):
        rng = np.random.default_rng(5)
        left = rng.random((200, 2)) * 0.1
        right = rng.random((200, 2)) * 0.1 + np.array([5.0, 0.0])
        middle = rng.random((400, 2)) * np.array([5.0, 0.1]) + np.array([0.0, 2.0])
        pts = np.concatenate([left, right, middle])
        a = np.concatenate([np.zeros(400, dtype=np.int64), np.ones(400, dtype=np.int64)])
        c = block_compactness(pts, a, 2)
        assert c[0] > 2.0  # the split block


class TestDisconnected:
    def test_connected_partition(self):
        mesh = grid_mesh((6, 6))
        a = (mesh.coords[:, 0] >= 3).astype(np.int64)
        assert disconnected_blocks(mesh, a, 2) == 0

    def test_fragmented_partition(self):
        mesh = grid_mesh((6, 1))
        a = np.array([0, 1, 0, 1, 0, 1])  # both blocks shattered
        assert disconnected_blocks(mesh, a, 2) == 2


class TestReport:
    def test_keys_and_finiteness(self):
        mesh = delaunay_mesh(600, rng=6)
        a = get_partitioner("MultiJagged").partition_mesh(mesh, 6)
        report = shape_report(mesh, a, 6)
        assert set(report) == {"max_aspect", "mean_aspect", "mean_compactness", "disconnected_blocks"}
        assert all(np.isfinite(v) for v in report.values())
