"""Tests for the rich PartitionResult API and the repartition entry point."""

import numpy as np
import pytest

from repro.metrics.imbalance import imbalance
from repro.partitioners import (
    GeographerPartitioner,
    PartitionResult,
    get_partitioner,
    normalize_targets,
)

ALL_TOOLS = ("RCB", "RIB", "MultiJagged", "HSFC", "Geographer")


def _cloud(n=1000, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestNormalizeTargets:
    def test_none_is_uniform(self):
        t = normalize_targets(None, 4, 100.0)
        assert np.allclose(t, 25.0)

    def test_ratios_rescaled_to_total(self):
        t = normalize_targets(np.array([2.0, 1.0, 1.0]), 3, 8.0)
        assert np.allclose(t, [4.0, 2.0, 2.0])
        assert t.sum() == pytest.approx(8.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            normalize_targets(np.ones(3), 4, 1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            normalize_targets(np.array([1.0, 0.0]), 2, 1.0)
        with pytest.raises(ValueError):
            normalize_targets(np.array([1.0, -2.0]), 2, 1.0)
        with pytest.raises(ValueError):
            normalize_targets(np.array([1.0, np.inf]), 2, 1.0)


@pytest.mark.parametrize("tool", ALL_TOOLS)
class TestPartitionResult:
    def test_rich_fields(self, tool):
        pts = _cloud()
        res = get_partitioner(tool).partition(pts, 8, rng=0)
        assert isinstance(res, PartitionResult)
        assert res.tool == tool and res.k == 8 and res.n == 1000
        assert res.block_weights.shape == (8,)
        assert res.block_weights.sum() == pytest.approx(1000.0)
        assert res.target_weights.sum() == pytest.approx(1000.0)
        assert res.imbalance >= 0.0
        assert "partition" in res.timers.stages

    def test_imbalance_consistent_with_metric(self, tool):
        pts = _cloud(seed=1)
        res = get_partitioner(tool).partition(pts, 8, rng=0)
        # result imbalance uses W/k, metric uses ceil(W/k): result is >= metric
        assert res.imbalance >= imbalance(res.assignment, 8) - 1e-12

    def test_acts_like_assignment_array(self, tool):
        pts = _cloud(seed=2)
        res = get_partitioner(tool).partition(pts, 5, rng=0)
        assert np.asarray(res).dtype == np.int64
        assert len(res) == 1000 and res.shape == (1000,)
        assert set(np.unique(res)) == set(range(5))
        mask = res == 0
        assert mask.dtype == bool and pts[mask].shape[0] == int(mask.sum())
        assert np.array_equal(res[mask], np.zeros(int(mask.sum()), dtype=np.int64))
        assert int(res.min()) == 0 and int(res.max()) == 4

    def test_heterogeneous_targets(self, tool):
        """2:1:1:1 capacities (paper footnote 1) for every partitioner."""
        pts = _cloud(n=2000, seed=3)
        targets = np.array([2.0, 1.0, 1.0, 1.0])
        res = get_partitioner(tool).partition(pts, 4, rng=0, target_weights=targets)
        shares = res.block_weights / res.block_weights.sum()
        assert np.all(np.abs(shares - targets / targets.sum()) < 0.05)
        assert res.imbalance <= 0.1

    def test_k1_trivial(self, tool):
        res = get_partitioner(tool).partition(_cloud(50), 1)
        assert np.all(res.assignment == 0)
        assert res.imbalance == 0.0 and res.k == 1

    def test_repartition_same_points(self, tool):
        """repartition always works; warm-startable tools keep ids stable."""
        p = get_partitioner(tool)
        pts = _cloud(seed=4)
        first = p.partition(pts, 6, rng=0)
        second = p.repartition(first, pts, rng=1)
        assert isinstance(second, PartitionResult)
        assert second.k == 6  # k defaults to the previous result's
        assert second.imbalance <= max(first.imbalance, 0.05)


class TestWarmStart:
    def test_geographer_supports_warm_start(self):
        assert GeographerPartitioner.supports_warm_start
        for tool in ("RCB", "RIB", "MultiJagged", "HSFC"):
            assert not get_partitioner(tool).supports_warm_start

    def test_warm_start_converges_faster_on_perturbation(self):
        from repro.core.config import BalancedKMeansConfig

        p = GeographerPartitioner(BalancedKMeansConfig(use_sampling=False))
        rng = np.random.default_rng(5)
        pts = rng.random((2500, 2))
        first = p.partition(pts, 8, rng=0)
        moved = pts + rng.normal(0.0, 0.004, pts.shape)
        warm = p.repartition(first, moved, rng=1)
        cold = p.partition(moved, 8, rng=1)
        assert warm.iterations < cold.iterations
        assert warm.imbalance <= 0.031

    def test_warm_start_keeps_ids_stable(self):
        from repro.metrics.migration import migration_fraction

        p = GeographerPartitioner()
        pts = _cloud(n=2000, seed=6)
        first = p.partition(pts, 8, rng=0)
        warm = p.repartition(first, pts + 0.002, rng=1)
        assert migration_fraction(first, warm) < 0.2

    def test_repartition_from_bare_array_is_cold(self):
        p = GeographerPartitioner()
        pts = _cloud(seed=7)
        bare = np.zeros(1000, dtype=np.int64)
        bare[500:] = 3
        res = p.repartition(bare, pts)  # k inferred as 4, no centers -> cold
        assert res.k == 4
        assert set(np.unique(res.assignment)) == set(range(4))

    def test_repartition_ignores_mismatched_centers(self):
        p = GeographerPartitioner()
        pts = _cloud(seed=8)
        first = p.partition(pts, 6, rng=0)
        res = p.repartition(first, pts, k=9, rng=0)  # 6 centers cannot seed k=9
        assert res.k == 9
        assert set(np.unique(res.assignment)) == set(range(9))
