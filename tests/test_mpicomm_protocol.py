"""MPI backend protocol logic, exercised in-process through a stub mpi4py.

Real ``mpiexec`` launches are covered by ``test_mpi_backend.py`` (marker
``mpi_backend``, CI-only where MPI is installed).  This tier-1 suite keeps
the driver/worker bridge honest *without* MPI: a fake ``mpi4py`` module is
injected into ``sys.modules`` whose ``COMM_WORLD`` runs worker ranks as
threads and transports every ``bcast``/``gather`` payload through
``pickle.dumps``/``loads`` over queues, while the rank store is swapped
for a thread-local one — faithfully simulating separate address spaces:

- shipped closures really round-trip through the freezing machinery and
  handle-based :class:`~repro.runtime.mpicomm.MPIShared` pickling;
- in-place mutations on "rank 1" are invisible to the driver until
  :meth:`~repro.runtime.mpicomm.MPIComm.collect` fetches them;
- the full distributed algorithms (k-means, sort, SpMV) run end-to-end on
  the backend and must match the virtual backend bit for bit.
"""

import pickle
import queue
import sys
import threading
import time
import types

import numpy as np
import pytest

from repro.runtime.comm import BACKENDS, make_comm
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
from repro.runtime.distsort import distributed_sort
from repro.spmv.distspmv import distributed_spmv

_TIMEOUT = 60.0


class _FakeWorld:
    def __init__(self, size: int):
        self.size = size
        self.inboxes = [queue.Queue() for _ in range(size)]
        self.replies = [queue.Queue() for _ in range(size)]
        self.aborted: list[int] = []


class _FakeComm:
    """One rank's view of the world; payloads pickle across thread 'ranks'."""

    def __init__(self, world: _FakeWorld, rank: int):
        self._world = world
        self._rank = rank

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    def bcast(self, obj, root=0):
        assert root == 0
        if self._rank == 0:
            blob = pickle.dumps(obj)
            for rank in range(1, self._world.size):
                self._world.inboxes[rank].put(blob)
            return obj
        return pickle.loads(self._world.inboxes[self._rank].get(timeout=_TIMEOUT))

    def gather(self, obj, root=0):
        assert root == 0
        if self._rank == 0:
            out = [obj]
            for rank in range(1, self._world.size):
                out.append(pickle.loads(self._world.replies[rank].get(timeout=_TIMEOUT)))
            return out
        self._world.replies[self._rank].put(pickle.dumps(obj))
        return None

    def Abort(self, errorcode=0):
        # real MPI kills the whole job and never returns; the stub records
        # the call and ends just the calling thread (threads swallow
        # SystemExit), which is observable without nuking the test process
        self._world.aborted.append(errorcode)
        raise SystemExit(errorcode)


class _FakeMPI:
    """Stands in for ``mpi4py.MPI``: thread-local COMM_WORLD + Wtime."""

    def __init__(self):
        self._tls = threading.local()

    def _bind(self, comm: _FakeComm) -> None:
        self._tls.comm = comm

    @property
    def COMM_WORLD(self) -> _FakeComm:
        return self._tls.comm

    @staticmethod
    def Wtime() -> float:
        return time.perf_counter()


class _ThreadLocalStore:
    """dict facade over per-thread dicts: each 'rank' gets its own store."""

    def __init__(self):
        self._tls = threading.local()

    @property
    def _data(self) -> dict:
        if not hasattr(self._tls, "data"):
            self._tls.data = {}
        return self._tls.data

    def get(self, key, default=None):
        return self._data.get(key, default)

    def __setitem__(self, key, value):
        self._data[key] = value

    def __contains__(self, key):
        return key in self._data

    def pop(self, key, default=None):
        return self._data.pop(key, default)

    def clear(self):
        self._data.clear()


@pytest.fixture
def mpi_stub(monkeypatch):
    """Import ``repro.runtime.mpicomm`` against the fake mpi4py.

    Yields ``start(size)`` which spins up ``size - 1`` worker threads in
    :func:`~repro.runtime.mpicomm.worker_loop` and returns the imported
    module; teardown stops the workers and unregisters the stubbed module
    so later tests (or a real MPI environment) see a clean slate.
    """
    if "repro.runtime.mpicomm" in sys.modules:
        pytest.skip("mpicomm already imported against a real MPI in this process")
    fake = _FakeMPI()
    mpi4py_module = types.ModuleType("mpi4py")
    mpi4py_module.MPI = fake
    monkeypatch.setitem(sys.modules, "mpi4py", mpi4py_module)
    fake._bind(_FakeComm(_FakeWorld(1), 0))  # import-time rank check
    import importlib

    mpicomm = importlib.import_module("repro.runtime.mpicomm")
    monkeypatch.setattr(mpicomm, "_STORE", _ThreadLocalStore())
    monkeypatch.setattr(mpicomm, "_STOPPED", False)
    threads: list[threading.Thread] = []

    def start(size: int):
        world = _FakeWorld(size)
        fake._bind(_FakeComm(world, 0))
        for rank in range(1, size):

            def serve(rank=rank):
                fake._bind(_FakeComm(world, rank))
                mpicomm.worker_loop()

            thread = threading.Thread(target=serve, daemon=True, name=f"fake-rank-{rank}")
            thread.start()
            threads.append(thread)
        return mpicomm

    yield start
    try:
        mpicomm.stop_workers()
    except Exception:
        pass
    for thread in threads:
        thread.join(timeout=10)
    assert not any(thread.is_alive() for thread in threads), "worker thread leaked"
    sys.modules.pop("repro.runtime.mpicomm", None)
    BACKENDS.pop("mpi", None)


class TestProtocol:
    def test_run_local_rank_order_and_ledger(self, mpi_stub):
        mpi_stub(3)
        comm = make_comm(3, backend="mpi")
        comm.set_stage("phase")
        assert comm.run_local(lambda r: r * r) == [0, 1, 4]
        assert comm.measured and not comm.persistent_state and comm.kind == "mpi"
        assert comm.ledger.supersteps == 1
        assert comm.ledger.stages["phase"] > 0
        assert "dispatch" in comm.ledger.collective_counts
        comm.close()

    def test_fewer_ranks_than_world_leaves_surplus_idle(self, mpi_stub):
        mpi_stub(4)
        for p in (1, 2, 4, 2):
            comm = make_comm(p, backend="mpi")
            assert comm.run_local(lambda r: r + 1) == list(range(1, p + 1))
            comm.close()

    def test_more_ranks_than_world_is_a_clear_error(self, mpi_stub):
        mpi_stub(2)
        with pytest.raises(RuntimeError, match="mpiexec -n 3"):
            make_comm(3, backend="mpi")

    def test_worker_error_propagates_and_loop_survives(self, mpi_stub):
        mpi_stub(2)
        comm = make_comm(2, backend="mpi")

        def boom(r):
            if r == 1:
                raise ValueError("kapow from rank 1")
            return r

        with pytest.raises(RuntimeError, match="kapow from rank 1"):
            comm.run_local(boom)
        assert comm.run_local(lambda r: r + 10) == [10, 11]
        comm.close()

    def test_capturing_comm_rejected_before_the_collective(self, mpi_stub):
        mpi_stub(2)
        comm = make_comm(2, backend="mpi")
        captured = comm
        with pytest.raises(TypeError, match="must not capture the communicator"):
            comm.run_local(lambda r: captured.nranks)
        assert comm.run_local(lambda r: r) == [0, 1]
        comm.close()

    # the stub's Abort ends the worker thread via SystemExit by design
    @pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_protocol_failure_aborts_loudly_instead_of_deadlocking(self, mpi_stub, capsys):
        mpicomm = mpi_stub(2)
        world = mpicomm.MPI.COMM_WORLD._world
        # a malformed protocol message: the worker's dispatch raises, which
        # must print the traceback and abort the communicator — silently
        # ending the loop would deadlock the driver's next collective
        mpicomm.MPI.COMM_WORLD.bcast(("share", 2))
        deadline = time.perf_counter() + 10.0
        while not world.aborted and time.perf_counter() < deadline:
            time.sleep(0.01)
        assert world.aborted == [1]
        err = capsys.readouterr().err
        assert "worker loop failed on 'share'" in err
        assert "Traceback" in err

    def test_closed_comm_rejects_supersteps(self, mpi_stub):
        mpi_stub(2)
        comm = make_comm(2, backend="mpi")
        comm.close()
        comm.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            comm.run_local(lambda r: r)


class TestRankResidentArrays:
    def test_share_is_rank_resident_and_collect_fetches(self, mpi_stub):
        mpicomm = mpi_stub(2)
        comm = make_comm(2, backend="mpi")
        arrs = [comm.share(np.zeros(3)) for _ in range(2)]
        assert all(isinstance(arr, mpicomm.MPIShared) for arr in arrs)
        comm.run_local(lambda r: arrs[r].__setitem__(slice(None), r + 1.0))
        # rank 0 == the driver, so its mutation is driver-visible; rank 1's
        # landed on the rank-resident copy and the driver copy is stale
        assert arrs[0].tolist() == [1.0, 1.0, 1.0]
        assert arrs[1].tolist() == [0.0, 0.0, 0.0]
        got = comm.collect(arrs)
        assert got[0].tolist() == [1.0, 1.0, 1.0]
        assert got[1].tolist() == [2.0, 2.0, 2.0]
        assert "collect" in comm.ledger.collective_counts
        comm.close()

    def test_handle_pickling_only_for_canonical_driver_array(self, mpi_stub):
        mpi_stub(2)
        comm = make_comm(2, backend="mpi")
        arr = comm.share(np.arange(6.0))
        blob = pickle.dumps(arr)
        assert len(blob) < 200  # a handle, not 48 bytes of data + ndarray overhead
        assert pickle.loads(blob) is arr  # driver-side resolution
        sliced = pickle.loads(pickle.dumps(arr[2:4]))  # slices go by value
        arr[2] = -1.0
        assert sliced.tolist() == [2.0, 3.0]
        comm.close()

    def test_release_drops_worker_copies(self, mpi_stub):
        mpi_stub(2)
        comm = make_comm(2, backend="mpi")
        arr = comm.share(np.arange(4.0))
        handle = arr._handle

        def resident(r):  # modules don't pickle: resolve the store in-rank
            import sys

            return handle in sys.modules["repro.runtime.mpicomm"]._STORE

        assert comm.run_local(resident) == [True, True]
        comm.release(arr)
        assert comm.run_local(resident) == [False, False]
        comm.close()

    def test_idle_ranks_keep_no_resident_copy(self, mpi_stub):
        # a p=2 comm in a world of 4: ranks 2 and 3 consume the share
        # broadcast but must not hold a copy they can never resolve
        mpi_stub(4)
        small = make_comm(2, backend="mpi")
        arr = small.share(np.arange(4.0))
        handle = arr._handle
        probe = make_comm(4, backend="mpi")

        def resident(r):
            import sys

            return handle in sys.modules["repro.runtime.mpicomm"]._STORE

        assert probe.run_local(resident) == [True, True, False, False]
        probe.close()
        small.close()

    def test_mutation_persists_across_supersteps(self, mpi_stub):
        mpi_stub(2)
        comm = make_comm(2, backend="mpi")
        counters = [comm.share(np.zeros(1)) for _ in range(2)]
        for _ in range(3):
            comm.run_local(lambda r: counters[r].__iadd__(r + 1))
        assert [c[0] for c in comm.collect(counters)] == [3.0, 6.0]
        comm.close()


class TestAlgorithmsBitIdentical:
    def test_distributed_kmeans_matches_virtual(self, mpi_stub):
        mpi_stub(2)
        pts = np.random.default_rng(0).random((300, 2))
        virt = distributed_balanced_kmeans(pts, k=4, nranks=2, rng=3, backend="virtual")
        comm = make_comm(2, backend="mpi")
        try:
            mpi = distributed_balanced_kmeans(pts, k=4, nranks=2, rng=3, comm=comm)
        finally:
            comm.close()
        np.testing.assert_array_equal(virt.assignment, mpi.assignment)
        np.testing.assert_array_equal(virt.centers, mpi.centers)
        assert virt.imbalance == mpi.imbalance
        assert virt.iterations == mpi.iterations
        assert mpi.backend == "mpi" and mpi.measured

    def test_distsort_matches_virtual(self, mpi_stub):
        mpi_stub(2)
        rng = np.random.default_rng(11)
        keys = [rng.integers(0, 1 << 40, size=30), rng.integers(0, 1 << 40, size=17)]
        payloads = [np.column_stack([kk.astype(np.float64), rng.random(kk.size)]) for kk in keys]
        with make_comm(2, backend="virtual") as vc:
            vkeys, vpay = distributed_sort(vc, [k.copy() for k in keys],
                                           [p.copy() for p in payloads])
        comm = make_comm(2, backend="mpi")
        try:
            mkeys, mpay = distributed_sort(comm, [k.copy() for k in keys],
                                           [p.copy() for p in payloads])
        finally:
            comm.close()
        for r in range(2):
            np.testing.assert_array_equal(vkeys[r], mkeys[r])
            np.testing.assert_array_equal(vpay[r], mpay[r])

    def test_distributed_spmv_matches_serial(self, mpi_stub):
        from repro.mesh.rgg import rgg_mesh

        mpi_stub(2)
        mesh = rgg_mesh(200, dim=2, rng=0)
        k = 4
        assignment = np.random.default_rng(1).integers(0, k, size=mesh.n)
        assignment[:k] = np.arange(k)
        x = np.random.default_rng(2).random(mesh.n)
        y_serial, t_serial = distributed_spmv(mesh, assignment, k, x)
        comm = make_comm(2, backend="mpi")
        try:
            y_mpi, t_mpi = distributed_spmv(mesh, assignment, k, x, comm=comm)
        finally:
            comm.close()
        np.testing.assert_array_equal(y_serial, y_mpi)
        assert t_serial == t_mpi
        np.testing.assert_allclose(y_mpi, mesh.to_scipy() @ x)

    def test_equivalence_cases_run_on_stub(self, mpi_stub):
        from repro.runtime.mpi_main import compare_cases, equivalence_cases

        mpi_stub(2)
        mpi = equivalence_cases(2, backend="mpi")
        virt = equivalence_cases(2, backend="virtual")
        assert compare_cases(mpi, virt, label="p=2: ") == []
        assert mpi["_backend"] == "mpi" and mpi["_measured"] is True


class TestMpiMainEntrypoint:
    """The exact driver paths the mpi-backend CI job runs, on the stub."""

    def test_equivalence_command(self, mpi_stub, tmp_path, capsys):
        import json

        from repro.runtime import mpi_main

        mpi_stub(2)
        out = tmp_path / "equiv.json"
        code = mpi_main.main(["equivalence", "--ranks", "1", "2", "--json", str(out)])
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "PASS" in captured
        data = json.loads(out.read_text())
        assert set(data) == {"1", "2"}
        assert data["2"]["_backend"] == "mpi"

    def test_equivalence_rejects_oversized_ranks(self, mpi_stub, capsys):
        from repro.runtime import mpi_main

        mpi_stub(2)
        code = mpi_main.main(["equivalence", "--ranks", "4"])
        assert code == 2
        assert "exceed the MPI communicator size" in capsys.readouterr().out

    def test_cli_forwarding_defaults_to_mpi(self, mpi_stub, capsys, monkeypatch):
        from repro.runtime import mpi_main

        mpi_stub(2)
        monkeypatch.setenv("REPRO_BACKEND", "mpi")  # pin so main's setdefault is undone
        code = mpi_main.main(
            ["distributed", "rgg2d", "--scale", "0.03", "-k", "4", "-p", "2"]
        )
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "backend=mpi" in captured
        assert "measured" in captured
