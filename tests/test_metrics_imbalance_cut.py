"""Tests for imbalance and edge-cut metrics (definitions of paper §2)."""

import networkx as nx
import numpy as np
import pytest

from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.grid import grid_mesh
from repro.metrics.cut import edge_cut, external_edges
from repro.metrics.imbalance import block_weights, imbalance, is_balanced, max_block_weight


class TestImbalance:
    def test_perfect_balance(self):
        a = np.array([0, 0, 1, 1])
        assert imbalance(a, 2) == 0.0

    def test_formula(self):
        # n=4, k=2 -> Lmax base ceil(4/2)=2; sizes (3,1) -> 3/2 - 1 = 0.5
        a = np.array([0, 0, 0, 1])
        assert imbalance(a, 2) == pytest.approx(0.5)

    def test_weighted(self):
        a = np.array([0, 1])
        w = np.array([3.0, 1.0])
        # ideal = ceil(4/2) = 2; max block 3 -> imbalance 0.5
        assert imbalance(a, 2, w) == pytest.approx(0.5)

    def test_block_weights(self):
        a = np.array([0, 2, 2])
        bw = block_weights(a, 3, np.array([1.0, 2.0, 3.0]))
        assert bw.tolist() == [1.0, 0.0, 5.0]

    def test_empty_block_counts(self):
        a = np.zeros(4, dtype=np.int64)
        assert block_weights(a, 2).tolist() == [4.0, 0.0]

    def test_max_block_weight(self):
        a = np.array([0, 0, 1])
        assert max_block_weight(a, 2) == 2.0

    def test_is_balanced(self):
        a = np.array([0, 0, 1, 1])
        assert is_balanced(a, 2, epsilon=0.0)
        assert not is_balanced(np.array([0, 0, 0, 1]), 2, epsilon=0.03)


class TestEdgeCut:
    def test_grid_straight_cut(self):
        # 4x4 grid split in half vertically: cut = 4
        mesh = grid_mesh((4, 4))
        a = (mesh.coords[:, 0] >= 2).astype(np.int64)
        assert edge_cut(mesh, a, 2) == 4

    def test_no_cut(self):
        mesh = grid_mesh((3, 3))
        assert edge_cut(mesh, np.zeros(9, dtype=np.int64), 1) == 0

    def test_all_singletons(self):
        mesh = grid_mesh((2, 2))
        a = np.arange(4)
        assert edge_cut(mesh, a, 4) == mesh.m

    def test_against_networkx(self):
        mesh = delaunay_mesh(300, rng=0)
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, mesh.n)
        g = nx.Graph(mesh.edge_array().tolist())
        g.add_nodes_from(range(mesh.n))
        expected = sum(1 for u, v in g.edges if a[u] != a[v])
        assert edge_cut(mesh, a, 4) == expected

    def test_external_edges_sum_is_twice_cut(self):
        mesh = delaunay_mesh(200, rng=2)
        a = np.random.default_rng(3).integers(0, 3, mesh.n)
        ext = external_edges(mesh, a, 3)
        assert ext.sum() == 2 * edge_cut(mesh, a, 3)

    def test_external_edges_per_block(self):
        mesh = grid_mesh((2, 2))  # square cycle
        a = np.array([0, 0, 1, 1])  # ids: (0,0),(0,1),(1,0),(1,1) row-major x-major
        ext = external_edges(mesh, a, 2)
        assert ext.sum() == 2 * edge_cut(mesh, a, 2)
        assert np.all(ext >= 0)
