"""Adaptive-mesh repartitioning: the warm-start acceptance scenario."""

import numpy as np
import pytest

from repro.mesh.adaptive import refinement_sequence
from repro.experiments import repartitioning


class TestRefinementSequence:
    def test_shared_mesh_changing_weights(self):
        meshes = refinement_sequence(600, steps=3, rng=0)
        assert len(meshes) == 3
        base = meshes[0]
        for mesh in meshes[1:]:
            assert mesh.coords is base.coords
            assert mesh.indptr is base.indptr and mesh.indices is base.indices
            assert not np.array_equal(mesh.node_weights, base.node_weights)

    def test_weights_follow_the_front(self):
        meshes = refinement_sequence(800, steps=2, rng=1, radii=(0.15, 0.35))
        r = np.linalg.norm(meshes[0].coords - np.array([0.5, 0.5]), axis=1)
        near_first = np.abs(r - 0.15) < 0.02
        near_last = np.abs(r - 0.35) < 0.02
        # the refined region carries high weight at its own step only
        assert meshes[0].node_weights[near_first].mean() > meshes[0].node_weights[near_last].mean()
        assert meshes[1].node_weights[near_last].mean() > meshes[1].node_weights[near_first].mean()

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            refinement_sequence(100, steps=0)


class TestWarmVsCold:
    """ISSUE 1 acceptance: warm repartition converges in fewer iterations
    than cold start on a refinement sequence, with migration volume reported."""

    @pytest.fixture(scope="class")
    def rows(self):
        return repartitioning.run(n=2000, k=8, steps=4, seed=1)

    def test_warm_needs_fewer_iterations(self, rows):
        cold = sum(r.iterations_cold for r in rows[1:])
        warm = sum(r.iterations_warm for r in rows[1:])
        assert warm < cold

    def test_migration_volume_reported(self, rows):
        assert rows[0].migration_cold == 0.0 and rows[0].migration_warm == 0.0
        for row in rows[1:]:
            assert row.migration_cold > 0.0
            assert row.migration_warm > 0.0
            assert 0.0 <= row.migration_frac_warm <= 1.0
            assert 0.0 <= row.migration_frac_cold <= 1.0

    def test_both_strategies_stay_balanced(self, rows):
        for row in rows:
            assert row.imbalance_cold <= 0.031
            assert row.imbalance_warm <= 0.031

    def test_format_result(self, rows):
        text = repartitioning.format_result(rows)
        assert "iters cold" in text and "migr warm" in text
        assert "totals over steps" in text
