"""Tests for communication-volume metrics against a brute-force reference."""

import numpy as np

from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.grid import grid_mesh
from repro.metrics.commvolume import boundary_pairs, comm_volumes, max_comm_volume, total_comm_volume


def _brute_force_volumes(mesh, assignment, k):
    """Direct per-vertex count of distinct foreign neighbour blocks."""
    out = np.zeros(k, dtype=np.int64)
    for v in range(mesh.n):
        foreign = {int(assignment[u]) for u in mesh.neighbors(v)} - {int(assignment[v])}
        out[assignment[v]] += len(foreign)
    return out


class TestCommVolume:
    def test_matches_brute_force_random(self):
        mesh = delaunay_mesh(250, rng=0)
        a = np.random.default_rng(1).integers(0, 5, mesh.n)
        assert np.array_equal(comm_volumes(mesh, a, 5), _brute_force_volumes(mesh, a, 5))

    def test_matches_brute_force_grid(self):
        mesh = grid_mesh((6, 6))
        a = (mesh.coords[:, 0] >= 3).astype(np.int64) + 2 * (mesh.coords[:, 1] >= 3).astype(np.int64)
        assert np.array_equal(comm_volumes(mesh, a, 4), _brute_force_volumes(mesh, a, 4))

    def test_single_block_is_zero(self):
        mesh = grid_mesh((4, 4))
        assert total_comm_volume(mesh, np.zeros(16, dtype=np.int64), 1) == 0

    def test_straight_cut_volume(self):
        # 4x4 grid halved: each side sends its 4 boundary vertices to the other
        mesh = grid_mesh((4, 4))
        a = (mesh.coords[:, 0] >= 2).astype(np.int64)
        assert comm_volumes(mesh, a, 2).tolist() == [4, 4]

    def test_max_and_total(self):
        mesh = delaunay_mesh(200, rng=2)
        a = np.random.default_rng(3).integers(0, 4, mesh.n)
        vols = comm_volumes(mesh, a, 4)
        assert max_comm_volume(mesh, a, 4) == vols.max()
        assert total_comm_volume(mesh, a, 4) == vols.sum()

    def test_volume_le_degree_sum(self):
        """comm(v) <= deg(v), so block volume <= sum of member degrees."""
        mesh = delaunay_mesh(150, rng=4)
        a = np.random.default_rng(5).integers(0, 3, mesh.n)
        vols = comm_volumes(mesh, a, 3)
        for b in range(3):
            deg_sum = mesh.degrees()[a == b].sum()
            assert vols[b] <= deg_sum


class TestBoundaryPairs:
    def test_unique_pairs(self):
        mesh = grid_mesh((4, 4))
        a = (mesh.coords[:, 0] >= 2).astype(np.int64)
        pairs = boundary_pairs(mesh, a, 2)
        keys = pairs[:, 0] * 2 + pairs[:, 1]
        assert len(np.unique(keys)) == len(keys)

    def test_no_self_block_pairs(self):
        mesh = delaunay_mesh(150, rng=6)
        a = np.random.default_rng(7).integers(0, 4, mesh.n)
        pairs = boundary_pairs(mesh, a, 4)
        assert np.all(a[pairs[:, 0]] != pairs[:, 1])

    def test_empty_when_uncut(self):
        mesh = grid_mesh((3, 3))
        assert boundary_pairs(mesh, np.zeros(9, dtype=np.int64), 1).shape == (0, 2)

    def test_counts_equal_volumes(self):
        mesh = delaunay_mesh(200, rng=8)
        a = np.random.default_rng(9).integers(0, 5, mesh.n)
        pairs = boundary_pairs(mesh, a, 5)
        assert pairs.shape[0] == total_comm_volume(mesh, a, 5)
