"""Smoke + shape tests for every experiment driver."""

import numpy as np
import pytest

from repro.experiments import ablations, components, figure1, figure2, figure3, figure4, tables
from repro.experiments.harness import PAPER_TOOLS, format_rows, run_tool_on_mesh, run_tools_on_mesh
from repro.mesh.delaunay import delaunay_mesh


@pytest.fixture(scope="module")
def small_mesh():
    return delaunay_mesh(600, rng=0)


class TestHarness:
    def test_run_tool(self, small_mesh):
        row = run_tool_on_mesh(small_mesh, "RCB", 4, seed=0)
        assert row.tool == "RCB" and row.k == 4
        assert row.time > 0 and row.cut > 0

    def test_run_all_tools(self, small_mesh):
        rows = run_tools_on_mesh(small_mesh, 4, seed=0)
        assert [r.tool for r in rows] == list(PAPER_TOOLS)

    def test_format_rows(self, small_mesh):
        rows = run_tools_on_mesh(small_mesh, 4, tools=("RCB",), seed=0)
        text = format_rows(rows, title="test")
        assert "RCB" in text and "totComm" in text

    def test_repeats_average(self, small_mesh):
        row = run_tool_on_mesh(small_mesh, "HSFC", 4, repeats=2)
        assert row.time > 0

    def test_metrics_invariant_to_repeats(self, small_mesh):
        """Reported metrics come from the rng=seed run regardless of repeats.

        Geographer is seed-sensitive, so a metrics-from-last-run bug (the
        last repeat runs with rng=seed+repeats-1) shows up immediately.
        """
        one = run_tool_on_mesh(small_mesh, "Geographer", 4, seed=3, repeats=1)
        three = run_tool_on_mesh(small_mesh, "Geographer", 4, seed=3, repeats=3)
        assert one.cut == three.cut
        assert one.imbalance == three.imbalance
        assert one.harm_diameter == three.harm_diameter
        assert one.max_comm_vol == three.max_comm_vol
        assert one.total_comm_vol == three.total_comm_vol
        assert one.time_spmv_comm == three.time_spmv_comm


class TestFigure1:
    def test_writes_all_panels(self, tmp_path):
        out = figure1.run(str(tmp_path), n=700, k=4, seed=0, tools=("RCB", "Geographer"))
        assert set(out) == {"input", "RCB", "Geographer"}
        for path in out.values():
            assert open(path).read().startswith("<svg")


class TestFigure2:
    def test_structure_and_baseline(self):
        res = figure2.run(k=8, scale=0.06, seed=0, max_instances_per_class=1,
                          classes=("dimacs2d", "mesh3d"), with_spmv=False)
        assert set(res.ratios) == {"dimacs2d", "mesh3d"}
        for matrix in res.ratios.values():
            for metric, value in matrix["Geographer"].items():
                assert value == pytest.approx(1.0)
        text = figure2.format_result(res)
        assert "ratios vs Geographer" in text


class TestFigure3:
    def test_weak_runs(self):
        points = figure3.run_weak(points_per_rank=300, rank_counts=(2, 32),
                                  measured_max_ranks=2, seed=0)
        assert {p.nranks for p in points} == {2, 32}
        text = figure3.format_points(points, title="weak")
        assert "p=32" in text and "modeled" in text

    def test_strong_runs(self):
        points = figure3.run_strong(n=1_000_000, rank_counts=(64, 128), seed=0)
        assert all(p.mode == "modeled" for p in points)


class TestFigure4:
    def test_timing_and_fits(self):
        points = figure4.run(points_per_block=300, scale=0.05, seed=0,
                             tools=("RCB", "HSFC"), names=("hugetric", "delaunay2d_s"))
        assert len(points) == 4
        fits = figure4.fit_trends(points)
        assert set(fits) == {"RCB", "HSFC"}
        text = figure4.format_result(points)
        assert "least-squares" in text

    def test_power_of_two_k(self):
        from repro.experiments.figure4 import _power_of_two_k

        assert _power_of_two_k(1024, 250) == 4
        assert _power_of_two_k(100, 250) == 1
        assert _power_of_two_k(6000, 1000) in (4, 8)


class TestTables:
    def test_table2_rows(self):
        rows = tables.run_table2(k=4, scale=0.05, seed=0,
                                 instances=("hugetric", "NACA0015"), with_spmv=False)
        assert len(rows) == 2 * len(PAPER_TOOLS)
        graphs = {r.graph for r in rows}
        assert graphs == {"hugetric", "NACA0015"}

    def test_winners(self):
        rows = tables.run_table1(k=4, scale=0.05, seed=0,
                                 instances=("hugetrace",), with_spmv=False)
        best = tables.winners(rows, "totCommVol")
        assert set(best) == {"hugetrace"}
        assert best["hugetrace"] in PAPER_TOOLS

    def test_format(self):
        rows = tables.run_table2(k=4, scale=0.05, seed=0,
                                 instances=("M6",), with_spmv=False)
        text = tables.format_table(rows, "Table 2 (scaled)")
        assert "Table 2" in text and "M6" in text


class TestComponents:
    def test_fractions_sum_to_one(self):
        rows = components.run(points_per_rank=300, rank_counts=(2,),
                              modeled_rank_counts=(1024,), seed=0)
        for row in rows:
            assert abs(sum(row.fractions.values()) - 1.0) < 1e-9

    def test_redistribution_grows_with_p(self):
        """Paper: redistribution share grows with process count."""
        rows = components.run(points_per_rank=200, rank_counts=(),
                              modeled_rank_counts=(64, 16384), seed=0)
        by_p = {r.nranks: r.fractions for r in rows}
        assert by_p[16384]["redistribute"] > by_p[64]["redistribute"]

    def test_format(self):
        rows = components.run(points_per_rank=200, rank_counts=(2,),
                              modeled_rank_counts=(), seed=0)
        text = components.format_result(rows)
        assert "redistribute" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def mesh(self):
        return delaunay_mesh(1200, rng=1)

    def test_bounds_identical_results(self, mesh):
        rows = ablations.run_bounds(mesh, k=8, seed=0)
        assert all(r.extra["agreement"] == 1.0 for r in rows)

    def test_seeding_rows(self, mesh):
        rows = ablations.run_seeding(mesh, k=8, seed=0)
        assert {r.variant for r in rows} == {"sfc", "random", "kmeans++"}
        assert all(r.imbalance <= 0.05 for r in rows)

    def test_erosion_rows(self, mesh):
        rows = ablations.run_erosion(mesh, k=8, seed=0)
        assert len(rows) == 2

    def test_sampling_rows(self, mesh):
        rows = ablations.run_sampling(mesh, k=8, seed=0)
        on = next(r for r in rows if r.variant == "sampling on")
        off = next(r for r in rows if r.variant == "sampling off")
        assert on.extra["full_rounds"] <= off.extra["full_rounds"] + 2

    def test_curve_rows(self, mesh):
        rows = ablations.run_curve(mesh, k=8, seed=0)
        assert len(rows) == 4
        text = ablations.format_rows(rows)
        assert "hilbert" in text and "morton" in text
