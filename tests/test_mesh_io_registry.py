"""Tests for METIS I/O and the instance registry."""

import numpy as np
import pytest

from repro.mesh.graph import GeometricMesh
from repro.mesh.io import read_coords, read_metis, write_coords, write_metis
from repro.mesh.registry import REGISTRY, instance_names, instances_in_class, make_instance


def _mesh(weighted=False):
    coords = np.array([[0.0, 0], [1, 0], [1, 1], [0, 1]])
    w = np.array([1.0, 2, 3, 4]) if weighted else None
    return GeometricMesh.from_edges(coords, np.array([[0, 1], [1, 2], [2, 3], [3, 0]]), node_weights=w)


class TestMetisIO:
    def test_roundtrip_unweighted(self, tmp_path):
        mesh = _mesh()
        gpath = str(tmp_path / "g.graph")
        write_metis(mesh, gpath)
        back = read_metis(gpath, coords=mesh.coords)
        assert back.n == mesh.n and back.m == mesh.m
        assert np.array_equal(back.indices, mesh.indices)

    def test_roundtrip_weighted(self, tmp_path):
        mesh = _mesh(weighted=True)
        gpath = str(tmp_path / "g.graph")
        write_metis(mesh, gpath)
        back = read_metis(gpath, coords=mesh.coords)
        assert np.array_equal(back.node_weights, mesh.node_weights)

    def test_header_format(self, tmp_path):
        mesh = _mesh(weighted=True)
        gpath = str(tmp_path / "g.graph")
        write_metis(mesh, gpath)
        header = open(gpath).readline().split()
        assert header[:2] == ["4", "4"]
        assert header[2] == "010"

    def test_coords_sidecar(self, tmp_path):
        mesh = _mesh()
        gpath = str(tmp_path / "m.graph")
        write_metis(mesh, gpath)
        write_coords(mesh.coords, str(tmp_path / "m.xyz"))
        back = read_metis(gpath)  # picks up m.xyz automatically
        assert np.allclose(back.coords, mesh.coords)

    def test_missing_coords_raises(self, tmp_path):
        mesh = _mesh()
        gpath = str(tmp_path / "x.graph")
        write_metis(mesh, gpath)
        with pytest.raises(ValueError, match="no coordinates"):
            read_metis(gpath)

    def test_comment_lines_ignored(self, tmp_path):
        gpath = str(tmp_path / "c.graph")
        with open(gpath, "w") as fh:
            fh.write("% a comment\n2 1\n2\n1\n")
        mesh = read_metis(gpath, coords=np.array([[0.0, 0], [1, 0]]))
        assert mesh.n == 2 and mesh.m == 1

    def test_coords_roundtrip(self, tmp_path):
        coords = np.random.default_rng(0).random((20, 3))
        path = str(tmp_path / "c.xyz")
        write_coords(coords, path)
        assert np.allclose(read_coords(path), coords)


class TestRegistry:
    def test_all_classes_present(self):
        classes = {spec.instance_class for spec in REGISTRY.values()}
        assert classes == {"dimacs2d", "climate25d", "mesh3d", "delaunay2d"}

    def test_paper_families_covered(self):
        names = set(instance_names())
        for required in ("hugetric", "hugetrace", "hugebubbles", "NACA0015",
                         "fesom_jigsaw", "alyaA", "alyaB", "rgg2d"):
            assert required in names

    def test_make_instance_scale(self):
        small = make_instance("delaunay2d_s", scale=0.05, seed=0)
        assert 64 <= small.n <= 1000

    def test_make_instance_unknown(self):
        with pytest.raises(KeyError):
            make_instance("no_such_mesh")

    def test_instances_in_class(self):
        dimacs = instances_in_class("dimacs2d")
        assert "hugetric" in dimacs and len(dimacs) >= 8

    def test_instances_in_unknown_class(self):
        with pytest.raises(KeyError):
            instances_in_class("martian")

    def test_weighted_flag_matches_meshes(self):
        spec = REGISTRY["fesom_f2glo"]
        assert spec.weighted
        mesh = spec.make(scale=0.08, seed=0)
        assert not np.all(mesh.node_weights == 1.0)

    def test_name_propagates(self):
        mesh = make_instance("M6", scale=0.08, seed=0)
        assert mesh.name == "M6"

    def test_paper_sizes_recorded(self):
        assert REGISTRY["delaunay2d_l"].paper_n == 2_000_000_000
