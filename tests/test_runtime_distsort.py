"""Tests for the distributed sample sort + redistribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.comm import VirtualComm
from repro.runtime.distsort import distributed_sort


def _random_input(p, seed, max_len=200):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 100_000, size=int(rng.integers(0, max_len))) for _ in range(p)]


class TestDistributedSort:
    def test_sorted_and_permutation(self):
        keys = _random_input(4, 0)
        comm = VirtualComm(4)
        out, _ = distributed_sort(comm, keys)
        cat = np.concatenate(out)
        assert np.array_equal(cat, np.sort(np.concatenate(keys)))

    def test_equalized_chunks(self):
        keys = _random_input(5, 1)
        comm = VirtualComm(5)
        out, _ = distributed_sort(comm, keys)
        sizes = [len(a) for a in out]
        assert max(sizes) - min(sizes) <= 1

    def test_without_equalize(self):
        keys = _random_input(4, 2)
        comm = VirtualComm(4)
        out, _ = distributed_sort(comm, keys, equalize=False)
        cat = np.concatenate(out)
        assert np.array_equal(cat, np.sort(np.concatenate(keys)))

    def test_payload_travels_with_keys(self):
        rng = np.random.default_rng(3)
        keys = [rng.permutation(20) + 20 * r for r in range(3)]
        payload = [k.astype(np.float64).reshape(-1, 1) * 2.0 for k in keys]
        comm = VirtualComm(3)
        out_keys, out_pay = distributed_sort(comm, keys, payload)
        for kk, pp in zip(out_keys, out_pay):
            assert np.allclose(pp.ravel(), kk * 2.0)

    def test_single_rank(self):
        comm = VirtualComm(1)
        keys = [np.array([3, 1, 2])]
        out, _ = distributed_sort(comm, keys)
        assert out[0].tolist() == [1, 2, 3]

    def test_empty_ranks_ok(self):
        comm = VirtualComm(3)
        keys = [np.array([5, 1]), np.array([], dtype=np.int64), np.array([3])]
        out, _ = distributed_sort(comm, keys)
        assert np.concatenate(out).tolist() == [1, 3, 5]

    def test_duplicate_keys(self):
        comm = VirtualComm(4)
        keys = [np.full(50, 7) for _ in range(4)]
        out, _ = distributed_sort(comm, keys)
        sizes = [len(a) for a in out]
        assert max(sizes) - min(sizes) <= 1
        assert np.all(np.concatenate(out) == 7)

    def test_charges_communication(self):
        keys = _random_input(4, 4)
        comm = VirtualComm(4)
        distributed_sort(comm, keys)
        assert comm.ledger.collectives.get("alltoallv", 0.0) > 0
        assert comm.ledger.collectives.get("allgather", 0.0) > 0

    def test_length_mismatch_raises(self):
        comm = VirtualComm(2)
        with pytest.raises(ValueError):
            distributed_sort(comm, [np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64)],
                             [np.zeros((3, 1)), np.zeros((3, 1))])

    def test_wrong_rank_count_raises(self):
        comm = VirtualComm(3)
        with pytest.raises(ValueError):
            distributed_sort(comm, [np.zeros(2, dtype=np.int64)] * 2)


@settings(max_examples=25, deadline=None)
@given(p=st.integers(1, 6), seed=st.integers(0, 10_000))
def test_property_sort_correct(p, seed):
    keys = _random_input(p, seed, max_len=80)
    comm = VirtualComm(p)
    out, _ = distributed_sort(comm, keys)
    cat = np.concatenate(out) if any(len(k) for k in keys) else np.array([])
    assert np.array_equal(cat, np.sort(np.concatenate(keys)))
    sizes = [len(a) for a in out]
    if sum(sizes):
        assert max(sizes) - min(sizes) <= 1
