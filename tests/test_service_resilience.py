"""Tests for the service resilience layer (:mod:`repro.service.resilience`).

Three tiers, mirroring ``test_service.py``:

- tier-1 (no marker): the in-process primitives — admission control,
  circuit breaker, compute supervisor, retry policy, deadline dispatch,
  idempotent session replay, and protocol-framing edge cases driven
  through in-memory streams/socketpairs.
- ``service``: real unix-socket servers exercising malformed frames,
  pipelined requests and client reply timeouts.
- ``chaos_service``: chaos against live servers — fault plans killing
  compute mid-request, a SIGKILLed-and-restarted server under concurrent
  load, and bounded overload — asserting the chaos gate: every request
  either completes bit-identical to a direct ``GeographerPartitioner``
  call or fails with a structured retryable error, retrying clients
  converge, nothing hangs, nothing leaks.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.partitioners.geographer import GeographerPartitioner
from repro.runtime.comm import CostLedger
from repro.runtime.faults import FaultPlan
from repro.runtime.procomm import assert_no_leaks, leaked_resources
from repro.service import PartitionService
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    ProtocolTimeout,
    read_frame,
    recv_frame,
    send_frame,
)
from repro.service.resilience import (
    AdmissionController,
    BreakerOpen,
    CircuitBreaker,
    ComputeFailed,
    ComputeSupervisor,
    ComputeTimeout,
    RetryPolicy,
    ServiceError,
    ServiceOverloaded,
    ShuttingDown,
    error_payload,
)
from repro.service.server import PartitionServer

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
_HEADER = struct.Struct(">I")


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def pts():
    return np.random.default_rng(0).random((400, 2))


def same_result(a, b) -> bool:
    return (
        np.array_equal(np.asarray(a.assignment), np.asarray(b.assignment))
        and np.array_equal(np.asarray(a.centers), np.asarray(b.centers))
        and a.imbalance == b.imbalance
    )


# ---------------------------------------------------------------------------
# Structured errors + retry policy (tier 1)
# ---------------------------------------------------------------------------


class TestErrorsAndRetryPolicy:
    def test_error_payload_fields(self):
        shed = ServiceOverloaded("full", retry_after_ms=40)
        payload = error_payload(shed)
        assert payload["status"] == "error"
        assert payload["code"] == "overloaded"
        assert payload["retryable"] is True
        assert payload["retry_after_ms"] == 40
        assert payload["error"].startswith("ServiceOverloaded: full")
        bad = error_payload(ServiceError("nope"))
        assert (bad["code"], bad["retryable"]) == ("bad_request", False)
        plain = error_payload(TypeError("boom"))
        assert (plain["code"], plain["retryable"]) == ("internal", False)

    def test_retryability_contract(self):
        policy = RetryPolicy()
        for code in ("overloaded", "breaker_open", "compute_failed",
                     "compute_timeout", "shutting_down", "connection"):
            assert policy.retries(code)
        for code in ("bad_request", "deadline_exceeded", "internal", "bad_frame"):
            assert not policy.retries(code)

    def test_backoff_is_seeded_bounded_and_monotone_in_base(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.5,
                             multiplier=2.0, jitter=0.5, seed=7)
        delays = list(policy.delays())
        assert delays == list(RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.5,
                                          multiplier=2.0, jitter=0.5, seed=7).delays())
        assert len(delays) == 4
        base = 0.1
        for d in delays:
            assert base <= d <= base * 1.5 + 1e-12
            base = min(0.5, base * 2.0)
        assert list(RetryPolicy(max_attempts=1).delays()) == []


# ---------------------------------------------------------------------------
# Admission control (tier 1)
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_sheds_immediately_beyond_both_bounds(self):
        async def scenario():
            ledger = CostLedger()
            adm = AdmissionController(max_inflight=1, max_queue=1, ledger=ledger,
                                      retry_hint=lambda depth: 30 * (depth + 1))
            release = asyncio.Event()

            async def hold():
                async with adm.slot():
                    await release.wait()

            holder = asyncio.create_task(hold())
            await asyncio.sleep(0.01)
            assert adm.inflight == 1

            async def queued():
                async with adm.slot():
                    pass

            waiter = asyncio.create_task(queued())
            await asyncio.sleep(0.01)
            assert adm.queued == 1
            with pytest.raises(ServiceOverloaded) as info:
                await adm._acquire()  # inflight full, queue full -> shed now
            assert info.value.retry_after_ms == 60  # hint saw queue depth 1
            assert ledger.counters["requests_shed"] == 1
            release.set()
            await holder
            await waiter  # FIFO waiter got the slot once the holder left
            assert adm.inflight == 0 and adm.queued == 0

        run(scenario())

    def test_cancelled_waiter_returns_granted_slot(self):
        async def scenario():
            adm = AdmissionController(max_inflight=1, max_queue=4)
            release = asyncio.Event()

            async def hold():
                async with adm.slot():
                    await release.wait()

            holder = asyncio.create_task(hold())
            await asyncio.sleep(0.01)

            async def queued():
                async with adm.slot():
                    pass  # pragma: no cover - cancelled before running

            waiter = asyncio.create_task(queued())
            await asyncio.sleep(0.01)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            release.set()
            await holder
            # the cancelled waiter must not strand the slot
            async with adm.slot():
                assert adm.inflight == 1
            assert adm.inflight == 0

        run(scenario())

    def test_shed_waiters_fails_all_queued(self):
        async def scenario():
            adm = AdmissionController(max_inflight=1, max_queue=8)
            release = asyncio.Event()

            async def hold():
                async with adm.slot():
                    await release.wait()

            holder = asyncio.create_task(hold())
            await asyncio.sleep(0.01)
            waiters = [asyncio.create_task(adm._acquire()) for _ in range(3)]
            await asyncio.sleep(0.01)
            adm.shed_waiters(ShuttingDown("bye"))
            results = await asyncio.gather(*waiters, return_exceptions=True)
            assert all(isinstance(r, ShuttingDown) for r in results)
            release.set()
            await holder

        run(scenario())


# ---------------------------------------------------------------------------
# Circuit breaker (tier 1)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_full_transition_cycle_with_ledger_events(self):
        now = [0.0]
        ledger = CostLedger()
        br = CircuitBreaker("ds", threshold=2, reset_seconds=5.0, ledger=ledger,
                            clock=lambda: now[0])
        br.allow()
        br.record_failure()
        br.allow()  # one failure: still closed
        br.record_failure()  # second consecutive: open
        assert br.state == "open"
        with pytest.raises(BreakerOpen) as info:
            br.allow()
        assert info.value.retry_after_ms == 5000
        now[0] = 5.1  # reset window elapsed: half-open probe allowed
        br.allow()
        assert br.state == "half_open"
        br.record_failure()  # probe failed: straight back to open
        assert br.state == "open"
        now[0] = 11.0
        br.allow()
        br.record_success()  # probe succeeded: closed, counter reset
        assert br.state == "closed" and br.failures == 0
        names = [e["kind"] for e in ledger.events]
        assert names == ["breaker_opened", "breaker_half_open", "breaker_opened",
                         "breaker_half_open", "breaker_closed"]
        assert br.describe()["opened_count"] == 2

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker("ds", threshold=3)
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"  # never 3 *consecutive* failures


# ---------------------------------------------------------------------------
# Compute supervisor (tier 1)
# ---------------------------------------------------------------------------


class TestComputeSupervisor:
    def test_runs_and_observes(self):
        async def scenario():
            sup = ComputeSupervisor()
            out = await sup.run(lambda: 41 + 1)
            assert out == 42
            assert sup.avg_compute_s is not None
            assert sup.respawns == 0
            sup.shutdown()

        run(scenario())

    def test_hung_compute_is_abandoned_and_pool_respawned(self):
        async def scenario():
            ledger = CostLedger()
            sup = ComputeSupervisor(timeout=0.05, ledger=ledger)
            t0 = time.perf_counter()
            with pytest.raises(ComputeTimeout, match="abandoned"):
                await sup.run(lambda: time.sleep(2.0), label="wedged")
            assert time.perf_counter() - t0 < 1.0  # did not wait out the sleep
            assert sup.respawns == 1
            assert ledger.counters["compute_respawns"] == 1
            # the pool respawn is recorded first (inside the abandonment),
            # then the timeout itself
            assert [e["kind"] for e in ledger.events] == [
                "compute_respawn", "compute_timeout"
            ]
            # the replacement pool serves the next request immediately
            assert await sup.run(lambda: "ok") == "ok"
            sup.shutdown(wait=False)

        run(scenario())

    def test_fault_plan_crash_delay_and_fail(self):
        async def scenario():
            ledger = CostLedger()
            plan = FaultPlan.parse(
                "crash:step=0;delay:op=compute,index=1,seconds=0.05;fail:op=compute,index=2"
            )
            sup = ComputeSupervisor(faults=plan, ledger=ledger)
            with pytest.raises(ComputeFailed, match="injected compute crash"):
                await sup.run(lambda: 1)  # request #0 dies before any work
            t0 = time.perf_counter()
            assert await sup.run(lambda: 2) == 2  # request #1 runs, delayed
            assert time.perf_counter() - t0 >= 0.05
            ran = []
            with pytest.raises(ComputeFailed, match="after the work"):
                await sup.run(lambda: ran.append(True))  # request #2 works, then dies
            assert ran == [True]  # the mid-request-kill shape: work done, result lost
            assert await sup.run(lambda: 3) == 3  # one-shot faults: request #3 clean
            events = [e["kind"] for e in ledger.events]
            assert events == ["injected_compute_crash", "injected_compute_delay",
                              "injected_compute_failure"]
            sup.shutdown()

        run(scenario())

    def test_compute_exception_maps_to_compute_failed(self):
        async def scenario():
            sup = ComputeSupervisor()

            def boom():
                raise ValueError("numerical nonsense")

            with pytest.raises(ComputeFailed, match="ValueError: numerical nonsense"):
                await sup.run(boom)
            sup.shutdown()

        run(scenario())


# ---------------------------------------------------------------------------
# Service integration: overload, breaker, deadline, idempotency (tier 1)
# ---------------------------------------------------------------------------


class TestServiceResilience:
    def test_overload_sheds_immediately_and_health_reports(self, pts):
        """max_inflight=1 + a slow compute: the flood is shed, not queued."""

        async def scenario():
            svc = PartitionService(
                max_inflight=1, max_queue=0,
                faults=FaultPlan.parse("delay:op=compute,index=0,seconds=0.4"),
            )
            ds = (await svc.register_dataset(pts))["dataset_id"]
            slow = asyncio.create_task(svc.partition(ds, 4, seed=0))
            await asyncio.sleep(0.1)  # the delayed compute now holds the slot
            health = await svc.health()
            assert health["status"] == "ok"
            assert health["inflight"] == 1 and health["max_inflight"] == 1
            shed_hints = []
            for seed in (1, 2, 3):
                with pytest.raises(ServiceOverloaded) as info:
                    await svc.partition(ds, 4, seed=seed)
                shed_hints.append(info.value.retry_after_ms)
            assert all(isinstance(h, int) and h >= 1 for h in shed_hints)
            result = await slow  # the admitted request still completes
            health = await svc.health()
            assert health["requests_shed"] == 3
            assert health["inflight"] == 0 and health["queue_depth"] == 0
            # shed requests retried later succeed and stay bit-identical
            retried = await svc.partition(ds, 4, seed=1)
            await svc.drain()
            return result, retried

        result, retried = run(scenario())
        assert same_result(result, GeographerPartitioner().partition(
            pts, 4, epsilon=0.03, rng=0))
        assert same_result(retried, GeographerPartitioner().partition(
            pts, 4, epsilon=0.03, rng=1))

    def test_breaker_opens_after_consecutive_failures_then_recovers(self, pts):
        async def scenario():
            svc = PartitionService(
                breaker_threshold=2, breaker_reset=0.1,
                faults=FaultPlan.parse("fail:op=compute,index=0;fail:op=compute,index=1"),
            )
            ds = (await svc.register_dataset(pts))["dataset_id"]
            for seed in (0, 1):
                with pytest.raises(ComputeFailed):
                    await svc.partition(ds, 4, seed=seed)
            with pytest.raises(BreakerOpen, match="is open after 2 consecutive"):
                await svc.partition(ds, 4, seed=2)
            health = await svc.health()
            assert health["breakers"][ds]["state"] == "open"
            await asyncio.sleep(0.15)  # reset window: half-open probe allowed
            probe = await svc.partition(ds, 4, seed=2)
            health = await svc.health()
            assert health["breakers"][ds]["state"] == "closed"
            assert len(svc.ledger.events_of("breaker_opened")) == 1
            # the failed requests, retried after recovery, are bit-identical
            r0 = await svc.partition(ds, 4, seed=0)
            await svc.drain()
            return probe, r0

        probe, r0 = run(scenario())
        assert same_result(probe, GeographerPartitioner().partition(
            pts, 4, epsilon=0.03, rng=2))
        assert same_result(r0, GeographerPartitioner().partition(
            pts, 4, epsilon=0.03, rng=0))

    def test_deadline_cancels_request_but_not_state(self, pts):
        """A deadline_ms expiry answers deadline_exceeded; the retry without a
        deadline is bit-identical (nothing committed on the cancelled try)."""

        async def scenario():
            svc = PartitionService(
                faults=FaultPlan.parse("delay:op=compute,index=0,seconds=0.5"),
            )
            server = PartitionServer(svc, "/nonexistent.sock")
            ds = (await svc.register_dataset(pts))["dataset_id"]
            resp = await server._dispatch(
                {"op": "partition", "dataset_id": ds, "k": 4, "seed": 0,
                 "deadline_ms": 50}
            )
            assert resp["status"] == "error"
            assert resp["code"] == "deadline_exceeded"
            assert resp["retryable"] is False
            assert "50" in resp["error"]
            # the abandoned compute wedged the 1-thread pool; it was respawned
            assert svc._supervisor.respawns == 1
            resp2 = await server._dispatch(
                {"op": "partition", "dataset_id": ds, "k": 4, "seed": 0}
            )
            assert resp2["status"] == "ok"
            await svc.drain()
            return resp2["value"]

        served = run(scenario())
        assert same_result(served, GeographerPartitioner().partition(
            pts, 4, epsilon=0.03, rng=0))

    def test_deadline_cancelled_session_step_retries_bit_identically(self, pts):
        n = pts.shape[0]
        delta = np.linspace(0, 1, n)

        async def scenario():
            svc = PartitionService(
                faults=FaultPlan.parse("delay:op=compute,index=1,seconds=0.5"),
            )
            server = PartitionServer(svc, "/nonexistent.sock")
            ds = (await svc.register_dataset(pts))["dataset_id"]
            sid = (await svc.open_session(ds, 6, seed=9))["session_id"]
            await svc.repartition(sid)  # step 0, compute #0
            resp = await server._dispatch(
                {"op": "repartition", "session_id": sid, "weight_delta": delta,
                 "request_id": "step1-try1", "deadline_ms": 50}
            )
            assert resp["code"] == "deadline_exceeded"
            # retry of the same logical step: same rng, same inputs
            r1 = await svc.repartition(sid, weight_delta=delta, request_id="step1-try2")
            await svc.drain()
            return r1

        r1 = run(scenario())
        p = GeographerPartitioner()
        d0 = p.partition(pts, 6, epsilon=0.03, rng=9)
        d1 = p.repartition(d0, pts, 6, np.ones(n) + delta, 0.03, rng=10)
        assert same_result(r1, d1)

    def test_repartition_request_id_replays_committed_step(self, pts):
        n = pts.shape[0]
        delta = np.linspace(0, 1, n)

        async def scenario():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts))["dataset_id"]
            sid = (await svc.open_session(ds, 4, seed=1))["session_id"]
            r1 = await svc.repartition(sid, weight_delta=delta, request_id="abc")
            # a retry of the same request (lost reply) must not re-apply delta
            r2 = await svc.repartition(sid, weight_delta=delta, request_id="abc")
            assert r2 is r1
            stats = await svc.stats()
            assert stats["counters"]["idempotent_replays"] == 1
            assert stats["counters"]["repartitions_served"] == 1
            closed = await svc.close_session(sid)
            assert closed["steps"] == 1  # committed exactly once
            await svc.drain()
            return r1

        r1 = run(scenario())
        d = GeographerPartitioner().partition(pts, 4, np.ones(n) + delta,
                                              epsilon=0.03, rng=1)
        assert same_result(r1, d)

    def test_failed_session_step_commits_nothing(self, pts):
        """A mid-request compute kill leaves the session at its old step; the
        retry recomputes the same step bit-identically (the chaos-gate core)."""
        n = pts.shape[0]
        delta = np.linspace(0, 1, n)

        async def scenario():
            svc = PartitionService(
                faults=FaultPlan.parse("fail:op=compute,index=1"),
            )
            ds = (await svc.register_dataset(pts))["dataset_id"]
            sid = (await svc.open_session(ds, 6, seed=4))["session_id"]
            await svc.repartition(sid)  # step 0, compute #0
            with pytest.raises(ComputeFailed, match="after the work"):
                await svc.repartition(sid, weight_delta=delta)  # compute #1 dies
            retry = await svc.repartition(sid, weight_delta=delta)
            closed = await svc.close_session(sid)
            assert closed["steps"] == 2
            await svc.drain()
            return retry

        retry = run(scenario())
        p = GeographerPartitioner()
        d0 = p.partition(pts, 6, epsilon=0.03, rng=4)
        d1 = p.repartition(d0, pts, 6, np.ones(n) + delta, 0.03, rng=5)
        assert same_result(retry, d1)

    def test_drain_sheds_queue_and_rejects_with_shutting_down(self, pts):
        async def scenario():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts))["dataset_id"]
            await svc.partition(ds, 4)
            await svc.drain(grace=5.0)
            with pytest.raises(ShuttingDown, match="draining"):
                await svc.partition(ds, 4)
            health = await svc.health()
            assert health["status"] == "draining"
            payload = error_payload(ShuttingDown("service is draining/closed"))
            assert payload["code"] == "shutting_down" and payload["retryable"]

        run(scenario())


# ---------------------------------------------------------------------------
# Protocol framing edge cases (tier 1: in-memory streams + socketpairs)
# ---------------------------------------------------------------------------


class TestProtocolFraming:
    def test_roundtrip_with_numpy_payload(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "x", "arr": np.arange(6).reshape(2, 3)}
            send_frame(a, payload)
            got = recv_frame(b, timeout=5.0)
            assert np.array_equal(got["arr"], payload["arr"])
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(_HEADER.pack(MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_frame(b, timeout=5.0)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_is_clean_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(_HEADER.pack(100) + b"only a few bytes")
            a.close()
            with pytest.raises(ProtocolError, match="closed mid-frame"):
                recv_frame(b, timeout=5.0)
        finally:
            b.close()

    def test_garbage_payload_is_clean_error(self):
        a, b = socket.socketpair()
        try:
            junk = b"\x00\xff\x13garbage"
            a.sendall(_HEADER.pack(len(junk)) + junk)
            with pytest.raises(ProtocolError, match="undecodable frame payload"):
                recv_frame(b, timeout=5.0)
        finally:
            a.close()
            b.close()

    def test_stalled_peer_times_out_instead_of_hanging(self):
        a, b = socket.socketpair()
        try:
            a.sendall(_HEADER.pack(64) + b"partial")  # then silence
            t0 = time.perf_counter()
            with pytest.raises(ProtocolTimeout, match="peer stalled"):
                recv_frame(b, timeout=0.1)
            assert time.perf_counter() - t0 < 5.0
        finally:
            a.close()
            b.close()

    def test_async_reader_rejects_garbage_and_oversize(self):
        async def scenario():
            reader = asyncio.StreamReader()
            junk = b"\x93NUMPY-not-pickle"
            reader.feed_data(_HEADER.pack(len(junk)) + junk)
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="undecodable"):
                await read_frame(reader)
            reader2 = asyncio.StreamReader()
            reader2.feed_data(_HEADER.pack(MAX_FRAME_BYTES + 7))
            reader2.feed_eof()
            with pytest.raises(ProtocolError, match="exceeds"):
                await read_frame(reader2)

        run(scenario())

    def test_protocol_error_is_structured(self):
        payload = error_payload(ProtocolError("undecodable frame payload: ..."))
        assert payload["code"] == "bad_frame"
        assert payload["retryable"] is False


# ---------------------------------------------------------------------------
# Live-socket edge cases (dedicated `service` CI job)
# ---------------------------------------------------------------------------


@pytest.mark.service
class TestSocketEdgeCases:
    def test_malformed_frames_get_structured_reply_then_disconnect(self, tmp_path):
        from repro.service.loadtest import start_background_server

        sock_path = tmp_path / "svc.sock"
        thread = start_background_server(sock_path)
        try:
            for bad in (
                _HEADER.pack(5) + b"xxxxx",  # garbage payload
                _HEADER.pack(MAX_FRAME_BYTES + 1),  # oversized header
            ):
                raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                raw.connect(os.fspath(sock_path))
                raw.sendall(bad)
                reply = recv_frame(raw, timeout=10.0)
                assert reply["status"] == "error"
                assert reply["code"] == "bad_frame"
                assert reply["retryable"] is False
                assert raw.recv(1) == b""  # server closed the broken stream
                raw.close()
            # the server survived both broken connections
            from repro.service.client import ServiceClient

            with ServiceClient(sock_path) as client:
                assert client.ping() == "pong"
                client.shutdown()
        finally:
            thread.join(timeout=30.0)
        assert not thread.is_alive()

    def test_mid_frame_disconnect_leaves_server_healthy(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.loadtest import start_background_server

        sock_path = tmp_path / "svc.sock"
        thread = start_background_server(sock_path)
        try:
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(os.fspath(sock_path))
            raw.sendall(_HEADER.pack(1000) + b"half a frame")
            raw.close()  # truncated: EOF mid-frame
            with ServiceClient(sock_path) as client:
                assert client.ping() == "pong"
                client.shutdown()
        finally:
            thread.join(timeout=30.0)

    def test_pipelined_requests_on_one_connection(self, pts, tmp_path):
        """Many requests written before any reply is read: every reply arrives
        in order, none hang, and results stay bit-identical."""
        from repro.service.client import ServiceClient
        from repro.service.loadtest import start_background_server

        sock_path = tmp_path / "svc.sock"
        thread = start_background_server(sock_path)
        try:
            with ServiceClient(sock_path) as setup:
                ds = setup.register_dataset(pts)["dataset_id"]
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(os.fspath(sock_path))
            seeds = [0, 1, 0, 2]
            for seed in seeds:
                send_frame(raw, {"op": "partition", "dataset_id": ds, "k": 4,
                                 "seed": seed})
            replies = [recv_frame(raw, timeout=60.0) for _ in seeds]
            raw.close()
            for seed, reply in zip(seeds, replies):
                assert reply["status"] == "ok"
                direct = GeographerPartitioner().partition(pts, 4, epsilon=0.03,
                                                           rng=seed)
                assert same_result(reply["value"], direct)
            with ServiceClient(sock_path) as client:
                client.shutdown()
        finally:
            thread.join(timeout=30.0)

    def test_client_times_out_cleanly_on_unresponsive_server(self, tmp_path):
        """Satellite: a server that accepts but never replies must not hang the
        client thread — the read honours the timeout and raises cleanly."""
        from repro.service.client import ServiceClient, ServiceClientError

        sock_path = tmp_path / "dead.sock"
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(os.fspath(sock_path))
        listener.listen(1)
        accepted = []

        def acceptor():
            conn, _ = listener.accept()
            accepted.append(conn)  # hold it open, never reply

        t = threading.Thread(target=acceptor, daemon=True)
        t.start()
        client = ServiceClient(sock_path, request_timeout=0.2,
                               retry=RetryPolicy(max_attempts=1))
        t0 = time.perf_counter()
        with pytest.raises(ServiceClientError) as info:
            client.ping()
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0  # did not block forever
        assert info.value.code == "connection"
        assert info.value.retryable is True
        assert client._sock is None  # the dead connection was dropped
        client.close()
        for conn in accepted:
            conn.close()
        listener.close()


# ---------------------------------------------------------------------------
# Chaos against live servers (dedicated `chaos_service` CI job)
# ---------------------------------------------------------------------------


def _spawn_server(sock, ckpt=None, extra_env=None, *extra_args):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    if extra_env:
        env.update(extra_env)
    argv = [sys.executable, "-m", "repro", "serve", os.fspath(sock)]
    if ckpt is not None:
        argv += ["--checkpoint-dir", os.fspath(ckpt)]
    argv += list(extra_args)
    return subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)


@pytest.mark.chaos_service
class TestChaosService:
    def test_compute_killed_mid_request_retrying_client_bit_identical(
        self, pts, tmp_path, monkeypatch
    ):
        """A fault plan kills the live server's compute mid-request (work done,
        result discarded) and delays another; the retrying client still gets
        results bit-identical to direct calls, with zero leaked segments."""
        from repro.service.client import ServiceClient
        from repro.service.loadtest import start_background_server

        before = leaked_resources()
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "fail:op=compute,index=0;delay:op=compute,index=2,seconds=0.2",
        )
        sock_path = tmp_path / "svc.sock"
        thread = start_background_server(sock_path)
        try:
            with ServiceClient(sock_path, request_timeout=60.0,
                               retry=RetryPolicy(max_attempts=4, seed=0)) as client:
                ds = client.register_dataset(pts)["dataset_id"]
                r0 = client.partition(ds, 5, seed=0)  # compute #0 dies -> retried
                assert client.retries_total >= 1
                r1 = client.partition(ds, 5, seed=1)  # compute #2 is delayed
                health = client.health()
                assert health["status"] == "ok"
                client.shutdown()
        finally:
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        for seed, served in ((0, r0), (1, r1)):
            direct = GeographerPartitioner().partition(pts, 5, epsilon=0.03, rng=seed)
            assert same_result(served, direct), f"seed {seed} diverged under chaos"
        assert_no_leaks(before)

    def test_session_steps_survive_compute_kills_under_fault_plan(
        self, pts, tmp_path, monkeypatch
    ):
        """Session repartitions with deltas, with compute kills sprinkled in:
        the request_id replay + commit-after-compute machinery keeps the whole
        delta sequence bit-identical to an uninterrupted direct run."""
        from repro.service.client import ServiceClient
        from repro.service.loadtest import start_background_server

        n = pts.shape[0]
        deltas = [np.linspace(0, 1, n), np.linspace(1, 0, n)]
        before = leaked_resources()
        monkeypatch.setenv(
            "REPRO_FAULTS", "fail:op=compute,index=1;fail:op=compute,index=3"
        )
        sock_path = tmp_path / "svc.sock"
        thread = start_background_server(sock_path, checkpoint_dir=tmp_path / "ckpt")
        try:
            with ServiceClient(sock_path, request_timeout=60.0,
                               retry=RetryPolicy(max_attempts=4, seed=1)) as client:
                ds = client.register_dataset(pts)["dataset_id"]
                sid = client.open_session(ds, 6, seed=7)["session_id"]
                r0 = client.repartition(sid)  # compute #0 ok, #1 dies on retryable ops
                r1 = client.repartition(sid, weight_delta=deltas[0])
                r2 = client.repartition(sid, weight_delta=deltas[1])
                assert client.retries_total >= 2  # both kills were retried through
                client.shutdown()
        finally:
            thread.join(timeout=30.0)
        p = GeographerPartitioner()
        d0 = p.partition(pts, 6, epsilon=0.03, rng=7)
        d1 = p.repartition(d0, pts, 6, np.ones(n) + deltas[0], 0.03, rng=8)
        d2 = p.repartition(d1, pts, 6, np.ones(n) + deltas[0] + deltas[1], 0.03, rng=9)
        assert same_result(r0, d0)
        assert same_result(r1, d1)
        assert same_result(r2, d2)
        assert_no_leaks(before)

    def test_sigkilled_server_under_load_converges_bit_identically(self, pts, tmp_path):
        """SIGKILL the server while concurrent clients hammer it, restart it on
        the same socket: every client converges (reconnect + re-register +
        retry), all results bit-identical, no hangs, no leaked segments."""
        from repro.service.client import ServiceClient, ServiceClientError

        before = leaked_resources()
        sock_path = tmp_path / "svc.sock"
        ckpt = tmp_path / "ckpt"
        proc = _spawn_server(sock_path, ckpt)
        procs = [proc]
        n_clients, per_client, n_seeds = 6, 3, 3
        results: dict[int, object] = {}
        errors: list[str] = []
        lock = threading.Lock()
        dataset_box: dict[str, str] = {}

        def register(client):
            return client.register_dataset(pts, dataset_id="ds-chaos")["dataset_id"]

        def worker(idx):
            try:
                client = ServiceClient(
                    sock_path, connect_timeout=60.0, request_timeout=60.0,
                    retry=RetryPolicy(max_attempts=8, base_delay=0.05, seed=idx),
                )
                for r in range(per_client):
                    req_seed = (idx + r) % n_seeds
                    for _ in range(10):
                        try:
                            served = client.partition(dataset_box["id"], 5,
                                                      seed=req_seed)
                            break
                        except ServiceClientError as exc:
                            # the restarted server has an empty registry:
                            # re-register (idempotent) and go again
                            if exc.code == "bad_request" and "unknown dataset" in str(exc):
                                register(client)
                                continue
                            raise
                    else:
                        raise RuntimeError(f"seed {req_seed} never converged")
                    with lock:
                        first = results.setdefault(req_seed, served)
                        if not same_result(first, served):
                            errors.append(f"seed {req_seed}: divergent responses")
                client.close()
            except Exception as exc:
                with lock:
                    errors.append(f"client {idx}: {type(exc).__name__}: {exc}")

        try:
            with ServiceClient(sock_path, connect_timeout=60.0) as setup:
                dataset_box["id"] = register(setup)
            workers = [threading.Thread(target=worker, args=(i,), daemon=True)
                       for i in range(n_clients)]
            for w in workers:
                w.start()
            time.sleep(0.25)  # let load build, then pull the rug
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30.0)
            proc2 = _spawn_server(sock_path, ckpt)
            procs.append(proc2)
            deadline = time.monotonic() + 120.0
            for w in workers:
                w.join(timeout=max(0.0, deadline - time.monotonic()))
            hung = [i for i, w in enumerate(workers) if w.is_alive()]
            assert not hung, f"worker threads hung: {hung}"
            assert errors == []
            with ServiceClient(sock_path, connect_timeout=60.0) as closer:
                closer.shutdown()
            proc2.wait(timeout=30.0)
        finally:
            for p in procs:
                if p.poll() is None:
                    p.kill()
                    p.wait(timeout=30.0)
        for req_seed, served in sorted(results.items()):
            direct = GeographerPartitioner().partition(pts, 5, epsilon=0.03,
                                                       rng=req_seed)
            assert same_result(served, direct), f"seed {req_seed} diverged across kill"
        assert_no_leaks(before)

    def test_overload_flood_is_bounded_and_health_stays_responsive(
        self, pts, tmp_path, monkeypatch
    ):
        """max-inflight=1 + slow computes + a flood: excess requests shed
        immediately with overloaded/retry_after_ms, health answers throughout,
        and retrying clients all converge bit-identically."""
        from repro.service.client import ServiceClient, ServiceClientError
        from repro.service.loadtest import start_background_server

        before = leaked_resources()
        monkeypatch.setenv(
            "REPRO_FAULTS",
            ";".join(f"delay:op=compute,index={i},seconds=0.4" for i in range(2)),
        )
        sock_path = tmp_path / "svc.sock"
        thread = start_background_server(sock_path, max_inflight=1, max_queue=0)
        try:
            with ServiceClient(sock_path, request_timeout=60.0) as setup:
                ds = setup.register_dataset(pts)["dataset_id"]

            slow_done = threading.Event()

            def slow_request():
                with ServiceClient(sock_path, request_timeout=60.0) as c:
                    c.partition(ds, 4, seed=0)
                slow_done.set()

            t = threading.Thread(target=slow_request, daemon=True)
            t.start()
            with ServiceClient(sock_path, request_timeout=60.0) as probe:
                for _ in range(100):  # wait until the slow compute holds the slot
                    if probe.health()["inflight"] >= 1:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("slow request never became in-flight")
                # no-retry client: the shed must be immediate and structured
                noretry = ServiceClient(sock_path, request_timeout=60.0,
                                        retry=RetryPolicy(max_attempts=1))
                t0 = time.perf_counter()
                with pytest.raises(ServiceClientError) as info:
                    noretry.partition(ds, 4, seed=1)
                assert time.perf_counter() - t0 < 0.35  # shed, not queued behind 0.4s
                assert info.value.code == "overloaded"
                assert isinstance(info.value.retry_after_ms, int)
                noretry.close()
                health = probe.health()  # health answers during saturation
                assert health["max_inflight"] == 1
                assert health["requests_shed"] >= 1
            # a retrying client converges once the flood passes
            with ServiceClient(sock_path, request_timeout=60.0,
                               retry=RetryPolicy(max_attempts=8, seed=3)) as client:
                served = client.partition(ds, 4, seed=1)
                client.shutdown()
            assert slow_done.wait(timeout=30.0)
            t.join(timeout=30.0)
        finally:
            thread.join(timeout=30.0)
        direct = GeographerPartitioner().partition(pts, 4, epsilon=0.03, rng=1)
        assert same_result(served, direct)
        assert_no_leaks(before)
