"""Tests for the virtual communicator (SPMD simulation substrate)."""

import numpy as np
import pytest

from repro.runtime.comm import CostLedger, VirtualComm
from repro.runtime.costmodel import MachineModel


def _comm(p=4):
    return VirtualComm(p, MachineModel(alpha=1e-6, beta=1e-9))


class TestLedger:
    def test_totals(self):
        led = CostLedger()
        led.charge_compute(1.0, "a")
        led.charge_comm(0.5, "allreduce", "a")
        assert led.total_seconds == 1.5
        assert led.stages["a"] == 1.5
        assert led.collectives["allreduce"] == 0.5

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge_compute(1.0, "x")
        b.charge_compute(2.0, "x")
        b.charge_comm(1.0, "allgather")
        a.merge(b)
        assert a.compute_seconds == 3.0
        assert a.stages["x"] == 3.0

    def test_counters(self):
        led = CostLedger()
        assert led.count("cache_hit") == 1
        assert led.count("cache_hit") == 2
        assert led.count("cache_miss", 3) == 3
        other = CostLedger()
        other.count("cache_hit", 5)
        led.merge(other)
        assert led.counters == {"cache_hit": 7, "cache_miss": 3}


class TestRunLocal:
    def test_results_per_rank(self):
        comm = _comm()
        results = comm.run_local(lambda r: r * r)
        assert results == [0, 1, 4, 9]

    def test_charges_max_not_sum(self):
        import time

        comm = _comm(2)

        def slow_rank(r):
            time.sleep(0.01 if r == 0 else 0.0)
            return r

        comm.run_local(slow_rank)
        # total charge ~ 0.01 (the max), not ~0.01 + small
        assert 0.009 < comm.ledger.compute_seconds < 0.05

    def test_supersteps_counted(self):
        comm = _comm()
        comm.run_local(lambda r: None)
        comm.run_local(lambda r: None)
        assert comm.ledger.supersteps == 2


class TestCollectives:
    def test_allreduce_sum(self):
        comm = _comm()
        arrays = [np.full(3, float(r)) for r in range(4)]
        out = comm.allreduce(arrays)
        assert np.allclose(out, 6.0)
        assert comm.ledger.comm_seconds > 0

    def test_allreduce_shape_check(self):
        comm = _comm()
        with pytest.raises(ValueError):
            comm.allreduce([np.zeros(2)] * 3)

    def test_allgather_concat(self):
        comm = _comm(3)
        out = comm.allgather([np.array([r]) for r in range(3)])
        assert out.tolist() == [0, 1, 2]

    def test_alltoallv_exchange(self):
        comm = _comm(2)
        send = [
            [np.array([0.0]), np.array([1.0, 1.0])],
            [np.array([10.0]), np.array([11.0])],
        ]
        recv = comm.alltoallv(send)
        assert recv[0].tolist() == [0.0, 10.0]
        assert recv[1].tolist() == [1.0, 1.0, 11.0]

    def test_alltoallv_preserves_rank_order(self):
        """Concatenation happens in rank order (needed by distsort)."""
        comm = _comm(3)
        send = [[np.array([float(i * 10 + j)]) for j in range(3)] for i in range(3)]
        recv = comm.alltoallv(send)
        assert recv[1].tolist() == [1.0, 11.0, 21.0]

    def test_stage_attribution(self):
        comm = _comm()
        comm.set_stage("phase1")
        comm.allreduce([np.zeros(1)] * 4)
        assert "phase1" in comm.ledger.stages

    def test_broadcast(self):
        comm = _comm()
        out = comm.broadcast(np.arange(3))
        assert out.tolist() == [0, 1, 2]

    def test_modeled_compute(self):
        comm = VirtualComm(4, MachineModel(compute_rate=1e6))
        comm.charge_modeled_compute(1e6)
        assert comm.ledger.compute_seconds == pytest.approx(1.0)

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            VirtualComm(0)
