"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "hugetric"])
        assert args.k == 16 and args.tool == "Geographer"

    def test_scaling_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scaling", "diagonal"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Geographer" in out and "hugetric" in out and "fesom" in out

    def test_partition_instance(self, capsys):
        assert main(["partition", "delaunay2d_s", "-k", "4", "--scale", "0.05", "--tool", "RCB"]) == 0
        out = capsys.readouterr().out
        assert "RCB" in out and "totComm" in out

    def test_partition_with_shape(self, capsys):
        assert main(["partition", "delaunay2d_s", "-k", "4", "--scale", "0.05", "--shape"]) == 0
        assert "max_aspect" in capsys.readouterr().out

    def test_partition_unknown_instance(self):
        with pytest.raises(SystemExit, match="unknown instance"):
            main(["partition", "atlantis"])

    def test_partition_metis_file(self, tmp_path, capsys):
        from repro.mesh.grid import grid_mesh
        from repro.mesh.io import write_coords, write_metis

        mesh = grid_mesh((12, 12))
        gpath = str(tmp_path / "g.graph")
        write_metis(mesh, gpath)
        write_coords(mesh.coords, str(tmp_path / "g.xyz"))
        assert main(["partition", gpath, "-k", "4", "--tool", "HSFC"]) == 0
        assert "HSFC" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "NACA0015", "-k", "4", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for tool in ("Geographer", "HSFC", "MultiJagged", "RCB", "RIB"):
            assert tool in out

    def test_visualize(self, tmp_path, capsys):
        out_path = str(tmp_path / "part.svg")
        assert main(["visualize", "hugetric", out_path, "-k", "4", "--scale", "0.05"]) == 0
        assert open(out_path).read().startswith("<svg")

    def test_scaling_weak(self, capsys):
        assert main(["scaling", "weak", "--ranks", "32", "128"]) == 0
        out = capsys.readouterr().out
        assert "p=32" in out and "p=128" in out

    def test_experiments_components(self, capsys):
        assert main(["experiments", "components"]) == 0
        assert "redistribute" in capsys.readouterr().out

    def test_hierarchical(self, capsys):
        assert main(["hierarchical", "delaunay2d_s", "--levels", "2x2",
                     "--scale", "0.05", "--tool", "RCB"]) == 0
        out = capsys.readouterr().out
        assert "level 0" in out and "level 1" in out and "k=4" in out

    def test_hierarchical_bad_levels(self):
        with pytest.raises(SystemExit, match="bad --levels"):
            main(["hierarchical", "delaunay2d_s", "--levels", "two-by-two", "--scale", "0.05"])

    def test_repartition(self, capsys):
        assert main(["repartition", "-n", "800", "-k", "4", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "iters warm" in out and "migr cold" in out
