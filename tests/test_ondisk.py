"""Out-of-core runner: bit-identity with the in-memory path, resume, dispatch."""

import numpy as np
import pytest

from repro.core.config import BalancedKMeansConfig
from repro.io.sharded import ShardedDataset, write_sharded
from repro.runtime.checkpoint import CheckpointMismatchError, CheckpointStore
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
from repro.runtime.ondisk import ondisk_distributed_kmeans

CFG = BalancedKMeansConfig(epsilon=0.02)


def _points(n=600, dim=2, seed=11):
    rng = np.random.default_rng(seed)
    return rng.random((n, dim)), 0.5 + rng.random(n)


def _assert_same_partition(mem, dsk):
    assert mem.iterations == dsk.iterations
    assert mem.converged == dsk.converged
    assert np.array_equal(mem.assignment, np.asarray(dsk.assignment))
    assert mem.centers.tobytes() == dsk.centers.tobytes()
    assert mem.influence.tobytes() == dsk.influence.tobytes()
    assert mem.block_weights is not None and dsk.block_weights is not None
    assert mem.block_weights.tobytes() == dsk.block_weights.tobytes()


class TestBitIdentity:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_virtual_backend_matches_in_memory(self, tmp_path, p):
        pts, w = _points()
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=173)
        mem = distributed_balanced_kmeans(pts, 4, p, weights=w, config=CFG, rng=7)
        dsk = ondisk_distributed_kmeans(ds, 4, p, config=CFG, rng=7)
        _assert_same_partition(mem, dsk)

    def test_unweighted(self, tmp_path):
        pts, _ = _points(seed=3)
        ds = write_sharded(tmp_path / "ds", pts, shard_rows=250)
        mem = distributed_balanced_kmeans(pts, 5, 3, config=CFG, rng=1)
        dsk = ondisk_distributed_kmeans(ds, 5, 3, config=CFG, rng=1)
        _assert_same_partition(mem, dsk)

    def test_with_sampled_init_rounds(self, tmp_path):
        # n/p > 2 * initial_sample_size so the doubling rounds actually run
        pts, w = _points(n=1200, seed=5)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=333)
        mem = distributed_balanced_kmeans(pts, 6, 2, weights=w, config=CFG, rng=9)
        dsk = ondisk_distributed_kmeans(ds, 6, 2, config=CFG, rng=9)
        _assert_same_partition(mem, dsk)

    def test_shard_layout_does_not_matter(self, tmp_path):
        pts, w = _points(seed=21)
        a = write_sharded(tmp_path / "a", pts, weights=w, shard_rows=64)
        b = write_sharded(tmp_path / "b", pts, weights=w, shard_rows=600)
        ra = ondisk_distributed_kmeans(a, 4, 2, config=CFG, rng=2)
        rb = ondisk_distributed_kmeans(b, 4, 2, config=CFG, rng=2)
        assert np.array_equal(ra.assignment, rb.assignment)
        assert ra.centers.tobytes() == rb.centers.tobytes()

    @pytest.mark.process_backend
    def test_process_backend_matches_in_memory(self, tmp_path):
        pts, w = _points()
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=173)
        mem = distributed_balanced_kmeans(pts, 4, 2, weights=w, config=CFG, rng=7)
        dsk = ondisk_distributed_kmeans(ds, 4, 2, config=CFG, rng=7, backend="process")
        _assert_same_partition(mem, dsk)


class TestDispatch:
    def test_dataset_routes_to_ondisk_runner(self, tmp_path):
        pts, w = _points(seed=13)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=200)
        via_dispatch = distributed_balanced_kmeans(ds, 4, 2, config=CFG, rng=4)
        direct = ondisk_distributed_kmeans(ds, 4, 2, config=CFG, rng=4)
        assert np.array_equal(via_dispatch.assignment, direct.assignment)
        assert via_dispatch.centers.tobytes() == direct.centers.tobytes()

    def test_path_string_accepted(self, tmp_path):
        pts, _ = _points(n=200, seed=17)
        write_sharded(tmp_path / "ds", pts, shard_rows=90)
        result = ondisk_distributed_kmeans(str(tmp_path / "ds"), 3, 2, config=CFG, rng=0)
        assert np.asarray(result.assignment).shape == (200,)

    def test_weights_argument_rejected_with_dataset(self, tmp_path):
        pts, w = _points(n=120, seed=19)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=60)
        with pytest.raises(ValueError, match="weights"):
            distributed_balanced_kmeans(ds, 3, 2, weights=w, config=CFG, rng=0)


class TestOndiskResume:
    def test_resume_from_every_checkpoint_is_bit_identical(self, tmp_path):
        pts, w = _points(seed=23)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=211)
        full = ondisk_distributed_kmeans(ds, 4, 2, config=CFG, rng=7)
        store = CheckpointStore(tmp_path / "ckpt", keep=100)
        checkpointed = ondisk_distributed_kmeans(ds, 4, 2, config=CFG, rng=7, checkpoint=store)
        _assert_same_partition(checkpointed, full)
        assert store.candidates()
        for path in store.candidates():
            resumed = ondisk_distributed_kmeans(ds, 4, 2, config=CFG, rng=7,
                                                resume_from=str(path))
            _assert_same_partition(resumed, full)

    @pytest.mark.parametrize("p_resume", [1, 3])
    def test_resume_on_different_rank_count(self, tmp_path, p_resume):
        pts, w = _points(seed=29)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=211)
        full = ondisk_distributed_kmeans(ds, 4, 2, config=CFG, rng=7)
        store = CheckpointStore(tmp_path / "ckpt", keep=100)
        ondisk_distributed_kmeans(ds, 4, 2, config=CFG, rng=7, checkpoint=store)
        mid = store.candidates()[len(store.candidates()) // 2]
        resumed = ondisk_distributed_kmeans(ds, 4, p_resume, config=CFG, rng=7,
                                            resume_from=str(mid))
        _assert_same_partition(resumed, full)
        assert resumed.nranks == 2  # logical shard count pinned by the snapshot

    def test_resume_rejects_a_different_dataset(self, tmp_path):
        pts, w = _points(seed=31)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=211)
        other_pts, other_w = _points(seed=32)
        other = write_sharded(tmp_path / "other", other_pts, weights=other_w, shard_rows=211)
        store = CheckpointStore(tmp_path / "ckpt", keep=100)
        ondisk_distributed_kmeans(ds, 4, 2, config=CFG, rng=7, checkpoint=store)
        with pytest.raises(CheckpointMismatchError):
            ondisk_distributed_kmeans(other, 4, 2, config=CFG, rng=7, resume_from=store)

    def test_checkpoint_meta_records_manifest_digest(self, tmp_path):
        pts, w = _points(n=200, seed=37)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=90)
        store = CheckpointStore(tmp_path / "ckpt")
        ondisk_distributed_kmeans(ds, 3, 2, config=CFG, rng=7, checkpoint=store)
        _, meta = store.load()
        assert meta["kind"] == "distributed-kmeans-ondisk"
        assert meta["data_digest"] == f"sharded:{ds.digest}"


class TestResultShape:
    def test_assignment_is_a_partition_in_original_order(self, tmp_path):
        pts, w = _points(n=240, seed=41)
        ds = write_sharded(tmp_path / "ds", pts, weights=w, shard_rows=100)
        k = 4
        result = ondisk_distributed_kmeans(ds, k, 2, config=CFG, rng=3)
        a = np.asarray(result.assignment)
        assert a.shape == (240,) and a.dtype == np.int64
        assert a.min() >= 0 and a.max() < k
        mem = distributed_balanced_kmeans(pts, k, 2, weights=w, config=CFG, rng=3)
        assert np.array_equal(a, mem.assignment)

    def test_shard_handles_cover_all_points_once(self, tmp_path):
        pts, _ = _points(n=240, seed=43)
        ds = write_sharded(tmp_path / "ds", pts, shard_rows=100)
        result = ondisk_distributed_kmeans(ds, 4, 3, config=CFG, rng=3)
        ids = np.concatenate([h.read() for h in result.shard_ids])
        assert np.array_equal(np.sort(ids), np.arange(240))
        for pts_h, a_h in zip(result.shard_points, result.shard_assignment):
            assert pts_h.rows == a_h.rows
