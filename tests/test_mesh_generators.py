"""Tests for every mesh generator family."""

import numpy as np
import pytest

from repro.mesh.adaptive import hugebubbles_like, hugetrace_like, hugetric_like
from repro.mesh.alya import airway_mesh
from repro.mesh.climate import climate_mesh
from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.fem2d import airfoil_mesh, graded_fem_mesh, naca_half_thickness
from repro.mesh.grid import grid_mesh
from repro.mesh.rgg import connectivity_radius, rgg_mesh


class TestGrid:
    def test_2d_counts(self):
        mesh = grid_mesh((4, 3))
        assert mesh.n == 12
        assert mesh.m == 4 * 2 + 3 * 3  # vertical runs + horizontal runs

    def test_3d_counts(self):
        mesh = grid_mesh((2, 2, 2))
        assert mesh.n == 8
        assert mesh.m == 12  # cube edges

    def test_single_row(self):
        mesh = grid_mesh((5, 1))
        assert mesh.m == 4

    def test_validates(self):
        grid_mesh((3, 3)).validate()

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            grid_mesh((3,))
        with pytest.raises(ValueError):
            grid_mesh((0, 3))


class TestDelaunay:
    def test_2d_structure(self):
        mesh = delaunay_mesh(400, rng=0)
        assert mesh.n == 400
        assert mesh.is_connected()  # Delaunay triangulations are connected
        # planar: m <= 3n - 6
        assert mesh.m <= 3 * mesh.n - 6
        assert mesh.cells is not None and mesh.cells.shape[1] == 3

    def test_3d_structure(self):
        mesh = delaunay_mesh(300, dim=3, rng=1)
        assert mesh.n == 300 and mesh.dim == 3
        assert mesh.is_connected()

    def test_deterministic(self):
        a = delaunay_mesh(100, rng=5)
        b = delaunay_mesh(100, rng=5)
        assert np.array_equal(a.coords, b.coords)
        assert np.array_equal(a.indices, b.indices)

    def test_explicit_points(self):
        pts = np.random.default_rng(0).random((50, 2))
        mesh = delaunay_mesh(0, points=pts)
        assert np.array_equal(mesh.coords, pts)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            delaunay_mesh(2, dim=2)


class TestRgg:
    def test_radius_decreases_with_n(self):
        assert connectivity_radius(10_000, 2) < connectivity_radius(100, 2)

    def test_structure(self):
        mesh = rgg_mesh(500, rng=0)
        assert mesh.n == 500
        # degree should be around pi * factor^2 * log n
        assert 3 < mesh.degrees().mean() < 40

    def test_custom_radius(self):
        dense = rgg_mesh(200, radius=0.3, rng=1)
        sparse = rgg_mesh(200, radius=0.1, rng=1)
        assert dense.m > sparse.m

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            rgg_mesh(100, dim=4)
        with pytest.raises(ValueError):
            rgg_mesh(100, radius=0.0)


class TestAdaptive:
    @pytest.mark.parametrize("gen", [hugetric_like, hugetrace_like])
    def test_connected_and_sized(self, gen):
        mesh = gen(1200, rng=0)
        assert mesh.n == 1200
        assert mesh.is_connected()
        assert mesh.dim == 2

    def test_refinement_contrast(self):
        """Adaptive meshes must have strongly non-uniform density."""
        mesh = hugetric_like(2000, rng=0)
        center = np.array([0.5, 0.5])
        r = np.linalg.norm(mesh.coords - center, axis=1)
        near_front = np.abs(r - 0.3) < 0.05
        frac_near = near_front.mean()
        # the refined band is ~20% of the area but holds far more points
        assert frac_near > 0.35

    def test_bubbles_have_holes(self):
        mesh = hugebubbles_like(2500, n_bubbles=3, rng=1)
        assert mesh.is_connected()  # largest component kept
        # no vertex deep inside a bubble: generator rejects interior points
        assert mesh.n > 1500

    def test_deterministic(self):
        a = hugetrace_like(600, rng=3)
        b = hugetrace_like(600, rng=3)
        assert np.array_equal(a.coords, b.coords)


class TestFem2d:
    def test_naca_profile_shape(self):
        x = np.linspace(0, 1, 50)
        y = naca_half_thickness(x)
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y.max() > 0.05  # thickest around 30% chord
        assert y[-1] == pytest.approx(0.0, abs=2e-3)  # closed-ish trailing edge

    def test_airfoil_mesh_has_hole(self):
        mesh = airfoil_mesh(2500, rng=0)
        assert mesh.is_connected()
        # nothing inside the profile: check no vertex close to the camber line mid-chord
        xf = (mesh.coords[:, 0] - 0.3) / 0.4
        inside_band = (np.abs(xf - 0.4) < 0.1) & (np.abs(mesh.coords[:, 1] - 0.5) < 0.01)
        assert inside_band.sum() == 0

    def test_graded_mesh(self):
        mesh = graded_fem_mesh(1500, n_features=3, rng=1)
        assert mesh.n == 1500
        assert mesh.is_connected()


class TestClimate:
    def test_weights_are_levels(self):
        mesh = climate_mesh(1500, max_levels=47, rng=0)
        w = mesh.node_weights
        assert w.min() >= 1.0
        assert w.max() <= 47.0
        assert np.all(w == np.round(w))
        assert len(np.unique(w)) > 5  # real bathymetry variation

    def test_land_removed(self):
        full = climate_mesh(1500, land_fraction=0.0, rng=1)
        masked = climate_mesh(1500, land_fraction=0.5, rng=1)
        # with land, the mesh covers less area: larger density in ocean
        assert masked.is_connected()
        assert full.is_connected()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            climate_mesh(500, land_fraction=0.95)


class TestAirway:
    def test_structure(self):
        mesh = airway_mesh(2500, levels=2, rng=0)
        assert mesh.dim == 3
        assert mesh.is_connected()
        assert mesh.n > 1500

    def test_elongated_geometry(self):
        """Airways are much taller than wide — the anti-RCB shape."""
        mesh = airway_mesh(2000, levels=1, rng=1)
        extent = mesh.coords.max(axis=0) - mesh.coords.min(axis=0)
        assert extent[2] > 1.5 * min(extent[0], extent[1])

    def test_rejects_negative_levels(self):
        with pytest.raises(ValueError):
            airway_mesh(500, levels=-1)
