"""Tests for the float-point SFC front end."""

import numpy as np
import pytest

from repro.sfc.curves import DEFAULT_BITS, normalize_to_cells, sfc_index


class TestNormalize:
    def test_range(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(-5, 7, size=(500, 2))
        cells = normalize_to_cells(pts, 8)
        assert cells.min() >= 0 and cells.max() <= 255

    def test_degenerate_dimension(self):
        pts = np.column_stack([np.linspace(0, 1, 10), np.zeros(10)])
        cells = normalize_to_cells(pts, 6)
        assert np.all(cells[:, 1] == 0)
        assert len(np.unique(cells[:, 0])) > 1

    def test_explicit_box(self):
        pts = np.array([[0.25, 0.25]])
        cells_own = normalize_to_cells(pts, 4)
        cells_box = normalize_to_cells(pts, 4, box=(np.zeros(2), np.ones(2)))
        assert np.array_equal(cells_own, [[0, 0]])  # own box collapses
        assert np.array_equal(cells_box, [[4, 4]])

    def test_global_box_consistency(self):
        """Two halves of a point set indexed with the global box must agree
        with indexing the whole set at once — the distributed-runtime need."""
        rng = np.random.default_rng(1)
        pts = rng.random((200, 2))
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        whole = sfc_index(pts)
        left = sfc_index(pts[:100], box=(lo, hi))
        right = sfc_index(pts[100:], box=(lo, hi))
        assert np.array_equal(whole, np.concatenate([left, right]))


class TestSfcIndex:
    def test_shapes_and_dtype(self):
        pts = np.random.default_rng(0).random((100, 3))
        ix = sfc_index(pts)
        assert ix.shape == (100,) and ix.dtype == np.int64

    def test_unknown_curve(self):
        with pytest.raises(ValueError, match="unknown curve"):
            sfc_index(np.zeros((2, 2)), curve="peano")

    def test_default_bits(self):
        assert DEFAULT_BITS[2] * 2 <= 62
        assert DEFAULT_BITS[3] * 3 <= 62

    def test_locality_of_sorted_points(self):
        """Consecutive points along the curve should be spatially close."""
        rng = np.random.default_rng(2)
        pts = rng.random((2000, 2))
        order = np.argsort(sfc_index(pts))
        sorted_pts = pts[order]
        consecutive = np.linalg.norm(np.diff(sorted_pts, axis=0), axis=1)
        random_pairs = np.linalg.norm(pts[:-1] - pts[1:], axis=1)
        assert consecutive.mean() < 0.25 * random_pairs.mean()

    def test_morton_dispatch(self):
        pts = np.random.default_rng(3).random((50, 2))
        assert not np.array_equal(sfc_index(pts, "hilbert"), sfc_index(pts, "morton"))
