"""Tests for the partitioning service (:mod:`repro.service`).

The in-process :class:`PartitionService` tests are tier-1 (no sockets, no
subprocesses — every behaviour of the core is reachable through plain
coroutines).  Tests that run real unix-socket servers — including the
``repro serve`` subprocess that gets SIGKILLed and resumed — carry the
``service`` marker and run as their own CI job.

The determinism contract under test everywhere: whatever the service adds
(warm workspaces, batching, coalescing, caching, checkpoint/resume), every
result stays **bit-identical** to calling ``GeographerPartitioner`` directly
with the same inputs.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.core.config import BalancedKMeansConfig
from repro.partitioners.geographer import GeographerPartitioner
from repro.runtime.comm import CostLedger
from repro.runtime.procomm import assert_no_leaks, leaked_resources
from repro.service import LRUResultCache, PartitionService, ServiceError
from repro.service.cache import weights_hash

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def pts():
    return np.random.default_rng(0).random((400, 2))


def same_result(a, b) -> bool:
    return (
        np.array_equal(np.asarray(a.assignment), np.asarray(b.assignment))
        and np.array_equal(np.asarray(a.centers), np.asarray(b.centers))
        and a.imbalance == b.imbalance
    )


# ---------------------------------------------------------------------------
# LRU cache
# ---------------------------------------------------------------------------


class TestCache:
    def test_hit_miss_eviction_counters(self):
        ledger = CostLedger()
        cache = LRUResultCache(capacity=2, ledger=ledger)
        assert cache.get(("a",)) is None
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # freshens "a"
        cache.put(("c",), 3)  # evicts "b", the LRU entry
        assert ("b",) not in cache
        assert cache.get(("a",)) == 1 and cache.get(("c",)) == 3
        assert cache.get(("b",)) is None
        assert ledger.counters["cache_hit"] == 3
        assert ledger.counters["cache_miss"] == 2
        assert ledger.counters["cache_eviction"] == 1
        assert cache.stats["size"] == 2

    def test_zero_capacity_disables(self):
        cache = LRUResultCache(capacity=0)
        cache.put(("a",), 1)
        assert len(cache) == 0 and cache.get(("a",)) is None

    def test_weights_hash_distinguishes(self):
        w = np.ones(10)
        assert weights_hash(None) == "-"
        assert weights_hash(w) == weights_hash(w.copy())
        assert weights_hash(w) != weights_hash(w * 2)
        assert weights_hash(w) != weights_hash(w.astype(np.float32))
        assert weights_hash(w) != weights_hash(w.reshape(2, 5))


# ---------------------------------------------------------------------------
# In-process service core (tier 1)
# ---------------------------------------------------------------------------


class TestServiceCore:
    def test_partition_bit_identical_to_direct(self, pts):
        async def scenario():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts))["dataset_id"]
            served = await svc.partition(ds, 6, epsilon=0.03, seed=3)
            await svc.drain()
            return served

        served = run(scenario())
        direct = GeographerPartitioner().partition(pts, 6, epsilon=0.03, rng=3)
        assert same_result(served, direct)

    def test_register_is_idempotent_and_guards_conflicts(self, pts):
        async def scenario():
            svc = PartitionService()
            a = await svc.register_dataset(pts)
            b = await svc.register_dataset(pts)  # same digest-derived id
            assert a == b
            assert svc.ledger.counters["datasets_registered"] == 1
            assert svc.ledger.counters["dataset_rehits"] == 1
            with pytest.raises(ServiceError, match="different data"):
                await svc.register_dataset(pts * 2, dataset_id=a["dataset_id"])
            with pytest.raises(ServiceError, match="unknown dataset"):
                await svc.partition("nope", 4)
            with pytest.raises(ServiceError, match="points must be"):
                await svc.register_dataset(np.ones((4, 5)))
            with pytest.raises(ServiceError, match="weights shape"):
                await svc.register_dataset(pts, weights=np.ones(3))
            await svc.drain()

        run(scenario())

    def test_cache_hit_returns_cached_result(self, pts):
        async def scenario():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts))["dataset_id"]
            r1 = await svc.partition(ds, 4, seed=0)
            r2 = await svc.partition(ds, 4, seed=0)
            assert r2 is r1  # served straight from the LRU
            stats = await svc.stats()
            assert stats["cache"]["hits"] == 1
            # a different weights array is a different key — no false hits
            r3 = await svc.partition(ds, 4, seed=0, weights=np.ones(pts.shape[0]) * 2)
            assert r3 is not r1
            await svc.drain()

        run(scenario())

    def test_cache_eviction_under_capacity(self, pts):
        async def scenario():
            svc = PartitionService(cache_capacity=2)
            ds = (await svc.register_dataset(pts))["dataset_id"]
            for seed in (0, 1, 2):  # 3 distinct keys through a 2-entry cache
                await svc.partition(ds, 4, seed=seed)
            stats = await svc.stats()
            assert stats["cache"]["evictions"] == 1
            assert stats["cache"]["size"] == 2
            # seed 0 was evicted: re-requesting recomputes (miss), seed 2 hits
            await svc.partition(ds, 4, seed=2)
            await svc.partition(ds, 4, seed=0)
            stats = await svc.stats()
            assert stats["cache"]["hits"] == 1
            assert stats["counters"]["requests_served"] == 4
            await svc.drain()

        run(scenario())

    def test_batched_and_coalesced_requests_bit_identical(self, pts):
        """Concurrent mixed requests: every response equals the direct call."""

        seeds = [0, 1, 2, 0, 1, 2, 0, 0]

        async def scenario():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts))["dataset_id"]
            results = await asyncio.gather(
                *(svc.partition(ds, 5, seed=s) for s in seeds)
            )
            stats = await svc.stats()
            await svc.drain()
            return results, stats

        results, stats = run(scenario())
        # unbatched reference: one fresh partitioner per distinct seed
        direct = {s: GeographerPartitioner().partition(pts, 5, epsilon=0.03, rng=s)
                  for s in set(seeds)}
        for s, served in zip(seeds, results):
            assert same_result(served, direct[s]), f"seed {s} diverged under batching"
        # the burst hit the fast paths: identical requests coalesced onto one
        # computation, distinct ones queued (batched) on the dataset lock
        assert stats["counters"]["coalesced_requests"] >= 1
        assert stats["counters"]["batched_requests"] >= 1
        assert stats["counters"]["requests_served"] == len(set(seeds))
        assert stats["counters"]["workspaces_built"] == 1  # one warm workspace, reused

    def test_session_lifecycle_and_delta_streaming(self, pts):
        """open -> repartition steps with weight deltas -> close, bit-identical."""
        n = pts.shape[0]
        delta1 = np.linspace(0.0, 1.0, n)
        delta2 = np.linspace(1.0, 0.0, n)

        async def scenario():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts))["dataset_id"]
            info = await svc.open_session(ds, 6, epsilon=0.03, seed=5)
            sid = info["session_id"]
            r0 = await svc.repartition(sid)  # cold step, rng = 5
            r1 = await svc.repartition(sid, weight_delta=delta1)  # rng = 6
            r2 = await svc.repartition(sid, weight_delta=delta2)  # rng = 7
            closed = await svc.close_session(sid)
            assert closed["steps"] == 3
            with pytest.raises(ServiceError, match="unknown session"):
                await svc.repartition(sid)
            await svc.drain()
            return r0, r1, r2

        r0, r1, r2 = run(scenario())
        # the exact sequence a client would have run directly, one step at a time
        p = GeographerPartitioner()
        d0 = p.partition(pts, 6, epsilon=0.03, rng=5)
        d1 = p.repartition(d0, pts, 6, np.ones(n) + delta1, 0.03, rng=6)
        d2 = p.repartition(d1, pts, 6, np.ones(n) + delta1 + delta2, 0.03, rng=7)
        assert same_result(r0, d0)
        assert same_result(r1, d1)
        assert same_result(r2, d2)

    def test_session_geometry_replacement(self, pts):
        """Streaming new points rebuilds warm state but keeps centers carrying over."""
        moved = pts + 0.01 * np.sin(np.arange(pts.size).reshape(pts.shape))

        async def scenario():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts))["dataset_id"]
            sid = (await svc.open_session(ds, 4, seed=1))["session_id"]
            r0 = await svc.repartition(sid)
            r1 = await svc.repartition(sid, points=moved)
            with pytest.raises(ServiceError, match="points must be"):
                await svc.repartition(sid, points=np.ones((4, 7)))
            with pytest.raises(ServiceError, match="weight_delta shape"):
                await svc.repartition(sid, weight_delta=np.ones(3))
            await svc.drain()
            return r0, r1

        r0, r1 = run(scenario())
        p = GeographerPartitioner()
        d0 = p.partition(pts, 4, epsilon=0.03, rng=1)
        d1 = p.repartition(d0, moved, 4, None, 0.03, rng=2)
        assert same_result(r0, d0)
        assert same_result(r1, d1)

    def test_drain_releases_all_segments_and_closes(self, pts):
        before = leaked_resources()

        async def scenario():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts, weights=np.ones(pts.shape[0])))["dataset_id"]
            sid = (await svc.open_session(ds, 4))["session_id"]
            await svc.repartition(sid, points=pts * 0.5)  # session-private segment
            await svc.partition(ds, 4)
            await svc.drain()
            with pytest.raises(ServiceError, match="draining"):
                await svc.partition(ds, 4)
            with pytest.raises(ServiceError, match="draining"):
                await svc.register_dataset(pts)

        run(scenario())
        assert_no_leaks(before)


# ---------------------------------------------------------------------------
# Checkpoint / restart (in-process, tier 1)
# ---------------------------------------------------------------------------


class TestServiceResume:
    def test_restarted_service_continues_sessions_bit_identically(self, pts, tmp_path):
        """Kill-and-restart (simulated in-process) replays the exact sequence."""
        n = pts.shape[0]
        ckpt = tmp_path / "svc-ckpt"
        deltas = [np.linspace(0, 1, n), np.linspace(1, 0, n), np.full(n, 0.25)]

        async def first_life():
            svc = PartitionService(checkpoint_dir=ckpt)
            ds = (await svc.register_dataset(pts))["dataset_id"]
            sid = (await svc.open_session(ds, 6, seed=9))["session_id"]
            await svc.repartition(sid)
            await svc.repartition(sid, weight_delta=deltas[0])
            # no drain: the "server" dies here, segments reclaimed by GC —
            # the checkpoints on disk are all that survives
            return ds, sid

        async def second_life(sid):
            svc = PartitionService(checkpoint_dir=ckpt)
            stats = await svc.stats()
            assert stats["counters"]["sessions_resumed"] == 1
            r2 = await svc.repartition(sid, weight_delta=deltas[1])
            r3 = await svc.repartition(sid, weight_delta=deltas[2])
            await svc.drain()
            return r2, r3

        async def uninterrupted():
            svc = PartitionService()
            ds = (await svc.register_dataset(pts))["dataset_id"]
            sid = (await svc.open_session(ds, 6, seed=9))["session_id"]
            await svc.repartition(sid)
            for d in deltas[:1]:
                await svc.repartition(sid, weight_delta=d)
            r2 = await svc.repartition(sid, weight_delta=deltas[1])
            r3 = await svc.repartition(sid, weight_delta=deltas[2])
            await svc.drain()
            return r2, r3

        _, sid = run(first_life())
        r2, r3 = run(second_life(sid))
        u2, u3 = run(uninterrupted())
        assert same_result(r2, u2)
        assert same_result(r3, u3)

    def test_resume_ignores_foreign_checkpoints(self, pts, tmp_path):
        from repro.runtime.checkpoint import CheckpointStore

        ckpt = tmp_path / "svc-ckpt"
        # a checkpoint of some other kind in the same root must not be adopted
        CheckpointStore(ckpt, run_id="other-run").save(
            {"x": np.ones(3)}, {"kind": "distributed-kmeans"}
        )

        async def scenario():
            svc = PartitionService(checkpoint_dir=ckpt)
            stats = await svc.stats()
            assert stats["sessions"] == 0
            await svc.drain()

        run(scenario())

    def test_session_private_geometry_survives_restart(self, pts, tmp_path):
        ckpt = tmp_path / "svc-ckpt"
        moved = pts * 0.5 + 0.25

        async def first_life():
            svc = PartitionService(checkpoint_dir=ckpt)
            ds = (await svc.register_dataset(pts))["dataset_id"]
            sid = (await svc.open_session(ds, 4, seed=2))["session_id"]
            await svc.repartition(sid, points=moved)
            return sid

        async def second_life(sid):
            svc = PartitionService(checkpoint_dir=ckpt)
            r1 = await svc.repartition(sid)
            await svc.drain()
            return r1

        sid = run(first_life())
        r1 = run(second_life(sid))
        p = GeographerPartitioner()
        d0 = p.partition(moved, 4, epsilon=0.03, rng=2)
        d1 = p.repartition(d0, moved, 4, None, 0.03, rng=3)
        assert same_result(r1, d1)


# ---------------------------------------------------------------------------
# Socket servers (dedicated `service` CI job)
# ---------------------------------------------------------------------------


@pytest.mark.service
class TestSocketServer:
    def test_roundtrip_over_unix_socket(self, pts, tmp_path):
        from repro.service.client import ServiceClient, ServiceClientError
        from repro.service.loadtest import start_background_server

        before = leaked_resources()
        sock = tmp_path / "svc.sock"
        thread = start_background_server(sock)
        try:
            with ServiceClient(sock) as client:
                assert client.ping() == "pong"
                ds = client.register_dataset(pts)["dataset_id"]
                served = client.partition(ds, 5, seed=4)
                direct = GeographerPartitioner().partition(pts, 5, epsilon=0.03, rng=4)
                assert same_result(served, direct)
                sid = client.open_session(ds, 5, seed=4)["session_id"]
                r0 = client.repartition(sid)
                assert same_result(r0, direct)  # step 0 == one-shot with rng=seed
                with pytest.raises(ServiceClientError, match="unknown dataset"):
                    client.partition("nope", 4)
                stats = client.stats()
                assert stats["datasets"] == 1 and stats["sessions"] == 1
                assert client.shutdown() == "draining"
        finally:
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert not os.path.exists(sock)
        assert_no_leaks(before)

    def test_load_test_harness_reports_and_verifies(self, tmp_path):
        from repro.service.loadtest import format_report, run_load_test

        before = leaked_resources()
        out = tmp_path / "report.json"
        report = run_load_test(
            n_points=500, k=4, clients=6, requests_per_client=3,
            distinct_seeds=3, out_json=out,
        )
        assert report["errors"] == []
        assert report["identity_ok"] is True
        assert report["requests_total"] == 18
        lat = report["latency_ms"]
        assert 0 < lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]
        assert report["throughput_rps"] > 0
        assert report["server"]["counters"]["cache_hit"] >= 1
        assert out.exists()
        assert "bit-identical" in format_report(report)
        assert_no_leaks(before)


@pytest.mark.service
class TestServerKillResume:
    def _spawn(self, sock, ckpt):
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", os.fspath(sock),
             "--checkpoint-dir", os.fspath(ckpt)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )

    def test_sigkilled_server_resumes_bit_identically(self, pts, tmp_path):
        """SIGKILL a real `repro serve` mid-session; the restarted server
        continues the session exactly where the dead one left off."""
        from repro.service.client import ServiceClient

        n = pts.shape[0]
        deltas = [np.linspace(0, 1, n), np.linspace(1, 0, n)]
        sock = tmp_path / "svc.sock"
        ckpt = tmp_path / "ckpt"

        proc = self._spawn(sock, ckpt)
        try:
            with ServiceClient(sock, connect_timeout=30.0) as client:
                ds = client.register_dataset(pts)["dataset_id"]
                sid = client.open_session(ds, 6, seed=3)["session_id"]
                client.repartition(sid)
                client.repartition(sid, weight_delta=deltas[0])
            proc.send_signal(signal.SIGKILL)  # no drain, no goodbye
            proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)

        # the dead server leaves a stale socket file behind; the new server
        # unlinks and rebinds it on start
        proc2 = self._spawn(sock, ckpt)
        try:
            with ServiceClient(sock, connect_timeout=30.0) as client:
                stats = client.stats()
                assert stats["counters"]["sessions_resumed"] == 1
                resumed = client.repartition(sid, weight_delta=deltas[1])
                client.shutdown()
            proc2.wait(timeout=30.0)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait(timeout=30.0)

        # uninterrupted reference for step 3: the same delta stream, no kill
        p = GeographerPartitioner()
        d0 = p.partition(pts, 6, epsilon=0.03, rng=3)
        d1 = p.repartition(d0, pts, 6, np.ones(n) + deltas[0], 0.03, rng=4)
        d2 = p.repartition(d1, pts, 6, np.ones(n) + deltas[0] + deltas[1], 0.03, rng=5)
        assert same_result(resumed, d2)
