"""Tests for the Hamerly-style bound maintenance (Eq. 4-5, corrected signs).

The essential property: after any sequence of relaxations, ``ub`` stays an
upper bound on the point's effective distance to its own center and ``lb``
stays a lower bound on the runner-up — hence skipping when ``ub < lb``
can never change an assignment.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import init_bounds, relax_for_influence, relax_for_movement
from repro.geometry.distances import effective_distances


def _state(seed, n=60, k=5):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    centers = rng.random((k, 2))
    influence = rng.uniform(0.5, 2.0, k)
    eff = effective_distances(pts, centers, influence)
    assignment = eff.argmin(axis=1)
    ub = eff.min(axis=1).copy()
    lb = np.sort(eff, axis=1)[:, 1].copy()
    return pts, centers, influence, assignment, ub, lb


class TestInit:
    def test_forces_evaluation(self):
        ub, lb = init_bounds(5)
        assert np.all(ub >= lb)  # nothing skippable
        assert np.all(np.isinf(ub)) and np.all(lb == 0.0)


class TestMovementRelaxation:
    def test_bounds_stay_valid_after_movement(self):
        pts, centers, influence, assignment, ub, lb = _state(0)
        rng = np.random.default_rng(1)
        moved = centers + rng.normal(0, 0.05, centers.shape)
        deltas = np.linalg.norm(moved - centers, axis=1)
        relax_for_movement(ub, lb, assignment, deltas, influence)
        eff = effective_distances(pts, moved, influence)
        own = eff[np.arange(len(pts)), assignment]
        runner_up = np.partition(eff, 1, axis=1)[:, 1]
        # note: runner-up here is the second-smallest overall, which is >= the
        # min over clusters != assignment; use the latter for strictness
        mask = np.ones_like(eff, dtype=bool)
        mask[np.arange(len(pts)), assignment] = False
        others_min = np.where(mask, eff, np.inf).min(axis=1)
        assert np.all(ub >= own - 1e-9)
        assert np.all(lb <= others_min + 1e-9)

    def test_ub_grows_lb_shrinks(self):
        _, centers, influence, assignment, ub, lb = _state(2)
        ub0, lb0 = ub.copy(), lb.copy()
        deltas = np.full(len(centers), 0.1)
        relax_for_movement(ub, lb, assignment, deltas, influence)
        assert np.all(ub >= ub0)
        assert np.all(lb <= lb0)

    def test_zero_movement_noop(self):
        _, centers, influence, assignment, ub, lb = _state(3)
        ub0, lb0 = ub.copy(), lb.copy()
        relax_for_movement(ub, lb, assignment, np.zeros(len(centers)), influence)
        assert np.allclose(ub, ub0) and np.allclose(lb, lb0)

    def test_lb_clamped_at_zero(self):
        _, centers, influence, assignment, ub, lb = _state(4)
        relax_for_movement(ub, lb, assignment, np.full(len(centers), 100.0), influence)
        assert np.all(lb >= 0.0)

    def test_rejects_negative(self):
        _, centers, influence, assignment, ub, lb = _state(5)
        with pytest.raises(ValueError):
            relax_for_movement(ub, lb, assignment, np.full(len(centers), -1.0), influence)


class TestInfluenceRelaxation:
    def test_bounds_stay_valid_after_influence_change(self):
        pts, centers, influence, assignment, ub, lb = _state(6)
        rng = np.random.default_rng(7)
        new_influence = influence * rng.uniform(0.95, 1.05, len(influence))
        relax_for_influence(ub, lb, assignment, influence, new_influence)
        eff = effective_distances(pts, centers, new_influence)
        own = eff[np.arange(len(pts)), assignment]
        mask = np.ones_like(eff, dtype=bool)
        mask[np.arange(len(pts)), assignment] = False
        others_min = np.where(mask, eff, np.inf).min(axis=1)
        assert np.all(ub >= own - 1e-9)
        assert np.all(lb <= others_min + 1e-9)

    def test_own_bound_rescales_exactly(self):
        pts, centers, influence, assignment, ub, lb = _state(8)
        new_influence = influence * 2.0
        ub0 = ub.copy()
        relax_for_influence(ub, lb, assignment, influence, new_influence)
        assert np.allclose(ub, ub0 / 2.0)

    def test_rejects_nonpositive(self):
        _, centers, influence, assignment, ub, lb = _state(9)
        with pytest.raises(ValueError):
            relax_for_influence(ub, lb, assignment, influence, np.zeros_like(influence))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 4))
def test_property_bounds_valid_after_relaxation_chain(seed, steps):
    """Random interleavings of movement + influence relaxation keep bounds valid."""
    pts, centers, influence, assignment, ub, lb = _state(seed)
    rng = np.random.default_rng(seed + 1)
    for _ in range(steps):
        if rng.random() < 0.5:
            new_influence = influence * rng.uniform(0.9, 1.1, len(influence))
            relax_for_influence(ub, lb, assignment, influence, new_influence)
            influence = new_influence
        else:
            moved = centers + rng.normal(0, 0.03, centers.shape)
            deltas = np.linalg.norm(moved - centers, axis=1)
            relax_for_movement(ub, lb, assignment, deltas, influence)
            centers = moved
    eff = effective_distances(pts, centers, influence)
    own = eff[np.arange(len(pts)), assignment]
    mask = np.ones_like(eff, dtype=bool)
    mask[np.arange(len(pts)), assignment] = False
    others_min = np.where(mask, eff, np.inf).min(axis=1)
    assert np.all(ub >= own - 1e-9)
    assert np.all(lb <= others_min + 1e-9)
