"""Kernel-backend registry, fallback behavior, and the device-engine contract.

The registry half runs everywhere (numpy is always available); the
``TestTorch*`` classes exercise the device-resident torch engine and skip
when torch is absent — the CI ``torch-cpu`` job installs the CPU wheel and
runs them for real.  Transfer-residency assertions read the engine's own
:attr:`transfer_log` rather than trusting docstrings: the point set crosses
the host boundary once per workspace, bounds once per device session, and
only k-sized vectors per sweep.
"""

import warnings

import numpy as np
import pytest

from repro.core import xp
from repro.core.assign import assign_points
from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.core.kernels import SweepWorkspace, resolve_backend
from repro.core.xp import (
    ENV_VAR,
    KernelBackendSpec,
    available_kernel_backends,
    kernel_backend_names,
    kernel_backend_spec,
)


@pytest.fixture
def temp_backend():
    """Register throwaway backend specs; unregister and reset warn-once after."""
    registered = []

    def _register(name, *, probe, requires=None, fallback=None, device=False):
        spec = KernelBackendSpec(name, probe=probe, requires=requires,
                                 fallback=fallback, device=device)
        xp.register_kernel_backend(spec)
        registered.append(name)
        return spec

    yield _register
    for name in registered:
        xp._REGISTRY.pop(name, None)
    xp._reset_fallback_warnings()


@pytest.fixture
def no_env_override(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


def _pts(n=400, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestRegistry:
    def test_builtin_backends_registered_in_order(self):
        names = kernel_backend_names()
        assert names[0] == "numpy"
        assert set(names) == {"numpy", "numba", "torch-cpu", "torch-cuda"}

    def test_numpy_always_available(self):
        assert "numpy" in available_kernel_backends()
        assert kernel_backend_spec("numpy").available

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ValueError, match="numpy"):
            kernel_backend_spec("cupy")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cupy")

    def test_registry_is_single_source_for_config(self, temp_backend, no_env_override):
        """A backend registered once is immediately a valid config value —
        the config whitelist is the registry, not a second copy."""
        temp_backend("fake-extra", probe=lambda: True)
        cfg = BalancedKMeansConfig(kernel_backend="fake-extra")
        assert cfg.kernel_backend == "fake-extra"
        assert resolve_backend("fake-extra") == "fake-extra"

    def test_registry_is_single_source_for_cli(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["distributed", "tiny", "--kernel-backend", "numpy"])
        assert args.kernel_backend == "numpy"
        with pytest.raises(SystemExit):
            parser.parse_args(["distributed", "tiny", "--kernel-backend", "cupy"])

    def test_register_rejects_unknown_fallback(self):
        with pytest.raises(ValueError, match="not registered"):
            xp.register_kernel_backend(
                KernelBackendSpec("fake-bad", probe=lambda: True, fallback="nonexistent")
            )
        assert "fake-bad" not in kernel_backend_names()


class TestFallbackWarnings:
    def test_unavailable_backend_warns_once_naming_dependency(
        self, temp_backend, no_env_override
    ):
        temp_backend("fake-missing", probe=lambda: False,
                     requires="fakedep", fallback="numpy")
        xp._reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="fakedep"):
            assert resolve_backend("fake-missing") == "numpy"
        with warnings.catch_warnings():  # second resolution: silent
            warnings.simplefilter("error")
            assert resolve_backend("fake-missing") == "numpy"

    def test_fallback_chain_warns_per_hop(self, temp_backend, no_env_override):
        temp_backend("fake-mid", probe=lambda: False,
                     requires="middep", fallback="numpy")
        temp_backend("fake-top", probe=lambda: False,
                     requires="topdep", fallback="fake-mid")
        xp._reset_fallback_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_backend("fake-top") == "numpy"
        messages = [str(w.message) for w in caught if w.category is RuntimeWarning]
        assert len(messages) == 2
        assert "topdep" in messages[0] and "'fake-mid'" in messages[0]
        assert "middep" in messages[1] and "'numpy'" in messages[1]

    def test_workspace_resolves_through_fallback(self, temp_backend, no_env_override):
        temp_backend("fake-missing", probe=lambda: False,
                     requires="fakedep", fallback="numpy")
        cfg = BalancedKMeansConfig(kernel_backend="fake-missing")
        with pytest.warns(RuntimeWarning, match="fake-missing"):
            ws = SweepWorkspace(_pts(64), cfg, 4)
        assert ws.backend == "numpy" and not ws.device_mode


class TestEnvOverride:
    def test_env_var_overrides_configured_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend("numba") == "numpy"  # no fallback warning needed
        cfg = BalancedKMeansConfig(kernel_backend="numba")
        ws = SweepWorkspace(_pts(64), cfg, 4)
        assert ws.backend == "numpy"

    def test_empty_env_var_is_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  ")
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_env_override_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cupy")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("numpy")


class TestInputNormalization:
    """float32 / non-contiguous inputs are promoted identically everywhere."""

    @pytest.mark.parametrize("backend", available_kernel_backends())
    def test_float32_points_promoted(self, backend, no_env_override):
        cfg = BalancedKMeansConfig(kernel_backend=backend)
        pts64 = _pts(300, seed=3)
        pts32 = pts64.astype(np.float32)
        ws = SweepWorkspace(pts32, cfg, 4)
        assert ws.points.dtype == np.float64
        assert ws.points.flags["C_CONTIGUOUS"]
        ref = balanced_kmeans(pts32.astype(np.float64), 4, config=cfg, rng=1)
        got = balanced_kmeans(pts32, 4, config=cfg, rng=1)
        np.testing.assert_array_equal(ref.assignment, got.assignment)
        np.testing.assert_array_equal(ref.centers, got.centers)

    @pytest.mark.parametrize("backend", available_kernel_backends())
    def test_noncontiguous_points_promoted(self, backend, no_env_override):
        cfg = BalancedKMeansConfig(kernel_backend=backend)
        base = _pts(600, d=4, seed=4)
        strided = base[::2, ::2]  # non-contiguous view, shape (300, 2)
        assert not strided.flags["C_CONTIGUOUS"]
        ws = SweepWorkspace(strided, cfg, 4)
        assert ws.points.flags["C_CONTIGUOUS"]
        ref = balanced_kmeans(np.ascontiguousarray(strided), 4, config=cfg, rng=2)
        got = balanced_kmeans(strided, 4, config=cfg, rng=2)
        np.testing.assert_array_equal(ref.assignment, got.assignment)
        np.testing.assert_array_equal(ref.centers, got.centers)


class TestWorkspaceBackendSwitch:
    def _sweep_args(self, ws, cfg, k=4):
        n = ws.points.shape[0]
        rng = np.random.default_rng(0)
        centers = ws.points[rng.choice(n, k, replace=False)].copy()
        influence = np.ones(k)
        assignment = np.zeros(n, dtype=np.int64)
        ub = np.full(n, np.inf)
        lb = np.zeros(n)
        return ws.points, centers, influence, assignment, ub, lb

    def test_backend_change_between_runs_rejected(self, temp_backend, no_env_override):
        """A workspace is bound to the backend it was built for: switching
        the config between runs must fail loudly, not silently sweep with
        stale caches of the old engine."""
        temp_backend("fake-host", probe=lambda: True)
        cfg = BalancedKMeansConfig(kernel_backend="numpy")
        ws = SweepWorkspace(_pts(128), cfg, 4)
        pts, centers, influence, assignment, ub, lb = self._sweep_args(ws, cfg)
        assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=ws)
        switched = cfg.with_(kernel_backend="fake-host")
        with pytest.raises(ValueError, match="build a new SweepWorkspace"):
            assign_points(pts, centers, influence, assignment, ub, lb,
                          switched, workspace=ws)

    def test_same_backend_reuse_across_sweeps(self, no_env_override):
        cfg = BalancedKMeansConfig(kernel_backend="numpy")
        ws = SweepWorkspace(_pts(128), cfg, 4)
        pts, centers, influence, assignment, ub, lb = self._sweep_args(ws, cfg)
        first = assign_points(pts, centers, influence, assignment, ub, lb, cfg,
                              workspace=ws)
        second = assign_points(pts, centers, influence, assignment, ub, lb, cfg,
                               workspace=ws)
        assert first == pts.shape[0]
        assert second <= first  # bounds only tighten on the unchanged problem


needs_torch = pytest.mark.skipif(not xp.HAVE_TORCH, reason="torch not installed")


@needs_torch
class TestTorchEquivalence:
    """The equivalence gate for the device backends.

    Device sweeps use the same elementwise numerics as the host kernels;
    only the matmul accumulation order differs.  The gate therefore demands
    identical assignments and block weights and centers within 1e-9 — the
    same caveat the numba backend carries for float ties.
    """

    @pytest.mark.parametrize("k", [3, 8])
    def test_torch_cpu_matches_numpy(self, k, no_env_override):
        pts = _pts(600, seed=11)
        ref = balanced_kmeans(pts, k, config=BalancedKMeansConfig(kernel_backend="numpy"),
                              rng=7)
        got = balanced_kmeans(pts, k,
                              config=BalancedKMeansConfig(kernel_backend="torch-cpu"),
                              rng=7)
        np.testing.assert_array_equal(ref.assignment, got.assignment)
        np.testing.assert_allclose(ref.centers, got.centers, rtol=1e-9, atol=1e-12)
        ref_w = np.bincount(ref.assignment, minlength=k)
        got_w = np.bincount(got.assignment, minlength=k)
        np.testing.assert_array_equal(ref_w, got_w)

    def test_torch_cpu_weighted_block_weights_identical(self, no_env_override):
        rng = np.random.default_rng(5)
        pts = rng.random((500, 2))
        w = rng.integers(1, 5, 500).astype(np.float64)  # integer weights: exact sums
        ref = balanced_kmeans(pts, 6, weights=w,
                              config=BalancedKMeansConfig(kernel_backend="numpy"), rng=3)
        got = balanced_kmeans(pts, 6, weights=w,
                              config=BalancedKMeansConfig(kernel_backend="torch-cpu"), rng=3)
        np.testing.assert_array_equal(ref.assignment, got.assignment)
        for b in range(6):
            assert w[ref.assignment == b].sum() == w[got.assignment == b].sum()
        assert abs(ref.imbalance - got.imbalance) < 1e-9

    def test_single_sweep_assignments_identical(self, no_env_override):
        pts = _pts(400, seed=2)
        k = 5
        centers = pts[np.random.default_rng(1).choice(400, k, replace=False)].copy()
        influence = np.linspace(0.8, 1.2, k)
        results = {}
        for backend in ("numpy", "torch-cpu"):
            cfg = BalancedKMeansConfig(kernel_backend=backend)
            ws = SweepWorkspace(pts, cfg, k)
            assignment = np.zeros(400, dtype=np.int64)
            ub = np.full(400, np.inf)
            lb = np.zeros(400)
            assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=ws)
            results[backend] = (assignment, ub, lb)
        np.testing.assert_array_equal(results["numpy"][0], results["torch-cpu"][0])
        np.testing.assert_allclose(results["numpy"][1], results["torch-cpu"][1],
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(results["numpy"][2], results["torch-cpu"][2],
                                   rtol=1e-9, atol=1e-12)

    def test_incremental_engine_disabled_in_device_mode(self, no_env_override):
        cfg = BalancedKMeansConfig(use_incremental=True, kernel_backend="torch-cpu")
        ws = SweepWorkspace(_pts(300), cfg, 4)
        assert ws.device_mode and not ws.incremental
        host = SweepWorkspace(_pts(300), cfg.with_(kernel_backend="numpy"), 4)
        assert host.incremental  # same config stays incremental on the host


@needs_torch
class TestTorchResidency:
    """Pin the transfer model with the engine's own accounting."""

    def _setup(self, n=300, k=4):
        cfg = BalancedKMeansConfig(kernel_backend="torch-cpu")
        pts = _pts(n, seed=9)
        ws = SweepWorkspace(pts, cfg, k)
        centers = pts[np.random.default_rng(3).choice(n, k, replace=False)].copy()
        influence = np.ones(k)
        ws.prepare(centers, influence)
        assignment = np.zeros(n, dtype=np.int64)
        ub = np.full(n, np.inf)
        lb = np.zeros(n)
        return ws, assignment, ub, lb

    def test_points_upload_once_per_workspace(self):
        ws, assignment, ub, lb = self._setup()
        h2d = ws.transfer_stats()["h2d"]
        points_uploads = h2d["points"]["count"]
        ws.begin_device_session(assignment, ub, lb)
        for _ in range(4):
            ws.device_sweep(assignment, ub, lb, use_bounds=True)
        ws.end_device_session()
        stats = ws.transfer_stats()
        assert stats["h2d"]["points"]["count"] == points_uploads
        # a second phase re-uploads centers, never the point set
        new_centers = ws.centers + 0.01
        ws.prepare(new_centers.copy(), np.ones(ws.k))
        assert ws.transfer_stats()["h2d"]["points"]["count"] == points_uploads

    def test_session_uploads_bounds_once(self):
        ws, assignment, ub, lb = self._setup()
        ws.begin_device_session(assignment, ub, lb)
        for _ in range(5):
            ws.device_sweep(assignment, ub, lb, use_bounds=True)
        ws.end_device_session()
        stats = ws.transfer_stats()
        # one upload each of assignment/ub/lb, flushed once at session end;
        # no per-sweep "bounds" traffic happened inside the session
        assert stats["h2d"]["session"]["count"] == 3
        assert stats["d2h"]["session"]["count"] == 3
        assert "bounds" not in stats["h2d"]
        assert "bounds" not in stats["d2h"]

    def test_non_session_sweeps_round_trip_bounds(self):
        """Outside a session (the distributed per-sweep closures) each sweep
        uploads and downloads the three bound arrays — and still never
        re-uploads the point set."""
        ws, assignment, ub, lb = self._setup()
        points_uploads = ws.transfer_stats()["h2d"]["points"]["count"]
        for _ in range(3):
            ws.device_sweep(assignment, ub, lb, use_bounds=True)
        stats = ws.transfer_stats()
        assert stats["h2d"]["bounds"]["count"] == 9  # 3 arrays x 3 sweeps
        assert stats["d2h"]["bounds"]["count"] == 9
        assert stats["h2d"]["points"]["count"] == points_uploads

    def test_session_mismatch_raises(self):
        ws, assignment, ub, lb = self._setup()
        ws.begin_device_session(assignment, ub, lb)
        try:
            with pytest.raises(RuntimeError, match="session"):
                ws.device_sweep(assignment.copy(), ub, lb, use_bounds=True)
        finally:
            ws.end_device_session()

    def test_session_flushes_device_state_to_host(self):
        ws, assignment, ub, lb = self._setup()
        before = assignment.copy()
        ws.begin_device_session(assignment, ub, lb)
        ws.device_sweep(assignment, ub, lb, use_bounds=True)
        ws.end_device_session()
        assert not np.array_equal(assignment, before) or np.all(np.isfinite(ub))
        assert np.all(assignment >= 0) and np.all(assignment < ws.k)
        assert np.all(np.isfinite(ub)) if ws.k > 1 else True
