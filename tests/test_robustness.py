"""Failure-injection and degenerate-input tests.

A production partitioner meets hostile inputs: duplicate points, collinear
clouds, zero weights, k close to n.  These tests pin down that every such
case terminates, returns a structurally valid assignment, and degrades
gracefully (no crashes, no infinite loops, no invalid block ids).
"""

import numpy as np
import pytest

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.experiments.harness import PAPER_TOOLS
from repro.metrics.imbalance import imbalance
from repro.partitioners.base import get_partitioner


def _valid(assignment, n, k):
    assert assignment.shape == (n,)
    assert assignment.min() >= 0 and assignment.max() < k


class TestDegenerateGeometry:
    def test_identical_points_terminate(self):
        """All points coincide: balance is impossible, but the run must end."""
        pts = np.ones((200, 2))
        res = balanced_kmeans(pts, 4, rng=0, config=BalancedKMeansConfig(max_iterations=10))
        _valid(res.assignment, 200, 4)
        assert not res.converged or res.imbalance >= 0  # terminated, didn't lie

    def test_collinear_points(self):
        pts = np.column_stack([np.linspace(0, 1, 500), np.zeros(500)])
        res = balanced_kmeans(pts, 8, rng=1)
        _valid(res.assignment, 500, 8)
        assert res.imbalance <= 0.031

    @pytest.mark.parametrize("tool", PAPER_TOOLS)
    def test_collinear_points_all_tools(self, tool):
        pts = np.column_stack([np.linspace(0, 1, 400), np.full(400, 0.5)])
        a = get_partitioner(tool).partition(pts, 4, rng=0)
        _valid(a, 400, 4)
        assert imbalance(a, 4) <= 0.05

    @pytest.mark.parametrize("tool", ["RCB", "RIB", "MultiJagged", "HSFC"])
    def test_duplicate_heavy_cloud(self, tool):
        """90% of the points are one duplicated location."""
        rng = np.random.default_rng(2)
        pts = np.concatenate([np.tile([[0.5, 0.5]], (900, 1)), rng.random((100, 2))])
        a = get_partitioner(tool).partition(pts, 4, rng=0)
        _valid(a, 1000, 4)

    def test_extreme_aspect_domain(self):
        rng = np.random.default_rng(3)
        pts = np.column_stack([rng.random(800) * 1e6, rng.random(800) * 1e-6])
        res = balanced_kmeans(pts, 8, rng=4)
        _valid(res.assignment, 800, 8)
        assert res.imbalance <= 0.05

    def test_tiny_coordinates(self):
        rng = np.random.default_rng(5)
        pts = rng.random((500, 2)) * 1e-12
        res = balanced_kmeans(pts, 4, rng=6)
        _valid(res.assignment, 500, 4)


class TestDegenerateWeights:
    def test_zero_weight_points(self):
        rng = np.random.default_rng(7)
        pts = rng.random((1000, 2))
        w = rng.random(1000)
        w[:300] = 0.0
        res = balanced_kmeans(pts, 6, weights=w, rng=8)
        _valid(res.assignment, 1000, 6)
        assert res.imbalance <= 0.05

    def test_one_dominant_weight(self):
        """One point holds half the total weight: imbalance floor is ~k/2."""
        rng = np.random.default_rng(9)
        pts = rng.random((500, 2))
        w = np.ones(500)
        w[0] = 500.0
        res = balanced_kmeans(pts, 4, weights=w, rng=10, config=BalancedKMeansConfig(max_iterations=15))
        _valid(res.assignment, 500, 4)

    def test_extreme_weight_range(self):
        rng = np.random.default_rng(11)
        pts = rng.random((800, 2))
        w = 10.0 ** rng.uniform(-6, 6, 800)
        res = balanced_kmeans(pts, 4, weights=w, rng=12, config=BalancedKMeansConfig(max_iterations=60))
        _valid(res.assignment, 800, 4)


class TestExtremeK:
    def test_k_equals_n(self):
        pts = np.random.default_rng(13).random((32, 2))
        res = balanced_kmeans(pts, 32, rng=14, config=BalancedKMeansConfig(max_iterations=20))
        _valid(res.assignment, 32, 32)
        assert len(np.unique(res.assignment)) >= 28  # nearly all singleton blocks

    def test_k_close_to_n(self):
        pts = np.random.default_rng(15).random((100, 2))
        res = balanced_kmeans(pts, 77, rng=16, config=BalancedKMeansConfig(max_iterations=15))
        _valid(res.assignment, 100, 77)
        assert len(np.unique(res.assignment)) >= 60

    @pytest.mark.parametrize("tool", ["RCB", "MultiJagged", "HSFC"])
    def test_baselines_k_equals_n(self, tool):
        pts = np.random.default_rng(17).random((24, 2))
        a = get_partitioner(tool).partition(pts, 24)
        assert len(np.unique(a)) == 24  # perfect: one point per block


class TestDistributedRobustness:
    def test_more_ranks_than_reasonable(self):
        """p close to n/2: tiny local chunks must still work."""
        from repro.runtime.distributed_kmeans import distributed_balanced_kmeans

        pts = np.random.default_rng(18).random((120, 2))
        res = distributed_balanced_kmeans(
            pts, k=4, nranks=16, rng=19, config=BalancedKMeansConfig(max_iterations=10)
        )
        _valid(res.assignment, 120, 4)

    def test_uneven_initial_distribution(self):
        """n not divisible by p: block distribution sizes differ."""
        from repro.runtime.distributed_kmeans import distributed_balanced_kmeans

        pts = np.random.default_rng(20).random((1003, 2))
        res = distributed_balanced_kmeans(pts, k=5, nranks=7, rng=21)
        _valid(res.assignment, 1003, 5)
        assert res.imbalance <= 0.05
