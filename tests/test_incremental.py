"""Property tests for the incremental sweep engine.

Three contracts, exercised over randomized influence/relocation sequences:

(a) the delta-maintained block weights equal ``np.bincount`` bit-for-bit
    (integer-valued weights, so every sum is exact in float64);
(b) the sub-block filter is conservative: a sub-block it certifies skipped
    contains only points the per-point Hamerly filter would also skip;
(c) the fused numba sweep matches the numpy engine (skipped cleanly when
    numba is absent).

Plus unit tests for the satellite pieces: the vectorised static-block
chunking, sparse-chunk merging, candidate-local relaxations, and the
end-to-end full-vs-incremental bit identity of :func:`balanced_kmeans`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assign import (
    AssignStats,
    _merge_sparse_chunks,
    _static_block_chunks,
    assign_and_balance,
    assign_points,
)
from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.bounds import (
    init_bounds,
    relax_for_influence,
    relax_for_influence_exclusive,
    relax_for_movement,
    relax_for_movement_exclusive,
)
from repro.core.config import BalancedKMeansConfig
from repro.core.kernels import HAVE_NUMBA, SweepWorkspace
from repro.geometry.distances import effective_distances
from repro.sfc.curves import sfc_index


def _sorted_workload(seed, n, k, d=2):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d))
    pts = pts[np.argsort(sfc_index(pts), kind="stable")]
    weights = rng.integers(1, 5, n).astype(np.float64)
    centers = pts[:: max(n // k, 1)][:k].copy()
    return pts, weights, centers, rng


def _drive_sequence(pts, weights, centers, rng, cfg, steps, check=None):
    """Random influence/relocation sequence with delta-maintained weights.

    Each step perturbs influence, relocates a random center, or leaves the
    geometry alone, relaxes the bounds the way the drivers do, sweeps with
    delta collection, and maintains ``block_w`` incrementally.  ``check``
    runs after every sweep with the full engine state.
    """
    k = centers.shape[0]
    ws = SweepWorkspace(pts, cfg, k)
    assignment = np.zeros(pts.shape[0], dtype=np.int64)
    ub, lb = init_bounds(pts.shape[0])
    influence = np.ones(k)
    centers = centers.copy()
    assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=ws)
    block_w = np.bincount(assignment, weights=weights, minlength=k)
    for step in range(steps):
        kind = rng.integers(0, 3)
        if kind == 0:  # influence perturbation
            old = influence.copy()
            influence = influence * rng.uniform(0.93, 1.07, k)
            if not ws.queue_relax_influence(assignment, ub, lb, old, influence):
                relax_for_influence_exclusive(ub, lb, assignment, old, influence)
        elif kind == 1:  # relocate one center
            j = int(rng.integers(k))
            deltas = np.zeros(k)
            new_centers = centers.copy()
            new_centers[j] = pts[int(rng.integers(pts.shape[0]))]
            deltas[j] = float(np.linalg.norm(new_centers[j] - centers[j]))
            centers = new_centers
            if not ws.queue_relax_movement(assignment, ub, lb, deltas, influence):
                relax_for_movement_exclusive(ub, lb, assignment, deltas, influence)
        # kind == 2: sweep again with unchanged geometry
        delta = np.zeros(k)
        stats = AssignStats()
        assign_points(pts, centers, influence, assignment, ub, lb, cfg, stats,
                      workspace=ws, weights=weights, delta_out=delta)
        block_w = block_w + delta
        if check is not None:
            check(ws, assignment, ub, lb, block_w, influence, centers, stats)
    return assignment, block_w, influence, centers


class TestDeltaBlockWeights:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(4, 16), n=st.sampled_from([700, 2000]))
    def test_property_incremental_block_w_equals_bincount(self, seed, k, n):
        """(a) delta-maintained weights == np.bincount, bit for bit."""
        pts, weights, centers, rng = _sorted_workload(seed, n, k)
        cfg = BalancedKMeansConfig(chunk_size=128, incremental_block_size=32)

        def check(ws, assignment, ub, lb, block_w, influence, centers, stats):
            expected = np.bincount(assignment, weights=weights, minlength=k)
            assert np.array_equal(block_w, expected), "delta drifted from bincount"

        _drive_sequence(pts, weights, centers, rng, cfg, steps=8, check=check)

    def test_assign_and_balance_block_weights_match_bincount(self):
        pts, weights, centers, _ = _sorted_workload(3, 3000, 8)
        cfg = BalancedKMeansConfig(chunk_size=256, max_balance_iterations=25)
        ws = SweepWorkspace(pts, cfg, 8)
        assignment = np.zeros(3000, dtype=np.int64)
        ub, lb = init_bounds(3000)
        targets = np.full(8, weights.sum() / 8)
        out = assign_and_balance(pts, weights, centers, np.ones(8), assignment, ub, lb,
                                 targets, cfg, ws)
        assert np.array_equal(out.block_weights,
                              np.bincount(assignment, weights=weights, minlength=8))
        # next phase seeded from the previous block weights stays exact
        out2 = assign_and_balance(pts, weights, centers, out.influence, assignment, ub, lb,
                                  targets, cfg, ws, initial_block_weights=out.block_weights)
        assert np.array_equal(out2.block_weights,
                              np.bincount(assignment, weights=weights, minlength=8))


class TestBlockFilterConservative:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(6, 14))
    def test_property_certified_subblocks_contain_only_certified_points(self, seed, k):
        """(b) a skipped sub-block never hides a point the per-point filter
        would evaluate: certified means every point has ub < lb."""
        pts, weights, centers, rng = _sorted_workload(seed, 1500, k)
        cfg = BalancedKMeansConfig(chunk_size=128, incremental_block_size=32)
        seen = {"certified": 0}

        def check(ws, assignment, ub, lb, block_w, influence, centers, stats):
            if not ws.aggregates_valid:
                return
            for s in np.flatnonzero(ws.sub_min_gap > 0.0):
                lo, hi = int(ws.sub_starts[s]), int(ws.sub_ends[s])
                assert np.all(ub[lo:hi] < lb[lo:hi]), (
                    "sub-block certified skipped but contains an active point"
                )
                seen["certified"] += 1

        _drive_sequence(pts, weights, centers, rng, cfg, steps=8, check=check)

    def test_skipped_points_hold_exact_argmin(self):
        """Whatever the filter skips, the assignment equals the brute-force
        argmin under the current influence (the engine's core invariant)."""
        pts, weights, centers, rng = _sorted_workload(17, 1200, 9)
        cfg = BalancedKMeansConfig(chunk_size=128, incremental_block_size=32)

        def check(ws, assignment, ub, lb, block_w, influence, centers, stats):
            expected = effective_distances(pts, centers, influence).argmin(axis=1)
            assert np.array_equal(assignment, expected)

        _drive_sequence(pts, weights, centers, rng, cfg, steps=6, check=check)


class TestFusedNumbaSweep:
    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_fused_sweep_matches_numpy_engine(self):
        """(c) the fused numba sweep agrees with the numpy engine: identical
        assignments and weight deltas, bounds equal to float tolerance (the
        JIT dot product may differ in the last ulp from the GEMM)."""
        pts, weights, centers, rng = _sorted_workload(5, 4000, 16)
        outs = {}
        for backend in ("numpy", "numba"):
            cfg = BalancedKMeansConfig(chunk_size=256, incremental_block_size=64,
                                       kernel_backend=backend)
            k = 16
            ws = SweepWorkspace(pts, cfg, k)
            assignment = np.zeros(4000, dtype=np.int64)
            ub, lb = init_bounds(4000)
            influence = np.ones(k)
            assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=ws)
            old = influence.copy()
            influence = influence * np.linspace(0.95, 1.05, k)
            if not ws.queue_relax_influence(assignment, ub, lb, old, influence):
                relax_for_influence_exclusive(ub, lb, assignment, old, influence)
            delta = np.zeros(k)
            assign_points(pts, centers, influence, assignment, ub, lb, cfg,
                          workspace=ws, weights=weights, delta_out=delta)
            outs[backend] = (assignment.copy(), ub.copy(), lb.copy(), delta)
        assert np.array_equal(outs["numpy"][0], outs["numba"][0])
        assert np.allclose(outs["numpy"][1], outs["numba"][1])
        assert np.allclose(outs["numpy"][2], outs["numba"][2])
        assert np.array_equal(outs["numpy"][3], outs["numba"][3])

    def test_numba_request_never_fails(self):
        """Without numba the backend degrades silently and stays incremental."""
        cfg = BalancedKMeansConfig(kernel_backend="numba")
        ws = SweepWorkspace(np.random.default_rng(0).random((600, 2)), cfg, 6)
        assert ws.backend == ("numba" if HAVE_NUMBA else "numpy")
        assert ws.incremental


class TestCandidateLocalRelax:
    """The workspace relaxations keep bounds valid (results exact)."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_relaxed_bounds_remain_valid(self, seed):
        pts, weights, centers, rng = _sorted_workload(seed, 900, 8)
        cfg = BalancedKMeansConfig(chunk_size=128, incremental_block_size=32)
        ws = SweepWorkspace(pts, cfg, 8)
        assignment = np.zeros(900, dtype=np.int64)
        ub, lb = init_bounds(900)
        influence = np.ones(8)
        assign_points(pts, centers, influence, assignment, ub, lb, cfg, workspace=ws)
        old = influence.copy()
        influence = influence * rng.uniform(0.9, 1.1, 8)
        assert ws.queue_relax_influence(assignment, ub, lb, old, influence)
        eff = effective_distances(pts, centers, influence)
        rows = np.arange(900)
        own = eff[rows, assignment]
        eff[rows, assignment] = np.inf
        runner_up = eff.min(axis=1)
        assert np.all(ub >= own - 1e-12), "relaxed ub stopped bounding the own distance"
        assert np.all(lb <= runner_up + 1e-12), "relaxed lb overshot the runner-up"

    def test_eager_exclusive_forms_are_valid_too(self):
        pts, weights, centers, rng = _sorted_workload(23, 700, 7)
        cfg = BalancedKMeansConfig(chunk_size=128, sfc_sort=False)  # no workspace path
        assignment = np.zeros(700, dtype=np.int64)
        ub, lb = init_bounds(700)
        influence = np.ones(7)
        assign_points(pts, centers, influence, assignment, ub, lb, cfg)
        old = influence.copy()
        influence = influence * rng.uniform(0.9, 1.1, 7)
        relax_for_influence_exclusive(ub, lb, assignment, old, influence)
        deltas = rng.uniform(0.0, 0.01, 7)
        moved = centers + rng.normal(0, 0.004, centers.shape)
        actual = np.linalg.norm(moved - centers, axis=1)
        relax_for_movement_exclusive(ub, lb, assignment, np.maximum(deltas, actual), influence)
        eff = effective_distances(pts, moved, influence)
        rows = np.arange(700)
        own = eff[rows, assignment]
        eff[rows, assignment] = np.inf
        runner_up = eff.min(axis=1)
        assert np.all(ub >= own - 1e-12)
        assert np.all(lb <= runner_up + 1e-12)

    def test_exclusive_returns_match_plain_on_uniform_factors(self):
        """With uniform ratios the exclusive and plain forms coincide."""
        n, k = 300, 5
        rng = np.random.default_rng(1)
        assignment = rng.integers(0, k, n)
        ub1, lb1 = rng.random(n) + 1, rng.random(n)
        ub2, lb2 = ub1.copy(), lb1.copy()
        old, new = np.ones(k), np.full(k, 1.25)
        relax_for_influence(ub1, lb1, assignment, old, new)
        relax_for_influence_exclusive(ub2, lb2, assignment, old, new)
        assert np.array_equal(ub1, ub2)
        assert np.array_equal(lb1, lb2)
        deltas, infl = np.full(k, 0.3), np.ones(k)
        relax_for_movement(ub1, lb1, assignment, deltas, infl)
        relax_for_movement_exclusive(ub2, lb2, assignment, deltas, infl)
        assert np.array_equal(ub1, ub2)
        assert np.array_equal(lb1, lb2)


class TestChunking:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(50, 3000))
    def test_property_static_block_chunks_partition_need(self, seed, n):
        """The searchsorted+split chunking exactly partitions the need set
        and every chunk stays inside its block."""
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        cfg = BalancedKMeansConfig(chunk_size=64)
        ws = SweepWorkspace(pts, cfg, 4)
        if not ws.has_static_blocks:
            return
        size = int(rng.integers(1, n + 1))
        need = np.sort(rng.choice(n, size=size, replace=False)).astype(np.int64)
        chunks = _static_block_chunks(need, ws)
        assert np.array_equal(np.concatenate([c for c, _ in chunks]), need)
        for chunk, block in chunks:
            assert np.all(chunk // ws.block_size == block)

    def test_merged_chunks_cover_need_and_superset_candidates(self):
        pts, weights, centers, rng = _sorted_workload(9, 4000, 12)
        cfg = BalancedKMeansConfig(chunk_size=256, incremental_block_size=64)
        ws = SweepWorkspace(pts, cfg, 12)
        ws.prepare(centers, np.ones(12))
        need = np.sort(rng.choice(4000, size=180, replace=False)).astype(np.int64)
        tasks = _static_block_chunks(need, ws)
        merged = _merge_sparse_chunks(tasks, ws, cfg.chunk_size)
        assert np.array_equal(np.concatenate([c for c, _ in merged]), need)
        assert len(merged) <= len(tasks)
        # each merged chunk's candidate set covers every member block's set
        for chunk, cand in merged:
            for block in np.unique(chunk // ws.block_size):
                own = ws.block_candidates(int(block))
                if own is not None:
                    assert np.isin(own, cand).all()


class TestEndToEndIdentity:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_balanced_kmeans_full_vs_incremental(self, weighted):
        rng = np.random.default_rng(5)
        pts = rng.random((12000, 2))
        w = rng.integers(1, 5, 12000).astype(np.float64) if weighted else None
        res = {}
        for inc in (False, True):
            cfg = BalancedKMeansConfig(use_incremental=inc)
            res[inc] = balanced_kmeans(pts, 16, weights=w, rng=2, config=cfg)
        assert np.array_equal(res[False].assignment, res[True].assignment)
        assert np.array_equal(res[False].centers, res[True].centers)
        assert np.array_equal(res[False].influence, res[True].influence)
        assert res[False].imbalance == res[True].imbalance
        assert res[False].iterations == res[True].iterations

    def test_non_divisor_sub_block_size_stays_exact(self):
        """Sub-blocks are cut within static blocks even when
        incremental_block_size does not divide chunk_size (regression: a
        sub-block spanning two blocks applied the wrong block's candidate
        factors to its tail points)."""
        rng = np.random.default_rng(31)
        pts = rng.random((6000, 2))
        w = rng.integers(1, 4, 6000).astype(np.float64)
        inc_cfg = BalancedKMeansConfig(use_incremental=True, chunk_size=300,
                                       incremental_block_size=256)
        ws = SweepWorkspace(pts, inc_cfg, 10)
        assert np.all(ws.sub_starts // ws.block_size
                      == (ws.sub_ends - 1) // ws.block_size), "sub-block spans two blocks"
        a = balanced_kmeans(pts, 10, weights=w, rng=4, config=inc_cfg)
        b = balanced_kmeans(pts, 10, weights=w, rng=4,
                            config=inc_cfg.with_(use_incremental=False))
        assert np.array_equal(a.assignment, b.assignment)
        assert np.array_equal(a.influence, b.influence)

    def test_incremental_inert_without_static_blocks(self):
        """No sfc_sort -> no static blocks -> the engine degrades silently."""
        pts = np.random.default_rng(8).random((2000, 2))
        cfg = BalancedKMeansConfig(use_incremental=True, sfc_sort=False)
        ws = SweepWorkspace(pts, cfg, 6)
        assert not ws.incremental
        res = balanced_kmeans(pts, 6, rng=0, config=cfg)
        assert res.imbalance <= 0.031

    def test_workspace_reuse_across_equal_sample_rounds(self, monkeypatch):
        """Equal-size sampled-init rounds reuse one workspace (satellite)."""
        import importlib

        bk = importlib.import_module("repro.core.balanced_kmeans")
        perm = np.random.default_rng(0).permutation(4000)
        monkeypatch.setattr(bk, "sample_schedule",
                            lambda n, cfg, gen: [perm[:500], perm[:500], perm[:1000]])
        built = []
        real_ws = bk.SweepWorkspace

        class CountingWS(real_ws):
            def __init__(self, points, config, k, **kwargs):
                built.append(points.shape[0])
                super().__init__(points, config, k, **kwargs)

        monkeypatch.setattr(bk, "SweepWorkspace", CountingWS)
        pts = np.random.default_rng(1).random((4000, 2))
        bk.balanced_kmeans(pts, 8, rng=3)
        # one workspace for the two equal 500-point rounds, one for the
        # 1000-point round, one for the main loop
        assert built.count(500) == 1
        assert built.count(1000) == 1
        assert built.count(4000) == 1
