"""Tests for the GeometricMesh data structure."""

import numpy as np
import pytest

from repro.mesh.graph import GeometricMesh


def _square():
    """4-cycle with a diagonal."""
    coords = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0], [0, 2]])
    return GeometricMesh.from_edges(coords, edges, name="square")


class TestConstruction:
    def test_basic_counts(self):
        mesh = _square()
        assert mesh.n == 4
        assert mesh.m == 5
        assert mesh.dim == 2

    def test_symmetry(self):
        mesh = _square()
        mesh.validate()
        # neighbour sets are symmetric
        assert 2 in mesh.neighbors(0) and 0 in mesh.neighbors(2)

    def test_self_loops_dropped(self):
        coords = np.zeros((3, 2))
        coords[1] = [1, 0]
        coords[2] = [0, 1]
        mesh = GeometricMesh.from_edges(coords, np.array([[0, 0], [0, 1], [1, 2]]))
        assert mesh.m == 2

    def test_duplicate_edges_merged(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0]])
        mesh = GeometricMesh.from_edges(coords, np.array([[0, 1], [1, 0], [0, 1]]))
        assert mesh.m == 1

    def test_empty_edge_list(self):
        mesh = GeometricMesh.from_edges(np.random.rand(3, 2), np.empty((0, 2)))
        assert mesh.m == 0
        assert np.all(mesh.degrees() == 0)

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError, match="out of range"):
            GeometricMesh.from_edges(np.zeros((2, 2)) + [[0, 0], [1, 1]], np.array([[0, 5]]))

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            GeometricMesh(np.random.rand(3, 2), np.array([0, 1]), np.array([1]))

    def test_node_weights_default_unit(self):
        assert np.all(_square().node_weights == 1.0)

    def test_total_weight(self):
        mesh = GeometricMesh.from_edges(
            np.random.rand(3, 2), np.array([[0, 1]]), node_weights=np.array([1.0, 2.0, 3.0])
        )
        assert mesh.total_weight == 6.0


class TestScipyRoundtrip:
    def test_to_scipy_symmetric(self):
        a = _square().to_scipy()
        assert (a != a.T).nnz == 0
        assert a.diagonal().sum() == 0

    def test_from_scipy(self):
        mesh = _square()
        back = GeometricMesh.from_scipy(mesh.coords, mesh.to_scipy())
        assert back.m == mesh.m
        assert np.array_equal(back.indptr, mesh.indptr)

    def test_edge_array_each_edge_once(self):
        edges = _square().edge_array()
        assert edges.shape == (5, 2)
        assert np.all(edges[:, 0] < edges[:, 1])


class TestStructure:
    def test_degrees(self):
        mesh = _square()
        assert mesh.degrees().tolist() == [3, 2, 3, 2]

    def test_connected(self):
        assert _square().is_connected()

    def test_components(self):
        coords = np.array([[0.0, 0], [1, 0], [5, 5], [6, 5]])
        mesh = GeometricMesh.from_edges(coords, np.array([[0, 1], [2, 3]]))
        ncomp, labels = mesh.connected_components()
        assert ncomp == 2
        assert labels[0] == labels[1] and labels[2] == labels[3]

    def test_largest_component(self):
        coords = np.array([[0.0, 0], [1, 0], [2, 0], [9, 9]])
        mesh = GeometricMesh.from_edges(coords, np.array([[0, 1], [1, 2]]))
        big = mesh.largest_component()
        assert big.n == 3 and big.is_connected()

    def test_subgraph_relabels(self):
        mesh = _square()
        sub = mesh.subgraph(np.array([True, True, True, False]))
        assert sub.n == 3
        assert sub.m == 3  # edges 0-1, 1-2, 0-2
        sub.validate()

    def test_subgraph_keeps_weights(self):
        mesh = GeometricMesh.from_edges(
            np.random.rand(4, 2), np.array([[0, 1], [2, 3]]), node_weights=np.array([1.0, 2, 3, 4])
        )
        sub = mesh.subgraph(np.array([False, True, True, False]))
        assert sub.node_weights.tolist() == [2.0, 3.0]

    def test_subgraph_bad_mask(self):
        with pytest.raises(ValueError):
            _square().subgraph(np.array([True]))


class TestPersistence:
    def test_npz_roundtrip(self, tmp_path):
        mesh = _square()
        path = str(tmp_path / "mesh.npz")
        mesh.save_npz(path)
        back = GeometricMesh.load_npz(path)
        assert back.n == mesh.n and back.m == mesh.m
        assert back.name == "square"
        assert np.array_equal(back.coords, mesh.coords)
        assert np.array_equal(back.indices, mesh.indices)

    def test_repr_mentions_weighted(self):
        mesh = GeometricMesh.from_edges(
            np.random.rand(2, 2), np.array([[0, 1]]), node_weights=np.array([1.0, 5.0])
        )
        assert "weighted" in repr(mesh)
        assert "weighted" not in repr(_square())
