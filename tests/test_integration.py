"""Cross-module integration tests: the paper's qualitative findings.

These exercise the full pipeline (generator -> partitioner -> metrics ->
SpMV) and pin down the orderings the paper reports, on instances large
enough to be stable but small enough for CI.
"""

import numpy as np
import pytest

from repro.experiments.harness import PAPER_TOOLS, run_tools_on_mesh
from repro.metrics.report import aggregate_ratios
from repro.mesh.adaptive import hugetric_like
from repro.mesh.alya import airway_mesh
from repro.mesh.climate import climate_mesh
from repro.mesh.delaunay import delaunay_mesh
from repro.partitioners.base import get_partitioner
from repro.spmv.distspmv import distributed_spmv


@pytest.fixture(scope="module")
def mixed_rows():
    """All tools on one mesh per class (2-D adaptive, 2.5-D, 3-D)."""
    rows = []
    for mesh in (
        hugetric_like(4000, rng=0),
        climate_mesh(4000, rng=1),
        airway_mesh(4000, rng=2),
    ):
        rows.extend(run_tools_on_mesh(mesh, 16, seed=0, with_spmv=True))
    return rows


class TestPaperFindings:
    def test_geographer_best_total_comm_volume(self, mixed_rows):
        """Claim (i): lowest average totCommVol across the board."""
        ratios = aggregate_ratios(mixed_rows, baseline_tool="Geographer")
        for tool in PAPER_TOOLS:
            if tool == "Geographer":
                continue
            assert ratios[tool]["totCommVol"] >= 1.0, tool

    def test_all_tools_balanced(self, mixed_rows):
        for row in mixed_rows:
            assert row.imbalance <= 0.031, (row.graph, row.tool)

    def test_no_tool_dominates_everywhere(self, mixed_rows):
        """Paper: 'None of the evaluated competitors clearly dominates.'
        Geographer wins totCommVol, but some metric on some graph goes to a
        competitor."""
        competitor_wins = 0
        by_graph = {}
        for row in mixed_rows:
            by_graph.setdefault(row.graph, []).append(row)
        for graph_rows in by_graph.values():
            for metric in ("edgeCut", "harmDiam", "time"):
                best = min(graph_rows, key=lambda r: r.metric(metric))
                if best.tool != "Geographer":
                    competitor_wins += 1
        assert competitor_wins > 0

    def test_hsfc_fast_but_lower_quality(self, mixed_rows):
        """SFC partitions: fast, balanced, but poor graph quality (§3.1)."""
        ratios = aggregate_ratios(mixed_rows, baseline_tool="Geographer")
        assert ratios["HSFC"]["totCommVol"] > 1.1
        times = {tool: [] for tool in PAPER_TOOLS}
        for row in mixed_rows:
            times[row.tool].append(row.time)
        assert np.median(times["HSFC"]) < np.median(times["Geographer"])


class TestEndToEndSpmv:
    @pytest.mark.parametrize("tool", PAPER_TOOLS)
    def test_spmv_correct_through_any_partition(self, tool):
        mesh = delaunay_mesh(500, rng=3)
        a = get_partitioner(tool).partition_mesh(mesh, 8, rng=0)
        x = np.random.default_rng(4).random(mesh.n)
        y, _ = distributed_spmv(mesh, a, 8, x)
        assert np.allclose(y, mesh.to_scipy() @ x)

    def test_lower_volume_lower_comm_time(self, mixed_rows):
        """Within a graph, SpMV comm time correlates with comm volume
        (same machine model, so the bottleneck block decides)."""
        by_graph = {}
        for row in mixed_rows:
            by_graph.setdefault(row.graph, []).append(row)
        for graph_rows in by_graph.values():
            best_vol = min(graph_rows, key=lambda r: r.max_comm_vol)
            worst_vol = max(graph_rows, key=lambda r: r.max_comm_vol)
            if worst_vol.max_comm_vol > 1.5 * best_vol.max_comm_vol:
                assert best_vol.time_spmv_comm <= worst_vol.time_spmv_comm


class TestWeightedPipeline:
    def test_climate_weighted_vs_unweighted(self):
        """The 2.5-D story: weighted partitioning fixes load imbalance."""
        from repro.metrics.imbalance import imbalance

        mesh = climate_mesh(5000, rng=5)
        geo = get_partitioner("Geographer")
        unweighted = geo.partition(mesh.coords, 12, weights=None, rng=0)
        weighted = geo.partition(mesh.coords, 12, weights=mesh.node_weights, rng=0)
        load_unweighted = imbalance(unweighted, 12, mesh.node_weights)
        load_weighted = imbalance(weighted, 12, mesh.node_weights)
        assert load_weighted <= 0.031
        assert load_weighted < load_unweighted
