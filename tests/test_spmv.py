"""Tests for halo plans and the distributed SpMV simulation."""

import numpy as np
import pytest

from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.grid import grid_mesh
from repro.metrics.commvolume import comm_volumes, total_comm_volume
from repro.partitioners.base import get_partitioner
from repro.runtime.costmodel import MachineModel
from repro.spmv.distspmv import comm_time_from_plan, distributed_spmv, spmv_comm_time
from repro.spmv.halo import build_halo_plan


def _partitioned_mesh(seed=0, n=400, k=6):
    mesh = delaunay_mesh(n, rng=seed)
    assignment = get_partitioner("RCB").partition_mesh(mesh, k)
    return mesh, assignment, k


class TestHaloPlan:
    def test_volumes_match_comm_metric(self):
        """Halo send volumes ARE the communication-volume metric."""
        mesh, a, k = _partitioned_mesh()
        plan = build_halo_plan(mesh, a, k)
        assert np.array_equal(plan.send_volumes, comm_volumes(mesh, a, k))
        assert plan.total_volume == total_comm_volume(mesh, a, k)

    def test_volume_matrix_consistency(self):
        mesh, a, k = _partitioned_mesh(1)
        plan = build_halo_plan(mesh, a, k)
        assert np.all(np.diag(plan.volume) == 0)
        assert plan.volume.sum() == plan.pair_vertices.shape[0]

    def test_pairs_are_boundary_vertices(self):
        mesh, a, k = _partitioned_mesh(2)
        plan = build_halo_plan(mesh, a, k)
        for v, dest in zip(plan.pair_vertices[:50], plan.pair_dest[:50]):
            nbr_blocks = set(a[mesh.neighbors(v)].tolist())
            assert dest in nbr_blocks

    def test_uncut_plan_empty(self):
        mesh = grid_mesh((4, 4))
        plan = build_halo_plan(mesh, np.zeros(16, dtype=np.int64), 1)
        assert plan.total_volume == 0
        assert comm_time_from_plan(plan) == 0.0

    def test_message_counts(self):
        mesh = grid_mesh((4, 4))
        a = (mesh.coords[:, 0] >= 2).astype(np.int64)
        plan = build_halo_plan(mesh, a, 2)
        assert plan.message_counts.tolist() == [1, 1]


class TestDistributedSpmv:
    @pytest.mark.parametrize("tool", ["RCB", "HSFC", "Geographer"])
    def test_matches_global_product(self, tool):
        mesh = delaunay_mesh(350, rng=3)
        k = 5
        a = get_partitioner(tool).partition_mesh(mesh, k, rng=0)
        x = np.random.default_rng(4).random(mesh.n)
        y, t = distributed_spmv(mesh, a, k, x)
        assert np.allclose(y, mesh.to_scipy() @ x)
        assert t > 0

    def test_k1_no_comm(self):
        mesh = delaunay_mesh(150, rng=5)
        x = np.ones(mesh.n)
        y, t = distributed_spmv(mesh, np.zeros(mesh.n, dtype=np.int64), 1, x)
        assert np.allclose(y, mesh.to_scipy() @ x)
        assert t == 0.0

    def test_bad_x_shape(self):
        mesh = delaunay_mesh(100, rng=6)
        with pytest.raises(ValueError):
            distributed_spmv(mesh, np.zeros(mesh.n, dtype=np.int64), 1, np.ones(3))


class TestCommTime:
    def test_monotone_in_volume(self):
        """A partition with double the halo volume costs more comm time."""
        mesh = grid_mesh((8, 8))
        one_cut = (mesh.coords[:, 0] >= 4).astype(np.int64)
        stripes = (mesh.coords[:, 0].astype(np.int64)) % 2
        t_good = spmv_comm_time(mesh, one_cut, 2)
        t_bad = spmv_comm_time(mesh, stripes, 2)
        assert t_bad > t_good

    def test_machine_model_scales(self):
        mesh, a, k = _partitioned_mesh(7)
        slow = MachineModel(alpha=1e-3, beta=1e-6)
        fast = MachineModel(alpha=1e-7, beta=1e-11)
        assert spmv_comm_time(mesh, a, k, slow) > spmv_comm_time(mesh, a, k, fast)

    def test_bottleneck_not_total(self):
        """Time is the max block's cost: adding an isolated uncut block keeps it."""
        mesh, a, k = _partitioned_mesh(8)
        t = spmv_comm_time(mesh, a, k)
        plan = build_halo_plan(mesh, a, k)
        per_block_bytes = (plan.send_volumes + plan.recv_volumes) * 8
        m = MachineModel()
        msgs = (plan.volume > 0).sum(axis=1) + (plan.volume > 0).sum(axis=0)
        expected = ((msgs * m.alpha + per_block_bytes * m.beta) * m.penalty(k)).max()
        assert t == pytest.approx(expected)
