"""Sharded on-disk dataset format: round-trip, digests, crash-safe resume."""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.io.sharded import (
    MANIFEST_NAME,
    PARTIAL_MANIFEST_NAME,
    ShardDigestError,
    ShardedDataset,
    ShardedDatasetWriter,
    write_sharded,
)
from repro.io.spill import SpillStore

SETTINGS = settings(max_examples=10, deadline=None,
                    suppress_health_check=[HealthCheck.function_scoped_fixture])


def _data(n, dim, seed):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n, dim)), 0.25 + rng.random(n),
            rng.permutation(n).astype(np.int64))


class TestRoundTrip:
    @given(
        n=st.integers(1, 300),
        dim=st.integers(1, 4),
        shard_rows=st.integers(1, 97),
        with_weights=st.booleans(),
        with_ids=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    @SETTINGS
    def test_write_read_bit_identity(self, tmp_path_factory, n, dim, shard_rows,
                                     with_weights, with_ids, seed):
        tmp = tmp_path_factory.mktemp("ds")
        pts, w, ids = _data(n, dim, seed)
        ds = write_sharded(tmp / "d", pts,
                           weights=w if with_weights else None,
                           ids=ids if with_ids else None,
                           shard_rows=shard_rows)
        assert ds.n == n and ds.dim == dim
        assert ds.nshards == -(-n // shard_rows)
        rpts, rw, rids = ds.load()
        assert rpts.tobytes() == pts.tobytes()
        assert (rw is None) == (not with_weights)
        if with_weights:
            assert rw.tobytes() == w.tobytes()
        if with_ids:
            assert np.array_equal(rids, ids)
        lo, hi = ds.bounding_box()
        assert np.array_equal(lo, pts.min(axis=0))
        assert np.array_equal(hi, pts.max(axis=0))
        ds.verify()  # digests hold for freshly written data

    @given(n=st.integers(1, 200), lo=st.integers(0, 199), span=st.integers(0, 199),
           seed=st.integers(0, 2**16))
    @SETTINGS
    def test_windowed_reads_match_full_load(self, tmp_path_factory, n, lo, span, seed):
        tmp = tmp_path_factory.mktemp("ds")
        pts, w, _ = _data(n, 2, seed)
        ds = write_sharded(tmp / "d", pts, weights=w, shard_rows=37)
        lo = min(lo, n)
        hi = min(lo + span, n)
        rpts, rw, _ = ds.read_rows(lo, hi)
        assert rpts.tobytes() == pts[lo:hi].tobytes()
        assert rw.tobytes() == w[lo:hi].tobytes()

    def test_tiles_concatenate_to_the_dataset(self, tmp_path):
        pts, w, _ = _data(150, 3, 0)
        ds = write_sharded(tmp_path / "d", pts, weights=w, shard_rows=40)
        got = np.concatenate([np.asarray(t) for _, t, _, _ in ds.iter_tiles(max_rows=17)])
        assert got.tobytes() == pts.tobytes()
        offsets = [off for off, _, _, _ in ds.iter_tiles(max_rows=17)]
        assert offsets == sorted(offsets)

    def test_pickles_as_directory_path(self, tmp_path):
        import pickle

        pts, _, _ = _data(30, 2, 1)
        ds = write_sharded(tmp_path / "d", pts, shard_rows=10)
        clone = pickle.loads(pickle.dumps(ds))
        assert clone.digest == ds.digest
        assert clone.load()[0].tobytes() == pts.tobytes()


class TestDigests:
    def test_corrupt_shard_detected(self, tmp_path):
        pts, w, _ = _data(100, 2, 2)
        ds = write_sharded(tmp_path / "d", pts, weights=w, shard_rows=30)
        victim = tmp_path / "d" / f"{ds.shards[1].name}.points.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(ShardDigestError, match="digest"):
            ds.verify()
        with pytest.raises(ShardDigestError):
            ShardedDataset(tmp_path / "d", verify=True)

    def test_missing_shard_detected(self, tmp_path):
        pts, _, _ = _data(100, 2, 3)
        ds = write_sharded(tmp_path / "d", pts, shard_rows=30)
        (tmp_path / "d" / f"{ds.shards[0].name}.points.npy").unlink()
        with pytest.raises(ShardDigestError, match="missing"):
            ds.verify()

    def test_tampered_manifest_detected(self, tmp_path):
        pts, _, _ = _data(50, 2, 4)
        write_sharded(tmp_path / "d", pts, shard_rows=20)
        manifest = tmp_path / "d" / MANIFEST_NAME
        body = json.loads(manifest.read_text())
        body["n"] = 49
        manifest.write_text(json.dumps(body))
        with pytest.raises(ShardDigestError, match="manifest digest"):
            ShardedDataset(tmp_path / "d")

    def test_digest_identifies_content_not_layout(self, tmp_path):
        # same rows, different shard size -> different manifests by design
        pts, _, _ = _data(60, 2, 5)
        a = write_sharded(tmp_path / "a", pts, shard_rows=60)
        b = write_sharded(tmp_path / "b", pts, shard_rows=60)
        c = write_sharded(tmp_path / "c", pts, shard_rows=13)
        assert a.digest == b.digest
        assert a.digest != c.digest


class TestResume:
    @given(n=st.integers(2, 200), cut=st.integers(1, 199), shard_rows=st.integers(1, 41),
           seed=st.integers(0, 2**16))
    @SETTINGS
    def test_resumed_build_equals_uninterrupted(self, tmp_path_factory, n, cut,
                                                shard_rows, seed):
        cut = min(cut, n - 1)
        # at least one full shard must have been flushed for a partial
        # manifest to exist at the crash point
        assume(cut >= shard_rows)
        tmp = tmp_path_factory.mktemp("ds")
        pts, w, _ = _data(n, 2, seed)
        whole = write_sharded(tmp / "whole", pts, weights=w, shard_rows=shard_rows)
        # interrupted build: first `cut` rows, then the writer is abandoned
        writer = ShardedDatasetWriter(tmp / "part", dim=2, shard_rows=shard_rows,
                                      with_weights=True)
        writer.append(pts[:cut], weights=w[:cut])
        del writer  # crash: no finalize
        assert (tmp / "part" / PARTIAL_MANIFEST_NAME).exists()
        resumed = ShardedDatasetWriter.resume(tmp / "part")
        done = resumed._rows_written
        assert done <= cut  # buffered rows were lost with the crash
        resumed.append(pts[done:], weights=w[done:])
        ds = resumed.finalize()
        assert ds.digest == whole.digest
        assert ds.load()[0].tobytes() == pts.tobytes()

    def test_resume_rejects_corrupted_completed_shard(self, tmp_path):
        pts, _, _ = _data(90, 2, 6)
        writer = ShardedDatasetWriter(tmp_path / "d", dim=2, shard_rows=30)
        writer.append(pts[:60])
        victim = tmp_path / "d" / "shard-000000.points.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(ShardDigestError):
            ShardedDatasetWriter.resume(tmp_path / "d")

    def test_open_of_partial_build_hints_at_resume(self, tmp_path):
        writer = ShardedDatasetWriter(tmp_path / "d", dim=2, shard_rows=10)
        writer.append(np.zeros((10, 2)))
        with pytest.raises(FileNotFoundError, match="resume"):
            ShardedDataset(tmp_path / "d")


class TestSpill:
    def test_handle_round_trip_and_windowed_io(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        arr = np.arange(24, dtype=np.float64).reshape(12, 2)
        h = store.put("x", arr)
        assert h.rows == 12 and h.row_bytes == 16
        assert np.array_equal(h.read(), arr)
        assert np.array_equal(h.read_rows(3, 7), arr[3:7])
        h.write_rows(5, np.full((2, 2), -1.0))
        arr[5:7] = -1.0
        assert np.array_equal(store.handle("x").read(), arr)
        assert np.array_equal(np.asarray(h), arr)  # __array__ for checkpoints

    def test_windowed_io_bounds_checked(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        h = store.put("x", np.zeros(5))
        with pytest.raises(IndexError):
            h.read_rows(2, 9)
        with pytest.raises(IndexError):
            h.write_rows(4, np.zeros(3))
