"""Tests for center seeding strategies."""

import numpy as np
import pytest

from repro.core.seeding import kmeanspp_seeding, random_seeding, seed_centers, sfc_seeding


class TestSfcSeeding:
    def test_positions_formula(self):
        """Centers sit at sortedPoints[i*n/k + n/2k] (Algorithm 2, line 7)."""
        n, k = 100, 4
        pts = np.column_stack([np.linspace(0, 1, n), np.zeros(n)])
        # on a 1-D-like set, the Hilbert order is the x order
        centers = sfc_seeding(pts, k)
        expected_idx = [i * n // k + n // (2 * k) for i in range(k)]
        assert np.allclose(np.sort(centers[:, 0]), pts[expected_idx, 0])

    def test_centers_are_input_points(self):
        rng = np.random.default_rng(0)
        pts = rng.random((200, 2))
        centers = sfc_seeding(pts, 8)
        for c in centers:
            assert np.any(np.all(np.isclose(pts, c), axis=1))

    def test_centers_well_spread(self):
        """SFC seeding spreads centers: no two coincide, min pairwise distance
        is a reasonable fraction of the domain."""
        rng = np.random.default_rng(1)
        pts = rng.random((2000, 2))
        centers = sfc_seeding(pts, 16)
        d = np.linalg.norm(centers[:, None] - centers[None, :], axis=2)
        np.fill_diagonal(d, np.inf)
        assert d.min() > 0.05

    def test_with_precomputed_order(self):
        rng = np.random.default_rng(2)
        pts = rng.random((300, 2))
        from repro.sfc.curves import sfc_index

        order = np.argsort(sfc_index(pts), kind="stable")
        a = sfc_seeding(pts, 5, order=order)
        b = sfc_seeding(pts, 5)
        assert np.allclose(a, b)

    def test_k_equals_n(self):
        pts = np.random.default_rng(3).random((6, 2))
        centers = sfc_seeding(pts, 6)
        assert centers.shape == (6, 2)
        assert len(np.unique(centers, axis=0)) == 6


class TestRandomSeeding:
    def test_distinct_points(self):
        pts = np.random.default_rng(4).random((50, 2))
        centers = random_seeding(pts, 10, rng=0)
        assert len(np.unique(centers, axis=0)) == 10

    def test_deterministic_with_seed(self):
        pts = np.random.default_rng(5).random((50, 2))
        assert np.array_equal(random_seeding(pts, 5, rng=1), random_seeding(pts, 5, rng=1))


class TestKmeansPP:
    def test_shape(self):
        pts = np.random.default_rng(6).random((100, 3))
        assert kmeanspp_seeding(pts, 7, rng=0).shape == (7, 3)

    def test_spreads_over_clusters(self):
        """With 4 well-separated blobs and k=4, k-means++ hits all blobs."""
        rng = np.random.default_rng(7)
        blobs = [rng.normal(c, 0.05, (50, 2)) for c in [(0, 0), (0, 5), (5, 0), (5, 5)]]
        pts = np.concatenate(blobs)
        centers = kmeanspp_seeding(pts, 4, rng=1)
        labels = {(round(c[0] / 5), round(c[1] / 5)) for c in centers}
        assert len(labels) == 4

    def test_degenerate_identical_points(self):
        pts = np.ones((20, 2))
        centers = kmeanspp_seeding(pts, 3, rng=2)
        assert np.allclose(centers, 1.0)


class TestDispatch:
    def test_all_methods(self):
        pts = np.random.default_rng(8).random((60, 2))
        for method in ("sfc", "random", "kmeans++"):
            assert seed_centers(pts, 4, method, rng=0).shape == (4, 2)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            seed_centers(np.random.rand(10, 2), 2, "magic")
