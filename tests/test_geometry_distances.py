"""Tests for repro.geometry.distances — effective-distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.distances import (
    effective_distances,
    pairwise_distances,
    pairwise_sq_distances,
    top2_effective,
)


def _pts(n_range=(1, 20), d=2, lim=50):
    return arrays(
        np.float64,
        st.tuples(st.integers(*n_range), st.just(d)),
        elements=st.floats(-lim, lim, allow_nan=False),
    )


class TestPairwise:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        p = rng.random((30, 3))
        c = rng.random((7, 3))
        naive = np.linalg.norm(p[:, None, :] - c[None, :, :], axis=2)
        assert np.allclose(pairwise_distances(p, c), naive)

    def test_zero_distance(self):
        p = np.array([[1.0, 2.0]])
        assert pairwise_sq_distances(p, p)[0, 0] == pytest.approx(0.0)

    def test_no_negative_squares(self):
        # catastrophic cancellation case: nearly identical large coordinates
        p = np.full((4, 2), 1e8)
        c = p + 1e-9
        assert np.all(pairwise_sq_distances(p, c) >= 0.0)

    @settings(max_examples=50, deadline=None)
    @given(_pts(), _pts(n_range=(1, 8)))
    def test_property_matches_naive(self, p, c):
        naive = np.linalg.norm(p[:, None, :] - c[None, :, :], axis=2)
        assert np.allclose(pairwise_distances(p, c), naive, atol=1e-6)


class TestEffective:
    def test_influence_scales(self):
        p = np.array([[0.0, 0.0]])
        c = np.array([[3.0, 4.0]])
        eff = effective_distances(p, c, np.array([2.0]))
        assert eff[0, 0] == pytest.approx(2.5)

    def test_influence_must_be_positive(self):
        with pytest.raises(ValueError):
            effective_distances(np.zeros((1, 2)), np.zeros((1, 2)), np.array([0.0]))

    def test_higher_influence_attracts(self):
        """A cluster with higher influence wins ties (weighted Voronoi)."""
        p = np.array([[0.5, 0.0]])
        centers = np.array([[0.0, 0.0], [1.0, 0.0]])
        assign, _, _ = top2_effective(p, centers, np.array([1.0, 2.0]))
        assert assign[0] == 1


class TestTop2:
    def test_best_below_second(self):
        rng = np.random.default_rng(1)
        p = rng.random((50, 2))
        c = rng.random((6, 2))
        infl = rng.uniform(0.5, 2.0, 6)
        assign, best, second = top2_effective(p, c, infl)
        assert np.all(best <= second)
        eff = effective_distances(p, c, infl)
        assert np.allclose(best, eff.min(axis=1))
        assert np.array_equal(assign, eff.argmin(axis=1))

    def test_second_is_true_runner_up(self):
        rng = np.random.default_rng(2)
        p = rng.random((40, 3))
        c = rng.random((5, 3))
        infl = np.ones(5)
        _, _, second = top2_effective(p, c, infl)
        eff = effective_distances(p, c, infl)
        expected = np.sort(eff, axis=1)[:, 1]
        assert np.allclose(second, expected)

    def test_single_center(self):
        p = np.random.default_rng(3).random((5, 2))
        assign, best, second = top2_effective(p, p[:1], np.ones(1))
        assert np.all(assign == 0)
        assert np.all(np.isinf(second))

    def test_candidate_subset_maps_to_global_ids(self):
        rng = np.random.default_rng(4)
        p = rng.random((20, 2))
        c = rng.random((8, 2))
        infl = np.ones(8)
        full_assign, full_best, full_second = top2_effective(p, c, infl)
        # restricting to all candidates must be identical
        cand = np.arange(8)
        a2, b2, s2 = top2_effective(p, c, infl, cand)
        assert np.array_equal(full_assign, a2)
        assert np.allclose(full_best, b2)
        assert np.allclose(full_second, s2)

    def test_candidate_subset_partial(self):
        rng = np.random.default_rng(5)
        p = rng.random((10, 2))
        c = rng.random((6, 2))
        infl = np.ones(6)
        cand = np.array([1, 4, 5])
        assign, best, _ = top2_effective(p, c, infl, cand)
        assert set(np.unique(assign)).issubset(set(cand.tolist()))
        eff = effective_distances(p, c[cand], infl[cand])
        assert np.allclose(best, eff.min(axis=1))
