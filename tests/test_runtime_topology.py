"""Tests for MachineTopology, per-level reductions, and distributed warm starts."""

import numpy as np
import pytest

from repro.core.config import BalancedKMeansConfig
from repro.runtime.comm import VirtualComm
from repro.runtime.costmodel import SUPERMUC_TOPOLOGY, MachineModel, MachineTopology
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans


class TestMachineTopology:
    def test_basic(self):
        topo = MachineTopology(branching=(2, 3, 4))
        assert topo.total == 24 and topo.nlevels == 3
        assert topo.level_names == ("island", "node", "core")
        assert topo.subtree_size(0) == 24
        assert topo.subtree_size(1) == 12
        assert topo.subtree_size(2) == 4

    def test_from_factorization(self):
        assert MachineTopology.from_factorization(4, 8).branching == (4, 8)

    def test_default_names_short_and_long(self):
        assert MachineTopology(branching=(2, 2)).level_names == ("node", "core")
        assert MachineTopology(branching=(2, 2, 2, 2)).level_names == (
            "level0", "level1", "level2", "level3")

    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            MachineTopology(branching=())
        with pytest.raises(ValueError):
            MachineTopology(branching=(2, 0))
        with pytest.raises(ValueError):
            MachineTopology(branching=(2, 2), level_names=("only-one",))

    def test_machine_model_island_size(self):
        topo = MachineTopology(branching=(2, 512, 16))
        machine = topo.machine_model()
        assert machine.island_size == 512 * 16

    def test_supermuc_topology_matches_default_machine(self):
        assert SUPERMUC_TOPOLOGY.total == 16384


class TestHierarchicalAllreduce:
    def test_cheaper_than_flat_across_islands(self):
        """Per-level reductions pay the island penalty only at the root stage."""
        machine = MachineModel()
        topo = MachineTopology(branching=(2, 512, 16))
        nbytes = 1024.0
        flat = machine.allreduce(nbytes, topo.total)
        staged = machine.hierarchical_allreduce(nbytes, topo)
        assert staged < flat

    def test_single_island_no_penalty(self):
        machine = MachineModel(island_size=8192)
        topo = MachineTopology(branching=(1, 16, 16))  # 256 ranks, one island
        staged = machine.hierarchical_allreduce(64.0, topo)
        # 4 + 4 rounds, no island factor anywhere
        assert staged == pytest.approx(8 * (machine.alpha + machine.beta * 64.0))

    def test_virtualcomm_uses_topology_cost(self):
        topo = MachineTopology(branching=(2, 2))
        flat = VirtualComm(4)
        staged = VirtualComm(4, topology=topo)
        data = [np.ones(3) for _ in range(4)]
        out_flat = flat.allreduce(data)
        out_staged = staged.allreduce(data)
        assert np.array_equal(out_flat, out_staged)  # value identical, cost differs
        assert staged.ledger.comm_seconds > 0

    def test_virtualcomm_rejects_mismatched_topology(self):
        with pytest.raises(ValueError, match="leaves"):
            VirtualComm(8, topology=MachineTopology(branching=(2, 2)))


class TestDistributedWarmStart:
    def test_warm_start_reaches_balance(self):
        pts = np.random.default_rng(0).random((1200, 2))
        cfg = BalancedKMeansConfig(use_sampling=False)
        cold = distributed_balanced_kmeans(pts, k=6, nranks=4, config=cfg, rng=1)
        warm = distributed_balanced_kmeans(pts, k=6, nranks=4, config=cfg, rng=1,
                                           centers=cold.centers)
        assert warm.imbalance <= 0.031
        assert warm.iterations <= cold.iterations

    def test_warm_start_bad_shape_rejected(self):
        pts = np.random.default_rng(2).random((400, 2))
        with pytest.raises(ValueError, match="warm-start centers"):
            distributed_balanced_kmeans(pts, k=4, nranks=2, centers=np.zeros((3, 2)))

    def test_topology_run_produces_same_partition(self):
        """Per-level reduction costing never changes the computed partition."""
        pts = np.random.default_rng(3).random((900, 2))
        cfg = BalancedKMeansConfig(use_sampling=False)
        topo = MachineTopology(branching=(2, 2))
        plain = distributed_balanced_kmeans(pts, k=4, nranks=4, config=cfg, rng=4)
        staged = distributed_balanced_kmeans(pts, k=4, nranks=4, config=cfg, rng=4,
                                             topology=topo)
        assert np.array_equal(plain.assignment, staged.assignment)
        assert staged.simulated_seconds > 0
