"""Tests for the kernel engine (squared-space top-2 + SweepWorkspace).

The central claim: the squared-space kernel with every cache enabled returns
*bit-identical* ``(assign, ub, lb)`` to the reference
``effective_distances``-based path, across backends, candidate subsets and
workspace configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assign import assign_points
from repro.core.bounds import init_bounds
from repro.core.config import BalancedKMeansConfig
from repro.core.kernels import HAVE_NUMBA, SweepWorkspace, resolve_backend
from repro.geometry.boxes import BoundingBox, block_bounds, blocks_min_max_sq
from repro.geometry.distances import (
    effective_distances,
    top2_effective,
    top2_effective_reference,
)


def _random_case(seed, n, k, d, infl_lo=0.5, infl_hi=2.0):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d))
    centers = rng.random((k, d))
    influence = rng.uniform(infl_lo, infl_hi, k)
    return pts, centers, influence


class TestSquaredSpaceBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 200),
        k=st.integers(1, 24),
        d=st.sampled_from([2, 3]),
        wide_influence=st.booleans(),
    )
    def test_property_matches_reference(self, seed, n, k, d, wide_influence):
        lo, hi = (0.01, 100.0) if wide_influence else (0.5, 2.0)
        pts, centers, influence = _random_case(seed, n, k, d, lo, hi)
        ref = top2_effective_reference(pts, centers, influence)
        new = top2_effective(pts, centers, influence)
        for r, x, name in zip(ref, new, ("assign", "ub", "lb")):
            assert np.array_equal(r, x), f"{name} differs from reference"

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(3, 12))
    def test_property_candidate_subset_matches_reference(self, seed, k):
        pts, centers, influence = _random_case(seed, 60, k, 2)
        rng = np.random.default_rng(seed + 1)
        cand = np.sort(rng.choice(k, size=rng.integers(2, k + 1), replace=False))
        ref = top2_effective_reference(pts, centers, influence, cand)
        new = top2_effective(pts, centers, influence, cand)
        for r, x in zip(ref, new):
            assert np.array_equal(r, x)

    def test_k_equals_1(self):
        pts, centers, influence = _random_case(0, 50, 1, 2)
        ref = top2_effective_reference(pts, centers, influence)
        new = top2_effective(pts, centers, influence)
        assert np.array_equal(ref[0], new[0])
        assert np.array_equal(ref[1], new[1])
        assert np.all(np.isinf(new[2]))

    def test_single_candidate(self):
        pts, centers, influence = _random_case(1, 20, 6, 2)
        cand = np.array([3])
        assign, best, second = top2_effective(pts, centers, influence, cand)
        assert np.all(assign == 3)
        assert np.all(np.isinf(second))
        ref = top2_effective_reference(pts, centers, influence, cand)
        assert np.array_equal(ref[1], best)

    def test_cached_geometry_kwargs_are_bit_identical(self):
        pts, centers, influence = _random_case(2, 300, 16, 2)
        plain = top2_effective(pts, centers, influence)
        p_sq = np.einsum("ij,ij->i", pts, pts)
        c_sq = np.einsum("ij,ij->i", centers, centers)
        inv2 = influence**-2.0
        sq_out = np.empty((300, 16))
        scaled_out = np.empty((300, 16))
        cached = top2_effective(
            pts, centers, influence,
            p_sq=p_sq, c_sq=c_sq, inv_influence_sq=inv2,
            sq_out=sq_out, scaled_out=scaled_out,
        )
        for a, b in zip(plain, cached):
            assert np.array_equal(a, b)

    def test_rejects_nonpositive_influence(self):
        pts, centers, _ = _random_case(3, 10, 4, 2)
        with pytest.raises(ValueError):
            top2_effective(pts, centers, np.array([1.0, 0.0, 1.0, 1.0]))


class TestBackendResolution:
    def test_numpy_always_available(self):
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")
        with pytest.raises(ValueError):
            BalancedKMeansConfig(kernel_backend="cuda")

    def test_numba_absent_falls_back_with_one_warning(self):
        """Requesting numba must never fail — it degrades to numpy.

        Since the kernel-backend registry the degradation is no longer
        silent: the first resolution warns once, naming the missing
        dependency; subsequent resolutions stay quiet.
        """
        import warnings

        from repro.core import xp

        xp._reset_fallback_warnings()
        if HAVE_NUMBA:
            assert resolve_backend("numba") == "numba"
            resolved = "numba"
        else:
            with pytest.warns(RuntimeWarning, match="numba"):
                resolved = resolve_backend("numba")
            assert resolved == "numpy"
            with warnings.catch_warnings():  # one-time: later resolutions are silent
                warnings.simplefilter("error")
                assert resolve_backend("numba") == "numpy"
        cfg = BalancedKMeansConfig(kernel_backend="numba")
        ws = SweepWorkspace(np.random.default_rng(0).random((64, 2)), cfg, 4)
        assert ws.backend == resolved

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_matches_numpy(self):
        pts, centers, influence = _random_case(4, 500, 12, 2)
        cfg_np = BalancedKMeansConfig(kernel_backend="numpy", sfc_sort=False)
        cfg_nb = cfg_np.with_(kernel_backend="numba")
        outs = []
        for cfg in (cfg_np, cfg_nb):
            assignment = np.zeros(len(pts), dtype=np.int64)
            ub, lb = init_bounds(len(pts))
            assign_points(pts, centers, influence, assignment, ub, lb, cfg)
            outs.append((assignment, ub, lb))
        assert np.array_equal(outs[0][0], outs[1][0])
        assert np.allclose(outs[0][1], outs[1][1])
        assert np.allclose(outs[0][2], outs[1][2])


class TestSweepWorkspace:
    def test_phase_cache_refreshes_on_new_centers(self):
        pts, centers, influence = _random_case(5, 400, 8, 2)
        cfg = BalancedKMeansConfig(chunk_size=64)
        ws = SweepWorkspace(pts, cfg, 8)
        ws.prepare(centers, influence)
        first_c_sq = ws.centers_sq.copy()
        moved = centers + 0.1
        ws.prepare(moved, influence)
        assert not np.array_equal(first_c_sq, ws.centers_sq)

    def test_inplace_center_mutation_via_begin_phase(self):
        pts, centers, influence = _random_case(6, 200, 6, 2)
        cfg = BalancedKMeansConfig(chunk_size=64)
        ws = SweepWorkspace(pts, cfg, 6)
        ws.prepare(centers, influence)
        centers[0] += 5.0  # identity check alone would miss this
        ws.begin_phase(centers)
        assert np.allclose(ws.centers_sq, np.einsum("ij,ij->i", centers, centers))

    def test_workspace_reuse_is_bit_identical_to_fresh(self):
        """Reusing one workspace across sweeps must equal fresh construction."""
        pts, centers, influence = _random_case(7, 1000, 10, 2)
        cfg = BalancedKMeansConfig(chunk_size=128)
        shared = SweepWorkspace(pts, cfg, 10)
        for infl_scale in (1.0, 1.1, 0.9):
            infl = influence * infl_scale
            out_shared, out_fresh = [], []
            for ws in (shared, SweepWorkspace(pts, cfg, 10)):
                assignment = np.zeros(len(pts), dtype=np.int64)
                ub, lb = init_bounds(len(pts))
                assign_points(pts, centers, infl, assignment, ub, lb, cfg, workspace=ws)
                out_shared.append((assignment.copy(), ub.copy(), lb.copy()))
            for a, b in zip(out_shared[0], out_shared[1]):
                assert np.array_equal(a, b)

    def test_static_blocks_only_with_sfc_sort(self):
        pts = np.random.default_rng(8).random((300, 2))
        on = SweepWorkspace(pts, BalancedKMeansConfig(sfc_sort=True, chunk_size=64), 8)
        off = SweepWorkspace(pts, BalancedKMeansConfig(sfc_sort=False, chunk_size=64), 8)
        assert on.has_static_blocks and not off.has_static_blocks
        assert on.n_blocks == int(np.ceil(300 / 64))

    def test_static_block_pruning_matches_unpruned(self):
        """Static-block candidate sets are exact: assignments cannot change."""
        rng = np.random.default_rng(9)
        from repro.sfc.curves import sfc_index

        pts = rng.random((2000, 2))
        pts = pts[np.argsort(sfc_index(pts), kind="stable")]
        centers = rng.random((16, 2))
        influence = rng.uniform(0.5, 2.0, 16)
        base = BalancedKMeansConfig(chunk_size=128, sfc_sort=True)
        ref = effective_distances(pts, centers, influence).argmin(axis=1)
        for use_pruning in (True, False):
            cfg = base.with_(use_box_pruning=use_pruning)
            assignment = np.zeros(len(pts), dtype=np.int64)
            ub, lb = init_bounds(len(pts))
            assign_points(pts, centers, influence, assignment, ub, lb, cfg)
            assert np.array_equal(assignment, ref)

    def test_static_blocks_prune(self):
        """On SFC-sorted data the cached block boxes actually drop centers."""
        rng = np.random.default_rng(10)
        from repro.sfc.curves import sfc_index

        pts = rng.random((4000, 2))
        pts = pts[np.argsort(sfc_index(pts), kind="stable")]
        centers = rng.random((32, 2))
        ws = SweepWorkspace(pts, BalancedKMeansConfig(chunk_size=256), 32)
        ws.prepare(centers, np.ones(32))
        cand_sizes = [len(c) if (c := ws.block_candidates(b)) is not None else 32
                      for b in range(ws.n_blocks)]
        assert min(cand_sizes) < 32

    def test_empty_point_set(self):
        """An empty rank (distributed runtime) must sweep as a no-op."""
        cfg = BalancedKMeansConfig()  # sfc_sort + pruning on: the static-block path
        empty = np.empty((0, 2))
        ws = SweepWorkspace(empty, cfg, 4)
        assert not ws.has_static_blocks
        centers = np.random.default_rng(16).random((4, 2))
        assignment = np.zeros(0, dtype=np.int64)
        ub, lb = init_bounds(0)
        evaluated = assign_points(empty, centers, np.ones(4), assignment, ub, lb, cfg, workspace=ws)
        assert evaluated == 0

    def test_workspace_rejects_wrong_k(self):
        ws = SweepWorkspace(np.random.default_rng(11).random((50, 2)),
                            BalancedKMeansConfig(), 4)
        with pytest.raises(ValueError):
            ws.begin_phase(np.zeros((5, 2)))


class TestBlockBoxes:
    def test_block_bounds_cover_blocks(self):
        pts = np.random.default_rng(12).random((250, 3))
        lo, hi = block_bounds(pts, 64)
        assert lo.shape == (4, 3)
        for b in range(4):
            blk = pts[b * 64 : (b + 1) * 64]
            assert np.allclose(lo[b], blk.min(axis=0))
            assert np.allclose(hi[b], blk.max(axis=0))

    def test_blocks_min_max_sq_matches_boundingbox(self):
        rng = np.random.default_rng(13)
        pts = rng.random((200, 2))
        centers = rng.random((7, 2))
        lo, hi = block_bounds(pts, 50)
        min_sq, max_sq = blocks_min_max_sq(lo, hi, centers)
        for b in range(4):
            bb = BoundingBox(lo[b], hi[b])
            assert np.allclose(min_sq[b], bb.min_sq_dist(centers))
            assert np.allclose(max_sq[b], bb.max_sq_dist(centers))

    def test_sq_dist_consistent_with_dist(self):
        rng = np.random.default_rng(14)
        bb = BoundingBox.from_points(rng.random((30, 2)))
        q = rng.random((10, 2)) * 3 - 1
        assert np.allclose(bb.min_dist(q) ** 2, bb.min_sq_dist(q))
        assert np.allclose(bb.max_dist(q) ** 2, bb.max_sq_dist(q))

    def test_block_bounds_validation(self):
        with pytest.raises(ValueError):
            block_bounds(np.empty((0, 2)), 8)
        with pytest.raises(ValueError):
            block_bounds(np.random.rand(5, 2), 0)


class TestEndToEndBackendSwitch:
    def test_balanced_kmeans_accepts_backend_config(self):
        from repro.core.balanced_kmeans import balanced_kmeans

        pts = np.random.default_rng(15).random((2000, 2))
        res_np = balanced_kmeans(pts, 8, config=BalancedKMeansConfig(kernel_backend="numpy"), rng=0)
        # "numba" must work whether or not numba is installed (silent fallback)
        res_nb = balanced_kmeans(pts, 8, config=BalancedKMeansConfig(kernel_backend="numba"), rng=0)
        assert res_nb.imbalance <= 0.031
        if not HAVE_NUMBA:  # fallback means literally the same code path
            assert np.array_equal(res_np.assignment, res_nb.assignment)
