"""Tests for the vectorised assign-and-balance kernel (Algorithm 1).

The central invariant: Hamerly bounds and bounding-box pruning are *exact*
optimisations — any configuration of switches yields identical assignments.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assign import AssignStats, _box_candidates, assign_and_balance, assign_points
from repro.core.bounds import init_bounds
from repro.core.config import BalancedKMeansConfig
from repro.geometry.distances import effective_distances


def _setup(seed, n=400, k=8, d=2):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, d))
    centers = rng.random((k, d))
    influence = rng.uniform(0.7, 1.4, k)
    return pts, centers, influence


def _brute_assign(pts, centers, influence):
    return effective_distances(pts, centers, influence).argmin(axis=1)


class TestAssignPoints:
    @pytest.mark.parametrize("use_bounds,use_pruning", [(True, True), (True, False), (False, True), (False, False)])
    def test_matches_brute_force(self, use_bounds, use_pruning):
        pts, centers, influence = _setup(0)
        cfg = BalancedKMeansConfig(use_bounds=use_bounds, use_box_pruning=use_pruning, chunk_size=64)
        assignment = np.zeros(len(pts), dtype=np.int64)
        ub, lb = init_bounds(len(pts))
        assign_points(pts, centers, influence, assignment, ub, lb, cfg)
        assert np.array_equal(assignment, _brute_assign(pts, centers, influence))

    def test_bounds_skip_stable_points(self):
        pts, centers, influence = _setup(1)
        cfg = BalancedKMeansConfig()
        assignment = np.zeros(len(pts), dtype=np.int64)
        ub, lb = init_bounds(len(pts))
        assign_points(pts, centers, influence, assignment, ub, lb, cfg)
        stats = AssignStats()
        evaluated = assign_points(pts, centers, influence, assignment, ub, lb, cfg, stats)
        # nothing moved -> bounds certify everything
        assert evaluated == 0
        assert stats.skip_fraction == 1.0

    def test_bounds_are_exact_after_sweep(self):
        pts, centers, influence = _setup(2)
        cfg = BalancedKMeansConfig(use_box_pruning=False)
        assignment = np.zeros(len(pts), dtype=np.int64)
        ub, lb = init_bounds(len(pts))
        assign_points(pts, centers, influence, assignment, ub, lb, cfg)
        eff = effective_distances(pts, centers, influence)
        assert np.allclose(ub, eff.min(axis=1))
        assert np.allclose(lb, np.partition(eff, 1, axis=1)[:, 1])

    def test_stats_counters(self):
        pts, centers, influence = _setup(3)
        cfg = BalancedKMeansConfig(use_box_pruning=True, chunk_size=50)
        assignment = np.zeros(len(pts), dtype=np.int64)
        ub, lb = init_bounds(len(pts))
        stats = AssignStats()
        assign_points(pts, centers, influence, assignment, ub, lb, cfg, stats)
        assert stats.points_total == len(pts)
        assert stats.center_evals <= stats.center_evals_possible
        assert 0.0 <= stats.pruning_fraction <= 1.0


class TestBoxCandidates:
    def test_prunes_far_centers(self):
        rng = np.random.default_rng(4)
        chunk = rng.random((50, 2)) * 0.1  # tight cluster near origin
        centers = np.concatenate([rng.random((3, 2)) * 0.2, np.full((5, 2), 10.0)])
        cand = _box_candidates(chunk, centers, np.ones(8))
        assert cand is not None
        assert set(cand.tolist()).issubset({0, 1, 2})

    def test_keeps_all_when_necessary(self):
        chunk = np.random.default_rng(5).random((20, 2))  # chunk spans everything
        centers = np.random.default_rng(6).random((4, 2))
        cand = _box_candidates(chunk, centers, np.ones(4))
        # may return None (all) — both candidates paths must cover >= 2 centers
        assert cand is None or cand.shape[0] >= 2

    def test_small_k_skipped(self):
        chunk = np.random.default_rng(7).random((10, 2))
        assert _box_candidates(chunk, np.random.rand(2, 2), np.ones(2)) is None


class TestAssignAndBalance:
    def test_reaches_balance(self):
        rng = np.random.default_rng(8)
        pts = rng.random((2000, 2))
        k = 8
        from repro.core.seeding import sfc_seeding

        centers = sfc_seeding(pts, k)
        cfg = BalancedKMeansConfig(max_balance_iterations=50)
        assignment = np.zeros(len(pts), dtype=np.int64)
        ub, lb = init_bounds(len(pts))
        weights = np.ones(len(pts))
        targets = np.full(k, len(pts) / k)
        outcome = assign_and_balance(pts, weights, centers, np.ones(k), assignment, ub, lb, targets, cfg)
        assert outcome.balanced
        assert outcome.imbalance <= cfg.epsilon
        assert outcome.block_weights.sum() == pytest.approx(len(pts))

    def test_influence_consistent_with_assignment(self):
        """Returned influence is the one the final assignment was computed with."""
        rng = np.random.default_rng(9)
        pts = rng.random((500, 2))
        k = 4
        centers = pts[rng.choice(500, k, replace=False)]
        cfg = BalancedKMeansConfig(max_balance_iterations=10)
        assignment = np.zeros(len(pts), dtype=np.int64)
        ub, lb = init_bounds(len(pts))
        targets = np.full(k, len(pts) / k)
        outcome = assign_and_balance(pts, np.ones(len(pts)), centers, np.ones(k), assignment, ub, lb, targets, cfg)
        expected = effective_distances(pts, centers, outcome.influence).argmin(axis=1)
        assert np.array_equal(assignment, expected)

    def test_input_influence_not_mutated(self):
        rng = np.random.default_rng(10)
        pts = rng.random((300, 2))
        influence = np.ones(3)
        centers = pts[:3]
        cfg = BalancedKMeansConfig()
        assignment = np.zeros(300, dtype=np.int64)
        ub, lb = init_bounds(300)
        assign_and_balance(pts, np.ones(300), centers, influence, assignment, ub, lb,
                           np.full(3, 100.0), cfg)
        assert np.all(influence == 1.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), k=st.integers(2, 12), chunk=st.sampled_from([17, 64, 4096]))
def test_property_optimisations_exact(seed, k, chunk):
    """For any random state, all optimisation switches agree with brute force."""
    rng = np.random.default_rng(seed)
    pts = rng.random((150, 2))
    centers = rng.random((k, 2))
    influence = rng.uniform(0.5, 2.0, k)
    reference = _brute_assign(pts, centers, influence)
    for use_bounds in (True, False):
        for use_pruning in (True, False):
            cfg = BalancedKMeansConfig(use_bounds=use_bounds, use_box_pruning=use_pruning, chunk_size=chunk)
            assignment = np.zeros(len(pts), dtype=np.int64)
            ub, lb = init_bounds(len(pts))
            assign_points(pts, centers, influence, assignment, ub, lb, cfg)
            assert np.array_equal(assignment, reference)
