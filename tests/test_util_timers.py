"""Tests for repro.util.timers."""

import time

from repro.util.timers import StageTimer, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first or t.elapsed >= 0


class TestStageTimer:
    def test_accumulates_per_stage(self):
        st = StageTimer()
        with st.stage("a"):
            time.sleep(0.005)
        with st.stage("a"):
            time.sleep(0.005)
        with st.stage("b"):
            pass
        assert st.stages["a"] >= 0.009
        assert "b" in st.stages
        assert st.total >= st.stages["a"]

    def test_add_direct(self):
        st = StageTimer()
        st.add("x", 1.5)
        st.add("x", 0.5)
        assert st.stages["x"] == 2.0

    def test_fractions_sum_to_one(self):
        st = StageTimer()
        st.add("a", 3.0)
        st.add("b", 1.0)
        fr = st.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-12
        assert abs(fr["a"] - 0.75) < 1e-12

    def test_fractions_empty(self):
        assert StageTimer().fractions() == {}

    def test_merge(self):
        a = StageTimer()
        a.add("x", 1.0)
        b = StageTimer()
        b.add("x", 2.0)
        b.add("y", 1.0)
        a.merge(b)
        assert a.stages == {"x": 3.0, "y": 1.0}

    def test_str_contains_stages(self):
        st = StageTimer()
        st.add("kmeans", 0.25)
        assert "kmeans" in str(st)
