"""Tests for the k-means objective and the plain-Lloyd reference."""

import numpy as np
import pytest

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.core.objective import kmeans_objective, lloyd_kmeans
from repro.core.seeding import sfc_seeding


def _pts(n=1500, seed=0):
    return np.random.default_rng(seed).random((n, 2))


class TestObjective:
    def test_zero_on_centers(self):
        pts = _pts(10)
        a = np.arange(10)
        assert kmeans_objective(pts, a, pts) == pytest.approx(0.0)

    def test_matches_naive(self):
        pts = _pts(200, seed=1)
        centers = pts[:4]
        a = np.random.default_rng(2).integers(0, 4, 200)
        naive = sum(np.sum((pts[i] - centers[a[i]]) ** 2) for i in range(200))
        assert kmeans_objective(pts, a, centers) == pytest.approx(naive)

    def test_weighted(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        centers = np.array([[0.0, 0.0]])
        a = np.zeros(2, dtype=np.int64)
        assert kmeans_objective(pts, a, centers, weights=np.array([1.0, 3.0])) == pytest.approx(3.0)


class TestLloyd:
    def test_objective_monotone(self):
        pts = _pts(seed=3)
        centers = sfc_seeding(pts, 8)
        _, _, history = lloyd_kmeans(pts, centers)
        diffs = np.diff(history)
        assert np.all(diffs <= 1e-9)

    def test_assignment_valid(self):
        pts = _pts(seed=4)
        a, centers, _ = lloyd_kmeans(pts, sfc_seeding(pts, 6))
        assert a.min() >= 0 and a.max() < 6

    def test_converges_on_separated_blobs(self):
        rng = np.random.default_rng(5)
        blobs = [rng.normal(c, 0.03, (100, 2)) for c in [(0, 0), (1, 0), (0, 1)]]
        pts = np.concatenate(blobs)
        a, centers, _ = lloyd_kmeans(pts, pts[[0, 100, 200]])
        # each blob is one cluster
        for b in range(3):
            assert len(np.unique(a[100 * b : 100 * (b + 1)])) == 1

    def test_balanced_pays_bounded_objective_premium(self):
        """Balance costs objective value, but not catastrophically (uniform data)."""
        pts = _pts(2000, seed=6)
        k = 8
        centers0 = sfc_seeding(pts, k)
        lloyd_a, lloyd_c, _ = lloyd_kmeans(pts, centers0)
        res = balanced_kmeans(pts, k, config=BalancedKMeansConfig(use_sampling=False), rng=7)
        obj_lloyd = kmeans_objective(pts, lloyd_a, lloyd_c)
        obj_balanced = kmeans_objective(pts, res.assignment, res.centers)
        assert obj_balanced < 2.0 * obj_lloyd
