"""Tests for the iFUB diameter lower bound."""

import networkx as nx
import numpy as np

from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.graph import GeometricMesh
from repro.mesh.grid import grid_mesh
from repro.metrics.diameter import (
    bfs_distances,
    block_diameters,
    harmonic_mean_diameter,
    ifub_lower_bound,
)


class TestBfs:
    def test_path_graph(self):
        mesh = grid_mesh((5, 1))
        dist = bfs_distances(mesh.indptr, mesh.indices, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_disconnected_marked(self):
        coords = np.array([[0.0, 0], [1, 0], [5, 5]])
        mesh = GeometricMesh.from_edges(coords, np.array([[0, 1]]))
        dist = bfs_distances(mesh.indptr, mesh.indices, 0)
        assert dist[2] == -1

    def test_matches_networkx(self):
        mesh = delaunay_mesh(200, rng=0)
        dist = bfs_distances(mesh.indptr, mesh.indices, 0)
        g = nx.Graph(mesh.edge_array().tolist())
        expected = nx.single_source_shortest_path_length(g, 0)
        for v, d in expected.items():
            assert dist[v] == d


class TestIfub:
    def test_path_graph_exact(self):
        mesh = grid_mesh((7, 1))
        assert ifub_lower_bound(mesh.indptr, mesh.indices) == 6.0

    def test_cycle_lower_bound(self):
        g = nx.cycle_graph(12)
        coords = np.random.default_rng(0).random((12, 2))
        mesh = GeometricMesh.from_edges(coords, np.array(list(g.edges)))
        lb = ifub_lower_bound(mesh.indptr, mesh.indices)
        assert lb <= 6.0  # true diameter
        assert lb >= 5.0  # double sweep on a cycle is near-exact

    def test_is_lower_bound_on_random_meshes(self):
        for seed in range(5):
            mesh = delaunay_mesh(120, rng=seed)
            g = nx.Graph(mesh.edge_array().tolist())
            true_diam = nx.diameter(g)
            lb = ifub_lower_bound(mesh.indptr, mesh.indices, seed=seed)
            assert lb <= true_diam
            assert lb >= 0.5 * true_diam  # 2-approximation (double sweep)

    def test_usually_tight_on_meshes(self):
        """"Often already tight" (paper §5.2.4): within one hop on meshes."""
        exact = 0
        for seed in range(8):
            mesh = delaunay_mesh(100, rng=seed + 100)
            g = nx.Graph(mesh.edge_array().tolist())
            true_diam = nx.diameter(g)
            lb = ifub_lower_bound(mesh.indptr, mesh.indices, seed=seed)
            assert lb >= true_diam - 1
            exact += lb == true_diam
        assert exact >= 3

    def test_disconnected_infinite(self):
        coords = np.array([[0.0, 0], [1, 0], [5, 5], [6, 5]])
        mesh = GeometricMesh.from_edges(coords, np.array([[0, 1], [2, 3]]))
        assert ifub_lower_bound(mesh.indptr, mesh.indices) == float("inf")

    def test_single_vertex(self):
        coords = np.array([[0.0, 0.0]])
        mesh = GeometricMesh.from_edges(coords, np.empty((0, 2)))
        assert ifub_lower_bound(mesh.indptr, mesh.indices) == 0.0


class TestBlockDiameters:
    def test_per_block(self):
        mesh = grid_mesh((4, 2))
        a = (mesh.coords[:, 0] >= 2).astype(np.int64)
        diams = block_diameters(mesh, a, 2)
        assert diams.tolist() == [2.0, 2.0]  # each half is a 2x2 block

    def test_disconnected_block(self):
        mesh = grid_mesh((5, 1))  # path 0-1-2-3-4
        a = np.array([0, 1, 0, 1, 1])  # block 0 = {0, 2} disconnected
        diams = block_diameters(mesh, a, 2)
        assert np.isinf(diams[0])

    def test_empty_block_zero(self):
        mesh = grid_mesh((3, 1))
        a = np.zeros(3, dtype=np.int64)
        diams = block_diameters(mesh, a, 2)
        assert diams[1] == 0.0

    def test_harmonic_mean_finite(self):
        mesh = delaunay_mesh(300, rng=1)
        a = np.random.default_rng(2).integers(0, 4, mesh.n)
        hm = harmonic_mean_diameter(mesh, a, 4)
        diams = block_diameters(mesh, a, 4)
        finite = diams[np.isfinite(diams) & (diams > 0)]
        if finite.size:
            assert hm <= diams[diams > 0].max() + 1e-9

    def test_harmonic_mean_ignores_inf(self):
        mesh = grid_mesh((5, 1))
        a = np.array([0, 1, 0, 1, 1])  # block 0 disconnected (inf), block 1 too
        hm = harmonic_mean_diameter(mesh, a, 2)
        # all blocks disconnected -> inf
        assert hm == float("inf") or hm > 0
