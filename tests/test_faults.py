"""Deterministic fault injection and dead-worker recovery.

Three layers:

- :class:`~repro.runtime.faults.FaultPlan` parsing and one-shot semantics
  (pure unit tests);
- injection on the virtual backend — kills are simulated by tombstoning the
  rank during the superstep and replaying it (exact, because BSP rank
  functions are independent within a superstep), delays/failures only touch
  the cost ledger — so **no injected fault may change the partition**;
- real recovery on the process backend (markers ``process_backend`` /
  ``chaos``): a SIGKILLed worker is respawned, the lost superstep replayed,
  and the run's result stays bit-identical to an undisturbed run.

Chaos tests dump their recovery-event ledgers as JSON into
``$REPRO_CHAOS_LOG_DIR`` when set (the CI chaos job uploads them as
artifacts).
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core.config import BalancedKMeansConfig
from repro.runtime.checkpoint import CheckpointError, CheckpointStore, _load_file
from repro.runtime.comm import FAULTS_ENV, VirtualComm, make_comm
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
from repro.runtime.faults import FaultPlan, FaultSpec, FaultyComm, InjectedFault

CFG = BalancedKMeansConfig(epsilon=0.02)


def _points(n=300, seed=0):
    return np.random.default_rng(seed).random((n, 2))


def _run(pts, comm=None, **kwargs):
    return distributed_balanced_kmeans(pts, 4, 2, config=CFG, rng=5, comm=comm, **kwargs)


def _assert_same_partition(a, b):
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_array_equal(a.centers, b.centers)
    assert a.imbalance == b.imbalance
    assert a.iterations == b.iterations


def _dump_chaos_log(name: str, ledger) -> None:
    log_dir = os.environ.get("REPRO_CHAOS_LOG_DIR")
    if not log_dir:
        return
    os.makedirs(log_dir, exist_ok=True)
    with open(os.path.join(log_dir, f"{name}.json"), "w") as fh:
        json.dump(ledger.events, fh, indent=2, default=str)


class TestFaultPlanParse:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "kill:rank=1,step=5; crash:step=9;"
            "delay:op=allreduce,index=2,seconds=0.25;"
            "fail:op=allgather;corrupt:index=3"
        )
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["kill", "crash", "delay", "fail", "corrupt"]
        kill, crash, delay, fail, corrupt = plan.specs
        assert (kill.rank, kill.step) == (1, 5)
        assert crash.step == 9
        assert (delay.op, delay.index, delay.seconds) == ("allreduce", 2, 0.25)
        assert (fail.op, fail.index) == ("allgather", 0)
        assert corrupt.index == 3

    def test_empty_chunks_ignored(self):
        assert FaultPlan.parse(" ; ;").specs == []

    @pytest.mark.parametrize("text, match", [
        ("explode:step=1", "unknown fault kind"),
        ("kill:step=1", "needs rank= and step="),
        ("crash:rank=1", "needs step="),
        ("delay:seconds=1", "needs op="),
        ("fail:op=teleport", "needs op="),
        ("kill:rank=1,step=2,color=red", "unknown fault field"),
        ("kill:rank", "expected key=value"),
    ])
    def test_bad_specs_are_loud(self, text, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.parse(text)

    def test_take_is_one_shot(self):
        plan = FaultPlan([FaultSpec("kill", rank=0, step=3)])
        assert plan.take_kill(2) is None
        assert plan.take_kill(3) is not None
        assert plan.take_kill(3) is None  # fired specs never fire again
        assert plan.unfired() == []

    def test_collective_takes_match_op_and_occurrence(self):
        plan = FaultPlan.parse("delay:op=allreduce,index=1,seconds=0.5")
        assert plan.take_collective("delay", "allreduce", 0) is None
        assert plan.take_collective("delay", "allgather", 1) is None
        assert plan.take_collective("fail", "allreduce", 1) is None
        assert plan.take_collective("delay", "allreduce", 1) is not None

    def test_compute_op_targets_service_requests(self):
        """``op=compute`` addresses the service's supervised compute path."""
        plan = FaultPlan.parse(
            "delay:op=compute,index=1,seconds=0.2;fail:op=compute,index=3"
        )
        delay, fail = plan.specs
        assert (delay.op, delay.index, delay.seconds) == ("compute", 1, 0.2)
        assert (fail.op, fail.index) == ("compute", 3)
        assert plan.take_collective("delay", "compute", 0) is None
        assert plan.take_collective("delay", "compute", 1) is not None
        assert plan.take_collective("fail", "compute", 3) is not None
        with pytest.raises(ValueError, match="needs op="):
            FaultPlan.parse("delay:op=computing,seconds=1")


class TestMakeCommWiring:
    def test_faults_argument_wraps(self):
        comm = make_comm(2, faults="crash:step=0")
        assert isinstance(comm, FaultyComm) and isinstance(comm.inner, VirtualComm)
        assert comm.nranks == 2 and comm.kind == "virtual"

    def test_env_var_wraps(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:step=7")
        comm = make_comm(2)
        assert isinstance(comm, FaultyComm)
        assert comm.fault_plan.specs[0].step == 7

    def test_no_faults_no_wrapper(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert isinstance(make_comm(2), VirtualComm)

    def test_empty_plan_is_pure_delegation(self):
        pts = _points()
        clean = _run(pts)
        with make_comm(2, faults=FaultPlan()) as comm:
            wrapped = _run(pts, comm=comm)
        _assert_same_partition(clean, wrapped)
        assert wrapped.ledger.events == []


class TestVirtualInjection:
    def test_kill_tombstones_and_replays(self):
        pts = _points()
        clean = _run(pts)
        with make_comm(2, faults="kill:rank=1,step=12") as comm:
            faulted = _run(pts, comm=comm)
        _assert_same_partition(clean, faulted)
        (kill,) = comm.ledger.events_of("injected_kill")
        (replay,) = comm.ledger.events_of("rank_replayed")
        assert kill["rank"] == replay["rank"] == 1
        assert kill["superstep"] == replay["superstep"] == 12
        assert comm.fault_plan.unfired() == []

    def test_delay_and_fail_only_touch_the_ledger(self):
        pts = _points()
        clean = _run(pts)
        plan = "delay:op=allreduce,index=3,seconds=0.5;fail:op=allgather,index=0"
        with make_comm(2, faults=plan) as comm:
            faulted = _run(pts, comm=comm)
        _assert_same_partition(clean, faulted)
        (delay,) = comm.ledger.events_of("injected_delay")
        assert delay["op"] == "allreduce" and delay["seconds"] == 0.5
        assert comm.ledger.events_of("injected_collective_failure")
        assert comm.ledger.events_of("collective_retried")
        # modeled backend: the stall is charged to the ledger, not slept
        assert comm.ledger.comm_seconds >= 0.5
        # the failed collective is charged twice (lost attempt + retry)
        extra = comm.ledger.collective_counts["allgather"] - clean.ledger.collective_counts["allgather"]
        assert extra == 1

    def test_crash_raises_injected_fault(self):
        with make_comm(2, faults="crash:step=15") as comm:
            with pytest.raises(InjectedFault, match="superstep 15"):
                _run(_points(), comm=comm)
        (event,) = comm.ledger.events_of("injected_crash")
        assert event["superstep"] == 15

    def test_crash_then_resume_is_bit_identical(self, tmp_path):
        pts = _points()
        clean = _run(pts)
        store = CheckpointStore(tmp_path, keep=100)
        with make_comm(2, faults="crash:step=80") as comm:
            with pytest.raises(InjectedFault):
                _run(pts, comm=comm, checkpoint=store)
        assert store.latest() is not None, "crash fired before the first checkpoint"
        resumed = _run(pts, resume_from=store)
        _assert_same_partition(clean, resumed)

    def test_corrupt_fault_hits_the_scheduled_save(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=100)
        with make_comm(2, faults="corrupt:index=1") as comm:
            _run(_points(), comm=comm, checkpoint=store)
        bad = store.path_for(1)
        with pytest.raises(CheckpointError):
            _load_file(bad)
        _load_file(store.path_for(0))  # neighbours untouched

    def test_kill_rank_out_of_range_is_loud(self):
        with make_comm(2, faults="kill:rank=5,step=0") as comm:
            with pytest.raises(ValueError, match="out of range"):
                comm.run_local(lambda r: r)


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the test extras
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:
    _spec_strategy = st.one_of(
        st.builds(FaultSpec, kind=st.just("kill"),
                  rank=st.integers(0, 1), step=st.integers(0, 60)),
        st.builds(FaultSpec, kind=st.just("delay"),
                  op=st.sampled_from(["allreduce", "allgather", "alltoallv", "broadcast"]),
                  index=st.integers(0, 20), seconds=st.floats(0.0, 1.0)),
        st.builds(FaultSpec, kind=st.just("fail"),
                  op=st.sampled_from(["allreduce", "allgather", "alltoallv"]),
                  index=st.integers(0, 20)),
    )

    class TestReplayInvariance:
        """Property: no plan of kill/delay/fail faults ever changes the result."""

        CLEAN = None

        @settings(max_examples=10, deadline=None)
        @given(specs=st.lists(_spec_strategy, min_size=1, max_size=4))
        def test_faults_never_change_the_partition(self, specs):
            pts = _points(n=200, seed=3)
            if TestReplayInvariance.CLEAN is None:
                TestReplayInvariance.CLEAN = _run(pts)
            with make_comm(2, faults=FaultPlan(specs)) as comm:
                faulted = _run(pts, comm=comm)
            _assert_same_partition(TestReplayInvariance.CLEAN, faulted)


@pytest.mark.process_backend
class TestProcessRecovery:
    def test_sigkill_triggers_respawn_and_replay(self):
        pts = _points()
        clean = _run(pts)
        with make_comm(2, backend="process", faults="kill:rank=1,step=25") as comm:
            faulted = _run(pts, comm=comm)
        _assert_same_partition(clean, faulted)
        (respawn,) = comm.ledger.events_of("worker_respawn")
        assert respawn["rank"] == 1
        assert comm.ledger.events_of("injected_kill")

    def test_respawn_budget_exhausted_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RESPAWNS", "0")
        comm = make_comm(2, backend="process")
        os.kill(comm._workers[1].pid, signal.SIGKILL)
        comm._workers[1].join(5.0)
        with pytest.raises(RuntimeError, match="respawn budget"):
            comm.run_local(lambda r: r)
        assert comm._closed  # recovery failure tears the communicator down

    def test_dead_worker_mid_run_recovers_without_faultycomm(self):
        with make_comm(3, backend="process") as comm:
            assert comm.run_local(lambda r: r) == [0, 1, 2]
            os.kill(comm._workers[0].pid, signal.SIGKILL)
            comm._workers[0].join(5.0)
            assert comm.run_local(lambda r: r * 10) == [0, 10, 20]
            (respawn,) = comm.ledger.events_of("worker_respawn")
            assert respawn["rank"] == 0 and respawn["respawns_left"] == 1

    def test_hung_worker_killed_after_timeout(self, tmp_path):
        marker = str(tmp_path / "already-hung")
        with make_comm(2, backend="process") as comm:
            comm._superstep_timeout = 1.0

            def maybe_hang(r):
                if r == 1 and not os.path.exists(marker):
                    open(marker, "w").close()
                    time.sleep(60.0)
                return r + 1

            start = time.perf_counter()
            assert comm.run_local(maybe_hang) == [1, 2]
            assert time.perf_counter() - start < 30.0
            (respawn,) = comm.ledger.events_of("worker_respawn")
            assert "timeout" in respawn["reason"]


@pytest.mark.chaos
class TestChaosKillMatrix:
    """Kill every rank at varied supersteps on the process backend."""

    @pytest.mark.parametrize("rank, step", [(0, 10), (1, 25), (2, 40)])
    def test_kill_matrix_bit_identical(self, rank, step):
        pts = _points()
        clean = distributed_balanced_kmeans(pts, 4, 3, config=CFG, rng=5)
        with make_comm(3, backend="process",
                       faults=f"kill:rank={rank},step={step}") as comm:
            faulted = distributed_balanced_kmeans(pts, 4, 3, config=CFG, rng=5, comm=comm)
        _dump_chaos_log(f"kill-rank{rank}-step{step}", comm.ledger)
        _assert_same_partition(clean, faulted)
        (respawn,) = comm.ledger.events_of("worker_respawn")
        assert respawn["rank"] == rank
        assert comm.fault_plan.unfired() == []

    def test_kill_then_checkpoint_then_crash_then_resume(self, tmp_path):
        """The full elasticity story in one run: a worker dies and is
        respawned, the run keeps checkpointing, the driver crashes, and the
        resumed run (on a different rank count) finishes bit-identically."""
        pts = _points()
        clean = distributed_balanced_kmeans(pts, 4, 3, config=CFG, rng=5)
        store = CheckpointStore(tmp_path, keep=100)
        with make_comm(3, backend="process",
                       faults="kill:rank=1,step=20;crash:step=90") as comm:
            with pytest.raises(InjectedFault):
                distributed_balanced_kmeans(pts, 4, 3, config=CFG, rng=5,
                                            comm=comm, checkpoint=store)
        _dump_chaos_log("kill-checkpoint-crash", comm.ledger)
        assert comm.ledger.events_of("worker_respawn")
        assert store.latest() is not None, "crash fired before the first checkpoint"
        resumed = distributed_balanced_kmeans(pts, 4, 2, config=CFG, rng=5,
                                              resume_from=store)
        _assert_same_partition(clean, resumed)
