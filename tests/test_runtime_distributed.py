"""Tests for the distributed (simulated SPMD) Geographer."""

import numpy as np

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.metrics.imbalance import imbalance
from repro.runtime.costmodel import MachineModel
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans


def _pts(n=2000, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestDistributedKMeans:
    def test_balanced_output(self):
        res = distributed_balanced_kmeans(_pts(), k=8, nranks=4, rng=0)
        assert res.imbalance <= 0.03 + 1e-9
        assert set(np.unique(res.assignment)) == set(range(8))

    def test_matches_serial(self):
        """Same seeding + deterministic kernels: the SPMD run reproduces the
        serial partition (up to floating-point reduction order)."""
        pts = _pts(3000, seed=1)
        cfg = BalancedKMeansConfig(use_sampling=False)
        dist = distributed_balanced_kmeans(pts, k=8, nranks=4, config=cfg, rng=2)
        serial = balanced_kmeans(pts, 8, config=cfg, rng=2)
        agreement = (dist.assignment == serial.assignment).mean()
        assert agreement > 0.95

    def test_nranks_independent_of_k(self):
        """k and p are decoupled (paper: "completely independent")."""
        pts = _pts(1500, seed=3)
        res = distributed_balanced_kmeans(pts, k=6, nranks=4, rng=4)
        assert res.imbalance <= 0.031
        res2 = distributed_balanced_kmeans(pts, k=4, nranks=7, rng=5)
        assert res2.imbalance <= 0.031

    def test_single_rank(self):
        pts = _pts(800, seed=6)
        res = distributed_balanced_kmeans(pts, k=4, nranks=1, rng=7)
        assert res.imbalance <= 0.031

    def test_weighted(self):
        rng = np.random.default_rng(8)
        pts = rng.random((2000, 2))
        w = rng.uniform(1, 10, 2000)
        res = distributed_balanced_kmeans(pts, k=6, nranks=4, weights=w, rng=9)
        assert imbalance(res.assignment, 6, w) <= 0.05

    def test_3d(self):
        res = distributed_balanced_kmeans(_pts(1200, 3, seed=10), k=4, nranks=3, rng=11)
        assert res.imbalance <= 0.031

    def test_ledger_stages(self):
        res = distributed_balanced_kmeans(_pts(seed=12), k=4, nranks=4, rng=13)
        for stage in ("sfc_index", "redistribute", "kmeans"):
            assert stage in res.ledger.stages, stage
        assert res.simulated_seconds > 0
        fracs = res.stage_fractions()
        assert abs(sum(fracs.values()) - 1.0) < 1e-9

    def test_communication_structure(self):
        """Communication is allreduce-dominated (Algorithm 1/2's blue lines)."""
        res = distributed_balanced_kmeans(_pts(seed=14), k=4, nranks=4, rng=15)
        ops = res.ledger.collectives
        assert "allreduce" in ops
        assert "alltoallv" in ops  # the one-off redistribution

    def test_more_ranks_less_compute(self):
        """Max rank-local compute time shrinks with more ranks (same n)."""
        pts = _pts(6000, seed=16)
        cfg = BalancedKMeansConfig(use_sampling=False)
        t2 = distributed_balanced_kmeans(pts, k=4, nranks=2, config=cfg, rng=17).ledger.compute_seconds
        t8 = distributed_balanced_kmeans(pts, k=4, nranks=8, config=cfg, rng=17).ledger.compute_seconds
        assert t8 < t2

    def test_island_penalty_increases_comm(self):
        pts = _pts(600, seed=18)
        cfg = BalancedKMeansConfig(use_sampling=False, max_iterations=5)
        cheap = MachineModel(island_size=8192)
        pricey = MachineModel(island_size=2)  # everything crosses islands
        a = distributed_balanced_kmeans(pts, k=4, nranks=4, config=cfg, machine=cheap, rng=19)
        b = distributed_balanced_kmeans(pts, k=4, nranks=4, config=cfg, machine=pricey, rng=19)
        assert b.ledger.comm_seconds > a.ledger.comm_seconds

    def test_sampling_rounds_run(self):
        pts = _pts(4000, seed=20)
        cfg = BalancedKMeansConfig(use_sampling=True)
        res = distributed_balanced_kmeans(pts, k=4, nranks=4, config=cfg, rng=21)
        assert res.imbalance <= 0.031
