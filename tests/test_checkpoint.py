"""Superstep checkpointing: the store, resume bit-identity, and the CLI.

The contract under test (see ``repro.runtime.checkpoint``): a run that is
interrupted and resumed from any iteration-boundary snapshot produces the
**bit-identical** partition of the uninterrupted run — assignments, centers,
influence, imbalance and iteration count — on every backend, and even when
the resumed run uses a different rank count (the snapshot pins the logical
shard count; :class:`~repro.runtime.comm.ShardGrid` replays it on any
physical ``p``).  Checkpoints written under a different configuration or
dataset must be rejected loudly, and corrupt files must never be resumed
silently.
"""

import re
import warnings

import numpy as np
import pytest

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.runtime.checkpoint import (
    CheckpointConcurrencyError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    _corrupt_file,
    data_digest,
    load_resume,
    restore_rng,
    rng_state,
    sanitize_run_id,
    validate_meta,
)
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans


def _points(n=400, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


def _assert_same_partition(a, b):
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_array_equal(a.centers, b.centers)
    np.testing.assert_array_equal(a.influence, b.influence)
    assert a.imbalance == b.imbalance
    assert a.iterations == b.iterations
    assert a.converged == b.converged


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        arrays = {"x": np.arange(6.0).reshape(2, 3), "ids": np.array([3, 1, 4])}
        meta = {"kind": "unit", "iteration": 7, "nested": {"a": [1, 2]}}
        path = store.save(arrays, meta)
        got_arrays, got_meta = store.load(path)
        np.testing.assert_array_equal(got_arrays["x"], arrays["x"])
        np.testing.assert_array_equal(got_arrays["ids"], arrays["ids"])
        assert got_meta["kind"] == "unit" and got_meta["iteration"] == 7
        assert got_meta["nested"] == {"a": [1, 2]}
        assert got_meta["ordinal"] == 0

    def test_reserved_keys_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError, match="reserved"):
            store.save({"__meta__": np.zeros(1)}, {"kind": "unit"})

    def test_rotation_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for i in range(5):
            store.save({"x": np.full(3, float(i))}, {"kind": "unit", "i": i})
        names = [p.name for p in store.candidates()]
        assert names == ["ckpt-000003.npz", "ckpt-000004.npz"]
        _, meta = store.load()
        assert meta["i"] == 4

    def test_ordinals_continue_across_store_instances(self, tmp_path):
        CheckpointStore(tmp_path).save({"x": np.zeros(1)}, {"kind": "unit"})
        path = CheckpointStore(tmp_path).save({"x": np.ones(1)}, {"kind": "unit"})
        assert path.name == "ckpt-000001.npz"

    def test_interleaved_stores_raise_loudly(self, tmp_path):
        """Two live stores on one namespace are detected, never clobbered."""
        a = CheckpointStore(tmp_path)
        b = CheckpointStore(tmp_path)  # opened before a writes: same ordinals
        a.save({"x": np.zeros(1)}, {"kind": "unit"})
        with pytest.raises(CheckpointConcurrencyError, match="concurrent checkpoint writer"):
            b.save({"x": np.ones(1)}, {"kind": "unit"})
        # the reverse interleaving is caught too: b opened after a's first
        # save continues past it, so a's *next* save sees a foreign ordinal
        c = CheckpointStore(tmp_path)
        c.save({"x": np.ones(1)}, {"kind": "unit"})
        with pytest.raises(CheckpointConcurrencyError):
            a.save({"x": np.full(1, 2.0)}, {"kind": "unit"})
        # a's first file survived both attempted clobbers
        arrays, meta = CheckpointStore(tmp_path).load(tmp_path / "ckpt-000000.npz")
        np.testing.assert_array_equal(arrays["x"], np.zeros(1))

    def test_run_id_namespaces_coexist(self, tmp_path):
        """Distinct run_ids share one root directory without interference."""
        a = CheckpointStore(tmp_path, run_id="sess-a")
        b = CheckpointStore(tmp_path, run_id="sess-b")
        for i in range(3):
            a.save({"x": np.full(1, float(i))}, {"kind": "unit", "i": i})
            b.save({"x": np.full(1, float(10 + i))}, {"kind": "unit", "i": 10 + i})
        assert a.directory == tmp_path / "sess-a"
        assert b.directory == tmp_path / "sess-b"
        _, meta_a = a.load()
        _, meta_b = b.load()
        assert meta_a["i"] == 2 and meta_b["i"] == 12
        # a fresh store on the same run_id resumes that namespace only
        resumed = CheckpointStore(tmp_path, run_id="sess-a")
        _, meta = resumed.load()
        assert meta["i"] == 2

    def test_run_id_is_sanitized(self, tmp_path):
        store = CheckpointStore(tmp_path, run_id="sess/../../evil id")
        assert store.directory.parent == tmp_path  # never escapes the root
        assert "/" not in store.directory.name
        assert store.directory.name not in (".", "..")
        assert sanitize_run_id("a b/c") == "a_b_c"
        with pytest.raises(ValueError, match="run_id"):
            sanitize_run_id("///")

    def test_corrupt_file_rejected_explicitly(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save({"x": np.arange(64.0)}, {"kind": "unit"})
        _corrupt_file(path)
        with pytest.raises(CheckpointError):
            store.load(path)

    def test_corrupt_newest_falls_back_with_warning(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": np.zeros(8)}, {"kind": "unit", "i": 0})
        bad = store.save({"x": np.ones(8)}, {"kind": "unit", "i": 1})
        _corrupt_file(bad)
        with pytest.warns(UserWarning, match="corrupt"):
            _, meta = store.load()
        assert meta["i"] == 0

    def test_all_corrupt_is_a_loud_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        _corrupt_file(store.save({"x": np.zeros(8)}, {"kind": "unit"}))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(CheckpointError, match="no valid checkpoint"):
                store.load()

    def test_empty_store_load_is_a_loud_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            CheckpointStore(tmp_path).load()

    def test_ensure_coerces_paths_and_stores(self, tmp_path):
        assert CheckpointStore.ensure(None) is None
        store = CheckpointStore(tmp_path)
        assert CheckpointStore.ensure(store) is store
        made = CheckpointStore.ensure(str(tmp_path / "sub"))
        assert isinstance(made, CheckpointStore)
        made.save({"x": np.zeros(1)}, {"kind": "unit"})
        assert (tmp_path / "sub" / "ckpt-000000.npz").exists()

    def test_load_resume_accepts_store_dir_and_file(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save({"x": np.arange(3.0)}, {"kind": "unit", "i": 0})
        for source in (store, str(tmp_path), str(path)):
            arrays, meta = load_resume(source)
            np.testing.assert_array_equal(arrays["x"], np.arange(3.0))
            assert meta["kind"] == "unit"

    def test_data_digest_sensitive_to_values_shape_dtype(self):
        x = np.arange(6.0)
        base = data_digest(x)
        assert data_digest(x + 1) != base
        assert data_digest(x.reshape(2, 3)) != base
        assert data_digest(x.astype(np.float32)) != base
        assert data_digest(x, extra="salt") != base
        assert data_digest(x) == base

    def test_validate_meta_mismatches_are_loud(self):
        meta = {"kind": "distributed-kmeans", "config_digest": "abc",
                "data_digest": "xyz", "n": 100}
        validate_meta(meta, kind="distributed-kmeans", config_digest="abc",
                      input_digest="xyz", checks=[("n", 100)])
        with pytest.raises(CheckpointMismatchError, match="cannot resume"):
            validate_meta(meta, kind="serial-kmeans")
        with pytest.raises(CheckpointMismatchError, match="config"):
            validate_meta(meta, kind="distributed-kmeans", config_digest="other")
        with pytest.raises(CheckpointMismatchError, match="data"):
            validate_meta(meta, kind="distributed-kmeans", input_digest="other")
        with pytest.raises(CheckpointMismatchError, match="n"):
            validate_meta(meta, kind="distributed-kmeans", checks=[("n", 999)])

    def test_rng_state_roundtrips_through_json_meta(self, tmp_path):
        gen = np.random.default_rng(42)
        gen.random(17)  # advance
        store = CheckpointStore(tmp_path)
        store.save({"x": np.zeros(1)}, {"kind": "unit", "rng_state": rng_state(gen)})
        _, meta = store.load()
        twin = restore_rng(meta["rng_state"])
        np.testing.assert_array_equal(gen.random(8), twin.random(8))


class TestDistributedResume:
    CFG = BalancedKMeansConfig(epsilon=0.02)

    def _full(self, pts, k=4, p=4):
        return distributed_balanced_kmeans(pts, k, p, config=self.CFG, rng=7)

    def test_resume_from_every_checkpoint_is_bit_identical(self, tmp_path):
        pts = _points()
        full = self._full(pts)
        store = CheckpointStore(tmp_path, keep=100)
        self._full(pts)  # warm nothing; just symmetry with the checkpointed run
        checkpointed = distributed_balanced_kmeans(
            pts, 4, 4, config=self.CFG, rng=7, checkpoint=store)
        _assert_same_partition(full, checkpointed)
        for path in store.candidates():
            resumed = distributed_balanced_kmeans(
                pts, 4, 4, config=self.CFG, rng=7, resume_from=str(path))
            _assert_same_partition(full, resumed)

    @pytest.mark.parametrize("p_resume", [1, 2, 3, 6])
    def test_resume_on_different_rank_count(self, tmp_path, p_resume):
        pts = _points()
        full = self._full(pts)
        store = CheckpointStore(tmp_path, keep=100)
        distributed_balanced_kmeans(pts, 4, 4, config=self.CFG, rng=7, checkpoint=store)
        mid = store.candidates()[len(store.candidates()) // 2]
        resumed = distributed_balanced_kmeans(
            pts, 4, p_resume, config=self.CFG, rng=7, resume_from=str(mid))
        _assert_same_partition(full, resumed)
        # the logical shard count is pinned by the snapshot, not by p
        assert resumed.nranks == 4

    def test_checkpoint_every_thins_snapshots(self, tmp_path):
        pts = _points(n=300)
        store = CheckpointStore(tmp_path, keep=100)
        result = distributed_balanced_kmeans(pts, 4, 2, config=self.CFG, rng=7,
                                             checkpoint=store, checkpoint_every=3)
        ordinals = [int(re.search(r"(\d+)\.npz$", p.name).group(1))
                    for p in store.candidates()]
        assert len(ordinals) <= result.iterations // 3 + 1
        _, meta = store.load()
        assert meta["iteration"] % 3 == 0

    def test_wrong_config_rejected(self, tmp_path):
        pts = _points(n=300)
        store = CheckpointStore(tmp_path)
        distributed_balanced_kmeans(pts, 4, 2, config=self.CFG, rng=7, checkpoint=store)
        other = self.CFG.with_(epsilon=0.10)
        with pytest.raises(CheckpointMismatchError, match="config"):
            distributed_balanced_kmeans(pts, 4, 2, config=other, rng=7,
                                        resume_from=store)

    def test_wrong_dataset_rejected(self, tmp_path):
        pts = _points(n=300)
        store = CheckpointStore(tmp_path)
        distributed_balanced_kmeans(pts, 4, 2, config=self.CFG, rng=7, checkpoint=store)
        with pytest.raises(CheckpointMismatchError, match="data"):
            distributed_balanced_kmeans(_points(n=300, seed=9), 4, 2, config=self.CFG,
                                        rng=7, resume_from=store)

    def test_serial_checkpoint_rejected_by_distributed_resume(self, tmp_path):
        pts = _points(n=300)
        store = CheckpointStore(tmp_path)
        balanced_kmeans(pts, 4, config=self.CFG, rng=7, checkpoint=store)
        with pytest.raises(CheckpointMismatchError, match="cannot resume"):
            distributed_balanced_kmeans(pts, 4, 2, config=self.CFG, rng=7,
                                        resume_from=store)

    @pytest.mark.process_backend
    def test_process_checkpoint_resumes_on_virtual_and_back(self, tmp_path):
        pts = _points(n=300)
        full = distributed_balanced_kmeans(pts, 4, 2, config=self.CFG, rng=7,
                                           backend="process")
        store = CheckpointStore(tmp_path, keep=100)
        distributed_balanced_kmeans(pts, 4, 2, config=self.CFG, rng=7,
                                    backend="process", checkpoint=store)
        mid = store.candidates()[len(store.candidates()) // 2]
        on_virtual = distributed_balanced_kmeans(
            pts, 4, 3, config=self.CFG, rng=7, backend="virtual", resume_from=str(mid))
        on_process = distributed_balanced_kmeans(
            pts, 4, 1, config=self.CFG, rng=7, backend="process", resume_from=str(mid))
        _assert_same_partition(full, on_virtual)
        _assert_same_partition(full, on_process)


class TestSerialResume:
    CFG = BalancedKMeansConfig(epsilon=0.02)

    def test_resume_is_bit_identical(self, tmp_path):
        pts = _points(n=500)
        full = balanced_kmeans(pts, 5, config=self.CFG, rng=3)
        store = CheckpointStore(tmp_path, keep=100)
        balanced_kmeans(pts, 5, config=self.CFG, rng=3, checkpoint=store)
        for path in (store.candidates()[0], store.candidates()[-1]):
            resumed = balanced_kmeans(pts, 5, config=self.CFG, rng=3,
                                      resume_from=str(path))
            _assert_same_partition(full, resumed)
            assert len(resumed.history) == len(full.history)

    def test_wrong_config_rejected(self, tmp_path):
        pts = _points(n=300)
        store = CheckpointStore(tmp_path)
        balanced_kmeans(pts, 4, config=self.CFG, rng=3, checkpoint=store)
        with pytest.raises(CheckpointMismatchError, match="config"):
            balanced_kmeans(pts, 4, config=self.CFG.with_(use_sampling=False),
                            rng=3, resume_from=store)


class TestRepartitionResume:
    def test_resume_reproduces_remaining_steps(self, tmp_path):
        from repro.experiments import repartitioning

        kwargs = dict(n=600, k=5, steps=3, seed=1, checkpoint_dir=str(tmp_path))
        rows = repartitioning.run(**kwargs)
        # lose the last step's snapshot: resume must redo exactly that step
        store = CheckpointStore(tmp_path)
        store.candidates()[-1].unlink()
        again = repartitioning.run(**kwargs)
        assert again == rows

    def test_parameter_mismatch_rejected(self, tmp_path):
        from repro.experiments import repartitioning

        repartitioning.run(n=600, k=5, steps=2, seed=1, checkpoint_dir=str(tmp_path))
        with pytest.raises(CheckpointMismatchError, match="provenance"):
            repartitioning.run(n=600, k=6, steps=2, seed=1, checkpoint_dir=str(tmp_path))


class TestCLI:
    def test_distributed_checkpoint_then_resume(self, tmp_path, capsys):
        from repro.cli import main

        ckpt = str(tmp_path / "ck")
        main(["distributed", "rgg2d", "-k", "4", "-p", "2", "--scale", "0.05",
              "--checkpoint-dir", ckpt])
        full = capsys.readouterr().out
        main(["resume", ckpt, "-p", "3"])
        resumed = capsys.readouterr().out
        row_full = next(ln for ln in full.splitlines() if "Geographer" in ln).split()
        row_res = next(ln for ln in resumed.splitlines() if "Geographer" in ln).split()
        # identical metrics, wall-clock column aside
        assert row_full[3:] == row_res[3:]
        assert "resuming distributed run" in resumed

    def test_resume_unknown_kind_fails_loudly(self, tmp_path):
        from repro.cli import main

        store = CheckpointStore(tmp_path)
        store.save({"x": np.zeros(1)}, {"kind": "mystery"})
        with pytest.raises(SystemExit, match="mystery"):
            main(["resume", str(tmp_path)])
