"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_assignment,
    check_epsilon,
    check_k,
    check_points,
    check_weights,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "nope")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="custom message"):
            require(False, "custom message")


class TestCheckPoints:
    def test_valid_2d(self):
        pts = check_points([[0.0, 1.0], [2.0, 3.0]])
        assert pts.shape == (2, 2) and pts.dtype == np.float64
        assert pts.flags["C_CONTIGUOUS"]

    def test_valid_3d(self):
        assert check_points(np.zeros((5, 3))).shape == (5, 3)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D array"):
            check_points(np.zeros(4))

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError, match="dimension"):
            check_points(np.zeros((4, 5)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_points(np.zeros((0, 2)))

    def test_rejects_nan(self):
        pts = np.zeros((3, 2))
        pts[1, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            check_points(pts)

    def test_custom_dims(self):
        assert check_points(np.zeros((2, 5)), dims=(5,)).shape == (2, 5)


class TestCheckWeights:
    def test_none_gives_unit(self):
        w = check_weights(None, 4)
        assert np.array_equal(w, np.ones(4))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_weights(np.ones(3), 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_weights(np.array([1.0, -1.0]), 2)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            check_weights(np.zeros(3), 3)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            check_weights(np.array([1.0, np.nan]), 2)


class TestCheckK:
    def test_valid(self):
        assert check_k(4, 10) == 4

    def test_k_equals_n(self):
        assert check_k(10, 10) == 10

    def test_too_large(self):
        with pytest.raises(ValueError, match="exceeds"):
            check_k(11, 10)

    def test_zero(self):
        with pytest.raises(ValueError, match=">= 1"):
            check_k(0, 10)

    def test_non_integer(self):
        with pytest.raises(TypeError):
            check_k(2.5, 10)

    def test_numpy_integer_ok(self):
        assert check_k(np.int32(3), 10) == 3


class TestCheckEpsilon:
    def test_valid(self):
        assert check_epsilon(0.03) == 0.03

    def test_zero_ok(self):
        assert check_epsilon(0) == 0.0

    def test_negative(self):
        with pytest.raises(ValueError):
            check_epsilon(-0.1)

    def test_nan(self):
        with pytest.raises(ValueError):
            check_epsilon(float("nan"))


class TestCheckAssignment:
    def test_valid(self):
        a = check_assignment(np.array([0, 1, 2]), 3, 3)
        assert a.dtype == np.int64

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="lie in"):
            check_assignment(np.array([0, 3]), 2, 3)

    def test_negative(self):
        with pytest.raises(ValueError):
            check_assignment(np.array([0, -1]), 2, 3)

    def test_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_assignment(np.array([0, 1]), 3, 3)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            check_assignment(np.array([0.0, 1.0]), 2, 2)
