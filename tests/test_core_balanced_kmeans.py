"""End-to-end tests for balanced k-means (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balanced_kmeans import balanced_kmeans, compute_sfc_order, weighted_center_update
from repro.core.config import BalancedKMeansConfig
from repro.metrics.imbalance import imbalance


def _uniform(n=2500, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = BalancedKMeansConfig()
        assert cfg.epsilon == 0.03
        assert cfg.influence_change_cap == 0.05
        assert cfg.initial_sample_size == 100
        assert cfg.seeding == "sfc"

    def test_with_updates(self):
        cfg = BalancedKMeansConfig().with_(epsilon=0.05)
        assert cfg.epsilon == 0.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": -1.0},
            {"max_iterations": 0},
            {"influence_change_cap": 0.0},
            {"influence_change_cap": 1.0},
            {"seeding": "magic"},
            {"chunk_size": 0},
            {"delta_threshold_rel": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            BalancedKMeansConfig(**kwargs)


class TestCenterUpdate:
    def test_weighted_mean(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [10.0, 10.0]])
        w = np.array([1.0, 3.0, 1.0])
        a = np.array([0, 0, 1])
        centers = weighted_center_update(pts, w, a, 2, np.zeros((2, 2)))
        assert np.allclose(centers[0], [1.5, 0.0])
        assert np.allclose(centers[1], [10.0, 10.0])

    def test_empty_cluster_keeps_previous(self):
        pts = np.array([[1.0, 1.0]])
        prev = np.array([[0.0, 0.0], [5.0, 5.0]])
        centers = weighted_center_update(pts, np.ones(1), np.zeros(1, dtype=np.int64), 2, prev)
        assert np.allclose(centers[1], [5.0, 5.0])

    @pytest.mark.parametrize("d", [2, 3])
    def test_fused_bincount_matches_per_dimension_reference(self, d):
        """The single fused accumulation equals the per-dimension bincount loop."""
        rng = np.random.default_rng(40 + d)
        n, k = 1000, 7
        pts = rng.random((n, d))
        w = rng.uniform(0.1, 3.0, n)
        a = rng.integers(0, k, n)
        a[a == 5] = 4  # leave cluster 5 empty
        prev = rng.random((k, d))
        reference = np.empty((k, d))
        wsum = np.bincount(a, weights=w, minlength=k)
        for dd in range(d):
            sums = np.bincount(a, weights=w * pts[:, dd], minlength=k)
            reference[:, dd] = np.where(wsum > 0, sums / np.maximum(wsum, 1e-300), prev[:, dd])
        assert np.array_equal(weighted_center_update(pts, w, a, k, prev), reference)


class TestReseedEmpty:
    """_reseed_empty relocates empty clusters into the heaviest one."""

    def _state(self, n=40, k=3, seed=0):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        assignment = np.zeros(n, dtype=np.int64)  # everything in cluster 0
        centers = np.array([[0.5, 0.5], [2.0, 2.0], [3.0, 3.0]])
        influence = np.array([1.0, 0.7, 0.3])
        block_weights = np.array([float(n), 0.0, 0.0])
        return pts, assignment, centers, influence, block_weights, rng

    def test_noop_when_no_empty_cluster(self):
        from repro.core.balanced_kmeans import _reseed_empty

        pts, assignment, centers, influence, bw, rng = self._state()
        bw = np.array([20.0, 10.0, 10.0])
        before = centers.copy()
        assert not _reseed_empty(pts, np.ones(len(pts)), assignment, centers, influence, bw, rng)
        assert np.array_equal(centers, before)

    def test_empty_centers_move_to_far_points_of_heaviest(self):
        from repro.core.balanced_kmeans import _reseed_empty

        pts, assignment, centers, influence, bw, rng = self._state()
        assert _reseed_empty(pts, np.ones(len(pts)), assignment, centers, influence, bw, rng)
        # relocated centers now sit on actual points, not at (2,2)/(3,3)
        for c in (1, 2):
            assert np.any(np.all(np.isclose(pts, centers[c]), axis=1))
            assert influence[c] == 1.0  # influence reset
            assert bw[c] == 1.0  # seeded with the stolen point's weight

    def test_first_relocation_is_farthest_point(self):
        from repro.core.balanced_kmeans import _reseed_empty

        pts, assignment, centers, influence, bw, rng = self._state(seed=1)
        d = np.linalg.norm(pts - centers[0], axis=1)
        farthest = pts[int(np.argmax(d))].copy()
        _reseed_empty(pts, np.ones(len(pts)), assignment, centers, influence, bw, rng)
        assert np.allclose(centers[1], farthest)

    def test_multiple_empties_get_distinct_points(self):
        """Regression: simultaneous empties used to all land on the same
        farthest point of the same heaviest cluster, yielding duplicate
        centers; weight tracking + exclusion must keep them distinct."""
        from repro.core.balanced_kmeans import _reseed_empty

        pts, assignment, centers, influence, bw, rng = self._state()
        assert _reseed_empty(pts, np.ones(len(pts)), assignment, centers, influence, bw, rng)
        assert not np.allclose(centers[1], centers[2]), "empty centers collapsed onto one point"
        # donor cluster paid for both stolen points
        assert bw[0] == len(pts) - 2

    def test_many_empties_all_distinct(self):
        from repro.core.balanced_kmeans import _reseed_empty

        rng = np.random.default_rng(6)
        n, k = 60, 6
        pts = rng.random((n, 2))
        assignment = np.zeros(n, dtype=np.int64)
        centers = np.vstack([[0.5, 0.5]] + [[2.0 + i, 2.0 + i] for i in range(k - 1)])
        influence = np.ones(k)
        bw = np.concatenate([[float(n)], np.zeros(k - 1)])
        assert _reseed_empty(pts, np.ones(n), assignment, centers, influence, bw, rng)
        uniq = np.unique(centers.round(12), axis=0)
        assert uniq.shape[0] == k, "relocated centers must be pairwise distinct"

    def test_singleton_heaviest_uses_random_point(self):
        from repro.core.balanced_kmeans import _reseed_empty

        pts = np.random.default_rng(2).random((5, 2))
        # cluster 1 is heaviest (one very heavy point) but holds exactly one
        # point, so the relocation falls back to a random point
        assignment = np.array([0, 0, 0, 0, 1], dtype=np.int64)
        centers = np.array([[0.2, 0.2], [0.9, 0.9], [5.0, 5.0]])
        influence = np.ones(3)
        bw = np.array([0.5, 4.0, 0.0])
        assert _reseed_empty(pts, np.ones(5), assignment, centers, influence, bw,
                             np.random.default_rng(3))
        assert np.any(np.all(np.isclose(pts, centers[2]), axis=1))

    def test_end_to_end_random_seeding_fills_all_blocks(self):
        """Random seeding on clustered data can create empties; the driver recovers."""
        rng = np.random.default_rng(4)
        dense = rng.normal((0.1, 0.1), 0.01, (900, 2))
        outliers = rng.uniform(0.8, 1.0, (12, 2))
        pts = np.concatenate([dense, outliers])
        cfg = BalancedKMeansConfig(seeding="random", use_sampling=False, max_iterations=80)
        res = balanced_kmeans(pts, 6, config=cfg, rng=5)
        assert set(np.unique(res.assignment)) == set(range(6))


class TestTargetNormalization:
    """target_weights are ratios: any positive scaling balances identically."""

    def test_scaling_invariance(self):
        pts = _uniform(1200, seed=30)
        ratios = np.array([3.0, 1.0, 1.0, 1.0])
        a = balanced_kmeans(pts, 4, target_weights=ratios, rng=31)
        b = balanced_kmeans(pts, 4, target_weights=ratios * 1e6, rng=31)
        assert np.array_equal(a.assignment, b.assignment)

    def test_targets_rescaled_to_total_weight(self):
        pts = _uniform(1000, seed=32)
        w = np.random.default_rng(33).uniform(0.5, 2.0, 1000)
        res = balanced_kmeans(pts, 4, weights=w, target_weights=np.array([1.0, 1.0, 1.0, 5.0]),
                              rng=34, config=BalancedKMeansConfig(max_iterations=80))
        bw = np.bincount(res.assignment, weights=w, minlength=4)
        assert bw[3] > 2.5 * bw[:3].max()  # heavy block really got ~5/8 of the load

    @pytest.mark.parametrize("bad", [
        np.array([1.0, 0.0, 1.0]),
        np.array([1.0, -1.0, 1.0]),
        np.array([1.0, np.nan, 1.0]),
        np.ones(4),  # wrong length for k=3
    ])
    def test_invalid_targets_rejected(self, bad):
        with pytest.raises(ValueError):
            balanced_kmeans(_uniform(100), 3, target_weights=bad)


class TestBalancedKMeans:
    def test_balance_uniform(self):
        res = balanced_kmeans(_uniform(), 16, rng=0)
        assert res.imbalance <= 0.03 + 1e-9
        assert imbalance(res.assignment, 16) <= 0.05
        assert set(np.unique(res.assignment)) == set(range(16))

    def test_balance_weighted(self):
        rng = np.random.default_rng(1)
        pts = rng.random((3000, 2))
        w = rng.uniform(1.0, 47.0, 3000)  # climate-like weights
        res = balanced_kmeans(pts, 12, weights=w, rng=2)
        assert res.imbalance <= 0.03 + 1e-9

    def test_3d(self):
        res = balanced_kmeans(_uniform(1500, 3, seed=3), 8, rng=4)
        assert res.imbalance <= 0.03 + 1e-9
        assert res.converged

    def test_k1(self):
        pts = _uniform(100)
        res = balanced_kmeans(pts, 1)
        assert np.all(res.assignment == 0)
        assert res.converged
        assert np.allclose(res.centers[0], pts.mean(axis=0))

    def test_nonuniform_density(self):
        """Clustered data: balance must still be achieved via influence."""
        rng = np.random.default_rng(5)
        dense = rng.normal((0.2, 0.2), 0.05, (2400, 2))
        sparse = rng.uniform(0, 1, (600, 2))
        pts = np.concatenate([dense, sparse])
        res = balanced_kmeans(pts, 10, rng=6)
        assert res.imbalance <= 0.03 + 1e-9
        # influence values must have differentiated to achieve this
        assert res.influence.max() / res.influence.min() > 1.05

    def test_deterministic_given_seed(self):
        pts = _uniform(seed=7)
        a = balanced_kmeans(pts, 8, rng=42)
        b = balanced_kmeans(pts, 8, rng=42)
        assert np.array_equal(a.assignment, b.assignment)

    def test_history_recorded(self):
        res = balanced_kmeans(_uniform(seed=8), 8, rng=9)
        assert len(res.history) >= res.iterations
        full = [h for h in res.history if h.sample_size == 2500]
        assert all(h.balance_iterations >= 1 for h in full)

    def test_skip_fraction_claim(self):
        """§4.3: the inner loop is skipped in about 80% of cases."""
        res = balanced_kmeans(_uniform(4000, seed=10), 16, rng=11)
        assert res.skip_fraction > 0.6

    def test_timers_cover_stages(self):
        res = balanced_kmeans(_uniform(seed=12), 8, rng=13)
        for stage in ("sfc_index", "seeding", "assign", "update"):
            assert stage in res.timers.stages

    def test_warm_start_centers(self):
        pts = _uniform(seed=14)
        from repro.core.seeding import sfc_seeding

        warm = sfc_seeding(pts, 8)
        res = balanced_kmeans(pts, 8, centers=warm, rng=15)
        assert res.imbalance <= 0.03 + 1e-9

    def test_warm_start_bad_shape(self):
        with pytest.raises(ValueError):
            balanced_kmeans(_uniform(100), 4, centers=np.zeros((3, 2)))

    def test_target_weights_footnote1(self):
        """Heterogeneous targets (paper footnote 1): 2:1:1:... split."""
        pts = _uniform(2000, seed=16)
        k = 5
        targets = np.array([2.0, 1.0, 1.0, 1.0, 1.0])
        res = balanced_kmeans(pts, k, target_weights=targets, rng=17,
                              config=BalancedKMeansConfig(max_iterations=80))
        sizes = np.bincount(res.assignment, minlength=k)
        expected = targets / targets.sum() * 2000
        assert np.all(np.abs(sizes - expected) / expected < 0.15)

    def test_target_weights_validation(self):
        with pytest.raises(ValueError):
            balanced_kmeans(_uniform(100), 3, target_weights=np.array([1.0, -1.0, 1.0]))

    def test_epsilon_zero_strictness(self):
        """epsilon=0 is legal; the algorithm balances as far as the cap lets it."""
        cfg = BalancedKMeansConfig(epsilon=0.005, max_iterations=100, max_balance_iterations=60)
        res = balanced_kmeans(_uniform(1024, seed=18), 4, config=cfg, rng=19)
        assert res.imbalance <= 0.02


class TestSeedingVariants:
    @pytest.mark.parametrize("seeding", ["sfc", "random", "kmeans++"])
    def test_all_converge_balanced(self, seeding):
        cfg = BalancedKMeansConfig(seeding=seeding, use_sampling=False, max_iterations=80)
        res = balanced_kmeans(_uniform(1500, seed=20), 8, config=cfg, rng=21)
        assert res.imbalance <= 0.031

    def test_sfc_converges_fast(self):
        """SFC seeding needs fewer full iterations than random seeding (on average)."""
        pts = _uniform(3000, seed=22)
        iters = {}
        for seeding in ("sfc", "random"):
            cfg = BalancedKMeansConfig(seeding=seeding, use_sampling=False)
            total = 0
            for s in range(3):
                total += balanced_kmeans(pts, 16, config=cfg, rng=s).iterations
            iters[seeding] = total
        assert iters["sfc"] <= iters["random"] * 1.5


class TestOptimisationEquivalence:
    def test_bounds_and_pruning_do_not_change_result(self):
        pts = _uniform(1200, seed=23)
        base = BalancedKMeansConfig(use_sampling=False)
        ref = balanced_kmeans(pts, 10, config=base.with_(use_bounds=False, use_box_pruning=False), rng=24)
        for cfg in (base, base.with_(use_box_pruning=False)):
            res = balanced_kmeans(pts, 10, config=cfg, rng=24)
            assert np.array_equal(res.assignment, ref.assignment)

    def test_sampling_still_balanced(self):
        pts = _uniform(4000, seed=25)
        res = balanced_kmeans(pts, 8, config=BalancedKMeansConfig(use_sampling=True), rng=26)
        assert res.imbalance <= 0.031
        sampled_rounds = [h for h in res.history if h.sample_size < 4000]
        assert len(sampled_rounds) >= 3  # log2(4000/100) ~ 5 rounds


class TestWarmWorkspace:
    """Warm SweepWorkspace / precomputed SFC-order reuse (the service path):
    bit-identical to cold runs, with loud rejection of mismatched reuse."""

    def test_reused_workspace_and_order_are_bit_identical(self):
        from repro.core.kernels import SweepWorkspace

        pts = _uniform(1500, seed=31)
        cfg = BalancedKMeansConfig(use_sampling=False)
        cold = balanced_kmeans(pts, 8, config=cfg, rng=5)
        order = compute_sfc_order(pts, cfg)
        ws = SweepWorkspace(np.ascontiguousarray(pts[order]), cfg, 8)
        warm1 = balanced_kmeans(pts, 8, config=cfg, rng=5, workspace=ws, sfc_order=order)
        # second reuse of the *same* workspace (now carrying aggregates)
        warm2 = balanced_kmeans(pts, 8, config=cfg, rng=5, workspace=ws, sfc_order=order)
        for warm in (warm1, warm2):
            assert np.array_equal(cold.assignment, warm.assignment)
            assert np.array_equal(cold.centers, warm.centers)
            assert cold.imbalance == warm.imbalance
            assert cold.iterations == warm.iterations

    def test_warm_repartition_matches_cold_repartition(self):
        from repro.core.kernels import SweepWorkspace

        pts = _uniform(1200, seed=33)
        cfg = BalancedKMeansConfig(use_sampling=False)
        first = balanced_kmeans(pts, 6, config=cfg, rng=7)
        cold = balanced_kmeans(pts, 6, config=cfg, rng=8, centers=first.centers)
        order = compute_sfc_order(pts, cfg)
        ws = SweepWorkspace(np.ascontiguousarray(pts[order]), cfg, 6)
        warm = balanced_kmeans(pts, 6, config=cfg, rng=8, centers=first.centers,
                               workspace=ws, sfc_order=order)
        assert np.array_equal(cold.assignment, warm.assignment)
        assert np.array_equal(cold.centers, warm.centers)

    def test_mismatched_workspace_rejected(self):
        from repro.core.kernels import SweepWorkspace

        pts = _uniform(800, seed=35)
        cfg = BalancedKMeansConfig(use_sampling=False)
        ws = SweepWorkspace(pts, cfg, 4)  # unsorted points / wrong k below
        with pytest.raises(ValueError, match="warm workspace"):
            balanced_kmeans(pts, 5, config=cfg, rng=0, workspace=ws)

    def test_bad_sfc_order_shape_rejected(self):
        pts = _uniform(500, seed=36)
        with pytest.raises(ValueError, match="sfc_order"):
            balanced_kmeans(pts, 4, rng=0, sfc_order=np.arange(7))

    def test_workspace_matches_ignores_non_workspace_fields(self):
        from repro.core.kernels import SweepWorkspace

        pts = _uniform(400, seed=37)
        cfg = BalancedKMeansConfig(use_sampling=True)
        ws = SweepWorkspace(pts, cfg, 4)
        assert ws.matches(pts, cfg.with_(use_sampling=False, epsilon=0.05), 4)
        assert not ws.matches(pts, cfg.with_(chunk_size=cfg.chunk_size * 2), 4)
        assert not ws.matches(pts, cfg, 5)
        assert not ws.matches(pts[:-1], cfg, 4)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(200, 900), k=st.integers(2, 10), seed=st.integers(0, 100))
def test_property_always_valid_partition(n, k, seed):
    """Any (n, k, seed): output is a complete partition with tolerable imbalance."""
    pts = np.random.default_rng(seed).random((n, 2))
    res = balanced_kmeans(pts, k, rng=seed)
    assert res.assignment.shape == (n,)
    assert res.assignment.min() >= 0 and res.assignment.max() < k
    # imbalance within epsilon, or at worst the one-point granularity limit
    assert res.imbalance <= max(0.03, 2.0 * k / n) + 1e-9
