"""Tests for RCB, RIB, MultiJagged and HSFC — balance and shape invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.imbalance import imbalance
from repro.partitioners._split import distribute_parts, weighted_quantile_positions, weighted_split_position
from repro.partitioners.base import available_partitioners, get_partitioner
from repro.partitioners.multijagged import MultiJaggedPartitioner
from repro.partitioners.rib import inertial_axis

BASELINES = ("RCB", "RIB", "MultiJagged", "HSFC")


def _cloud(n=1000, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestSplitHelpers:
    def test_weighted_split_half(self):
        w = np.ones(10)
        assert weighted_split_position(w, 0.5) == 5

    def test_weighted_split_respects_weights(self):
        w = np.array([10.0, 1.0, 1.0, 1.0, 1.0])
        # half the weight (7) sits inside the first element
        assert weighted_split_position(w, 0.5) == 1

    def test_split_never_empty(self):
        w = np.array([100.0, 1.0])
        pos = weighted_split_position(w, 0.5)
        assert pos == 1  # cannot return 0 or 2

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            weighted_split_position(np.ones(4), 0.0)

    def test_quantile_positions_monotone(self):
        w = np.ones(100)
        pos = weighted_quantile_positions(w, np.array([0.25, 0.5, 0.75]))
        assert pos.tolist() == [25, 50, 75]

    def test_quantile_positions_no_empty_slabs(self):
        w = np.array([50.0] + [1.0] * 9)
        pos = weighted_quantile_positions(w, np.array([0.2, 0.4, 0.6, 0.8]))
        assert np.all(np.diff(pos) >= 1)
        assert pos[0] >= 1 and pos[-1] <= 9

    def test_distribute_parts(self):
        assert distribute_parts(10, 3).tolist() == [4, 3, 3]
        assert distribute_parts(9, 3).tolist() == [3, 3, 3]
        assert distribute_parts(5, 5).tolist() == [1] * 5

    def test_distribute_rejects_bad(self):
        with pytest.raises(ValueError):
            distribute_parts(3, 4)


class TestRegistry:
    def test_all_registered(self):
        names = available_partitioners()
        for tool in BASELINES + ("Geographer",):
            assert tool in names

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_partitioner("ParMetis")

    def test_k1_trivial(self):
        for tool in BASELINES:
            a = get_partitioner(tool).partition(_cloud(50), 1)
            assert np.all(a == 0)


@pytest.mark.parametrize("tool", BASELINES)
class TestBaselineInvariants:
    def test_all_blocks_used(self, tool):
        a = get_partitioner(tool).partition(_cloud(), 7)
        assert set(np.unique(a)) == set(range(7))

    def test_balance_unit_weights(self, tool):
        a = get_partitioner(tool).partition(_cloud(), 8)
        assert imbalance(a, 8) <= 0.03

    def test_balance_nonpow2(self, tool):
        a = get_partitioner(tool).partition(_cloud(n=997), 6)
        assert imbalance(a, 6) <= 0.05

    def test_balance_weighted(self, tool):
        rng = np.random.default_rng(1)
        pts = rng.random((1200, 2))
        w = rng.uniform(0.5, 2.0, 1200)
        a = get_partitioner(tool).partition(pts, 8, weights=w)
        assert imbalance(a, 8, w) <= 0.1  # weighted splits are off by <= max weight

    def test_3d(self, tool):
        a = get_partitioner(tool).partition(_cloud(d=3, seed=2), 4)
        assert imbalance(a, 4) <= 0.03

    def test_deterministic(self, tool):
        p = get_partitioner(tool)
        a = p.partition(_cloud(seed=3), 5, rng=0)
        b = p.partition(_cloud(seed=3), 5, rng=0)
        assert np.array_equal(a, b)


class TestRCBShape:
    def test_cuts_are_axis_aligned(self):
        """With k=2 the RCB cut is a vertical/horizontal line: one coordinate separates."""
        pts = _cloud(seed=4)
        a = get_partitioner("RCB").partition(pts, 2)
        dim = np.argmax(pts.max(axis=0) - pts.min(axis=0))
        lo_max = pts[a == 0][:, dim].max()
        hi_min = pts[a == 1][:, dim].min()
        assert lo_max <= hi_min or pts[a == 1][:, dim].max() <= pts[a == 0][:, dim].min()


class TestRIB:
    def test_inertial_axis_elongated_cloud(self):
        rng = np.random.default_rng(5)
        pts = np.column_stack([rng.normal(0, 5.0, 500), rng.normal(0, 0.5, 500)])
        axis = inertial_axis(pts, np.ones(500))
        assert abs(axis[0]) > 0.95  # dominant direction is x

    def test_rib_cuts_along_diagonal(self):
        """On a diagonal strip, RIB's k=2 cut separates along the diagonal,
        which axis-aligned RCB cannot do as cleanly."""
        rng = np.random.default_rng(6)
        t = rng.random(800)
        pts = np.column_stack([t, t]) + rng.normal(0, 0.02, (800, 2))
        a = get_partitioner("RIB").partition(pts, 2)
        proj = pts @ np.array([1.0, 1.0]) / np.sqrt(2)
        # projections of the two halves barely overlap
        overlap = min(proj[a == 0].max(), proj[a == 1].max()) - max(proj[a == 0].min(), proj[a == 1].min())
        spread = proj.max() - proj.min()
        assert overlap < 0.2 * spread


class TestMultiJagged:
    def test_explicit_parts(self):
        mj = MultiJaggedPartitioner(parts_per_level=(4, 4))
        a = mj.partition(_cloud(seed=7), 16)
        assert imbalance(a, 16) <= 0.03

    def test_prime_k(self):
        a = get_partitioner("MultiJagged").partition(_cloud(seed=8), 13)
        assert set(np.unique(a)) == set(range(13))
        assert imbalance(a, 13) <= 0.05

    def test_fewer_levels_than_rcb(self):
        """MJ blocks are rectangles: for k=16 in 2D expect ~4 slabs per axis,
        giving aspect ratios near 1 (vs RCB's possible strips)."""
        pts = _cloud(n=4000, seed=9)
        a = MultiJaggedPartitioner(parts_per_level=(4, 4)).partition(pts, 16)
        aspects = []
        for b in range(16):
            block = pts[a == b]
            ext = block.max(axis=0) - block.min(axis=0)
            aspects.append(ext.max() / max(ext.min(), 1e-9))
        assert np.median(aspects) < 3.0


class TestHSFC:
    def test_blocks_are_contiguous_chunks(self):
        from repro.sfc.curves import sfc_index

        pts = _cloud(seed=10)
        a = get_partitioner("HSFC").partition(pts, 5)
        order = np.argsort(sfc_index(pts), kind="stable")
        blocks_along_curve = a[order]
        # block ids along the curve are non-decreasing
        assert np.all(np.diff(blocks_along_curve) >= 0)

    def test_morton_variant(self):
        from repro.partitioners.hsfc import HSFCPartitioner

        a = HSFCPartitioner(curve="morton").partition(_cloud(seed=11), 4)
        assert imbalance(a, 4) <= 0.03


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(60, 400),
    k=st.integers(2, 12),
    seed=st.integers(0, 1000),
    tool=st.sampled_from(BASELINES),
)
def test_property_baselines_balanced(n, k, seed, tool):
    """Every baseline respects epsilon=3% on uniform points for any (n, k)."""
    pts = np.random.default_rng(seed).random((n, 2))
    a = get_partitioner(tool).partition(pts, k)
    assert a.shape == (n,)
    assert set(np.unique(a)) == set(range(k))
    # one-point granularity: allow ceil-based slack on tiny instances
    assert imbalance(a, k) <= max(0.03, 1.5 * k / n)
