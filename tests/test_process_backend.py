"""Unit tests for the process execution backend and the backend registry.

Covers the machinery under the equivalence suite: closure shipping across
pipes, shared-memory arrays and their pickling-by-handle, worker error
propagation, and — per the teardown contract — that closing a communicator
(explicitly, via the context manager, or on an exception inside an
algorithm that owns one) joins every worker and unlinks every
shared-memory segment.
"""

import multiprocessing as mp
import os
import pickle
import signal

import numpy as np
import pytest

from repro.runtime.comm import (
    BACKEND_ENV,
    VirtualComm,
    available_backends,
    make_comm,
    resolve_backend_name,
)
from repro.runtime._shipping import freeze_function, thaw_function
from repro.runtime.procomm import (
    ProcessComm,
    SharedArray,
    assert_no_leaks,
    leaked_resources,
    share_array,
    shutdown_process_comms,
    unlink_array,
)

pytestmark = pytest.mark.process_backend


def _segment_paths(comm):
    return ["/dev/shm/" + seg.name for seg in comm._segments]


class TestRegistry:
    def test_available_backends(self):
        assert {"virtual", "process"} <= set(available_backends())

    def test_make_comm_default_is_virtual(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        comm = make_comm(3)
        assert isinstance(comm, VirtualComm) and comm.kind == "virtual"

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend_name() == "process"
        assert resolve_backend_name("virtual") == "virtual"  # argument wins

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_comm(2, backend="quantum")

    def test_process_backend_constructed_via_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        with make_comm(2) as comm:
            assert isinstance(comm, ProcessComm)
            assert comm.measured and not comm.persistent_state


class TestClosureShipping:
    def test_freeze_thaw_roundtrips_closures(self):
        base = np.arange(4.0)

        def outer(scale):
            def fn(r):
                return base * scale + r

            return fn

        thawed = thaw_function(pickle.loads(pickle.dumps(freeze_function(outer(3.0)))))
        np.testing.assert_array_equal(thawed(2), base * 3.0 + 2)

    def test_nested_local_functions_ship(self):
        def helper(v):
            return v + 1

        def fn(r):
            return helper(r) * 10

        thawed = thaw_function(pickle.loads(pickle.dumps(freeze_function(fn))))
        assert thawed(3) == 40

    def test_capturing_comm_is_rejected(self):
        with make_comm(2, backend="process") as comm:
            captured = comm
            with pytest.raises(TypeError, match="must not capture the communicator"):
                comm.run_local(lambda r: captured.nranks)

    def test_plain_data_passes_through(self):
        payload = {"a": np.arange(3)}
        assert freeze_function(payload) is payload

    def test_keyword_only_defaults_survive(self):
        offset = 5.0

        def fn(r, *, scale=3.0):
            return r * scale + offset

        thawed = thaw_function(pickle.loads(pickle.dumps(freeze_function(fn))))
        assert thawed(2) == 11.0
        assert thawed(2, scale=10.0) == 25.0
        with make_comm(2, backend="process") as comm:
            assert comm.run_local(fn) == [5.0, 8.0]


class TestRunLocal:
    def test_ranks_run_in_distinct_processes(self):
        with make_comm(3, backend="process") as comm:
            pids = comm.run_local(lambda r: os.getpid())
        assert len(set(pids)) == 3 and os.getpid() not in pids

    def test_results_in_rank_order(self):
        with make_comm(4, backend="process") as comm:
            assert comm.run_local(lambda r: r * r) == [0, 1, 4, 9]

    def test_worker_exception_propagates_and_workers_survive(self):
        with make_comm(2, backend="process") as comm:

            def boom(r):
                if r == 1:
                    raise ValueError("kapow from rank 1")
                return r

            with pytest.raises(RuntimeError, match="kapow from rank 1"):
                comm.run_local(boom)
            # the failed superstep does not poison the communicator
            assert comm.run_local(lambda r: r + 10) == [10, 11]

    def test_ledger_measures_wall_clock(self):
        with make_comm(2, backend="process") as comm:
            comm.set_stage("phase")
            comm.run_local(lambda r: sum(range(1000)))
            comm.allreduce([np.ones(4), np.ones(4)])
        assert comm.ledger.supersteps == 1
        assert comm.ledger.compute_seconds > 0
        assert comm.ledger.stages["phase"] > 0
        assert comm.ledger.collective_counts == {"dispatch": 1, "allreduce": 1}


class TestSharedMemory:
    def test_share_roundtrip_through_worker(self):
        with make_comm(2, backend="process") as comm:
            arr = comm.share(np.arange(12.0))
            assert isinstance(arr, SharedArray)
            sums = comm.run_local(lambda r: float(arr[r::2].sum()))
            assert sums == [float(arr[0::2].sum()), float(arr[1::2].sum())]

    def test_slice_pickles_by_handle_copy_by_value(self):
        with make_comm(1, backend="process") as comm:
            arr = comm.share(np.arange(20.0))
            view = pickle.loads(pickle.dumps(arr[5:15]))
            arr[7] = -99.0  # handle: the unpickled view aliases the segment
            assert view[2] == -99.0
            copied = pickle.loads(pickle.dumps(arr[[1, 3, 5]]))  # fancy copy left the segment
            arr[3] = -1.0
            assert copied[1] == 3.0

    def test_worker_mutation_visible_in_driver(self):
        with make_comm(2, backend="process") as comm:
            arr = comm.share(np.zeros(2))
            comm.run_local(lambda r: arr.__setitem__(r, r + 1.0))
            np.testing.assert_array_equal(arr, [1.0, 2.0])

    def test_zero_size_share_is_plain(self):
        with make_comm(1, backend="process") as comm:
            arr = comm.share(np.empty(0))
            assert arr.nbytes == 0

    def test_virtual_share_is_identity(self):
        comm = VirtualComm(2)
        src = np.arange(5.0)
        assert comm.share(src) is src

    def test_release_unlinks_segment_and_comm_stays_usable(self):
        with make_comm(2, backend="process") as comm:
            stale = comm.share(np.arange(16.0))
            kept = comm.share(np.arange(4.0))
            path = "/dev/shm/" + stale._shm.name
            comm.run_local(lambda r: float(stale.sum()))  # workers attach it
            comm.release(stale)
            assert not os.path.exists(path)
            assert comm._segments == [kept._shm]
            assert comm.run_local(lambda r: float(kept[r])) == [0.0, 1.0]

    def test_release_ignores_foreign_arrays(self):
        with make_comm(1, backend="process") as comm:
            comm.release(np.arange(3.0))  # plain array: nothing to do
            assert comm.run_local(lambda r: r) == [0]

    def test_virtual_release_is_noop(self):
        comm = VirtualComm(2)
        comm.release(np.arange(3.0))


class TestTeardown:
    def test_close_joins_workers_and_unlinks_segments(self):
        comm = make_comm(2, backend="process")
        comm.share(np.arange(64.0))
        paths = _segment_paths(comm)
        assert all(os.path.exists(p) for p in paths)
        comm.close()
        assert all(not proc.is_alive() for proc in comm._workers)
        assert all(not os.path.exists(p) for p in paths)

    def test_close_is_idempotent(self):
        comm = make_comm(2, backend="process")
        comm.close()
        comm.close()
        with pytest.raises(RuntimeError, match="closed"):
            comm.run_local(lambda r: r)

    def test_context_manager_closes(self):
        with make_comm(2, backend="process") as comm:
            comm.run_local(lambda r: r)
        assert all(not proc.is_alive() for proc in comm._workers)

    def test_algorithm_error_does_not_leak(self):
        """An exception inside an algorithm that built its own comm still
        joins the workers and unlinks shared memory (atexit-style teardown)."""
        from repro.runtime.distributed_kmeans import distributed_balanced_kmeans

        before = {p.pid for p in mp.active_children()}
        pts = np.random.default_rng(0).random((200, 2))
        with pytest.raises(ValueError, match="warm-start centers"):
            distributed_balanced_kmeans(pts, k=3, nranks=2, rng=0, backend="process",
                                        centers=np.zeros((2, 5)))
        leaked = [p for p in mp.active_children()
                  if p.pid not in before and p.name.startswith("repro-rank")]
        assert leaked == []

    def test_shutdown_process_comms_closes_live_comms(self):
        comm = make_comm(2, backend="process")
        comm.share(np.arange(8.0))
        path = "/dev/shm/" + comm._segments[0].name
        shutdown_process_comms()
        assert comm._closed
        assert not os.path.exists(path)

    def test_comm_reuse_does_not_accumulate_segments(self):
        """Repeated runs over one open communicator release every segment
        they shared — /dev/shm stays flat (the repartitioning-loop case)."""
        from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
        from repro.spmv.distspmv import distributed_spmv
        from repro.mesh.rgg import rgg_mesh

        pts = np.random.default_rng(2).random((400, 2))
        mesh = rgg_mesh(200, dim=2, rng=0)
        a = np.random.default_rng(0).integers(0, 4, size=mesh.n)
        x = np.random.default_rng(1).random(mesh.n)
        with make_comm(2, backend="process") as comm:
            results = []
            for _ in range(3):
                res = distributed_balanced_kmeans(pts, k=3, nranks=2, rng=5, comm=comm)
                results.append(res.assignment)
                distributed_spmv(mesh, a, 4, x, comm=comm)
                assert comm._segments == []
            np.testing.assert_array_equal(results[0], results[1])
            np.testing.assert_array_equal(results[0], results[2])

    def test_reused_comm_stage_restored(self):
        from repro.mesh.rgg import rgg_mesh
        from repro.spmv.distspmv import distributed_spmv

        mesh = rgg_mesh(150, dim=2, rng=0)
        a = np.random.default_rng(0).integers(0, 3, size=mesh.n)
        x = np.random.default_rng(1).random(mesh.n)
        with make_comm(2, backend="process") as comm:
            comm.set_stage("mine")
            distributed_spmv(mesh, a, 3, x, comm=comm)
            comm.run_local(lambda r: r)
            assert comm.ledger.stages.get("mine", 0.0) > 0
            assert comm._stage == "mine"

    def test_no_shm_leak_across_full_run(self):
        from repro.runtime.distributed_kmeans import distributed_balanced_kmeans

        def our_segments():
            try:
                return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
            except FileNotFoundError:  # non-Linux layout: skip the fs check
                pytest.skip("no /dev/shm on this platform")

        before = our_segments()
        pts = np.random.default_rng(1).random((500, 2))
        distributed_balanced_kmeans(pts, k=4, nranks=3, rng=1, backend="process")
        assert our_segments() <= before


class TestDeadWorkerTeardown:
    """Satellite of the fault-tolerance PR: a worker that already died must
    never break teardown — release/close stay graceful and still unlink
    every shared-memory segment (the driver owns the unlink)."""

    @staticmethod
    def _kill(comm, rank):
        os.kill(comm._workers[rank].pid, signal.SIGKILL)
        comm._workers[rank].join(5.0)

    def test_close_with_dead_worker_still_unlinks(self):
        before = leaked_resources()
        comm = make_comm(2, backend="process")
        comm.share(np.arange(32.0))
        paths = _segment_paths(comm)
        self._kill(comm, 1)
        comm.close()  # must not raise EOFError/BrokenPipeError
        assert all(not os.path.exists(p) for p in paths)
        assert_no_leaks(before)

    def test_release_with_dead_worker_still_unlinks(self):
        before = leaked_resources()
        with make_comm(2, backend="process") as comm:
            arr = comm.share(np.arange(16.0))
            path = "/dev/shm/" + arr._shm.name
            comm.run_local(lambda r: float(arr.sum()))  # workers attach
            self._kill(comm, 0)
            comm.release(arr)  # dead pipe: must not raise
            assert not os.path.exists(path)
        assert_no_leaks(before)

    def test_all_workers_dead_close_is_graceful(self):
        before = leaked_resources()
        comm = make_comm(3, backend="process")
        comm.share(np.zeros(8))
        for rank in range(3):
            self._kill(comm, rank)
        comm.close()
        assert_no_leaks(before)

    def test_leak_helpers_report_new_resources(self):
        before = leaked_resources()
        assert set(before) == {"segments", "workers"}
        comm = make_comm(2, backend="process")
        comm.share(np.arange(8.0))
        with pytest.raises(AssertionError, match="leaked"):
            assert_no_leaks(before)
        comm.close()
        assert_no_leaks(before)


class TestWedgedWorkerTeardown:
    """The atexit-hang bugfix: close() must be *bounded* even when a worker
    cannot respond — a SIGSTOPped process ignores the exit message and
    leaves SIGTERM pending forever, so close escalates to SIGKILL."""

    def test_close_kills_sigstopped_worker_within_bound(self):
        import time as _time

        before = leaked_resources()
        comm = make_comm(2, backend="process")
        comm.share(np.arange(16.0))
        stopped = comm._workers[1]
        os.kill(stopped.pid, signal.SIGSTOP)
        start = _time.perf_counter()
        comm.close(join_timeout=0.5)
        elapsed = _time.perf_counter() - start
        assert elapsed < 10.0, f"close() took {elapsed:.1f}s on a wedged worker"
        stopped.join(5.0)
        assert not stopped.is_alive()
        assert_no_leaks(before)

    def test_shutdown_process_comms_is_bounded_with_wedged_worker(self):
        before = leaked_resources()
        comm = make_comm(2, backend="process")
        os.kill(comm._workers[0].pid, signal.SIGSTOP)
        import time as _time

        start = _time.perf_counter()
        shutdown_process_comms(join_timeout=0.5)  # the atexit entry point
        assert _time.perf_counter() - start < 10.0
        assert comm._closed
        assert_no_leaks(before)


class TestStandaloneSharedArrays:
    """share_array/unlink_array: service-owned segments outside any comm."""

    def test_share_unlink_roundtrip(self):
        before = leaked_resources()
        arr = share_array(np.arange(24.0).reshape(4, 6))
        assert isinstance(arr, SharedArray)
        path = "/dev/shm/" + arr._shm.name
        assert os.path.exists(path)
        np.testing.assert_array_equal(np.asarray(arr), np.arange(24.0).reshape(4, 6))
        # pickles by handle, like comm-owned segments
        handle = pickle.dumps(arr)
        assert len(handle) < 512
        unlink_array(arr)
        assert not os.path.exists(path)
        unlink_array(arr)  # idempotent
        unlink_array(np.zeros(3))  # plain ndarray: no-op
        assert_no_leaks(before)

    def test_zero_size_is_plain(self):
        arr = share_array(np.empty(0))
        assert not isinstance(arr, SharedArray)
        unlink_array(arr)


class TestTopologyParity:
    def test_topology_total_validated(self):
        from repro.runtime.costmodel import MachineTopology

        topo = MachineTopology(branching=(2, 2))
        with pytest.raises(ValueError, match="leaves"):
            ProcessComm(3, topology=topo)
        with make_comm(4, backend="process", topology=topo) as comm:
            assert comm.topology is topo
