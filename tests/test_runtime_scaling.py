"""Tests for the scaling drivers (Figure 3/4 machinery)."""

import pytest

from repro.runtime.costmodel import MachineModel
from repro.runtime.scaling import (
    calibrate,
    modeled_time,
    strong_scaling,
    weak_scaling,
)


@pytest.fixture(scope="module")
def calib():
    return calibrate(points_per_rank=500, nranks=2, rng=0)


class TestCalibration:
    def test_structure_counts(self, calib):
        assert calib.kmeans_iterations >= 1
        assert calib.reduces_per_iteration >= 1.0


class TestModeledTime:
    def test_all_tools(self, calib):
        for tool in ("Geographer", "MultiJagged", "RCB", "RIB", "HSFC"):
            secs, breakdown = modeled_time(tool, 1_000_000, 64, 64, calib)
            assert secs > 0
            assert abs(sum(breakdown.values()) - secs) < 1e-12

    def test_unknown_tool(self, calib):
        with pytest.raises(ValueError):
            modeled_time("ParMetis", 1000, 4, 4, calib)

    def test_rcb_scales_worse_than_mj(self, calib):
        """Weak scaling shape: doubling p and n, RCB's time grows faster."""
        def growth(tool):
            t1, _ = modeled_time(tool, 256 * 4000, 256, 256, calib)
            t2, _ = modeled_time(tool, 8192 * 4000, 8192, 8192, calib)
            return t2 / t1

        assert growth("RCB") > growth("MultiJagged")
        assert growth("RCB") > growth("Geographer")

    def test_island_kink(self, calib):
        """Crossing the 8192-core island makes 16384 slower (Figure 3b)."""
        m = MachineModel()
        t8k, _ = modeled_time("Geographer", 2_000_000_000, 8192, 8192, calib, m)
        t16k, _ = modeled_time("Geographer", 2_000_000_000, 16384, 16384, calib, m)
        assert t16k > t8k

    def test_no_island_no_kink(self, calib):
        m = MachineModel(island_size=1 << 20)
        t8k, _ = modeled_time("HSFC", 2_000_000_000, 8192, 8192, calib, m)
        t16k, _ = modeled_time("HSFC", 2_000_000_000, 16384, 16384, calib, m)
        # strong scaling without island penalty: 16k not dramatically slower
        assert t16k < t8k * 1.5


class TestCurves:
    def test_weak_scaling_rows(self):
        points = weak_scaling(
            tools=("Geographer", "HSFC"),
            points_per_rank=400,
            rank_counts=(2, 64),
            measured_max_ranks=2,
            rng=0,
        )
        assert len(points) == 4
        modes = {(p.tool, p.nranks): p.mode for p in points}
        assert modes[("Geographer", 2)] == "measured"
        assert modes[("Geographer", 64)] == "modeled"

    def test_weak_scaling_n_grows(self):
        points = weak_scaling(tools=("HSFC",), points_per_rank=100,
                              rank_counts=(4, 8), measured_max_ranks=0, rng=1)
        by_p = {p.nranks: p.n for p in points}
        assert by_p[8] == 2 * by_p[4]

    def test_strong_scaling_fixed_n(self):
        points = strong_scaling(tools=("RCB",), n=10_000_000,
                                rank_counts=(64, 128), measured_max_ranks=0, rng=2)
        assert all(p.n == 10_000_000 for p in points)
        assert all(p.mode == "modeled" for p in points)

    def test_rcb_strong_scaling_poor(self):
        """Paper: RCB climbs from ~6.5s at 1024 to ~23s at 16384."""
        points = strong_scaling(tools=("RCB",), n=2_000_000_000,
                                rank_counts=(1024, 16384), measured_max_ranks=0, rng=3)
        t = {p.nranks: p.seconds for p in points}
        assert t[16384] > t[1024]
