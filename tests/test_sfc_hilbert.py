"""Tests for the Hilbert curve — bijectivity, inverse, and the locality property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc.hilbert import hilbert_cell, hilbert_index


def _full_grid(dim, bits):
    side = 1 << bits
    axes = [np.arange(side)] * dim
    return np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, dim)


class TestBijectivity:
    @pytest.mark.parametrize("dim,bits", [(2, 1), (2, 2), (2, 3), (2, 5), (3, 1), (3, 2), (3, 3)])
    def test_full_grid_bijective(self, dim, bits):
        cells = _full_grid(dim, bits)
        h = hilbert_index(cells, bits)
        assert h.min() == 0
        assert h.max() == (1 << (bits * dim)) - 1
        assert len(np.unique(h)) == cells.shape[0]

    @pytest.mark.parametrize("dim,bits", [(2, 4), (3, 2)])
    def test_inverse_roundtrip(self, dim, bits):
        cells = _full_grid(dim, bits)
        h = hilbert_index(cells, bits)
        assert np.array_equal(hilbert_cell(h, bits, dim), cells)


class TestLocality:
    """The defining Hilbert property: consecutive indices are grid neighbours."""

    @pytest.mark.parametrize("dim,bits", [(2, 2), (2, 4), (2, 6), (3, 2), (3, 3)])
    def test_unit_steps(self, dim, bits):
        cells = _full_grid(dim, bits)
        order = np.argsort(hilbert_index(cells, bits))
        steps = np.abs(np.diff(cells[order], axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_better_locality_than_morton(self):
        """Walking the curve: Hilbert steps are always unit, Morton jumps."""
        from repro.sfc.morton import morton_index

        bits = 5
        cells = _full_grid(2, bits)
        h_order = np.argsort(hilbert_index(cells, bits))
        m_order = np.argsort(morton_index(cells, bits))
        h_steps = np.linalg.norm(np.diff(cells[h_order], axis=0), axis=1)
        m_steps = np.linalg.norm(np.diff(cells[m_order], axis=0), axis=1)
        assert h_steps.max() == 1.0
        assert m_steps.max() > 1.0
        assert h_steps.mean() < m_steps.mean()


class TestValidation:
    def test_rejects_float_cells(self):
        with pytest.raises(TypeError):
            hilbert_index(np.zeros((2, 2)), 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_index(np.array([[0, 16]]), 4)
        with pytest.raises(ValueError):
            hilbert_index(np.array([[-1, 0]]), 4)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            hilbert_index(np.zeros((2, 4), dtype=np.int64), 4)

    def test_rejects_overflow_bits(self):
        with pytest.raises(ValueError):
            hilbert_index(np.zeros((1, 2), dtype=np.int64), 32)
        with pytest.raises(ValueError):
            hilbert_cell(np.array([0]), 31, 3)

    def test_rejects_index_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_cell(np.array([1 << 8]), 4, 2)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)), min_size=1, max_size=64),
)
def test_property_roundtrip_2d(cells):
    arr = np.asarray(cells, dtype=np.int64)
    h = hilbert_index(arr, 8)
    assert np.array_equal(hilbert_cell(h, 8, 2), arr)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63)),
        min_size=1,
        max_size=64,
    ),
)
def test_property_roundtrip_3d(cells):
    arr = np.asarray(cells, dtype=np.int64)
    h = hilbert_index(arr, 6)
    assert np.array_equal(hilbert_cell(h, 6, 3), arr)
