"""Public-API surface tests: everything docs/API.md promises must import and run."""

import numpy as np


class TestTopLevelImports:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_subpackage_exports(self):
        from repro import core, embed, experiments, mesh, metrics, partitioners, refine, runtime, spmv, viz

        for module in (core, mesh, metrics, partitioners, runtime, spmv, viz, refine, embed, experiments):
            assert hasattr(module, "__all__")
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestDocumentedWorkflows:
    """The README / API.md snippets, executed."""

    def test_readme_quickstart(self):
        from repro import balanced_kmeans, evaluate_partition, get_partitioner, make_instance

        mesh = make_instance("hugetric", scale=0.08, seed=0)
        result = balanced_kmeans(mesh.coords, k=8, weights=mesh.node_weights, rng=0)
        assert result.imbalance <= 0.031
        a = get_partitioner("MultiJagged").partition_mesh(mesh, 8, rng=0)
        row = evaluate_partition(mesh, a, 8, tool="MultiJagged")
        assert row.total_comm_vol > 0

    def test_api_md_runtime_flow(self):
        from repro.runtime import distributed_balanced_kmeans

        pts = np.random.default_rng(0).random((800, 2))
        res = distributed_balanced_kmeans(pts, k=4, nranks=4, rng=1)
        fracs = res.stage_fractions()
        assert res.simulated_seconds > 0
        assert "kmeans" in fracs

    def test_api_md_spmv_flow(self):
        from repro.mesh import delaunay_mesh
        from repro.partitioners import get_partitioner
        from repro.spmv import build_halo_plan, spmv_comm_time

        mesh = delaunay_mesh(300, rng=2)
        a = get_partitioner("RCB").partition_mesh(mesh, 4)
        plan = build_halo_plan(mesh, a, 4)
        assert plan.total_volume == plan.send_volumes.sum()
        assert spmv_comm_time(mesh, a, 4) > 0

    def test_api_md_extension_flow(self):
        import networkx as nx

        from repro.embed import partition_graph
        from repro.mesh import delaunay_mesh
        from repro.partitioners import get_partitioner
        from repro.refine import fm_refine

        mesh = delaunay_mesh(400, rng=3)
        a = get_partitioner("HSFC").partition_mesh(mesh, 4)
        refined, stats = fm_refine(mesh, a, 4)
        assert 0.0 <= stats.improvement <= 1.0

        g = nx.random_partition_graph([50, 50], 0.2, 0.01, seed=0)
        coords, result = partition_graph(g, 2, rng=4)
        assert coords.shape == (100, 2)
        assert result.imbalance <= 0.05

    def test_registry_names_stable(self):
        """Names used throughout docs/benches must stay registered."""
        from repro.mesh import instance_names
        from repro.partitioners import available_partitioners

        assert available_partitioners() == [
            "Geographer", "HSFC", "Hierarchical", "MultiJagged", "RCB", "RIB",
        ]
        for name in ("hugetric", "fesom_jigsaw", "alyaB", "delaunay2d_l", "NACA0015"):
            assert name in instance_names()
