"""Tests for SVG rendering and palettes."""

import numpy as np
import pytest

from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.rgg import rgg_mesh
from repro.partitioners.base import get_partitioner
from repro.viz.palette import block_colors, hex_color
from repro.viz.svg import render_partition_svg


class TestPalette:
    def test_hex_format(self):
        assert hex_color((1.0, 0.0, 0.0)) == "#ff0000"
        assert hex_color((0.0, 0.0, 0.0)) == "#000000"

    def test_clipping(self):
        assert hex_color((2.0, -1.0, 0.5)) == "#ff0080"

    def test_distinct_colors(self):
        colors = block_colors(32)
        assert len(set(colors)) == 32

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            block_colors(0)


class TestSvg:
    def test_triangles_rendered(self, tmp_path):
        mesh = delaunay_mesh(200, rng=0)
        a = get_partitioner("RCB").partition_mesh(mesh, 4)
        path = str(tmp_path / "p.svg")
        svg = render_partition_svg(mesh, a, path=path)
        assert svg.startswith("<svg")
        assert svg.count("<path") >= 4  # one path group per used colour
        assert open(path).read() == svg

    def test_points_fallback(self):
        mesh = rgg_mesh(150, rng=1)  # no cells stored
        a = get_partitioner("HSFC").partition_mesh(mesh, 3)
        svg = render_partition_svg(mesh, a)
        assert "<circle" in svg

    def test_input_only(self):
        mesh = delaunay_mesh(100, rng=2)
        svg = render_partition_svg(mesh, None, title="input mesh")
        assert "input mesh" in svg

    def test_rejects_3d(self):
        mesh = delaunay_mesh(120, dim=3, rng=3)
        with pytest.raises(ValueError):
            render_partition_svg(mesh, None)

    def test_all_blocks_appear(self):
        mesh = delaunay_mesh(300, rng=4)
        k = 5
        a = get_partitioner("MultiJagged").partition_mesh(mesh, k)
        svg = render_partition_svg(mesh, a)
        for color in block_colors(k):
            assert color in svg
