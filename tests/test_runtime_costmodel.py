"""Tests for the alpha-beta-island machine model."""

import pytest

from repro.runtime.costmodel import SUPERMUC_LIKE, MachineModel


class TestValidation:
    def test_defaults_valid(self):
        assert SUPERMUC_LIKE.island_size == 8192

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -1.0},
            {"beta": -1.0},
            {"island_size": 0},
            {"island_factor": 0.5},
            {"compute_rate": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MachineModel(**kwargs)


class TestCosts:
    def setup_method(self):
        self.m = MachineModel(alpha=1e-6, beta=1e-9, island_size=1024, island_factor=2.0)

    def test_single_rank_free(self):
        assert self.m.allreduce(1000, 1) == 0.0
        assert self.m.allgather(1000, 1) == 0.0
        assert self.m.alltoallv(1000, 1) == 0.0

    def test_allreduce_logarithmic(self):
        t64 = self.m.allreduce(8, 64)
        t1024 = self.m.allreduce(8, 1024)
        assert t1024 == pytest.approx(t64 * (10 / 6))  # log2 1024 / log2 64

    def test_allreduce_monotone_in_bytes(self):
        assert self.m.allreduce(10_000, 64) > self.m.allreduce(8, 64)

    def test_alltoallv_linear_in_ranks(self):
        t2 = self.m.alltoallv(0, 2)
        t32 = self.m.alltoallv(0, 32)
        assert t32 == pytest.approx(t2 * 31)

    def test_island_penalty_kicks_in(self):
        """The §5.3.2 effect: crossing the island boundary costs extra."""
        within = self.m.allreduce(8, 1024)
        crossing = self.m.allreduce(8, 2048)
        # 2048 ranks: one extra log round AND the island factor
        assert crossing > within * 2.0

    def test_penalty_function(self):
        assert self.m.penalty(1024) == 1.0
        assert self.m.penalty(1025) == 2.0

    def test_point_to_point(self):
        assert self.m.point_to_point(1000) == pytest.approx(1e-6 + 1e-6)

    def test_compute(self):
        m = MachineModel(compute_rate=1e6)
        assert m.compute(2e6) == pytest.approx(2.0)

    def test_allgather_doubling_payload(self):
        # total payload transferred: b * (1 + 2 + ... + 2^(r-1)) = b * (p - 1)
        t = self.m.allgather(8, 8)
        expected = (3 * self.m.alpha + self.m.beta * 8 * 7)
        assert t == pytest.approx(expected)
