"""Tests for the Morton (Z-order) curve."""

import numpy as np
import pytest

from repro.sfc.morton import morton_cell, morton_index


def _full_grid(dim, bits):
    side = 1 << bits
    axes = [np.arange(side)] * dim
    return np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, dim)


class TestMorton:
    @pytest.mark.parametrize("dim,bits", [(2, 3), (2, 5), (3, 2), (3, 3)])
    def test_bijective(self, dim, bits):
        cells = _full_grid(dim, bits)
        m = morton_index(cells, bits)
        assert len(np.unique(m)) == cells.shape[0]
        assert m.min() == 0 and m.max() == (1 << (bits * dim)) - 1

    @pytest.mark.parametrize("dim,bits", [(2, 4), (3, 3)])
    def test_roundtrip(self, dim, bits):
        cells = _full_grid(dim, bits)
        assert np.array_equal(morton_cell(morton_index(cells, bits), bits, dim), cells)

    def test_known_2d_values(self):
        # Z-order: (x, y) -> interleave with x highest bit first
        cells = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        m = morton_index(cells, 1)
        assert m.tolist() == [0, 1, 2, 3]

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            morton_index(np.zeros((1, 2)), 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            morton_index(np.array([[4, 0]]), 2)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            morton_index(np.zeros((1, 3), dtype=np.int64), 21)
        with pytest.raises(ValueError):
            morton_cell(np.array([0]), 32, 2)
