"""MPI backend machinery under real ``mpiexec`` launches.

Mirrors ``test_process_backend.py`` for the third execution backend: the
SPMD driver/worker bridge, closure shipping over MPI broadcasts,
rank-resident shared arrays + ``collect``, worker error propagation, the
measured ledger, and the CLI entrypoints.  Every test shells out to
``mpiexec`` (the backend is meaningless in-process) and skips when MPI or
``mpi4py`` is unavailable; the cross-backend bit-identity contract lives
in ``test_backend_equivalence.py``.
"""

import textwrap

import pytest

pytestmark = pytest.mark.mpi_backend

MPI_MAIN = ["-m", "repro.runtime.mpi_main"]


def _run_script(mpiexec_run, tmp_path, nranks, body):
    """Run an SPMD driver script (workers served by spmd_main) under mpiexec."""
    script = tmp_path / "spmd_script.py"
    script.write_text(
        textwrap.dedent(
            """
            import numpy as np

            from repro.runtime.comm import make_comm
            from repro.runtime.mpicomm import spmd_main


            def driver():
            %s
                return 0


            if __name__ == "__main__":
                raise SystemExit(spmd_main(driver) or 0)
            """
        )
        % textwrap.indent(textwrap.dedent(body), "    ")
    )
    return mpiexec_run(nranks, [str(script)])


class TestEntrypoints:
    def test_equivalence_suite_passes(self, mpiexec_run):
        res = mpiexec_run(2, [*MPI_MAIN, "equivalence", "--ranks", "1", "2"])
        assert res.returncode == 0, res.stdout + res.stderr
        assert "PASS" in res.stdout

    def test_cli_forwarding_defaults_to_mpi_backend(self, mpiexec_run):
        res = mpiexec_run(
            2, [*MPI_MAIN, "distributed", "rgg2d", "--scale", "0.05", "-k", "4", "-p", "2"]
        )
        assert res.returncode == 0, res.stdout + res.stderr
        assert "backend=mpi" in res.stdout
        assert "measured" in res.stdout  # the ledger table is MPI.Wtime, not modeled

    def test_repro_mpi_subcommand_forwards(self, mpiexec_run):
        res = mpiexec_run(
            2,
            ["-m", "repro", "mpi", "spmv", "rgg2d", "--scale", "0.05", "-k", "4",
             "-p", "2", "--backend", "mpi"],
        )
        assert res.returncode == 0, res.stdout + res.stderr
        assert "halo plan complete: True" in res.stdout
        assert "backend=mpi" in res.stdout

    def test_scaling_caps_measured_ranks_at_world_size(self, mpiexec_run):
        # rank counts beyond mpiexec -n stay modeled instead of crashing
        res = mpiexec_run(
            2, [*MPI_MAIN, "scaling", "weak", "--ranks", "4", "8", "--backend", "mpi"]
        )
        assert res.returncode == 0, res.stdout + res.stderr
        assert "Geographer" in res.stdout


class TestRunLocal:
    def test_worker_error_propagates_and_loop_survives(self, mpiexec_run, tmp_path):
        res = _run_script(
            mpiexec_run, tmp_path, 2,
            """
            def boom(r):
                if r == 1:
                    raise ValueError("kapow from rank 1")
                return r

            with make_comm(2, backend="mpi") as comm:
                try:
                    comm.run_local(boom)
                except RuntimeError as exc:
                    assert "kapow from rank 1" in str(exc)
                else:
                    raise AssertionError("expected RuntimeError")
                # the failed superstep does not poison the communicator
                assert comm.run_local(lambda r: r + 10) == [10, 11]
            print("WORKER-ERROR-OK")
            """,
        )
        assert res.returncode == 0, res.stdout + res.stderr
        assert "WORKER-ERROR-OK" in res.stdout

    def test_capturing_comm_is_rejected_before_the_collective(self, mpiexec_run, tmp_path):
        res = _run_script(
            mpiexec_run, tmp_path, 2,
            """
            with make_comm(2, backend="mpi") as comm:
                captured = comm
                try:
                    comm.run_local(lambda r: captured.nranks)
                except TypeError as exc:
                    assert "must not capture the communicator" in str(exc)
                else:
                    raise AssertionError("expected TypeError")
                assert comm.run_local(lambda r: r) == [0, 1]
            print("CAPTURE-REJECTED-OK")
            """,
        )
        assert res.returncode == 0, res.stdout + res.stderr
        assert "CAPTURE-REJECTED-OK" in res.stdout


class TestSharedAndLedger:
    def test_share_mutate_collect_release_and_ledger(self, mpiexec_run, tmp_path):
        res = _run_script(
            mpiexec_run, tmp_path, 2,
            """
            with make_comm(2, backend="mpi") as comm:
                comm.set_stage("phase")
                arrs = [comm.share(np.zeros(3)) for _ in range(2)]
                comm.run_local(lambda r: arrs[r].__setitem__(slice(None), r + 1.0))
                got = comm.collect(arrs)
                assert got[0].tolist() == [1.0] * 3   # rank 0 == driver copy
                assert got[1].tolist() == [2.0] * 3   # fetched from rank 1
                assert arrs[0].tolist() == [1.0] * 3  # driver is rank 0's worker
                comm.release(*arrs)
                out = comm.allreduce(comm.run_local(lambda r: np.array([float(r)])))
                assert out.tolist() == [1.0]
                assert comm.measured and not comm.persistent_state
                assert comm.ledger.supersteps >= 2
                assert comm.ledger.compute_seconds > 0
                assert comm.ledger.stages["phase"] > 0
                assert "dispatch" in comm.ledger.collective_counts
                assert "collect" in comm.ledger.collective_counts
            print("SHARE-COLLECT-OK")
            """,
        )
        assert res.returncode == 0, res.stdout + res.stderr
        assert "SHARE-COLLECT-OK" in res.stdout

    def test_too_many_ranks_is_a_clear_error(self, mpiexec_run, tmp_path):
        res = _run_script(
            mpiexec_run, tmp_path, 2,
            """
            try:
                make_comm(4, backend="mpi")
            except RuntimeError as exc:
                assert "mpiexec -n 4" in str(exc)
            else:
                raise AssertionError("expected RuntimeError")
            print("RANK-CAP-OK")
            """,
        )
        assert res.returncode == 0, res.stdout + res.stderr
        assert "RANK-CAP-OK" in res.stdout

    def test_sequential_comms_share_one_launch(self, mpiexec_run, tmp_path):
        # the p in {1, 2} sweep of the equivalence suite: open/close several
        # communicators against one mpiexec launch, surplus ranks idle
        res = _run_script(
            mpiexec_run, tmp_path, 2,
            """
            for p in (1, 2, 1, 2):
                with make_comm(p, backend="mpi") as comm:
                    assert comm.run_local(lambda r: r * r) == [r * r for r in range(p)]
            print("SEQUENTIAL-OK")
            """,
        )
        assert res.returncode == 0, res.stdout + res.stderr
        assert "SEQUENTIAL-OK" in res.stdout
