"""Cross-backend equivalence: all execution backends agree bit-for-bit.

The virtual backend simulates ranks in the driver process; the process
backend runs each rank as a real worker process with shared-memory point
arrays and pickled collectives over pipes; the MPI backend runs each rank
as a real ``mpiexec``-launched process with rank-resident arrays.  Because
every backend executes the same rank kernels on the same data and combines
collectives with the same code in the same rank order, every result —
assignments, centers, imbalance, sorted orders, SpMV outputs — must be
*bit-identical*, not just close.  These tests pin that contract for
p in {1, 2, 4} and k in {3, 8}; the MPI leg (``TestMPIEquivalence``) shells
out to ``mpiexec -n 4`` and skips itself when MPI is unavailable.
"""

import json
import warnings

import numpy as np
import pytest

from repro.core.config import BalancedKMeansConfig
from repro.runtime.comm import make_comm
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
from repro.runtime.distsort import distributed_sort
from repro.spmv.distspmv import distributed_spmv

pytestmark = pytest.mark.process_backend

RANK_COUNTS = (1, 2, 4)
BLOCK_COUNTS = (3, 8)


def _pts(n=900, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


def _mesh(n=700, seed=0):
    from repro.mesh.rgg import rgg_mesh

    return rgg_mesh(n, dim=2, rng=seed)


class TestKMeansEquivalence:
    @pytest.mark.parametrize("nranks", RANK_COUNTS)
    @pytest.mark.parametrize("k", BLOCK_COUNTS)
    def test_bit_identical_partition(self, nranks, k):
        pts = _pts()
        virt = distributed_balanced_kmeans(pts, k=k, nranks=nranks, rng=7, backend="virtual")
        proc = distributed_balanced_kmeans(pts, k=k, nranks=nranks, rng=7, backend="process")
        np.testing.assert_array_equal(virt.assignment, proc.assignment)
        np.testing.assert_array_equal(virt.centers, proc.centers)
        assert virt.imbalance == proc.imbalance
        assert virt.iterations == proc.iterations
        assert virt.converged == proc.converged

    def test_weighted_equivalence(self):
        rng = np.random.default_rng(3)
        pts = rng.random((800, 2))
        w = rng.uniform(1.0, 5.0, 800)
        virt = distributed_balanced_kmeans(pts, k=5, nranks=4, weights=w, rng=1, backend="virtual")
        proc = distributed_balanced_kmeans(pts, k=5, nranks=4, weights=w, rng=1, backend="process")
        np.testing.assert_array_equal(virt.assignment, proc.assignment)
        np.testing.assert_array_equal(virt.centers, proc.centers)

    def test_warm_start_equivalence(self):
        pts = _pts(seed=5)
        cold = distributed_balanced_kmeans(pts, k=4, nranks=2, rng=2, backend="virtual")
        virt = distributed_balanced_kmeans(pts, k=4, nranks=2, rng=2,
                                           centers=cold.centers, backend="virtual")
        proc = distributed_balanced_kmeans(pts, k=4, nranks=2, rng=2,
                                           centers=cold.centers, backend="process")
        np.testing.assert_array_equal(virt.assignment, proc.assignment)
        np.testing.assert_array_equal(virt.centers, proc.centers)

    def test_no_sampling_config_equivalence(self):
        pts = _pts(seed=9)
        cfg = BalancedKMeansConfig(use_sampling=False)
        virt = distributed_balanced_kmeans(pts, k=6, nranks=3, config=cfg, rng=4, backend="virtual")
        proc = distributed_balanced_kmeans(pts, k=6, nranks=3, config=cfg, rng=4, backend="process")
        np.testing.assert_array_equal(virt.assignment, proc.assignment)
        np.testing.assert_array_equal(virt.centers, proc.centers)

    @pytest.mark.parametrize("nranks", RANK_COUNTS)
    @pytest.mark.parametrize("kernel_backend", ["numpy", "numba"])
    def test_incremental_engine_equivalence(self, nranks, kernel_backend):
        """{full, incremental} x {numpy, numba} x {virtual, process}: the
        incremental sweep engine changes no result on any backend.

        Integer weights keep every weight sum exact in float64, so even the
        delta-maintained block weights cannot drift; ``kernel_backend``
        "numba" silently degrades to numpy where numba is not installed
        (the combination is then covered by construction).
        """
        rng = np.random.default_rng(21)
        pts = rng.random((900, 2))
        w = rng.integers(1, 5, 900).astype(np.float64)
        runs = {}
        for use_incremental in (False, True):
            cfg = BalancedKMeansConfig(use_incremental=use_incremental,
                                       kernel_backend=kernel_backend)
            for backend in ("virtual", "process"):
                runs[(use_incremental, backend)] = distributed_balanced_kmeans(
                    pts, k=8, nranks=nranks, weights=w, rng=7, config=cfg, backend=backend
                )
        reference = runs[(False, "virtual")]
        for key, res in runs.items():
            np.testing.assert_array_equal(reference.assignment, res.assignment,
                                          err_msg=f"assignment diverged for {key}")
            np.testing.assert_array_equal(reference.centers, res.centers,
                                          err_msg=f"centers diverged for {key}")
            np.testing.assert_array_equal(reference.influence, res.influence,
                                          err_msg=f"influence diverged for {key}")
            assert reference.imbalance == res.imbalance, f"imbalance diverged for {key}"
            assert reference.iterations == res.iterations

    def test_process_ledger_is_measured(self):
        pts = _pts(n=400)
        proc = distributed_balanced_kmeans(pts, k=3, nranks=2, rng=0, backend="process")
        assert proc.measured and proc.backend == "process"
        assert proc.ledger.compute_seconds > 0
        assert proc.ledger.supersteps > 0
        assert "dispatch" in proc.ledger.collective_counts
        virt = distributed_balanced_kmeans(pts, k=3, nranks=2, rng=0, backend="virtual")
        assert not virt.measured and virt.backend == "virtual"
        assert "dispatch" not in virt.ledger.collective_counts


class TestSortEquivalence:
    @pytest.mark.parametrize("nranks", RANK_COUNTS)
    def test_keys_and_payload_bit_identical(self, nranks):
        rng = np.random.default_rng(11)
        keys = [rng.integers(0, 1 << 40, size=rng.integers(5, 60)) for _ in range(nranks)]
        payloads = [np.column_stack([kk.astype(np.float64), rng.random(kk.size)]) for kk in keys]
        with make_comm(nranks, backend="virtual") as vc:
            vkeys, vpay = distributed_sort(vc, [k.copy() for k in keys],
                                           [p.copy() for p in payloads])
        with make_comm(nranks, backend="process") as pc:
            pkeys, ppay = distributed_sort(pc, [k.copy() for k in keys],
                                           [p.copy() for p in payloads])
        assert len(vkeys) == len(pkeys) == nranks
        for r in range(nranks):
            np.testing.assert_array_equal(vkeys[r], pkeys[r])
            np.testing.assert_array_equal(vpay[r], ppay[r])

    @pytest.mark.parametrize("nranks", RANK_COUNTS)
    def test_no_payload_bit_identical(self, nranks):
        rng = np.random.default_rng(13)
        keys = [rng.random(20 + 7 * r) for r in range(nranks)]
        with make_comm(nranks, backend="virtual") as vc:
            vkeys, _ = distributed_sort(vc, [k.copy() for k in keys])
        with make_comm(nranks, backend="process") as pc:
            pkeys, _ = distributed_sort(pc, [k.copy() for k in keys])
        for r in range(nranks):
            np.testing.assert_array_equal(vkeys[r], pkeys[r])


class TestSpmvEquivalence:
    @pytest.mark.parametrize("nranks", RANK_COUNTS)
    @pytest.mark.parametrize("k", BLOCK_COUNTS)
    def test_product_bit_identical(self, nranks, k):
        mesh = _mesh()
        assignment = np.random.default_rng(1).integers(0, k, size=mesh.n)
        assignment[:k] = np.arange(k)  # every block non-empty
        x = np.random.default_rng(2).random(mesh.n)
        y_serial, t_serial = distributed_spmv(mesh, assignment, k, x)
        y_virt, t_virt = distributed_spmv(mesh, assignment, k, x,
                                          nranks=nranks, backend="virtual")
        y_proc, t_proc = distributed_spmv(mesh, assignment, k, x,
                                          nranks=nranks, backend="process")
        np.testing.assert_array_equal(y_serial, y_virt)
        np.testing.assert_array_equal(y_serial, y_proc)
        assert t_serial == t_virt == t_proc  # modeled comm time: backend-independent
        np.testing.assert_allclose(y_proc, mesh.to_scipy() @ x)

    def test_measured_ledger_on_explicit_comm(self):
        mesh = _mesh(300)
        k = 4
        assignment = np.random.default_rng(0).integers(0, k, size=mesh.n)
        x = np.random.default_rng(1).random(mesh.n)
        with make_comm(2, backend="process") as comm:
            y, _ = distributed_spmv(mesh, assignment, k, x, comm=comm)
            assert comm.ledger.supersteps == 1
            assert comm.ledger.stages.get("spmv", 0.0) > 0
        np.testing.assert_allclose(y, mesh.to_scipy() @ x)


class TestMPIEquivalence:
    """MPI vs virtual bit-identity, through one real ``mpiexec -n 4`` launch.

    The launch runs :mod:`repro.runtime.mpi_main`'s ``equivalence`` command
    (which already self-checks in the driver) and dumps the MPI-side
    results; this side *independently* recomputes the identical cases on
    the virtual backend — same case definitions, imported from
    ``mpi_main`` — and demands bit-identical assignments, centers,
    imbalance, sorted orders, and SpMV outputs for every rank count.
    """

    pytestmark = pytest.mark.mpi_backend

    @pytest.fixture(scope="class")
    def mpi_results(self, mpiexec_run, tmp_path_factory):
        out = tmp_path_factory.mktemp("mpi-equivalence") / "results.json"
        res = mpiexec_run(
            4,
            ["-m", "repro.runtime.mpi_main", "equivalence",
             "--ranks", "1", "2", "4", "--json", str(out)],
        )
        assert res.returncode == 0, f"mpiexec equivalence run failed:\n{res.stdout}\n{res.stderr}"
        assert "PASS" in res.stdout
        return json.loads(out.read_text())

    @pytest.mark.parametrize("nranks", RANK_COUNTS)
    def test_bit_identical_to_virtual(self, mpi_results, nranks):
        from repro.runtime.mpi_main import compare_cases, equivalence_cases

        got = mpi_results[str(nranks)]
        assert got["_backend"] == "mpi" and got["_measured"] is True
        assert got["_supersteps"] > 0
        reference = equivalence_cases(nranks, backend="virtual")
        assert compare_cases(got, reference, label=f"p={nranks}: ") == []


class TestKernelBackendEquivalence:
    """The kernel-backend equivalence gate (tentpole acceptance).

    Every *available* kernel backend must reproduce the numpy partition
    through the distributed runtime.  ``numpy`` and ``numba`` share the
    numpy namespace and must be bit-identical; the torch backends share the
    elementwise numerics but not the matmul accumulation order, so the gate
    for them is: identical assignments, identical block weights, centers
    within 1e-9.  Unavailable backends degrade to an available one (with a
    warning) and are covered by construction.
    """

    KERNEL_BACKENDS = ("numpy", "numba", "torch-cpu", "torch-cuda")

    @staticmethod
    def _is_exact(kernel_backend):
        from repro.core.xp import resolve_kernel_backend

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return resolve_kernel_backend(kernel_backend) in ("numpy", "numba")

    @pytest.mark.parametrize("nranks", (1, 4))
    @pytest.mark.parametrize("kernel_backend", KERNEL_BACKENDS)
    def test_matches_numpy_partition(self, nranks, kernel_backend):
        rng = np.random.default_rng(17)
        pts = rng.random((900, 2))
        w = rng.integers(1, 5, 900).astype(np.float64)
        k = 8
        ref = distributed_balanced_kmeans(
            pts, k=k, nranks=nranks, weights=w, rng=7,
            config=BalancedKMeansConfig(kernel_backend="numpy"), backend="virtual")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # fallback notices
            got = distributed_balanced_kmeans(
                pts, k=k, nranks=nranks, weights=w, rng=7,
                config=BalancedKMeansConfig(kernel_backend=kernel_backend),
                backend="virtual")
        np.testing.assert_array_equal(ref.assignment, got.assignment)
        for b in range(k):  # integer weights: block weights exactly equal
            assert w[ref.assignment == b].sum() == w[got.assignment == b].sum()
        if self._is_exact(kernel_backend):
            np.testing.assert_array_equal(ref.centers, got.centers)
            assert ref.imbalance == got.imbalance
        else:
            np.testing.assert_allclose(ref.centers, got.centers, rtol=1e-9, atol=1e-12)
            assert abs(ref.imbalance - got.imbalance) < 1e-9
        assert ref.iterations == got.iterations

    @pytest.mark.parametrize("kernel_backend", KERNEL_BACKENDS)
    def test_process_backend_ranks_agree(self, kernel_backend):
        """Kernel backends compose with the process execution backend: each
        worker rank resolves the same engine and the combined result still
        matches the numpy/virtual reference."""
        pts = _pts(n=600, seed=23)
        ref = distributed_balanced_kmeans(
            pts, k=5, nranks=2, rng=9,
            config=BalancedKMeansConfig(kernel_backend="numpy"), backend="virtual")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            got = distributed_balanced_kmeans(
                pts, k=5, nranks=2, rng=9,
                config=BalancedKMeansConfig(kernel_backend=kernel_backend),
                backend="process")
        np.testing.assert_array_equal(ref.assignment, got.assignment)
        if self._is_exact(kernel_backend):
            np.testing.assert_array_equal(ref.centers, got.centers)
        else:
            np.testing.assert_allclose(ref.centers, got.centers, rtol=1e-9, atol=1e-12)


class TestEnvSelection:
    def test_env_var_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        pts = _pts(n=300)
        res = distributed_balanced_kmeans(pts, k=3, nranks=2, rng=0)
        assert res.backend == "process" and res.measured
        monkeypatch.setenv("REPRO_BACKEND", "virtual")
        res_v = distributed_balanced_kmeans(pts, k=3, nranks=2, rng=0)
        np.testing.assert_array_equal(res.assignment, res_v.assignment)

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        pts = _pts(n=300)
        res = distributed_balanced_kmeans(pts, k=3, nranks=2, rng=0, backend="virtual")
        assert res.backend == "virtual"
