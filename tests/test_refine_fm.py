"""Tests for the FM-style boundary refinement extension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.cut import edge_cut
from repro.metrics.imbalance import imbalance, is_balanced
from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.grid import grid_mesh
from repro.partitioners.base import get_partitioner
from repro.refine.fm import fm_refine


class TestInvariants:
    def test_cut_never_increases(self):
        mesh = delaunay_mesh(800, rng=0)
        a = get_partitioner("HSFC").partition_mesh(mesh, 8)
        refined, stats = fm_refine(mesh, a, 8)
        assert stats.cut_after <= stats.cut_before
        assert edge_cut(mesh, refined, 8) == stats.cut_after

    def test_balance_preserved(self):
        mesh = delaunay_mesh(800, rng=1)
        a = get_partitioner("RCB").partition_mesh(mesh, 8)
        refined, _ = fm_refine(mesh, a, 8, epsilon=0.03)
        assert is_balanced(refined, 8, 0.03, mesh.node_weights)

    def test_input_not_mutated(self):
        mesh = delaunay_mesh(300, rng=2)
        a = get_partitioner("HSFC").partition_mesh(mesh, 4)
        before = a.copy()
        fm_refine(mesh, a, 4)
        assert np.array_equal(a, before)

    def test_weighted_balance(self):
        mesh = delaunay_mesh(600, rng=3)
        rng = np.random.default_rng(4)
        mesh.node_weights[:] = rng.uniform(1.0, 5.0, mesh.n)
        a = get_partitioner("MultiJagged").partition_mesh(mesh, 6)
        refined, _ = fm_refine(mesh, a, 6, epsilon=0.05)
        assert imbalance(refined, 6, mesh.node_weights) <= 0.05 + 1e-9


class TestEffectiveness:
    def test_improves_hsfc_partitions(self):
        """SFC partitions have wrinkled boundaries — refinement smooths them."""
        mesh = delaunay_mesh(2000, rng=5)
        a = get_partitioner("HSFC").partition_mesh(mesh, 8)
        _, stats = fm_refine(mesh, a, 8, max_passes=5)
        assert stats.improvement > 0.05
        assert stats.moves > 0

    def test_optimal_partition_untouched(self):
        """A straight grid cut is locally optimal: nothing to move."""
        mesh = grid_mesh((8, 8))
        a = (mesh.coords[:, 0] >= 4).astype(np.int64)
        refined, stats = fm_refine(mesh, a, 2)
        assert stats.moves == 0
        assert np.array_equal(refined, a)

    def test_stats_improvement_property(self):
        mesh = delaunay_mesh(500, rng=6)
        a = get_partitioner("HSFC").partition_mesh(mesh, 4)
        _, stats = fm_refine(mesh, a, 4)
        assert 0.0 <= stats.improvement <= 1.0

    def test_repeated_refinement_converges(self):
        mesh = delaunay_mesh(700, rng=7)
        a = get_partitioner("HSFC").partition_mesh(mesh, 6)
        refined1, _ = fm_refine(mesh, a, 6, max_passes=10)
        refined2, stats2 = fm_refine(mesh, refined1, 6, max_passes=10)
        # a second full run finds little or nothing left
        assert stats2.improvement < 0.02


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), k=st.integers(2, 8))
def test_property_refinement_invariants(seed, k):
    mesh = delaunay_mesh(250, rng=seed)
    a = get_partitioner("HSFC").partition_mesh(mesh, k)
    eps = max(0.03, imbalance(a, k, mesh.node_weights))
    refined, stats = fm_refine(mesh, a, k, epsilon=eps)
    assert stats.cut_after <= stats.cut_before
    assert imbalance(refined, k, mesh.node_weights) <= eps + 1e-9
