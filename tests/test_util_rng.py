"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(8)
        b = ensure_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(8), ensure_rng(2).random(8))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(7)).random(4)
        b = ensure_rng(7).random(4)
        assert np.array_equal(a, b)

    def test_rejects_bad_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")
        with pytest.raises(TypeError):
            ensure_rng(3.14)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(16) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        a = [c.random(4) for c in spawn_rngs(9, 2)]
        b = [c.random(4) for c in spawn_rngs(9, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
