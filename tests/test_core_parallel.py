"""Tests for the threaded assignment backend."""

import numpy as np
import pytest

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.core.parallel import get_executor, resolve_threads, shutdown_executors


class TestResolve:
    def test_serial(self):
        assert resolve_threads(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_threads(0) >= 1

    def test_explicit(self):
        assert resolve_threads(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_threads(-1)


class TestExecutorCache:
    def test_serial_is_none(self):
        assert get_executor(1) is None

    def test_pool_reused(self):
        a = get_executor(2)
        b = get_executor(2)
        assert a is b
        shutdown_executors()

    def test_different_counts_different_pools(self):
        a = get_executor(2)
        b = get_executor(3)
        assert a is not b
        shutdown_executors()

    def test_stale_sizes_evicted(self):
        """Long-lived sessions must not leak one pool per distinct n_threads."""
        from repro.core import parallel

        shutdown_executors()
        pools = [get_executor(w) for w in (2, 3, 4, 5)]
        assert len(parallel._POOLS) <= parallel._MAX_POOLS
        # the least-recently-used pools were shut down, the newest survives
        assert pools[0]._shutdown and pools[1]._shutdown
        assert not pools[-1]._shutdown
        shutdown_executors()

    def test_lru_touch_keeps_pool_alive(self):
        shutdown_executors()
        a = get_executor(2)
        get_executor(3)
        assert get_executor(2) is a  # re-request marks it most recently used
        get_executor(4)  # evicts 3, not 2
        assert not a._shutdown
        shutdown_executors()

    def test_shutdown_idempotent_and_registered_atexit(self):
        import atexit

        shutdown_executors()
        shutdown_executors()  # second call is a no-op
        # re-registering the exact handler would be a bug magnet; make sure
        # the module-level registration survives (unregister returns None
        # regardless, but a registered callable can be unregistered once)
        atexit.unregister(shutdown_executors)
        atexit.register(shutdown_executors)


class TestThreadedKMeans:
    def test_identical_to_serial(self):
        """Same chunks, same kernels: threading must not change anything."""
        pts = np.random.default_rng(0).random((6000, 2))
        base = BalancedKMeansConfig(use_sampling=False, chunk_size=512)
        serial = balanced_kmeans(pts, 12, config=base, rng=1)
        threaded = balanced_kmeans(pts, 12, config=base.with_(n_threads=4), rng=1)
        assert np.array_equal(serial.assignment, threaded.assignment)
        assert np.allclose(serial.centers, threaded.centers)
        assert serial.iterations == threaded.iterations
        shutdown_executors()

    def test_threaded_weighted_3d(self):
        rng = np.random.default_rng(2)
        pts = rng.random((4000, 3))
        w = rng.uniform(1, 5, 4000)
        cfg = BalancedKMeansConfig(n_threads=2, chunk_size=256)
        res = balanced_kmeans(pts, 8, weights=w, config=cfg, rng=3)
        assert res.imbalance <= 0.031
        shutdown_executors()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BalancedKMeansConfig(n_threads=-2)

    def test_stats_consistent_under_threads(self):
        pts = np.random.default_rng(4).random((5000, 2))
        base = BalancedKMeansConfig(use_sampling=False, chunk_size=512)
        serial = balanced_kmeans(pts, 8, config=base, rng=5)
        threaded = balanced_kmeans(pts, 8, config=base.with_(n_threads=4), rng=5)
        assert serial.skip_fraction == pytest.approx(threaded.skip_fraction)
        shutdown_executors()
