"""Golden regression fixtures: frozen metric snapshots for fixed-seed runs.

Each test computes paper metrics (cut, imbalance, communication volume,
migration volume) for a small fixed-seed mesh and diffs them against the
JSON snapshots under ``tests/golden/``.  Future kernel or backend changes
that move any number show up as a diff of those files; refreeze
intentionally with ``pytest tests/test_golden_regression.py --update-golden``.
"""

import numpy as np
import pytest

from repro.mesh.registry import make_instance
from repro.metrics.commvolume import comm_volumes
from repro.metrics.cut import edge_cut
from repro.metrics.imbalance import imbalance
from repro.metrics.migration import migration_fraction, migration_volume
from repro.partitioners.base import get_partitioner
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans

K = 6
SEED = 0


def _partition_metrics(mesh, assignment):
    volumes = comm_volumes(mesh, assignment, K)
    return {
        "n": int(mesh.n),
        "m": int(mesh.m),
        "cut": int(edge_cut(mesh, assignment)),
        "imbalance": float(imbalance(assignment, K, mesh.node_weights)),
        "max_comm_vol": int(volumes.max()),
        "total_comm_vol": int(volumes.sum()),
        "blocks_used": int(np.unique(assignment).size),
    }


class TestGoldenPartitions:
    def test_geographer_on_rgg(self, golden):
        mesh = make_instance("rgg2d", scale=0.05, seed=SEED)
        result = get_partitioner("Geographer").partition_mesh(mesh, K, rng=SEED)
        golden("geographer_rgg2d", _partition_metrics(mesh, result.assignment))

    def test_geographer_on_structured_fem(self, golden):
        mesh = make_instance("333SP", scale=0.05, seed=SEED)
        result = get_partitioner("Geographer").partition_mesh(mesh, K, rng=SEED)
        golden("geographer_333sp", _partition_metrics(mesh, result.assignment))

    def test_distributed_run_on_rgg(self, golden):
        """The p=4 distributed run (any backend: results are bit-identical)."""
        mesh = make_instance("rgg2d", scale=0.05, seed=SEED)
        res = distributed_balanced_kmeans(mesh.coords, K, nranks=4,
                                          weights=mesh.node_weights, rng=SEED)
        metrics = _partition_metrics(mesh, res.assignment)
        metrics["iterations"] = int(res.iterations)
        metrics["converged"] = bool(res.converged)
        metrics["result_imbalance"] = float(res.imbalance)
        golden("distributed_rgg2d_p4", metrics)

    def test_migration_between_seeds(self, golden):
        """Migration volume between two fixed-seed partitions of one mesh."""
        mesh = make_instance("rgg2d", scale=0.05, seed=SEED)
        tool = get_partitioner("Geographer")
        first = tool.partition_mesh(mesh, K, rng=SEED)
        second = tool.partition_mesh(mesh, K, rng=SEED + 1)
        golden("migration_rgg2d", {
            "volume": float(migration_volume(first.assignment, second.assignment,
                                             mesh.node_weights)),
            "fraction": float(migration_fraction(first.assignment, second.assignment,
                                                 mesh.node_weights)),
        })


class TestGoldenMachinery:
    def test_missing_fixture_fails_with_hint(self, golden, request):
        if request.config.getoption("--update-golden"):
            pytest.skip("only meaningful when not updating")
        with pytest.raises(pytest.fail.Exception, match="--update-golden"):
            golden("does_not_exist", {"x": 1})
