"""Tests for influence adaptation (Eq. 1) and erosion (Eq. 2-3)."""

import numpy as np
import pytest

from repro.core.influence import adapt_influence, erode_influence, estimate_cluster_diameters


class TestAdaptInfluence:
    def test_oversized_block_loses_influence(self):
        """The paper's text: influence of oversized blocks is decreased."""
        infl = np.ones(2)
        current = np.array([150.0, 50.0])
        target = np.array([100.0, 100.0])
        out = adapt_influence(infl, current, target, dim=2)
        assert out[0] < 1.0  # oversized shrinks
        assert out[1] > 1.0  # undersized grows

    def test_expected_size_correction(self):
        """Uncapped, the update scales effective distance by (cur/tgt)^(1/d),
        i.e. expected volume by tgt/cur — exactly onto the target."""
        infl = np.ones(1)
        out = adapt_influence(infl, np.array([200.0]), np.array([100.0]), dim=2, cap=0.99)
        # factor = (100/200)^(1/2)
        assert out[0] == pytest.approx(np.sqrt(0.5))

    def test_cap_limits_change(self):
        infl = np.ones(2)
        out = adapt_influence(infl, np.array([1000.0, 1.0]), np.array([100.0, 100.0]), dim=2, cap=0.05)
        assert out[0] >= 0.95 - 1e-12
        assert out[1] <= 1.05 + 1e-12

    def test_empty_cluster_gets_max_boost(self):
        out = adapt_influence(np.ones(1), np.array([0.0]), np.array([100.0]), dim=2, cap=0.05)
        assert out[0] == pytest.approx(1.05)

    def test_balanced_is_noop(self):
        infl = np.array([0.8, 1.2])
        out = adapt_influence(infl, np.array([100.0, 100.0]), np.array([100.0, 100.0]), dim=3)
        assert np.allclose(out, infl)

    def test_floor_ceil_guard(self):
        out = adapt_influence(np.array([1e-9]), np.array([1000.0]), np.array([1.0]), dim=2,
                              cap=0.5, floor=1e-6, ceil=1e6)
        assert out[0] >= 1e-6

    def test_dimension_matters(self):
        """Same size error needs a smaller distance change in 3D than 2D."""
        cur, tgt = np.array([200.0]), np.array([100.0])
        f2 = adapt_influence(np.ones(1), cur, tgt, dim=2, cap=0.99)[0]
        f3 = adapt_influence(np.ones(1), cur, tgt, dim=3, cap=0.99)[0]
        assert f3 > f2  # 3D factor closer to 1

    def test_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            adapt_influence(np.ones(1), np.ones(1), np.zeros(1), dim=2)


class TestErosion:
    def test_no_movement_no_erosion(self):
        infl = np.array([0.5, 2.0])
        out = erode_influence(infl, np.zeros(2), mean_diameter=1.0)
        assert np.allclose(out, infl)

    def test_large_movement_resets_to_one(self):
        """Moving far beyond the mean diameter regresses influence to ~1."""
        infl = np.array([0.1, 10.0])
        out = erode_influence(infl, np.array([50.0, 50.0]), mean_diameter=1.0)
        assert np.all(np.abs(np.log(out)) < 0.1 * np.abs(np.log(infl)))

    def test_monotone_in_distance(self):
        infl = np.full(3, 4.0)
        out = erode_influence(infl, np.array([0.1, 1.0, 10.0]), mean_diameter=1.0)
        assert out[0] > out[1] > out[2] >= 1.0

    def test_erosion_direction_both_sides(self):
        """Influences above and below 1 both move towards 1."""
        out = erode_influence(np.array([0.25, 4.0]), np.array([1.0, 1.0]), mean_diameter=1.0)
        assert 0.25 < out[0] < 1.0
        assert 1.0 < out[1] < 4.0

    def test_zero_diameter_noop(self):
        infl = np.array([2.0])
        assert np.allclose(erode_influence(infl, np.array([1.0]), 0.0), infl)

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            erode_influence(np.ones(1), np.array([-1.0]), 1.0)


class TestDiameterEstimate:
    def test_uniform_disk(self):
        rng = np.random.default_rng(0)
        angles = rng.uniform(0, 2 * np.pi, 4000)
        radii = np.sqrt(rng.random(4000))  # uniform in unit disk
        pts = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        assign = np.zeros(4000, dtype=np.int64)
        centers = np.zeros((1, 2))
        est = estimate_cluster_diameters(pts, assign, centers)
        # rms radius of unit disk = 1/sqrt(2) -> estimate = sqrt(2) ~ 1.41 (true diameter 2)
        assert 1.2 < est[0] < 1.6

    def test_empty_cluster_zero(self):
        pts = np.random.default_rng(1).random((10, 2))
        assign = np.zeros(10, dtype=np.int64)
        est = estimate_cluster_diameters(pts, assign, np.zeros((2, 2)))
        assert est[1] == 0.0

    def test_weighted(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        assign = np.zeros(2, dtype=np.int64)
        centers = np.array([[0.0, 0.0]])
        heavy_far = estimate_cluster_diameters(pts, assign, centers, weights=np.array([1.0, 10.0]))
        heavy_near = estimate_cluster_diameters(pts, assign, centers, weights=np.array([10.0, 1.0]))
        assert heavy_far[0] > heavy_near[0]
