"""Tests for the topology-aware HierarchicalPartitioner."""

import numpy as np
import pytest

from repro.metrics.imbalance import imbalance
from repro.partitioners import (
    HierarchicalPartitioner,
    HierarchicalPartitionResult,
    factorize_blocks,
    get_partitioner,
)
from repro.runtime.costmodel import MachineTopology


def _cloud(n=3000, d=2, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestFactorize:
    def test_small(self):
        assert factorize_blocks(1) == (1,)
        assert factorize_blocks(7) == (7,)
        assert factorize_blocks(6) == (3, 2)

    def test_merges_to_max_levels(self):
        levels = factorize_blocks(24)
        assert len(levels) <= 3 and int(np.prod(levels)) == 24
        levels = factorize_blocks(8192)
        assert len(levels) <= 3 and int(np.prod(levels)) == 8192

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            factorize_blocks(0)


class TestConstruction:
    def test_from_topology(self):
        topo = MachineTopology(branching=(2, 3, 4))
        h = HierarchicalPartitioner(topology=topo)
        assert h.levels == (2, 3, 4) and h.total_blocks() == 24

    def test_levels_topology_conflict(self):
        with pytest.raises(ValueError):
            HierarchicalPartitioner(levels=(2, 2), topology=MachineTopology(branching=(2, 3)))

    def test_registered(self):
        h = get_partitioner("Hierarchical", levels=(2, 2))
        assert isinstance(h, HierarchicalPartitioner)

    def test_no_nested_hierarchy(self):
        with pytest.raises(ValueError):
            HierarchicalPartitioner(levels=(2, 2), inner=HierarchicalPartitioner(levels=(2,)))

    def test_k_mismatch(self):
        h = HierarchicalPartitioner(levels=(2, 3))
        with pytest.raises(ValueError):
            h.partition(_cloud(500), 7)


class TestAcceptance:
    """The ISSUE 1 acceptance scenario: k = 2 x 3 x 4 -> flat 24-way."""

    def test_2x3x4_meets_flat_epsilon(self):
        pts = _cloud(n=4000, seed=1)
        epsilon = 0.03
        h = HierarchicalPartitioner(levels=(2, 3, 4))
        res = h.partition(pts, rng=0, epsilon=epsilon)
        assert isinstance(res, HierarchicalPartitionResult)
        assert res.k == 24
        assert set(np.unique(res.assignment)) == set(range(24))
        # the flat 24-way partition meets the same epsilon as a flat call
        assert res.imbalance <= epsilon + 1e-9
        assert imbalance(res.assignment, 24) <= epsilon + 1e-9

    def test_per_level_labels_exposed(self):
        pts = _cloud(n=4000, seed=1)
        res = HierarchicalPartitioner(levels=(2, 3, 4)).partition(pts, rng=0)
        assert res.levels == (2, 3, 4)
        assert len(res.level_labels) == 3
        for labels, kl in zip(res.level_labels, res.levels):
            assert labels.shape == (4000,)
            assert set(np.unique(labels)) == set(range(kl))
        # mixed-radix combination of the per-level labels is the flat id
        flat = (res.level_labels[0] * 3 + res.level_labels[1]) * 4 + res.level_labels[2]
        assert np.array_equal(flat, res.assignment)
        assert np.array_equal(res.level_assignment(2), res.assignment)

    def test_every_level_is_balanced(self):
        pts = _cloud(n=4000, seed=2)
        res = HierarchicalPartitioner(levels=(2, 3, 4)).partition(pts, rng=0, epsilon=0.03)
        coarse_k = 1
        for level, kl in enumerate(res.levels):
            coarse_k *= kl
            assert imbalance(res.level_assignment(level), coarse_k) <= 0.03 + 1e-9


class TestInnerPartitioners:
    @pytest.mark.parametrize("inner", ["RCB", "MultiJagged", "HSFC"])
    def test_cutter_inner(self, inner):
        pts = _cloud(n=2000, seed=3)
        res = HierarchicalPartitioner(levels=(2, 3), inner=inner).partition(pts, rng=0)
        assert res.k == 6
        assert set(np.unique(res.assignment)) == set(range(6))
        assert res.imbalance <= 0.03 + 1e-9
        assert res.centers is None  # cutters expose no centers

    def test_geographer_inner_exposes_centers(self):
        pts = _cloud(n=2000, seed=4)
        res = HierarchicalPartitioner(levels=(2, 3)).partition(pts, rng=0)
        assert res.centers is not None and res.centers.shape == (6, 2)
        assert () in res.node_centers  # root node
        assert res.node_centers[()].shape == (2, 2)

    def test_default_factorization_used_without_levels(self):
        pts = _cloud(n=2000, seed=5)
        res = HierarchicalPartitioner().partition(pts, 12, rng=0)
        assert res.k == 12
        assert int(np.prod(res.levels)) == 12 and len(res.levels) > 1

    def test_heterogeneous_targets_respected(self):
        pts = _cloud(n=3000, seed=6)
        targets = np.array([3.0, 1.0, 1.0, 1.0])  # first block 3x capacity
        res = HierarchicalPartitioner(levels=(2, 2)).partition(
            pts, rng=0, target_weights=targets)
        shares = res.block_weights / res.block_weights.sum()
        assert np.all(np.abs(shares - targets / targets.sum()) < 0.05)


class TestHierarchicalRepartition:
    def test_warm_repartition_converges_faster(self):
        from repro.core.config import BalancedKMeansConfig
        from repro.partitioners.geographer import GeographerPartitioner

        inner = GeographerPartitioner(BalancedKMeansConfig(use_sampling=False))
        h = HierarchicalPartitioner(levels=(2, 3), inner=inner)
        rng = np.random.default_rng(7)
        pts = rng.random((2500, 2))
        first = h.partition(pts, rng=0)
        moved = pts + rng.normal(0.0, 0.004, pts.shape)
        warm = h.repartition(first, moved, rng=1)
        cold = h.partition(moved, rng=1)
        assert warm.iterations < cold.iterations
        assert warm.imbalance <= 0.031

    def test_warm_repartition_low_migration(self):
        from repro.metrics.migration import migration_fraction

        h = HierarchicalPartitioner(levels=(2, 3))
        pts = _cloud(n=2000, seed=8)
        first = h.partition(pts, rng=0)
        warm = h.repartition(first, pts + 0.002, rng=1)
        assert migration_fraction(first, warm) < 0.25

    def test_migration_stays_local_in_topology(self):
        """Most migrated weight moves within islands, not across them."""
        from repro.mesh.adaptive import refinement_sequence
        from repro.metrics.migration import migration_fraction

        mesh, moved = refinement_sequence(1500, steps=4, rng=0)[:2]
        h = HierarchicalPartitioner(levels=(2, 3, 4))
        first = h.partition_mesh(mesh, rng=0)
        warm = h.repartition_mesh(first, moved, rng=1)
        island = migration_fraction(first.level_assignment(0), warm.level_assignment(0),
                                    weights=moved.node_weights)
        flat = migration_fraction(first, warm, weights=moved.node_weights)
        assert island < 0.6 * flat

    def test_cold_fallback_with_cutter_inner(self):
        h = HierarchicalPartitioner(levels=(2, 2), inner="RCB")
        pts = _cloud(n=1000, seed=9)
        first = h.partition(pts, rng=0)
        again = h.repartition(first, pts, rng=0)  # no centers -> cold, same result
        assert np.array_equal(first.assignment, again.assignment)
