"""Common entry point for space-filling-curve indices on float point sets."""

from __future__ import annotations

import numpy as np

from repro.sfc.hilbert import hilbert_index
from repro.sfc.morton import morton_index
from repro.util.validation import check_points

__all__ = ["normalize_to_cells", "sfc_index", "DEFAULT_BITS"]

# bits*d <= 62; these defaults give ample resolution for millions of points.
DEFAULT_BITS = {2: 24, 3: 16}

_CURVES = {"hilbert": hilbert_index, "morton": morton_index}


def normalize_to_cells(
    points: np.ndarray,
    bits: int,
    box: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Map float points to integer grid cells in ``[0, 2**bits)`` per dim.

    Normalisation is by the point set's own bounding box, or by an explicit
    ``box = (lo, hi)`` — the distributed runtime passes the *global* box so
    every rank indexes consistently.  Degenerate dimensions map to cell 0.
    """
    pts = check_points(points)
    if box is None:
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
    else:
        lo = np.asarray(box[0], dtype=np.float64)
        hi = np.asarray(box[1], dtype=np.float64)
    extent = hi - lo
    extent = np.where(extent == 0.0, 1.0, extent)
    scale = (1 << bits) / extent
    cells = ((pts - lo) * scale).astype(np.int64)
    np.clip(cells, 0, (1 << bits) - 1, out=cells)
    return cells


def sfc_index(
    points: np.ndarray,
    curve: str = "hilbert",
    bits: int | None = None,
    box: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Space-filling-curve index for each point.

    Parameters
    ----------
    points:
        ``(n, d)`` float array, d in {2, 3}.
    curve:
        ``"hilbert"`` (default, used by Geographer) or ``"morton"``.
    bits:
        Grid resolution per dimension; defaults to :data:`DEFAULT_BITS`.
    box:
        Optional ``(lo, hi)`` normalisation box (for distributed indexing).
    """
    pts = check_points(points)
    if curve not in _CURVES:
        raise ValueError(f"unknown curve {curve!r}; choose from {sorted(_CURVES)}")
    if bits is None:
        bits = DEFAULT_BITS[pts.shape[1]]
    cells = normalize_to_cells(pts, bits, box=box)
    return _CURVES[curve](cells, bits)
