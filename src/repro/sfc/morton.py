"""Morton (Z-order) curve indexing.

Included as an ablation alternative to the Hilbert curve: Morton order is
cheaper to compute but has worse locality (jumps across the domain), which
shows up as worse initial-center spread and larger SFC-partition surfaces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_index", "morton_cell"]

_MAX_TOTAL_BITS = 62


def morton_index(cells: np.ndarray, bits: int) -> np.ndarray:
    """Z-order index of integer grid cells: bit-interleave of coordinates.

    Same contract as :func:`repro.sfc.hilbert.hilbert_index`.
    """
    cells = np.atleast_2d(np.asarray(cells))
    if not np.issubdtype(cells.dtype, np.integer):
        raise TypeError(f"cells must be integral, got dtype {cells.dtype}")
    dim = cells.shape[1]
    if bits < 1 or bits * dim > _MAX_TOTAL_BITS:
        raise ValueError(f"invalid bits={bits} for dim={dim}")
    limit = 1 << bits
    if cells.size and (cells.min() < 0 or cells.max() >= limit):
        raise ValueError(f"cell coordinates must lie in [0, {limit})")
    x = cells.astype(np.uint64)
    h = np.zeros(x.shape[0], dtype=np.uint64)
    for j in range(bits - 1, -1, -1):
        for i in range(dim):
            h = (h << np.uint64(1)) | ((x[:, i] >> np.uint64(j)) & np.uint64(1))
    return h.astype(np.int64)


def morton_cell(indices: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Inverse of :func:`morton_index`."""
    if bits < 1 or bits * dim > _MAX_TOTAL_BITS:
        raise ValueError(f"invalid bits={bits} for dim={dim}")
    idx = np.atleast_1d(np.asarray(indices)).astype(np.uint64)
    x = np.zeros((idx.shape[0], dim), dtype=np.uint64)
    pos = bits * dim
    for j in range(bits - 1, -1, -1):
        for i in range(dim):
            pos -= 1
            x[:, i] |= ((idx >> np.uint64(pos)) & np.uint64(1)) << np.uint64(j)
    return x.astype(np.int64)
