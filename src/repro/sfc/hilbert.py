"""Vectorised Hilbert-curve indexing in d = 2 or 3 dimensions.

Implementation of Skilling's transpose algorithm (J. Skilling, *Programming
the Hilbert curve*, AIP Conf. Proc. 707, 2004).  All operations are numpy
bit manipulations over the whole point array; the only Python loops run over
``bits x dim`` (a few dozen iterations), independent of the number of points.

The index of a cell ``(x_0, .., x_{d-1})`` with ``bits`` bits per coordinate
fits in ``bits * d`` bits; we require ``bits * d <= 62`` so results fit in
int64/uint64 without overflow.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hilbert_index", "hilbert_cell"]

_MAX_TOTAL_BITS = 62


def _check_args(dim: int, bits: int) -> None:
    if dim not in (2, 3):
        raise ValueError(f"Hilbert curve supports dim 2 or 3, got {dim}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if bits * dim > _MAX_TOTAL_BITS:
        raise ValueError(f"bits * dim = {bits * dim} exceeds {_MAX_TOTAL_BITS} (index would overflow uint64)")


def _axes_to_transpose(cells: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's AxesToTranspose, vectorised over the leading axis."""
    x = cells.astype(np.uint64, copy=True)
    dim = x.shape[1]
    m = 1 << (bits - 1)
    # Inverse undo excess work
    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            mask = (x[:, i] & q) != 0
            # invert: flip low bits of x[0]
            x[mask, 0] ^= p
            # exchange low bits of x[0] and x[i]
            nm = ~mask
            t = (x[nm, 0] ^ x[nm, i]) & p
            x[nm, 0] ^= t
            x[nm, i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, dim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(x.shape[0], dtype=np.uint64)
    q = m
    while q > 1:
        mask = (x[:, dim - 1] & q) != 0
        t[mask] ^= q - 1
        q >>= 1
    x ^= t[:, None]
    return x


def _transpose_to_axes(x: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's TransposeToAxes (inverse of :func:`_axes_to_transpose`)."""
    x = x.astype(np.uint64, copy=True)
    dim = x.shape[1]
    n = 2 << (bits - 1)
    # Gray decode by H ^ (H/2)
    t = x[:, dim - 1] >> 1
    for i in range(dim - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t
    # Undo excess work
    q = 2
    while q != n:
        p = q - 1
        for i in range(dim - 1, -1, -1):
            mask = (x[:, i] & q) != 0
            x[mask, 0] ^= p
            nm = ~mask
            tt = (x[nm, 0] ^ x[nm, i]) & p
            x[nm, 0] ^= tt
            x[nm, i] ^= tt
        q <<= 1
    return x


def _interleave(x: np.ndarray, bits: int) -> np.ndarray:
    """Pack the transposed form into a scalar index, MSB-first interleave."""
    dim = x.shape[1]
    h = np.zeros(x.shape[0], dtype=np.uint64)
    for j in range(bits - 1, -1, -1):
        for i in range(dim):
            h = (h << np.uint64(1)) | ((x[:, i] >> np.uint64(j)) & np.uint64(1))
    return h


def _deinterleave(h: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Unpack a scalar index into the transposed form (inverse of interleave)."""
    h = h.astype(np.uint64, copy=False)
    x = np.zeros((h.shape[0], dim), dtype=np.uint64)
    pos = bits * dim
    for j in range(bits - 1, -1, -1):
        for i in range(dim):
            pos -= 1
            x[:, i] |= ((h >> np.uint64(pos)) & np.uint64(1)) << np.uint64(j)
    return x


def hilbert_index(cells: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert index of integer grid cells.

    Parameters
    ----------
    cells:
        ``(n, d)`` integer array with entries in ``[0, 2**bits)``; d in {2, 3}.
    bits:
        Grid resolution per dimension.

    Returns
    -------
    ``(n,)`` int64 array of Hilbert indices in ``[0, 2**(bits*d))``.
    """
    cells = np.atleast_2d(np.asarray(cells))
    if not np.issubdtype(cells.dtype, np.integer):
        raise TypeError(f"cells must be integral, got dtype {cells.dtype}")
    dim = cells.shape[1]
    _check_args(dim, bits)
    limit = 1 << bits
    if cells.size and (cells.min() < 0 or cells.max() >= limit):
        raise ValueError(f"cell coordinates must lie in [0, {limit}), got range [{cells.min()}, {cells.max()}]")
    transposed = _axes_to_transpose(cells, bits)
    return _interleave(transposed, bits).astype(np.int64)


def hilbert_cell(indices: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Inverse mapping: Hilbert index back to integer grid cell.

    Returns an ``(n, d)`` int64 array. ``hilbert_cell(hilbert_index(c, b), b, d) == c``.
    """
    _check_args(dim, bits)
    idx = np.atleast_1d(np.asarray(indices))
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"indices must be integral, got dtype {idx.dtype}")
    limit = 1 << (bits * dim)
    if idx.size and (idx.min() < 0 or idx.max() >= limit):
        raise ValueError(f"indices must lie in [0, {limit})")
    transposed = _deinterleave(idx.astype(np.uint64), bits, dim)
    return _transpose_to_axes(transposed, bits).astype(np.int64)
