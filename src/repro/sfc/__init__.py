"""Space-filling curves (Hilbert, Morton) used for bootstrap and baselines.

Geographer's first phase sorts all points by Hilbert index to (a) redistribute
them so every rank owns a spatially compact chunk and (b) place the initial
k-means centers at equal intervals along the curve (paper §4.1, Algorithm 2
lines 4-7).  The pure-SFC partitioner baseline (``zoltanSFC``/``HSFC``) also
builds on these indices.
"""

from repro.sfc.hilbert import hilbert_cell, hilbert_index
from repro.sfc.morton import morton_cell, morton_index
from repro.sfc.curves import normalize_to_cells, sfc_index

__all__ = [
    "hilbert_index",
    "hilbert_cell",
    "morton_index",
    "morton_cell",
    "sfc_index",
    "normalize_to_cells",
]
