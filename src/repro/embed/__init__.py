"""Geometric embeddings for non-geometric graphs (the paper's §6 future work).

"Finding high-quality embeddings of non-geometric graphs into some geometric
space in a scalable manner is promising, too.  This preprocessing would allow
to apply Geographer to non-geometric graphs as well."  This package provides
that preprocessing (spectral embedding) plus the end-to-end pipeline
``partition_graph`` = embed + balanced k-means.
"""

from repro.embed.spectral import partition_graph, spectral_embedding

__all__ = ["spectral_embedding", "partition_graph"]
