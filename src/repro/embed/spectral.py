"""Spectral embedding + Geographer for graphs without coordinates.

The embedding uses the eigenvectors of the (symmetric normalised) graph
Laplacian belonging to the smallest non-trivial eigenvalues — the classic
spectral layout, which places strongly connected vertices close together.
Balanced k-means on those coordinates then yields a balanced partition whose
blocks follow the graph's cluster structure.

This is deliberately the *simple* instantiation of the paper's future-work
idea: it demonstrates the pipeline, not a scalable eigensolver.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import eigsh

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.core.result import KMeansResult
from repro.util.validation import check_k

__all__ = ["spectral_embedding", "partition_graph"]


def _as_adjacency(graph) -> sp.csr_matrix:
    """Accept a GeometricMesh, scipy sparse matrix, or networkx graph."""
    if hasattr(graph, "to_scipy"):  # GeometricMesh
        return graph.to_scipy()
    if sp.issparse(graph):
        adjacency = sp.csr_matrix(graph)
        adjacency = adjacency.maximum(adjacency.T)
        adjacency.setdiag(0)
        adjacency.eliminate_zeros()
        return adjacency
    try:
        import networkx as nx

        if isinstance(graph, nx.Graph):
            return sp.csr_matrix(nx.to_scipy_sparse_array(graph))
    except ImportError:  # pragma: no cover
        pass
    raise TypeError(f"unsupported graph type {type(graph)!r}")


def spectral_embedding(graph, dim: int = 2, tol: float = 1e-6) -> np.ndarray:
    """Coordinates from the first ``dim`` non-trivial Laplacian eigenvectors.

    Parameters
    ----------
    graph:
        :class:`~repro.mesh.graph.GeometricMesh`, scipy sparse adjacency, or
        networkx graph.  Must be connected (otherwise the trivial eigenspace
        is larger than one and coordinates degenerate).
    dim:
        Embedding dimension, 2 or 3 (what the partitioners support).

    Returns an ``(n, dim)`` float array scaled to the unit cube.
    """
    if dim not in (2, 3):
        raise ValueError(f"dim must be 2 or 3, got {dim}")
    adjacency = _as_adjacency(graph)
    n = adjacency.shape[0]
    if n < dim + 2:
        raise ValueError(f"graph too small for a {dim}-D embedding: n={n}")
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    if np.any(degrees == 0):
        raise ValueError("graph has isolated vertices; embed the largest component instead")
    inv_sqrt = sp.diags(1.0 / np.sqrt(degrees))
    lap = sp.identity(n, format="csr") - inv_sqrt @ adjacency @ inv_sqrt
    # smallest dim+1 eigenpairs; drop the trivial constant vector
    eigenvalues, eigenvectors = eigsh(lap, k=dim + 1, sigma=-1e-3, which="LM", tol=tol)
    order = np.argsort(eigenvalues)
    coords = eigenvectors[:, order[1 : dim + 1]]
    # degree-normalise back (D^{-1/2} u) and rescale to the unit cube
    coords = coords / np.sqrt(degrees)[:, None]
    lo = coords.min(axis=0)
    extent = coords.max(axis=0) - lo
    extent[extent == 0.0] = 1.0
    return (coords - lo) / extent


def partition_graph(
    graph,
    k: int,
    dim: int = 2,
    weights: np.ndarray | None = None,
    config: BalancedKMeansConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, KMeansResult]:
    """Embed a non-geometric graph and partition it with balanced k-means.

    Returns ``(embedding coordinates, KMeansResult)``; the assignment is in
    ``result.assignment``.
    """
    coords = spectral_embedding(graph, dim=dim)
    check_k(k, coords.shape[0])
    result = balanced_kmeans(coords, k, weights=weights, config=config, rng=rng)
    return coords, result
