"""Distance kernels for the balanced k-means assignment step.

The *effective distance* (paper §4.2) of point ``p`` to cluster ``c`` is

    eff(p, c) = dist(p, center(c)) / influence(c)

Assignment minimises the effective distance, which produces multiplicatively
weighted Voronoi regions.  All kernels are vectorised; the only Python-level
loop in the hot path is over chunks of points (to bound the ``chunk x k``
temporary).

Squared-space trick (the kernel-engine hot path): because ``sqrt`` is
monotone, ``argmin_c dist(p, c) / influence(c)`` equals
``argmin_c |p - c|^2 * influence(c)^-2``, so the top-2 reduction runs on the
squared-distance matrix scaled by the precomputed ``inv_influence_sq`` and
only the two *winning* columns per point are pushed through ``sqrt`` and the
division.  The winning values are computed with exactly the same elementwise
operations (``sqrt(sq) / influence``) as the full-matrix reference, so the
returned ``(assign, best, second)`` triple is bit-identical to
:func:`top2_effective_reference` whenever the selection is unambiguous (i.e.
outside exact floating-point ties, which have measure zero for continuous
inputs).

All sweep-invariant inputs (per-point squared norms, per-sweep center norms,
``influence ** -2``, scratch buffers) can be supplied by the caller — see
:class:`repro.core.kernels.SweepWorkspace` — and are recomputed on the fly
when omitted, keeping the standalone call signature unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_sq_distances",
    "pairwise_distances",
    "effective_distances",
    "top2_effective",
    "top2_effective_reference",
]


def pairwise_sq_distances(
    points: np.ndarray,
    centers: np.ndarray,
    p_sq: np.ndarray | None = None,
    c_sq: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Squared Euclidean distances, shape ``(n, k)``.

    Uses the expansion ``|p - c|^2 = |p|^2 - 2 p.c + |c|^2`` so the dominant
    cost is a single GEMM; negatives from floating-point cancellation are
    clipped to zero.

    ``p_sq`` / ``c_sq`` optionally supply precomputed squared norms (the
    kernel engine caches them per run / per sweep); ``out`` supplies a
    preallocated C-contiguous ``(n, k)`` buffer receiving the GEMM and all
    subsequent elementwise passes, eliminating per-chunk allocations.
    """
    p = np.asarray(points, dtype=np.float64)
    c = np.asarray(centers, dtype=np.float64)
    if p_sq is None:
        p_sq = np.einsum("ij,ij->i", p, p)
    if c_sq is None:
        c_sq = np.einsum("ij,ij->i", c, c)
    if out is None:
        sq = p_sq[:, None] - 2.0 * (p @ c.T) + c_sq[None, :]
    else:
        sq = np.dot(p, c.T, out=out)
        sq *= -2.0
        sq += p_sq[:, None]
        sq += c_sq[None, :]
    np.maximum(sq, 0.0, out=sq)
    return sq


def pairwise_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Euclidean distances, shape ``(n, k)``."""
    return np.sqrt(pairwise_sq_distances(points, centers))


def effective_distances(
    points: np.ndarray, centers: np.ndarray, influence: np.ndarray
) -> np.ndarray:
    """Effective distances ``dist(p, c) / influence(c)``, shape ``(n, k)``."""
    influence = np.asarray(influence, dtype=np.float64)
    if np.any(influence <= 0):
        raise ValueError("influence values must be strictly positive")
    return pairwise_distances(points, centers) / influence[None, :]


def top2_effective_reference(
    points: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    candidate_idx: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference top-2 reduction via the full effective-distance matrix.

    Materialises the dense ``sqrt``-and-divide matrix and reduces it with two
    masked ``argmin`` passes.  This is the golden path the squared-space
    kernel (:func:`top2_effective`) is property-tested against, and the
    "old path" timed by ``benchmarks/test_kernels_bench.py``.
    """
    if candidate_idx is not None:
        centers = centers[candidate_idx]
        influence = np.asarray(influence)[candidate_idx]
    eff = effective_distances(points, centers, influence)
    n, k = eff.shape
    if k == 1:
        assign = np.zeros(n, dtype=np.int64)
        best = eff[:, 0].copy()
        second = np.full(n, np.inf)
    else:
        assign = eff.argmin(axis=1).astype(np.int64)
        rows = np.arange(n)
        best = eff[rows, assign]
        eff[rows, assign] = np.inf
        second = eff[rows, eff.argmin(axis=1)]
    if candidate_idx is not None:
        assign = np.asarray(candidate_idx, dtype=np.int64)[assign]
    return assign, best, second


def top2_effective(
    points: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    candidate_idx: np.ndarray | None = None,
    *,
    p_sq: np.ndarray | None = None,
    c_sq: np.ndarray | None = None,
    inv_influence_sq: np.ndarray | None = None,
    sq_out: np.ndarray | None = None,
    scaled_out: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Best and second-best effective distance per point (squared-space kernel).

    Parameters
    ----------
    candidate_idx:
        Optional index array restricting the evaluated centers (produced by
        the bounding-box pruning rule).  Returned assignments are *global*
        center indices.
    p_sq, c_sq, inv_influence_sq:
        Optional cached geometry: per-point squared norms (aligned with
        ``points``), per-center squared norms and ``influence ** -2``
        (aligned with the *full* center set; sliced internally when
        ``candidate_idx`` is given).  Computed on the fly when omitted.
    sq_out, scaled_out:
        Optional preallocated C-contiguous scratch of shape ``>= (n, k)``
        for the squared-distance and scaled matrices (only used when no
        candidate subset is active, so the GEMM ``out=`` stays contiguous).

    Returns
    -------
    (assign, best, second):
        ``assign[i]`` is the argmin center, ``best[i]`` its effective
        distance, ``second[i]`` the runner-up distance (``inf`` when only one
        candidate exists).
    """
    influence = np.asarray(influence, dtype=np.float64)
    if inv_influence_sq is None:
        if np.any(influence <= 0):
            raise ValueError("influence values must be strictly positive")
        inv_influence_sq = influence**-2.0
    if candidate_idx is not None:
        centers = centers[candidate_idx]
        influence = influence[candidate_idx]
        inv_influence_sq = inv_influence_sq[candidate_idx]
        c_sq = None if c_sq is None else c_sq[candidate_idx]
        sq_out = scaled_out = None  # sliced GEMM output would not be contiguous
    n = np.asarray(points).shape[0]
    k = centers.shape[0]
    use_scratch = sq_out is not None and sq_out.shape[0] >= n and sq_out.shape[1] == k
    sq = pairwise_sq_distances(points, centers, p_sq=p_sq, c_sq=c_sq, out=sq_out[:n] if use_scratch else None)
    if k == 1:
        assign = np.zeros(n, dtype=np.int64)
        best = np.sqrt(sq[:, 0]) / influence[0]
        second = np.full(n, np.inf)
    else:
        if use_scratch and scaled_out is not None and scaled_out.shape[0] >= n and scaled_out.shape[1] == k:
            scaled = np.multiply(sq, inv_influence_sq[None, :], out=scaled_out[:n])
        else:
            scaled = sq * inv_influence_sq[None, :]
        assign = scaled.argmin(axis=1).astype(np.int64)
        rows = np.arange(n)
        best = np.sqrt(sq[rows, assign]) / influence[assign]
        scaled[rows, assign] = np.inf
        runner = scaled.argmin(axis=1)
        second = np.sqrt(sq[rows, runner]) / influence[runner]
    if candidate_idx is not None:
        assign = np.asarray(candidate_idx, dtype=np.int64)[assign]
    return assign, best, second
