"""Distance kernels for the balanced k-means assignment step.

The *effective distance* (paper §4.2) of point ``p`` to cluster ``c`` is

    eff(p, c) = dist(p, center(c)) / influence(c)

Assignment minimises the effective distance, which produces multiplicatively
weighted Voronoi regions.  All kernels are vectorised; the only Python-level
loop in the hot path is over chunks of points (to bound the ``chunk x k``
temporary).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_sq_distances",
    "pairwise_distances",
    "effective_distances",
    "top2_effective",
]


def pairwise_sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(n, k)``.

    Uses the expansion ``|p - c|^2 = |p|^2 - 2 p.c + |c|^2`` so the dominant
    cost is a single GEMM; negatives from floating-point cancellation are
    clipped to zero.
    """
    p = np.asarray(points, dtype=np.float64)
    c = np.asarray(centers, dtype=np.float64)
    p_sq = np.einsum("ij,ij->i", p, p)
    c_sq = np.einsum("ij,ij->i", c, c)
    sq = p_sq[:, None] - 2.0 * (p @ c.T) + c_sq[None, :]
    np.maximum(sq, 0.0, out=sq)
    return sq


def pairwise_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Euclidean distances, shape ``(n, k)``."""
    return np.sqrt(pairwise_sq_distances(points, centers))


def effective_distances(
    points: np.ndarray, centers: np.ndarray, influence: np.ndarray
) -> np.ndarray:
    """Effective distances ``dist(p, c) / influence(c)``, shape ``(n, k)``."""
    influence = np.asarray(influence, dtype=np.float64)
    if np.any(influence <= 0):
        raise ValueError("influence values must be strictly positive")
    return pairwise_distances(points, centers) / influence[None, :]


def top2_effective(
    points: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    candidate_idx: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Best and second-best effective distance per point.

    Parameters
    ----------
    candidate_idx:
        Optional index array restricting the evaluated centers (produced by
        the bounding-box pruning rule).  Returned assignments are *global*
        center indices.

    Returns
    -------
    (assign, best, second):
        ``assign[i]`` is the argmin center, ``best[i]`` its effective
        distance, ``second[i]`` the runner-up distance (``inf`` when only one
        candidate exists).
    """
    if candidate_idx is not None:
        centers = centers[candidate_idx]
        influence = np.asarray(influence)[candidate_idx]
    eff = effective_distances(points, centers, influence)
    k = eff.shape[1]
    if k == 1:
        assign = np.zeros(eff.shape[0], dtype=np.int64)
        best = eff[:, 0].copy()
        second = np.full(eff.shape[0], np.inf)
    else:
        part = np.argpartition(eff, 1, axis=1)[:, :2]
        rows = np.arange(eff.shape[0])
        d0 = eff[rows, part[:, 0]]
        d1 = eff[rows, part[:, 1]]
        swap = d1 < d0
        best = np.where(swap, d1, d0)
        second = np.where(swap, d0, d1)
        assign = np.where(swap, part[:, 1], part[:, 0]).astype(np.int64)
    if candidate_idx is not None:
        assign = np.asarray(candidate_idx, dtype=np.int64)[assign]
    return assign, best, second
