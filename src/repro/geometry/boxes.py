"""Axis-aligned bounding boxes.

The balanced k-means inner loop prunes cluster centers against the bounding
box of the (rank-)local points (paper §4.4): a center whose *minimum*
effective distance to the box exceeds the second-best candidate found so far
cannot win for any point inside the box.

Note on the paper's pseudocode: Algorithm 1 line 3 writes ``maxDist(bb, c)``
but the accompanying text (§4.4) requires the *minimum* effective distance
for the early-break to be conservative.  We implement the text's (correct)
variant; ``max_dist`` is also provided since the min/max pair gives the
box-pruning rule used by the vectorised assignment kernel (see
``core/assign.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundingBox", "block_bounds", "blocks_min_max_sq"]


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box ``[lo, hi]`` in d dimensions."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError(f"lo/hi must be 1-D arrays of equal shape, got {lo.shape} / {hi.shape}")
        if np.any(lo > hi):
            raise ValueError("BoundingBox requires lo <= hi componentwise")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BoundingBox":
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("from_points requires a non-empty (n, d) array")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def diagonal(self) -> float:
        return float(np.linalg.norm(self.extent))

    def widest_dimension(self) -> int:
        """Index of the longest side (RCB and MultiJagged cut along it)."""
        return int(np.argmax(self.extent))

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        return np.all((pts >= self.lo) & (pts <= self.hi), axis=-1)

    def min_sq_dist(self, points: np.ndarray) -> np.ndarray:
        """Squared distance from each query point to the nearest box point.

        Zero for points inside the box.  Vectorised over an ``(m, d)`` array.
        The squared form is what the box-pruning rule compares (sqrt is
        monotone, so pruning in squared space is exact and sqrt-free).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        below = np.maximum(self.lo - pts, 0.0)
        above = np.maximum(pts - self.hi, 0.0)
        return np.sum(below * below + above * above, axis=-1)

    def max_sq_dist(self, points: np.ndarray) -> np.ndarray:
        """Squared distance from each query point to the farthest box corner.

        The farthest corner is found per-dimension: it is whichever of
        ``lo``/``hi`` is farther from the query coordinate.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        d_lo = np.abs(pts - self.lo)
        d_hi = np.abs(pts - self.hi)
        farthest = np.maximum(d_lo, d_hi)
        return np.sum(farthest * farthest, axis=-1)

    def min_dist(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance from each query point to the nearest box point."""
        return np.sqrt(self.min_sq_dist(points))

    def max_dist(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance from each query point to the farthest box corner."""
        return np.sqrt(self.max_sq_dist(points))

    def split(self, dim: int, value: float) -> tuple["BoundingBox", "BoundingBox"]:
        """Split the box at ``value`` along axis ``dim`` (used by RCB/MJ)."""
        if not (self.lo[dim] <= value <= self.hi[dim]):
            raise ValueError(f"split value {value} outside box range [{self.lo[dim]}, {self.hi[dim]}] in dim {dim}")
        left_hi = self.hi.copy()
        left_hi[dim] = value
        right_lo = self.lo.copy()
        right_lo[dim] = value
        return BoundingBox(self.lo, left_hi), BoundingBox(right_lo, self.hi)

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))


def block_bounds(points: np.ndarray, block_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Bounding boxes of consecutive ``block_size`` slices of ``points``.

    Returns ``(lo, hi)`` arrays of shape ``(nblocks, d)`` where block ``b``
    covers rows ``[b * block_size, (b + 1) * block_size)``.  When the points
    are sorted along a space-filling curve these static blocks are spatially
    compact, so their boxes (computed once per run) can replace the per-sweep
    per-chunk boxes in the pruning rule.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("block_bounds requires a non-empty (n, d) array")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    starts = np.arange(0, pts.shape[0], block_size)
    lo = np.minimum.reduceat(pts, starts, axis=0)
    hi = np.maximum.reduceat(pts, starts, axis=0)
    return lo, hi


def blocks_min_max_sq(
    lo: np.ndarray, hi: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Squared min/max distances from every block box to every center.

    ``lo``/``hi`` are ``(nblocks, d)`` stacked box bounds; returns two
    ``(nblocks, k)`` arrays.  Computed once per center set (the influence
    scaling happens per sweep, outside this function).
    """
    c = np.asarray(centers, dtype=np.float64)
    below = np.maximum(lo[:, None, :] - c[None, :, :], 0.0)
    above = np.maximum(c[None, :, :] - hi[:, None, :], 0.0)
    min_sq = np.sum(below * below + above * above, axis=-1)
    farthest = np.maximum(np.abs(c[None, :, :] - lo[:, None, :]), np.abs(c[None, :, :] - hi[:, None, :]))
    max_sq = np.sum(farthest * farthest, axis=-1)
    return min_sq, max_sq
