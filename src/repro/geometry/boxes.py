"""Axis-aligned bounding boxes.

The balanced k-means inner loop prunes cluster centers against the bounding
box of the (rank-)local points (paper §4.4): a center whose *minimum*
effective distance to the box exceeds the second-best candidate found so far
cannot win for any point inside the box.

Note on the paper's pseudocode: Algorithm 1 line 3 writes ``maxDist(bb, c)``
but the accompanying text (§4.4) requires the *minimum* effective distance
for the early-break to be conservative.  We implement the text's (correct)
variant; ``max_dist`` is also provided since the min/max pair gives the
box-pruning rule used by the vectorised assignment kernel (see
``core/assign.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundingBox"]


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box ``[lo, hi]`` in d dimensions."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError(f"lo/hi must be 1-D arrays of equal shape, got {lo.shape} / {hi.shape}")
        if np.any(lo > hi):
            raise ValueError("BoundingBox requires lo <= hi componentwise")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BoundingBox":
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("from_points requires a non-empty (n, d) array")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def diagonal(self) -> float:
        return float(np.linalg.norm(self.extent))

    def widest_dimension(self) -> int:
        """Index of the longest side (RCB and MultiJagged cut along it)."""
        return int(np.argmax(self.extent))

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        return np.all((pts >= self.lo) & (pts <= self.hi), axis=-1)

    def min_dist(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance from each query point to the nearest box point.

        Zero for points inside the box.  Vectorised over an ``(m, d)`` array.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        below = np.maximum(self.lo - pts, 0.0)
        above = np.maximum(pts - self.hi, 0.0)
        return np.sqrt(np.sum(below * below + above * above, axis=-1))

    def max_dist(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance from each query point to the farthest box corner.

        The farthest corner is found per-dimension: it is whichever of
        ``lo``/``hi`` is farther from the query coordinate.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        d_lo = np.abs(pts - self.lo)
        d_hi = np.abs(pts - self.hi)
        farthest = np.maximum(d_lo, d_hi)
        return np.sqrt(np.sum(farthest * farthest, axis=-1))

    def split(self, dim: int, value: float) -> tuple["BoundingBox", "BoundingBox"]:
        """Split the box at ``value`` along axis ``dim`` (used by RCB/MJ)."""
        if not (self.lo[dim] <= value <= self.hi[dim]):
            raise ValueError(f"split value {value} outside box range [{self.lo[dim]}, {self.hi[dim]}] in dim {dim}")
        left_hi = self.hi.copy()
        left_hi[dim] = value
        right_lo = self.lo.copy()
        right_lo[dim] = value
        return BoundingBox(self.lo, left_hi), BoundingBox(right_lo, self.hi)

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))
