"""Geometric primitives: bounding boxes and (effective-)distance kernels."""

from repro.geometry.boxes import BoundingBox, block_bounds, blocks_min_max_sq
from repro.geometry.distances import (
    effective_distances,
    pairwise_distances,
    pairwise_sq_distances,
    top2_effective,
    top2_effective_reference,
)

__all__ = [
    "BoundingBox",
    "block_bounds",
    "blocks_min_max_sq",
    "pairwise_sq_distances",
    "pairwise_distances",
    "effective_distances",
    "top2_effective",
    "top2_effective_reference",
]
