"""Geometric primitives: bounding boxes and (effective-)distance kernels."""

from repro.geometry.boxes import BoundingBox
from repro.geometry.distances import (
    effective_distances,
    pairwise_distances,
    pairwise_sq_distances,
    top2_effective,
)

__all__ = [
    "BoundingBox",
    "pairwise_sq_distances",
    "pairwise_distances",
    "effective_distances",
    "top2_effective",
]
