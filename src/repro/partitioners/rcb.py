"""Recursive Coordinate Bisection (Berger & Bokhari 1987; Zoltan's RCB).

Repeatedly bisects the point set with an axis-aligned cut through the
weighted median along the currently longest box dimension.  For k not a
power of two the split ratio follows the block counts (k1 : k2 with
k1 = floor(k/2)), as Zoltan does.

Characteristic behaviour reproduced from the paper: perfectly balanced but
elongated, high-aspect-ratio blocks (Figure 1), and recursion depth
log2(k) makes it the slowest scaling baseline (Figures 3-4).
"""

from __future__ import annotations

import numpy as np

from repro.partitioners._split import weighted_split_position
from repro.partitioners.base import GeometricPartitioner, register_partitioner

__all__ = ["RCBPartitioner"]


@register_partitioner
class RCBPartitioner(GeometricPartitioner):
    name = "RCB"

    def _partition(self, points, k, weights, epsilon, rng, targets):
        assignment = np.empty(points.shape[0], dtype=np.int64)
        # worklist of (member indices, first block id, #blocks)
        stack = [(np.arange(points.shape[0], dtype=np.int64), 0, k)]
        while stack:
            members, block0, nblocks = stack.pop()
            if nblocks == 1:
                assignment[members] = block0
                continue
            k1 = nblocks // 2
            local = points[members]
            extent = local.max(axis=0) - local.min(axis=0)
            dim = int(np.argmax(extent))
            order = np.argsort(local[:, dim], kind="stable")
            # split at the blocks' share of the subtree's target capacity
            # (k1 : k2 for uniform targets, Zoltan-style)
            node_targets = targets[block0 : block0 + nblocks]
            fraction = node_targets[:k1].sum() / node_targets.sum()
            pos = weighted_split_position(weights[members][order], fraction)
            left = members[order[:pos]]
            right = members[order[pos:]]
            stack.append((left, block0, k1))
            stack.append((right, block0 + k1, nblocks - k1))
        return assignment
