"""MultiJagged multisection (Deveci, Rajamanickam, Devine, Catalyurek 2016).

Instead of recursive bisection, each recursion level cuts the current region
into ``p_i`` slabs at weighted-quantile positions along one dimension — a
*multisection*.  Block counts per slab may differ ("jagged"), which lets MJ
handle arbitrary k.  With roughly ``k^(1/d)`` slabs per level the recursion
depth is only ``d``, which is why MJ scales so much better than RCB/RIB in
the paper's Figures 3-4 while producing rectangles with bounded aspect ratio
(Figure 1).
"""

from __future__ import annotations

import numpy as np

from repro.partitioners._split import distribute_parts, weighted_quantile_positions
from repro.partitioners.base import GeometricPartitioner, register_partitioner

__all__ = ["MultiJaggedPartitioner"]


@register_partitioner
class MultiJaggedPartitioner(GeometricPartitioner):
    """MJ with widest-extent dimension selection per level.

    Parameters
    ----------
    parts_per_level:
        Optional explicit slab counts, e.g. ``(8, 8)`` for k=64 in 2-D.  By
        default each level uses ``round(k_remaining^(1/levels_remaining))``.
    """

    name = "MultiJagged"

    def __init__(self, parts_per_level: tuple[int, ...] | None = None) -> None:
        self.parts_per_level = parts_per_level

    def _slab_count(self, nblocks: int, levels_remaining: int, depth: int) -> int:
        if self.parts_per_level is not None:
            if depth < len(self.parts_per_level):
                return min(int(self.parts_per_level[depth]), nblocks)
            return nblocks
        if levels_remaining <= 1:
            return nblocks
        return max(2, min(nblocks, round(nblocks ** (1.0 / levels_remaining))))

    def _partition(self, points, k, weights, epsilon, rng, targets):
        dim = points.shape[1]
        assignment = np.empty(points.shape[0], dtype=np.int64)
        stack = [(np.arange(points.shape[0], dtype=np.int64), 0, k, 0)]
        while stack:
            members, block0, nblocks, depth = stack.pop()
            if nblocks == 1:
                assignment[members] = block0
                continue
            levels_remaining = max(1, dim - depth)
            nparts = self._slab_count(nblocks, levels_remaining, depth)
            counts = distribute_parts(nblocks, nparts)
            local = points[members]
            extent = local.max(axis=0) - local.min(axis=0)
            cut_dim = int(np.argmax(extent))
            order = np.argsort(local[:, cut_dim], kind="stable")
            sorted_members = members[order]
            # slab fractions follow the slabs' share of the subtree's targets
            node_targets = targets[block0 : block0 + nblocks]
            slab_targets = np.add.reduceat(node_targets, np.concatenate([[0], np.cumsum(counts[:-1])]))
            fractions = np.cumsum(slab_targets[:-1]) / node_targets.sum()
            cuts = weighted_quantile_positions(weights[sorted_members], fractions)
            bounds = np.concatenate([[0], cuts, [len(members)]])
            next_block = block0
            for s in range(nparts):
                slab = sorted_members[bounds[s] : bounds[s + 1]]
                stack.append((slab, next_block, int(counts[s]), depth + 1))
                next_block += int(counts[s])
        return assignment
