"""Shared splitting machinery for the recursive/jagged cutters.

All of RCB, RIB and MultiJagged reduce to: sort (a projection of) the points,
then cut the sorted order at weighted-quantile positions.  Centralising that
logic keeps the balance guarantees uniform: each split is off by at most one
point's weight from the ideal fraction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["weighted_split_position", "weighted_quantile_positions", "distribute_parts"]


def weighted_split_position(sorted_weights: np.ndarray, fraction: float) -> int:
    """Best index ``pos`` so that ``sorted_weights[:pos]`` holds ~``fraction`` of the total.

    Chooses between the two candidate cut points around the target so the
    achieved left-weight error is minimal.
    """
    if not (0.0 < fraction < 1.0):
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    cum = np.cumsum(sorted_weights)
    total = cum[-1]
    target = fraction * total
    pos = int(np.searchsorted(cum, target))
    # candidates: cut after pos or after pos+1 elements
    best_pos, best_err = 0, target  # cutting nothing leaves error = target
    for cand in (pos, pos + 1):
        if 0 < cand < len(sorted_weights) + 1 and cand <= len(sorted_weights):
            left = cum[cand - 1] if cand > 0 else 0.0
            err = abs(left - target)
            if err < best_err:
                best_pos, best_err = cand, err
    # never produce an empty side unless there is a single point
    best_pos = min(max(best_pos, 1), len(sorted_weights) - 1)
    return best_pos


def weighted_quantile_positions(sorted_weights: np.ndarray, fractions: np.ndarray) -> np.ndarray:
    """Cut positions splitting the sorted order at cumulative-weight fractions.

    ``fractions`` are strictly increasing values in (0, 1); returns one index
    per fraction.  Positions are made strictly increasing so no slab is empty
    when there are at least as many points as slabs.
    """
    cum = np.cumsum(sorted_weights)
    total = cum[-1]
    pos = np.searchsorted(cum, np.asarray(fractions) * total, side="left") + 1
    pos = np.minimum(pos, len(sorted_weights) - 1)
    # enforce strict monotonicity to avoid empty slabs
    for i in range(1, len(pos)):
        if pos[i] <= pos[i - 1]:
            pos[i] = pos[i - 1] + 1
    for i in range(len(pos) - 2, -1, -1):
        if pos[i] >= pos[i + 1]:
            pos[i] = pos[i + 1] - 1
    if len(pos) and (pos[0] < 1 or pos[-1] > len(sorted_weights) - 1):
        raise ValueError(f"cannot cut {len(sorted_weights)} points into {len(pos) + 1} non-empty slabs")
    return pos.astype(np.int64)


def distribute_parts(k: int, nparts: int) -> np.ndarray:
    """Distribute ``k`` final blocks over ``nparts`` slabs as evenly as possible.

    Returns ``(nparts,)`` positive integers summing to ``k`` (the "jagged"
    part of MultiJagged: slabs may carry different block counts).
    """
    if nparts < 1 or nparts > k:
        raise ValueError(f"need 1 <= nparts <= k, got nparts={nparts}, k={k}")
    base = k // nparts
    rem = k % nparts
    out = np.full(nparts, base, dtype=np.int64)
    out[:rem] += 1
    return out
