"""Partitioner interface and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.util.validation import check_epsilon, check_k, check_points, check_weights

__all__ = [
    "GeometricPartitioner",
    "register_partitioner",
    "get_partitioner",
    "available_partitioners",
]


class GeometricPartitioner(ABC):
    """Direct k-way partitioner of weighted point sets.

    Subclasses implement :meth:`_partition`; the public :meth:`partition`
    validates arguments and canonicalises inputs.  Partitioners are geometric:
    they see coordinates and weights only, never the adjacency (paper §2).
    """

    #: Name used in the paper's tables and the registry.
    name: str = "abstract"

    def partition(
        self,
        points: np.ndarray,
        k: int,
        weights: np.ndarray | None = None,
        epsilon: float = 0.03,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Partition ``points`` into ``k`` blocks; returns an ``(n,)`` assignment.

        Parameters
        ----------
        points:
            ``(n, d)`` coordinates, d in {2, 3}.
        k:
            Number of blocks (independent of any process count).
        weights:
            Optional per-point load; blocks balance total weight.
        epsilon:
            Balance tolerance: block weight <= (1 + epsilon) * ceil(W / k).
        rng:
            Seed or generator for the stochastic parts (ignored by
            deterministic partitioners).
        """
        pts = check_points(points)
        k = check_k(k, pts.shape[0])
        w = check_weights(weights, pts.shape[0])
        eps = check_epsilon(epsilon)
        if k == 1:
            return np.zeros(pts.shape[0], dtype=np.int64)
        assignment = self._partition(pts, k, w, eps, rng)
        assignment = np.ascontiguousarray(assignment, dtype=np.int64)
        if assignment.shape != (pts.shape[0],):
            raise AssertionError(f"{self.name}: bad assignment shape {assignment.shape}")
        return assignment

    def partition_mesh(
        self,
        mesh: GeometricMesh,
        k: int,
        epsilon: float = 0.03,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Partition a mesh using its coordinates and node weights."""
        return self.partition(mesh.coords, k, mesh.node_weights, epsilon, rng)

    @abstractmethod
    def _partition(
        self,
        points: np.ndarray,
        k: int,
        weights: np.ndarray,
        epsilon: float,
        rng: int | np.random.Generator | None,
    ) -> np.ndarray: ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, type[GeometricPartitioner]] = {}


def register_partitioner(cls: type[GeometricPartitioner]) -> type[GeometricPartitioner]:
    """Class decorator adding a partitioner to the global registry."""
    if not issubclass(cls, GeometricPartitioner):
        raise TypeError(f"{cls!r} is not a GeometricPartitioner")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate partitioner name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_partitioner(name: str, **kwargs) -> GeometricPartitioner:
    """Instantiate a registered partitioner by paper name (case-sensitive)."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown partitioner {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def available_partitioners() -> list[str]:
    return sorted(_REGISTRY)
