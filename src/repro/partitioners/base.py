"""Partitioner interface and registry.

Every partitioner maps a weighted point set to a k-way partition through one
of two entry points:

- :meth:`GeometricPartitioner.partition` — one-shot partitioning;
- :meth:`GeometricPartitioner.repartition` — incremental re-partitioning of
  a (possibly changed) point set given a previous result.  Center-based
  partitioners warm-start from the previous centers, which keeps block ids
  stable across calls and minimises migration in adaptive simulations;
  cutters fall back to a cold run.

Both return a :class:`~repro.partitioners.result.PartitionResult` carrying
the assignment plus block weights, targets, imbalance, timers and (when
available) centers.  Per-block ``target_weights`` make every partitioner
usable on heterogeneous machines and as a level inside
:class:`~repro.partitioners.hierarchical.HierarchicalPartitioner`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.partitioners.result import PartitionResult, normalize_targets
from repro.util.timers import StageTimer, Timer
from repro.util.validation import check_epsilon, check_k, check_points, check_weights

__all__ = [
    "GeometricPartitioner",
    "RawPartition",
    "register_partitioner",
    "get_partitioner",
    "available_partitioners",
]


class RawPartition(NamedTuple):
    """What ``_partition``/``_repartition`` hand back to the base class.

    Cutters return a bare assignment (the base wraps it); center-based
    partitioners attach centers and iteration diagnostics; hierarchical
    partitioners additionally carry their per-level structure so the base
    can build the richer result without any instance state.
    """

    assignment: np.ndarray
    centers: np.ndarray | None = None
    iterations: int = 0
    converged: bool = True
    timers: StageTimer | None = None
    structure: tuple | None = None  # (levels, level_labels, node_centers)


class GeometricPartitioner(ABC):
    """Direct k-way partitioner of weighted point sets.

    Subclasses implement :meth:`_partition` (and optionally
    :meth:`_repartition` with ``supports_warm_start = True``); the public
    entry points validate arguments, canonicalise inputs and wrap the outcome
    in a :class:`PartitionResult`.  Partitioners are geometric: they see
    coordinates and weights only, never the adjacency (paper §2).
    """

    #: Name used in the paper's tables and the registry.
    name: str = "abstract"

    #: Whether :meth:`repartition` can exploit previous centers.
    supports_warm_start: bool = False

    def partition(
        self,
        points: np.ndarray,
        k: int,
        weights: np.ndarray | None = None,
        epsilon: float = 0.03,
        rng: int | np.random.Generator | None = None,
        target_weights: np.ndarray | None = None,
    ) -> PartitionResult:
        """Partition ``points`` into ``k`` blocks.

        Parameters
        ----------
        points:
            ``(n, d)`` coordinates, d in {2, 3}.
        k:
            Number of blocks (independent of any process count).
        weights:
            Optional per-point load; blocks balance total weight.
        epsilon:
            Balance tolerance: block weight <= (1 + epsilon) * target.
        rng:
            Seed or generator for the stochastic parts (ignored by
            deterministic partitioners).
        target_weights:
            Optional ``(k,)`` per-block capacities (only ratios matter);
            defaults to uniform targets.

        Returns
        -------
        :class:`~repro.partitioners.result.PartitionResult`
        """
        pts, k, w, eps = self._check_args(points, k, weights, epsilon)
        targets = normalize_targets(target_weights, k, float(w.sum()))
        if k == 1:
            return self._finalize(RawPartition(np.zeros(pts.shape[0], dtype=np.int64)),
                                  k, w, eps, targets, elapsed=0.0)
        with Timer() as t:
            raw = self._partition(pts, k, w, eps, rng, targets)
        return self._finalize(raw, k, w, eps, targets, elapsed=t.elapsed)

    def repartition(
        self,
        previous: PartitionResult | np.ndarray,
        points: np.ndarray,
        k: int | None = None,
        weights: np.ndarray | None = None,
        epsilon: float = 0.03,
        rng: int | np.random.Generator | None = None,
        target_weights: np.ndarray | None = None,
    ) -> PartitionResult:
        """Re-partition a (possibly changed) point set given a previous result.

        ``points``/``weights`` may differ from the previous call — that is the
        adaptive-simulation scenario: the mesh refines, loads shift, and the
        partition must follow.  When the partitioner supports warm starts and
        ``previous`` carries centers of the right shape, they seed the new run,
        so convergence is faster and block ids stay stable (low migration
        volume, measured by :func:`repro.metrics.migration.migration_volume`).
        Otherwise this is a cold :meth:`partition`.

        ``k`` defaults to the previous result's block count.
        """
        if k is None:
            k = previous.k if isinstance(previous, PartitionResult) else int(np.asarray(previous).max()) + 1
        pts, k, w, eps = self._check_args(points, k, weights, epsilon)
        targets = normalize_targets(target_weights, k, float(w.sum()))
        warm = self._warm_centers(previous, k, pts.shape[1])
        if k == 1:
            return self._finalize(RawPartition(np.zeros(pts.shape[0], dtype=np.int64)),
                                  k, w, eps, targets, elapsed=0.0)
        with Timer() as t:
            if warm is not None:
                raw = self._repartition(pts, k, w, eps, rng, targets, warm)
            else:
                raw = self._partition(pts, k, w, eps, rng, targets)
        return self._finalize(raw, k, w, eps, targets, elapsed=t.elapsed)

    def partition_mesh(
        self,
        mesh: GeometricMesh,
        k: int,
        epsilon: float = 0.03,
        rng: int | np.random.Generator | None = None,
        target_weights: np.ndarray | None = None,
    ) -> PartitionResult:
        """Partition a mesh using its coordinates and node weights."""
        return self.partition(mesh.coords, k, mesh.node_weights, epsilon, rng,
                              target_weights=target_weights)

    def repartition_mesh(
        self,
        previous: PartitionResult | np.ndarray,
        mesh: GeometricMesh,
        k: int | None = None,
        epsilon: float = 0.03,
        rng: int | np.random.Generator | None = None,
        target_weights: np.ndarray | None = None,
    ) -> PartitionResult:
        """Re-partition a mesh given a previous result (warm start when possible)."""
        return self.repartition(previous, mesh.coords, k, mesh.node_weights, epsilon, rng,
                                target_weights=target_weights)

    # -- subclass hooks ----------------------------------------------------

    @abstractmethod
    def _partition(
        self,
        points: np.ndarray,
        k: int,
        weights: np.ndarray,
        epsilon: float,
        rng: int | np.random.Generator | None,
        targets: np.ndarray,
    ) -> RawPartition | np.ndarray: ...

    def _repartition(
        self,
        points: np.ndarray,
        k: int,
        weights: np.ndarray,
        epsilon: float,
        rng: int | np.random.Generator | None,
        targets: np.ndarray,
        centers: np.ndarray,
    ) -> RawPartition | np.ndarray:
        """Warm-started partitioning; only called when ``supports_warm_start``."""
        raise NotImplementedError(f"{self.name} does not support warm starts")

    # -- shared plumbing ----------------------------------------------------

    @staticmethod
    def _check_args(points, k, weights, epsilon):
        pts = check_points(points)
        k = check_k(k, pts.shape[0])
        w = check_weights(weights, pts.shape[0])
        eps = check_epsilon(epsilon)
        return pts, k, w, eps

    def _warm_centers(
        self, previous: PartitionResult | np.ndarray, k: int, dim: int
    ) -> np.ndarray | None:
        """Previous centers usable as a warm start, or ``None``."""
        if not self.supports_warm_start or not isinstance(previous, PartitionResult):
            return None
        centers = previous.centers
        if centers is None or centers.shape != (k, dim):
            return None
        return np.array(centers, dtype=np.float64, copy=True)

    def _finalize(
        self,
        raw: RawPartition | np.ndarray,
        k: int,
        weights: np.ndarray,
        epsilon: float,
        targets: np.ndarray,
        elapsed: float,
    ) -> PartitionResult:
        if not isinstance(raw, RawPartition):
            raw = RawPartition(np.asarray(raw))
        assignment = np.ascontiguousarray(raw.assignment, dtype=np.int64)
        if assignment.shape != (weights.shape[0],):
            raise AssertionError(f"{self.name}: bad assignment shape {assignment.shape}")
        block_weights = np.bincount(assignment, weights=weights, minlength=k)
        timers = raw.timers if raw.timers is not None else StageTimer()
        timers.add("partition", elapsed)
        return PartitionResult(
            assignment=assignment,
            k=k,
            block_weights=block_weights,
            target_weights=targets,
            imbalance=float((block_weights / targets).max() - 1.0),
            epsilon=epsilon,
            tool=self.name,
            centers=raw.centers,
            iterations=raw.iterations,
            converged=raw.converged,
            timers=timers,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, type[GeometricPartitioner]] = {}


def register_partitioner(cls: type[GeometricPartitioner]) -> type[GeometricPartitioner]:
    """Class decorator adding a partitioner to the global registry."""
    if not issubclass(cls, GeometricPartitioner):
        raise TypeError(f"{cls!r} is not a GeometricPartitioner")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate partitioner name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_partitioner(name: str, **kwargs) -> GeometricPartitioner:
    """Instantiate a registered partitioner by paper name (case-sensitive)."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown partitioner {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def available_partitioners() -> list[str]:
    return sorted(_REGISTRY)
