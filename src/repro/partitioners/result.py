"""Rich partition results returned by every partitioner.

A :class:`PartitionResult` carries the assignment together with the
diagnostics that repartitioning and hierarchical composition need: per-block
weights, the (normalised) per-block targets, the achieved imbalance, stage
timers, and — for center-based partitioners — the final cluster centers that
seed a warm restart.

The result quacks like the plain ``(n,)`` assignment array the partitioners
used to return: ``np.asarray(result)``, ``result[mask]``, ``result == b``,
``len(result)`` and ``result.shape`` all act on the assignment, so metrics
and downstream code accept either form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.timers import StageTimer
from repro.util.validation import normalize_targets

__all__ = ["PartitionResult", "HierarchicalPartitionResult", "normalize_targets"]


@dataclass(eq=False)
class PartitionResult:
    """Output of :meth:`GeometricPartitioner.partition` / ``repartition``.

    Attributes
    ----------
    assignment:
        ``(n,)`` int64 block ids in the caller's point order.
    k:
        Number of blocks.
    block_weights:
        ``(k,)`` achieved weight per block.
    target_weights:
        ``(k,)`` targets the run balanced against (sum equals total weight).
    imbalance:
        ``max(block_weights / target_weights) - 1`` — the smallest epsilon
        the partition satisfies against its targets.
    epsilon:
        Tolerance the run was asked for.
    tool:
        Registry name of the producing partitioner.
    centers:
        ``(k, d)`` cluster centers when the partitioner is center-based
        (Geographer and hierarchies thereof); ``None`` for the cutters.
        A later :meth:`~GeometricPartitioner.repartition` warm-starts here.
    iterations / converged:
        Iteration count and convergence flag when meaningful (0 / True for
        single-pass cutters).
    timers:
        Stage breakdown; always includes a ``"partition"`` total.
    """

    assignment: np.ndarray
    k: int
    block_weights: np.ndarray
    target_weights: np.ndarray
    imbalance: float
    epsilon: float
    tool: str
    centers: np.ndarray | None = None
    iterations: int = 0
    converged: bool = True
    timers: StageTimer = field(default_factory=StageTimer)

    # -- assignment-array duck typing -------------------------------------
    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if dtype is None or np.dtype(dtype) == self.assignment.dtype:
            return self.assignment if not copy else self.assignment.copy()
        return self.assignment.astype(dtype)

    def __len__(self) -> int:
        return self.assignment.shape[0]

    def __getitem__(self, item):
        return self.assignment[item]

    def __iter__(self):
        return iter(self.assignment)

    def __eq__(self, other):
        return self.assignment == np.asarray(other)

    def __ne__(self, other):
        return self.assignment != np.asarray(other)

    # __eq__ is elementwise (ndarray semantics), so hash by identity to keep
    # results usable as dict keys / set members
    __hash__ = object.__hash__

    def copy(self) -> np.ndarray:
        return self.assignment.copy()

    def astype(self, dtype, **kwargs) -> np.ndarray:
        return self.assignment.astype(dtype, **kwargs)

    def min(self, *args, **kwargs):
        return self.assignment.min(*args, **kwargs)

    def max(self, *args, **kwargs):
        return self.assignment.max(*args, **kwargs)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.assignment.shape

    @property
    def dtype(self) -> np.dtype:
        return self.assignment.dtype

    @property
    def n(self) -> int:
        return self.assignment.shape[0]

    def balanced(self, epsilon: float | None = None) -> bool:
        """Whether the partition meets ``epsilon`` (default: the requested one)."""
        eps = self.epsilon if epsilon is None else float(epsilon)
        return self.imbalance <= eps + 1e-12

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(tool={self.tool!r}, k={self.k}, n={self.n}, "
            f"imbalance={self.imbalance:.4f}, iterations={self.iterations}, "
            f"converged={self.converged})"
        )


@dataclass(eq=False, repr=False)
class HierarchicalPartitionResult(PartitionResult):
    """Flat partition plus the per-level structure that produced it.

    Attributes
    ----------
    levels:
        The factorisation ``(k1, k2, ...)`` with ``prod(levels) == k``.
    level_labels:
        One ``(n,)`` array per level: the block id *within* each point's
        level-``l`` parent (values in ``[0, levels[l])``).  The flat id is
        the mixed-radix combination of the per-level labels.
    node_centers:
        Centers of every recursion node keyed by its path (a tuple of
        per-level labels; the root is ``()``), when the inner partitioner
        exposes centers.  Feeds node-by-node warm restarts.
    """

    levels: tuple[int, ...] = ()
    level_labels: list[np.ndarray] = field(default_factory=list)
    node_centers: dict[tuple[int, ...], np.ndarray] = field(default_factory=dict)

    def level_assignment(self, level: int) -> np.ndarray:
        """Flat id of each point's ancestor block at ``level`` (coarse ids).

        ``level_assignment(len(levels) - 1)`` equals :attr:`assignment`.
        """
        if not (0 <= level < len(self.levels)):
            raise ValueError(f"level must be in [0, {len(self.levels)}), got {level}")
        out = np.zeros(self.n, dtype=np.int64)
        for l in range(level + 1):
            out = out * self.levels[l] + self.level_labels[l]
        return out
