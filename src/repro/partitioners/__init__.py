"""Geometric partitioners: Geographer plus the Zoltan-style baselines.

All partitioners implement the :class:`~repro.partitioners.base.GeometricPartitioner`
interface — ``partition`` for one-shot runs, ``repartition`` for warm-started
incremental runs — and return :class:`~repro.partitioners.result.PartitionResult`.
They are available through :func:`get_partitioner` by the names used in the
paper's tables (``Geographer``, ``RCB``, ``RIB``, ``MultiJagged``, ``HSFC``)
plus ``Hierarchical``, the topology-aware multi-level wrapper.
"""

from repro.partitioners.base import (
    GeometricPartitioner,
    RawPartition,
    available_partitioners,
    get_partitioner,
    register_partitioner,
)
from repro.partitioners.result import (
    HierarchicalPartitionResult,
    PartitionResult,
    normalize_targets,
)
from repro.partitioners.rcb import RCBPartitioner
from repro.partitioners.rib import RIBPartitioner
from repro.partitioners.multijagged import MultiJaggedPartitioner
from repro.partitioners.hsfc import HSFCPartitioner
from repro.partitioners.geographer import GeographerPartitioner
from repro.partitioners.hierarchical import HierarchicalPartitioner, factorize_blocks

__all__ = [
    "GeometricPartitioner",
    "PartitionResult",
    "HierarchicalPartitionResult",
    "RawPartition",
    "normalize_targets",
    "get_partitioner",
    "register_partitioner",
    "available_partitioners",
    "RCBPartitioner",
    "RIBPartitioner",
    "MultiJaggedPartitioner",
    "HSFCPartitioner",
    "GeographerPartitioner",
    "HierarchicalPartitioner",
    "factorize_blocks",
]
