"""Geometric partitioners: Geographer plus the Zoltan-style baselines.

All partitioners implement the :class:`~repro.partitioners.base.GeometricPartitioner`
interface and are available through :func:`get_partitioner` by the names used
in the paper's tables: ``Geographer``, ``RCB``, ``RIB``, ``MultiJagged``,
``HSFC``.
"""

from repro.partitioners.base import (
    GeometricPartitioner,
    available_partitioners,
    get_partitioner,
    register_partitioner,
)
from repro.partitioners.rcb import RCBPartitioner
from repro.partitioners.rib import RIBPartitioner
from repro.partitioners.multijagged import MultiJaggedPartitioner
from repro.partitioners.hsfc import HSFCPartitioner
from repro.partitioners.geographer import GeographerPartitioner

__all__ = [
    "GeometricPartitioner",
    "get_partitioner",
    "register_partitioner",
    "available_partitioners",
    "RCBPartitioner",
    "RIBPartitioner",
    "MultiJaggedPartitioner",
    "HSFCPartitioner",
    "GeographerPartitioner",
]
