"""Topology-aware hierarchical partitioning.

Given a factorisation ``k = k1 x k2 x ...`` — typically the branching of a
:class:`~repro.runtime.costmodel.MachineTopology` (islands → nodes → cores) —
the :class:`HierarchicalPartitioner` recursively applies any registered
partitioner: level 0 splits the point set into ``k1`` island-blocks, each of
which is split into ``k2`` node-blocks, and so on.  Points that share a
high-level block therefore share an island, so the heavy communication of a
simulation stays inside the cheap levels of the machine (cf. the per-level
reductions in :mod:`repro.runtime.distributed_kmeans`).

The flat assignment is the mixed-radix combination of the per-level labels;
both are exposed on the returned
:class:`~repro.partitioners.result.HierarchicalPartitionResult`, along with
per-node centers that let :meth:`repartition` warm-start every recursion node
independently.

Per-level balance: to meet a flat tolerance ``epsilon`` over ``L`` levels,
each level is run with ``(1 + epsilon)^(1/L) - 1`` so the per-level
imbalances compound to at most ``epsilon``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.partitioners.base import (
    GeometricPartitioner,
    RawPartition,
    get_partitioner,
    register_partitioner,
)
from repro.partitioners.result import (
    HierarchicalPartitionResult,
    PartitionResult,
    normalize_targets,
)
from repro.runtime.costmodel import MachineTopology
from repro.util.rng import ensure_rng
from repro.util.timers import StageTimer

__all__ = ["HierarchicalPartitioner", "factorize_blocks"]


def factorize_blocks(k: int, max_levels: int = 3) -> tuple[int, ...]:
    """Default factorisation of ``k`` into at most ``max_levels`` factors.

    Prime factors are merged greedily (smallest pair first) until at most
    ``max_levels`` remain, then sorted descending so coarse levels cut into
    fewer, larger blocks — e.g. ``24 -> (6, 2, 2)``, ``8192 -> (32, 16, 16)``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    factors: list[int] = []
    rest = k
    f = 2
    while f * f <= rest:
        while rest % f == 0:
            factors.append(f)
            rest //= f
        f += 1
    if rest > 1:
        factors.append(rest)
    if not factors:
        return (1,)
    while len(factors) > max_levels:
        factors.sort()
        factors[1] *= factors[0]
        factors.pop(0)
    return tuple(sorted(factors, reverse=True))


@register_partitioner
class HierarchicalPartitioner(GeometricPartitioner):
    """Recursive multi-level wrapper around any registered partitioner.

    Parameters
    ----------
    levels:
        Explicit factorisation ``(k1, k2, ...)``; ``partition`` may then be
        called with ``k = prod(levels)`` (or ``k=None`` to default to it).
    topology:
        Alternative to ``levels``: a machine hierarchy whose branching is the
        factorisation (one partitioning level per machine level).
    inner:
        Inner partitioner applied at every level — a registry name or an
        instance.  Defaults to ``Geographer``, which makes the hierarchy
        warm-startable node by node.
    inner_options:
        Constructor kwargs when ``inner`` is a name.
    """

    name = "Hierarchical"
    supports_warm_start = True

    def __init__(
        self,
        levels: tuple[int, ...] | None = None,
        topology: MachineTopology | None = None,
        inner: str | GeometricPartitioner = "Geographer",
        inner_options: dict | None = None,
    ) -> None:
        if levels is not None and topology is not None and tuple(levels) != topology.branching:
            raise ValueError(f"levels {tuple(levels)} contradict topology branching {topology.branching}")
        self.topology = topology
        if topology is not None:
            levels = topology.branching
        self.levels = tuple(int(l) for l in levels) if levels is not None else None
        if self.levels is not None and (not self.levels or any(l < 1 for l in self.levels)):
            raise ValueError(f"levels must be positive integers, got {self.levels}")
        if isinstance(inner, GeometricPartitioner):
            self.inner = inner
        else:
            self.inner = get_partitioner(inner, **(inner_options or {}))
        if isinstance(self.inner, HierarchicalPartitioner):
            raise ValueError("inner partitioner must be flat, not Hierarchical")

    # -- public entry points (k defaults to prod(levels)) -------------------

    def partition(self, points, k=None, weights=None, epsilon=0.03, rng=None,
                  target_weights=None) -> HierarchicalPartitionResult:
        if k is None:
            k = self.total_blocks()
        return super().partition(points, k, weights, epsilon, rng, target_weights=target_weights)

    def repartition(self, previous, points, k=None, weights=None, epsilon=0.03, rng=None,
                    target_weights=None) -> HierarchicalPartitionResult:
        if k is None and self.levels is not None:
            k = self.total_blocks()
        return super().repartition(previous, points, k, weights, epsilon, rng,
                                   target_weights=target_weights)

    def partition_mesh(self, mesh, k=None, epsilon=0.03, rng=None,
                       target_weights=None) -> HierarchicalPartitionResult:
        return self.partition(mesh.coords, k, mesh.node_weights, epsilon, rng,
                              target_weights=target_weights)

    def total_blocks(self) -> int:
        if self.levels is None:
            raise ValueError("HierarchicalPartitioner without fixed levels needs an explicit k")
        return math.prod(self.levels)

    def resolve_levels(self, k: int) -> tuple[int, ...]:
        """The factorisation used for ``k`` blocks."""
        if self.levels is not None:
            if math.prod(self.levels) != k:
                raise ValueError(f"k={k} does not match levels {self.levels} "
                                 f"(prod={math.prod(self.levels)})")
            return self.levels
        return factorize_blocks(k)

    # -- recursion -----------------------------------------------------------

    @staticmethod
    def _split_epsilon(epsilon: float, nlevels: int) -> list[float]:
        """Per-level tolerances whose compound meets the flat ``epsilon``.

        Imbalances multiply across levels, so the log-budget
        ``log(1 + epsilon)`` is split over the levels — weighted toward the
        leaves, where nodes hold the fewest points and per-point granularity
        makes tight balance hardest (level ``l`` gets share ``l + 1``).
        """
        shares = np.arange(1, nlevels + 1, dtype=np.float64)
        shares /= shares.sum()
        return [float(np.expm1(np.log1p(epsilon) * s)) for s in shares]

    def _partition(self, points, k, weights, epsilon, rng, targets):
        return self._recurse(points, k, weights, epsilon, rng, targets, warm=None)

    def _repartition(self, points, k, weights, epsilon, rng, targets, centers):
        # ``centers`` is the previous node-centers dict (see _warm_centers)
        return self._recurse(points, k, weights, epsilon, rng, targets, warm=centers)

    def _warm_centers(self, previous, k, dim):
        """Warm state for a repartition: the previous per-node centers."""
        if not isinstance(previous, HierarchicalPartitionResult):
            return None
        if previous.levels != self.resolve_levels(k) or not previous.node_centers:
            return None
        if not self.inner.supports_warm_start:
            return None
        return previous.node_centers

    def _recurse(self, points, k, weights, epsilon, rng, targets, warm):
        levels = self.resolve_levels(k)
        nlevels = len(levels)
        eps_levels = self._split_epsilon(epsilon, nlevels)
        gen = ensure_rng(rng)
        n = points.shape[0]

        assignment = np.zeros(n, dtype=np.int64)
        level_labels = [np.zeros(n, dtype=np.int64) for _ in levels]
        node_centers: dict[tuple[int, ...], np.ndarray] = {}
        flat_centers = np.full((k, points.shape[1]), np.nan)
        have_centers = True
        timers = StageTimer()
        iterations = 0
        converged = True

        # worklist of (member indices, level, flat block offset, node path)
        stack: list[tuple[np.ndarray, int, int, tuple[int, ...]]] = [
            (np.arange(n, dtype=np.int64), 0, 0, ())
        ]
        while stack:
            members, level, flat0, path = stack.pop()
            kl = levels[level]
            stride = math.prod(levels[level + 1:]) if level + 1 < nlevels else 1
            if kl == 1:
                labels = np.zeros(members.shape[0], dtype=np.int64)
                raw = RawPartition(labels)
            else:
                if members.shape[0] < kl:
                    raise ValueError(
                        f"cannot split {members.shape[0]} points into {kl} blocks at "
                        f"level {level} (node {path}); too few points for levels {levels}"
                    )
                sub_pts = points[members]
                sub_w = weights[members]
                # this node's per-child capacities: group the flat targets by subtree
                child_targets = targets[flat0 : flat0 + kl * stride].reshape(kl, stride).sum(axis=1)
                child_targets = normalize_targets(child_targets, kl, float(sub_w.sum()))
                warm_c = warm.get(path) if warm is not None else None
                if warm_c is not None and warm_c.shape == (kl, points.shape[1]):
                    raw = self.inner._repartition(sub_pts, kl, sub_w, eps_levels[level], gen,
                                                  child_targets, np.array(warm_c, copy=True))
                else:
                    raw = self.inner._partition(sub_pts, kl, sub_w, eps_levels[level], gen,
                                                child_targets)
                if not isinstance(raw, RawPartition):
                    raw = RawPartition(np.asarray(raw))
                labels = np.ascontiguousarray(raw.assignment, dtype=np.int64)
            level_labels[level][members] = labels
            iterations += raw.iterations
            converged = converged and raw.converged
            if raw.timers is not None:
                timers.merge(raw.timers)
            if raw.centers is not None:
                node_centers[path] = raw.centers
            if level == nlevels - 1:
                assignment[members] = flat0 + labels
                if raw.centers is not None:
                    flat_centers[flat0 : flat0 + kl] = raw.centers
                else:
                    have_centers = False
            else:
                for child in range(kl):
                    stack.append((members[labels == child], level + 1,
                                  flat0 + child * stride, path + (child,)))

        return RawPartition(
            assignment=assignment,
            centers=flat_centers if have_centers else None,
            iterations=iterations,
            converged=converged,
            timers=timers,
            structure=(levels, level_labels, node_centers),
        )

    def _finalize(self, raw, k, weights, epsilon, targets, elapsed) -> HierarchicalPartitionResult:
        structure = raw.structure if isinstance(raw, RawPartition) else None
        flat = super()._finalize(raw, k, weights, epsilon, targets, elapsed)
        # the trivial k == 1 path skips _recurse and carries no structure
        levels, level_labels, node_centers = structure or (
            (k,), [flat.assignment], {} if flat.centers is None else {(): flat.centers},
        )
        return HierarchicalPartitionResult(
            assignment=flat.assignment,
            k=flat.k,
            block_weights=flat.block_weights,
            target_weights=flat.target_weights,
            imbalance=flat.imbalance,
            epsilon=flat.epsilon,
            tool=flat.tool,
            centers=flat.centers,
            iterations=flat.iterations,
            converged=flat.converged,
            timers=flat.timers,
            levels=levels,
            level_labels=level_labels,
            node_centers=node_centers,
        )
