"""Geographer: SFC bootstrap + balanced k-means (the paper's partitioner).

Thin partitioner-interface wrapper around :func:`repro.core.balanced_kmeans`;
labelled ``Geographer`` (called ``geoKmeans`` in Figure 2's legend).
"""

from __future__ import annotations

import numpy as np

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.core.result import KMeansResult
from repro.partitioners.base import GeometricPartitioner, register_partitioner

__all__ = ["GeographerPartitioner"]


@register_partitioner
class GeographerPartitioner(GeometricPartitioner):
    """Balanced k-means partitioner.

    Parameters
    ----------
    config:
        Optional :class:`BalancedKMeansConfig`; the epsilon passed to
        :meth:`partition` overrides the config's epsilon.
    """

    name = "Geographer"

    def __init__(self, config: BalancedKMeansConfig | None = None) -> None:
        self.config = config or BalancedKMeansConfig()
        self.last_result: KMeansResult | None = None

    def _partition(self, points, k, weights, epsilon, rng):
        cfg = self.config if self.config.epsilon == epsilon else self.config.with_(epsilon=epsilon)
        result = balanced_kmeans(points, k, weights=weights, config=cfg, rng=rng)
        self.last_result = result
        return result.assignment
