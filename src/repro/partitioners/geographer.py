"""Geographer: SFC bootstrap + balanced k-means (the paper's partitioner).

Thin partitioner-interface wrapper around :func:`repro.core.balanced_kmeans`;
labelled ``Geographer`` (called ``geoKmeans`` in Figure 2's legend).  The only
partitioner with ``supports_warm_start``: :meth:`repartition` seeds the new
run from the previous centers, skipping the SFC bootstrap and the sampled
initialisation rounds — the incremental path adaptive simulations rely on.
"""

from __future__ import annotations


from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.core.result import KMeansResult
from repro.partitioners.base import GeometricPartitioner, RawPartition, register_partitioner

__all__ = ["GeographerPartitioner"]


@register_partitioner
class GeographerPartitioner(GeometricPartitioner):
    """Balanced k-means partitioner.

    Parameters
    ----------
    config:
        Optional :class:`BalancedKMeansConfig`; the epsilon passed to
        :meth:`partition` overrides the config's epsilon.
    """

    name = "Geographer"
    supports_warm_start = True

    def __init__(
        self,
        config: BalancedKMeansConfig | None = None,
        workspace=None,
        sfc_order=None,
    ) -> None:
        self.config = config or BalancedKMeansConfig()
        self.last_result: KMeansResult | None = None
        # warm-run state for long-lived callers (the service layer): a
        # SweepWorkspace + precomputed SFC order are forwarded to every
        # balanced_kmeans call.  Results are bit-identical with or without
        # them; the workspace is validated against each call's problem.
        self.workspace = workspace
        self.sfc_order = sfc_order

    def _config_for(self, epsilon: float) -> BalancedKMeansConfig:
        return self.config if self.config.epsilon == epsilon else self.config.with_(epsilon=epsilon)

    def _wrap(self, result: KMeansResult) -> RawPartition:
        self.last_result = result
        return RawPartition(
            assignment=result.assignment,
            centers=result.centers,
            iterations=result.iterations,
            converged=result.converged,
            timers=result.timers,
        )

    def _partition(self, points, k, weights, epsilon, rng, targets):
        result = balanced_kmeans(points, k, weights=weights, config=self._config_for(epsilon),
                                 rng=rng, target_weights=targets,
                                 workspace=self.workspace, sfc_order=self.sfc_order)
        return self._wrap(result)

    def _repartition(self, points, k, weights, epsilon, rng, targets, centers):
        # warm start: previous centers replace seeding, and the sampled
        # initialisation is pointless when centers are already near-optimal
        cfg = self._config_for(epsilon)
        if cfg.use_sampling:
            cfg = cfg.with_(use_sampling=False)
        result = balanced_kmeans(points, k, weights=weights, config=cfg, rng=rng,
                                 target_weights=targets, centers=centers,
                                 workspace=self.workspace, sfc_order=self.sfc_order)
        return self._wrap(result)
