"""Hilbert space-filling-curve partitioner (Zoltan's HSFC / "zoltanSFC").

Sort points by Hilbert index and cut the sorted order into k consecutive
chunks of (approximately) equal weight.  Extremely fast and trivially
balanced, but block boundaries follow the curve's staircase, giving the
"wrinkled boundaries" visible in the paper's Figure 1 and the weaker
communication-volume numbers in Figure 2 / Tables 1-2.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners._split import weighted_quantile_positions
from repro.partitioners.base import GeometricPartitioner, register_partitioner
from repro.sfc.curves import sfc_index

__all__ = ["HSFCPartitioner"]


@register_partitioner
class HSFCPartitioner(GeometricPartitioner):
    """SFC chunking partitioner.

    Parameters
    ----------
    curve:
        ``"hilbert"`` (default) or ``"morton"`` — the Morton variant exists
        for the curve-choice ablation.
    """

    name = "HSFC"

    def __init__(self, curve: str = "hilbert", bits: int | None = None) -> None:
        self.curve = curve
        self.bits = bits

    def _partition(self, points, k, weights, epsilon, rng, targets):
        index = sfc_index(points, curve=self.curve, bits=self.bits)
        order = np.argsort(index, kind="stable")
        fractions = np.cumsum(targets[:-1]) / targets.sum()
        cuts = weighted_quantile_positions(weights[order], fractions)
        assignment = np.empty(points.shape[0], dtype=np.int64)
        bounds = np.concatenate([[0], cuts, [points.shape[0]]])
        for b in range(k):
            assignment[order[bounds[b] : bounds[b + 1]]] = b
        return assignment
