"""Recursive Inertial Bisection (Taylor & Nour-Omid; Williams 1991; Zoltan's RIB).

Like RCB, but each bisection cuts orthogonally to the *principal inertial
axis* of the current point set (the direction of largest weighted variance),
so cuts adapt to the point cloud's orientation instead of the coordinate
axes.  The axis is the leading eigenvector of the weighted covariance matrix
(d <= 3, so the eigenproblem is trivial).
"""

from __future__ import annotations

import numpy as np

from repro.partitioners._split import weighted_split_position
from repro.partitioners.base import GeometricPartitioner, register_partitioner

__all__ = ["RIBPartitioner", "inertial_axis"]


def inertial_axis(points: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Leading eigenvector of the weighted covariance of ``points``.

    Falls back to the widest coordinate axis for degenerate clouds.
    """
    total = weights.sum()
    center = (weights[:, None] * points).sum(axis=0) / total
    centered = points - center
    cov = (weights[:, None] * centered).T @ centered / total
    eigvals, eigvecs = np.linalg.eigh(cov)
    axis = eigvecs[:, -1]
    if not np.all(np.isfinite(axis)) or np.linalg.norm(axis) == 0.0:
        extent = points.max(axis=0) - points.min(axis=0)
        axis = np.zeros(points.shape[1])
        axis[int(np.argmax(extent))] = 1.0
    return axis


@register_partitioner
class RIBPartitioner(GeometricPartitioner):
    name = "RIB"

    def _partition(self, points, k, weights, epsilon, rng, targets):
        assignment = np.empty(points.shape[0], dtype=np.int64)
        stack = [(np.arange(points.shape[0], dtype=np.int64), 0, k)]
        while stack:
            members, block0, nblocks = stack.pop()
            if nblocks == 1:
                assignment[members] = block0
                continue
            k1 = nblocks // 2
            local = points[members]
            axis = inertial_axis(local, weights[members])
            projection = local @ axis
            order = np.argsort(projection, kind="stable")
            node_targets = targets[block0 : block0 + nblocks]
            fraction = node_targets[:k1].sum() / node_targets.sum()
            pos = weighted_split_position(weights[members][order], fraction)
            stack.append((members[order[:pos]], block0, k1))
            stack.append((members[order[pos:]], block0 + k1, nblocks - k1))
        return assignment
