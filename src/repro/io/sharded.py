"""Chunked on-disk dataset format: ``.npy`` shards plus a JSON manifest.

A sharded dataset is a directory of plain ``.npy`` files — one points file
(and optionally one weights and one ids file) per fixed-size row chunk —
described by a ``manifest.json``:

.. code-block:: text

    dataset/
      manifest.json
      shard-000000.points.npy     (shard_rows, dim) float64
      shard-000000.weights.npy    (shard_rows,)     float64   [optional]
      shard-000000.ids.npy        (shard_rows,)     int64     [optional]
      shard-000001.points.npy
      ...

The manifest records the global row count, dimensionality, dtypes, the
per-shard row counts/offsets, a per-shard bounding box, and a SHA-256
digest per shard file; a manifest-level digest over all of that identifies
the dataset as a whole (it is what checkpoints store as ``data_digest``).

Design points:

- **Plain ``.npy`` shards** — every file opens with ``np.load(...,
  mmap_mode="r")``, so readers stream shard-at-a-time and never hold more
  than one shard's rows; no custom container, no extra dependency.
- **Exact bounding boxes** — elementwise min/max over any partition of the
  rows combine to exactly the global extremes, so the box assembled from
  per-shard boxes is bit-identical to the one an in-memory pass computes.
- **Crash-safe builds** — shards are written first, then a
  ``manifest.partial.json`` sidecar is atomically replaced after *each*
  completed shard; :meth:`ShardedDatasetWriter.resume` re-verifies the
  recorded shards and continues from the next row.  ``manifest.json``
  itself appears atomically at :meth:`~ShardedDatasetWriter.finalize`.
- **Tamper evidence** — :meth:`ShardedDataset.verify` recomputes every
  shard digest (streaming, block-wise) and raises :class:`ShardDigestError`
  on any mismatch.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "MANIFEST_NAME",
    "PARTIAL_MANIFEST_NAME",
    "ShardDigestError",
    "ShardInfo",
    "ShardedDataset",
    "ShardedDatasetWriter",
    "write_sharded",
]

FORMAT_NAME = "repro-sharded"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
PARTIAL_MANIFEST_NAME = "manifest.partial.json"
DEFAULT_SHARD_ROWS = 262_144
_DIGEST_BLOCK = 1 << 20  # 1 MiB read blocks for streaming digests


class ShardDigestError(RuntimeError):
    """A shard file's bytes do not match the digest the manifest records."""


def _file_digest(path: Path) -> str:
    """SHA-256 over a file's raw bytes, read in bounded blocks."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_DIGEST_BLOCK)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


@dataclass
class ShardInfo:
    """One shard's manifest entry."""

    name: str
    rows: int
    row_offset: int
    lo: list[float]
    hi: list[float]
    digests: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "rows": self.rows,
            "row_offset": self.row_offset,
            "bbox": {"lo": self.lo, "hi": self.hi},
            "digests": dict(self.digests),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ShardInfo":
        return cls(
            name=str(obj["name"]),
            rows=int(obj["rows"]),
            row_offset=int(obj["row_offset"]),
            lo=[float(x) for x in obj["bbox"]["lo"]],
            hi=[float(x) for x in obj["bbox"]["hi"]],
            digests={str(k): str(v) for k, v in obj["digests"].items()},
        )


def _manifest_digest(body: dict) -> str:
    """Digest over the identifying manifest fields (canonical JSON)."""
    core = {
        "format": body["format"],
        "version": body["version"],
        "n": body["n"],
        "dim": body["dim"],
        "dtype": body["dtype"],
        "has_weights": body["has_weights"],
        "has_ids": body["has_ids"],
        "shards": body["shards"],
    }
    blob = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _atomic_write_json(path: Path, body: dict) -> None:
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(body, fh, indent=1, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class ShardedDatasetWriter:
    """Incremental builder: feed row chunks of any size, get fixed shards.

    ``append`` buffers rows and flushes a shard every ``shard_rows`` rows;
    ``finalize`` flushes the remainder and atomically writes
    ``manifest.json``.  After every completed shard the partial manifest on
    disk is replaced, so an interrupted build is resumable via
    :meth:`resume` without rewriting finished shards.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        dim: int,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        with_weights: bool = False,
        with_ids: bool = False,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if shard_rows < 1:
            raise ValueError(f"shard_rows must be >= 1, got {shard_rows}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if (self.directory / MANIFEST_NAME).exists():
            raise FileExistsError(
                f"{self.directory} already holds a finalized sharded dataset"
            )
        self.dim = int(dim)
        self.shard_rows = int(shard_rows)
        self.with_weights = bool(with_weights)
        self.with_ids = bool(with_ids)
        self.shards: list[ShardInfo] = []
        self._rows_written = 0
        self._buf_pts: list[np.ndarray] = []
        self._buf_w: list[np.ndarray] = []
        self._buf_ids: list[np.ndarray] = []
        self._buffered = 0
        self._finalized = False

    # -- resume --------------------------------------------------------------

    @classmethod
    def resume(cls, directory: str | os.PathLike) -> "ShardedDatasetWriter":
        """Reopen a partially written dataset and continue after its last shard.

        Every shard the partial manifest records is digest-verified before
        the writer accepts it (a torn shard file from the crash would
        otherwise survive into the final manifest).
        """
        directory = Path(directory)
        partial = directory / PARTIAL_MANIFEST_NAME
        if not partial.exists():
            raise FileNotFoundError(f"no {PARTIAL_MANIFEST_NAME} under {directory}")
        with open(partial) as fh:
            body = json.load(fh)
        if body.get("format") != FORMAT_NAME or body.get("version") != FORMAT_VERSION:
            raise ValueError(f"{partial} is not a {FORMAT_NAME} v{FORMAT_VERSION} build")
        writer = cls(
            directory,
            dim=int(body["dim"]),
            shard_rows=int(body["shard_rows"]),
            with_weights=bool(body["has_weights"]),
            with_ids=bool(body["has_ids"]),
        )
        for entry in body["shards"]:
            info = ShardInfo.from_json(entry)
            for kind, digest in info.digests.items():
                path = directory / f"{info.name}.{kind}.npy"
                if not path.exists():
                    raise ShardDigestError(f"recorded shard file {path} is missing")
                if _file_digest(path) != digest:
                    raise ShardDigestError(
                        f"shard file {path} does not match the partial manifest digest"
                    )
            writer.shards.append(info)
            writer._rows_written = info.row_offset + info.rows
        return writer

    # -- building ------------------------------------------------------------

    def append(
        self,
        points: np.ndarray,
        weights: np.ndarray | None = None,
        ids: np.ndarray | None = None,
    ) -> None:
        if self._finalized:
            raise RuntimeError("writer is finalized")
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != self.dim:
            raise ValueError(f"expected (rows, {self.dim}) points, got {pts.shape}")
        rows = pts.shape[0]
        if self.with_weights:
            if weights is None:
                raise ValueError("writer was opened with_weights=True; pass weights")
            w = np.ascontiguousarray(weights, dtype=np.float64)
            if w.shape != (rows,):
                raise ValueError(f"weights shape {w.shape} != ({rows},)")
            self._buf_w.append(w)
        elif weights is not None:
            raise ValueError("writer was opened with_weights=False")
        if self.with_ids:
            if ids is None:
                raise ValueError("writer was opened with_ids=True; pass ids")
            i = np.ascontiguousarray(ids, dtype=np.int64)
            if i.shape != (rows,):
                raise ValueError(f"ids shape {i.shape} != ({rows},)")
            self._buf_ids.append(i)
        elif ids is not None:
            raise ValueError("writer was opened with_ids=False")
        self._buf_pts.append(pts)
        self._buffered += rows
        while self._buffered >= self.shard_rows:
            self._flush_shard(self.shard_rows)

    def _take(self, bufs: list[np.ndarray], rows: int) -> np.ndarray:
        taken: list[np.ndarray] = []
        need = rows
        while need > 0:
            head = bufs[0]
            if head.shape[0] <= need:
                taken.append(head)
                need -= head.shape[0]
                bufs.pop(0)
            else:
                taken.append(head[:need])
                bufs[0] = head[need:]
                need = 0
        return taken[0] if len(taken) == 1 else np.concatenate(taken)

    def _flush_shard(self, rows: int) -> None:
        name = f"shard-{len(self.shards):06d}"
        pts = np.ascontiguousarray(self._take(self._buf_pts, rows))
        parts: dict[str, np.ndarray] = {"points": pts}
        if self.with_weights:
            parts["weights"] = np.ascontiguousarray(self._take(self._buf_w, rows))
        if self.with_ids:
            parts["ids"] = np.ascontiguousarray(self._take(self._buf_ids, rows))
        digests: dict[str, str] = {}
        for kind, arr in parts.items():
            path = self.directory / f"{name}.{kind}.npy"
            with open(path, "wb") as fh:
                np.save(fh, arr)
                fh.flush()
                os.fsync(fh.fileno())
            digests[kind] = _file_digest(path)
        info = ShardInfo(
            name=name,
            rows=rows,
            row_offset=self._rows_written,
            lo=[float(x) for x in pts.min(axis=0)],
            hi=[float(x) for x in pts.max(axis=0)],
            digests=digests,
        )
        self.shards.append(info)
        self._rows_written += rows
        self._buffered -= rows
        _atomic_write_json(self.directory / PARTIAL_MANIFEST_NAME, self._body())

    def _body(self) -> dict:
        body = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "n": self._rows_written,
            "dim": self.dim,
            "dtype": "float64",
            "weight_dtype": "float64" if self.with_weights else None,
            "id_dtype": "int64" if self.with_ids else None,
            "has_weights": self.with_weights,
            "has_ids": self.with_ids,
            "shard_rows": self.shard_rows,
            "shards": [s.to_json() for s in self.shards],
        }
        if self.shards:
            lo = np.array([s.lo for s in self.shards]).min(axis=0)
            hi = np.array([s.hi for s in self.shards]).max(axis=0)
            body["bounding_box"] = {"lo": [float(x) for x in lo], "hi": [float(x) for x in hi]}
        else:
            body["bounding_box"] = None
        return body

    def finalize(self) -> "ShardedDataset":
        if self._finalized:
            raise RuntimeError("writer is already finalized")
        if self._buffered > 0:
            self._flush_shard(self._buffered)
        if self._rows_written == 0:
            raise ValueError("cannot finalize an empty dataset")
        body = self._body()
        body["digest"] = _manifest_digest(body)
        _atomic_write_json(self.directory / MANIFEST_NAME, body)
        partial = self.directory / PARTIAL_MANIFEST_NAME
        if partial.exists():
            partial.unlink()
        self._finalized = True
        return ShardedDataset(self.directory)


def write_sharded(
    directory: str | os.PathLike,
    points: np.ndarray | Iterable[np.ndarray],
    weights: np.ndarray | None = None,
    ids: np.ndarray | None = None,
    shard_rows: int = DEFAULT_SHARD_ROWS,
) -> "ShardedDataset":
    """Build a sharded dataset in one call from arrays (or an iterable of chunks).

    When ``points`` is an iterable of chunks, ``weights``/``ids`` must be
    ``None`` (stream them through a :class:`ShardedDatasetWriter` instead).
    """
    if isinstance(points, np.ndarray):
        pts = np.ascontiguousarray(points, dtype=np.float64)
        writer = ShardedDatasetWriter(
            directory,
            dim=pts.shape[1],
            shard_rows=shard_rows,
            with_weights=weights is not None,
            with_ids=ids is not None,
        )
        writer.append(pts, weights=weights, ids=ids)
        return writer.finalize()
    if weights is not None or ids is not None:
        raise ValueError("chunked points require streaming weights/ids via ShardedDatasetWriter")
    writer = None
    for chunk in points:
        chunk = np.ascontiguousarray(chunk, dtype=np.float64)
        if writer is None:
            writer = ShardedDatasetWriter(directory, dim=chunk.shape[1], shard_rows=shard_rows)
        writer.append(chunk)
    if writer is None:
        raise ValueError("cannot build a dataset from zero chunks")
    return writer.finalize()


class ShardedDataset:
    """Reader over a finalized sharded dataset directory.

    Never holds more than one shard's rows: per-shard accessors return
    read-only memory maps and :meth:`iter_tiles` walks them in order.
    Instances pickle as their directory path (workers reopen the manifest),
    so rank closures that capture a dataset ship cheaply to worker
    processes.
    """

    def __init__(self, directory: str | os.PathLike, verify: bool = False) -> None:
        self.directory = Path(directory)
        manifest = self.directory / MANIFEST_NAME
        if manifest.is_file():
            pass
        elif self.directory.is_file() and self.directory.name.endswith(".json"):
            manifest = self.directory
            self.directory = manifest.parent
        else:
            hint = ""
            if (self.directory / PARTIAL_MANIFEST_NAME).exists():
                hint = (
                    f" (found {PARTIAL_MANIFEST_NAME}: the build was interrupted — "
                    "resume it with ShardedDatasetWriter.resume)"
                )
            raise FileNotFoundError(f"no {MANIFEST_NAME} under {self.directory}{hint}")
        with open(manifest) as fh:
            body = json.load(fh)
        if body.get("format") != FORMAT_NAME:
            raise ValueError(f"{manifest} is not a {FORMAT_NAME} manifest")
        if body.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{manifest} has format version {body.get('version')!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        if _manifest_digest(body) != body.get("digest"):
            raise ShardDigestError(f"{manifest} fails its manifest digest")
        self.n = int(body["n"])
        self.dim = int(body["dim"])
        self.shard_rows = int(body["shard_rows"])
        self.has_weights = bool(body["has_weights"])
        self.has_ids = bool(body["has_ids"])
        self.digest = str(body["digest"])
        self.shards = [ShardInfo.from_json(s) for s in body["shards"]]
        box = body["bounding_box"]
        self._lo = np.array(box["lo"], dtype=np.float64)
        self._hi = np.array(box["hi"], dtype=np.float64)
        if verify:
            self.verify()

    def __reduce__(self):
        return (ShardedDataset, (str(self.directory),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedDataset({str(self.directory)!r}, n={self.n}, dim={self.dim}, "
            f"shards={len(self.shards)})"
        )

    @property
    def nshards(self) -> int:
        return len(self.shards)

    @property
    def nbytes(self) -> int:
        """Total size of the shard files on disk."""
        total = 0
        for info in self.shards:
            for kind in info.digests:
                total += (self.directory / f"{info.name}.{kind}.npy").stat().st_size
        return total

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Exact global (lo, hi); equals the in-memory elementwise min/max."""
        return self._lo.copy(), self._hi.copy()

    # -- shard access --------------------------------------------------------

    def _shard_path(self, i: int, kind: str) -> Path:
        return self.directory / f"{self.shards[i].name}.{kind}.npy"

    def open_points(self, i: int) -> np.ndarray:
        return np.load(self._shard_path(i, "points"), mmap_mode="r")

    def open_weights(self, i: int) -> np.ndarray | None:
        if not self.has_weights:
            return None
        return np.load(self._shard_path(i, "weights"), mmap_mode="r")

    def open_ids(self, i: int) -> np.ndarray | None:
        if not self.has_ids:
            return None
        return np.load(self._shard_path(i, "ids"), mmap_mode="r")

    def iter_tiles(
        self, max_rows: int | None = None
    ) -> Iterator[tuple[int, np.ndarray, np.ndarray | None, np.ndarray | None]]:
        """Yield ``(row_offset, points, weights, ids)`` tiles in global order.

        Tiles are views into per-shard memory maps (at most ``max_rows``
        rows each, default one whole shard), so peak memory is one tile.
        """
        for i, info in enumerate(self.shards):
            pts = self.open_points(i)
            w = self.open_weights(i)
            ids = self.open_ids(i)
            step = info.rows if max_rows is None else max(1, int(max_rows))
            for lo in range(0, info.rows, step):
                hi = min(info.rows, lo + step)
                yield (
                    info.row_offset + lo,
                    pts[lo:hi],
                    None if w is None else w[lo:hi],
                    None if ids is None else ids[lo:hi],
                )

    def read_rows(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Materialize global rows ``[lo, hi)`` (may span shards)."""
        if not 0 <= lo <= hi <= self.n:
            raise IndexError(f"row range [{lo}, {hi}) out of [0, {self.n})")
        pts = np.empty((hi - lo, self.dim), dtype=np.float64)
        w = np.empty(hi - lo, dtype=np.float64) if self.has_weights else None
        ids = np.empty(hi - lo, dtype=np.int64) if self.has_ids else None
        for i, info in enumerate(self.shards):
            s_lo, s_hi = info.row_offset, info.row_offset + info.rows
            if s_hi <= lo or s_lo >= hi:
                continue
            a, b = max(lo, s_lo), min(hi, s_hi)
            out = slice(a - lo, b - lo)
            src = slice(a - s_lo, b - s_lo)
            pts[out] = self.open_points(i)[src]
            if w is not None:
                w[out] = self.open_weights(i)[src]
            if ids is not None:
                ids[out] = self.open_ids(i)[src]
        return pts, w, ids

    def load(self) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Materialize the whole dataset (small datasets / tests only)."""
        return self.read_rows(0, self.n)

    # -- integrity -----------------------------------------------------------

    def verify(self) -> None:
        """Re-digest every shard file; raise :class:`ShardDigestError` on mismatch."""
        for info in self.shards:
            for kind, digest in info.digests.items():
                path = self.directory / f"{info.name}.{kind}.npy"
                if not path.exists():
                    raise ShardDigestError(f"shard file {path} is missing")
                if _file_digest(path) != digest:
                    raise ShardDigestError(f"shard file {path} fails its digest")
