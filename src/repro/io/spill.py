"""Per-rank spill files for the out-of-core runtime.

The out-of-core k-means runner keeps every O(n) array on disk and hands
rank functions :class:`SpillHandle` descriptors instead of arrays.  A
handle is a plain picklable record (path, shape, dtype); rank functions
``open()`` it to a :class:`numpy.memmap` of their own O(n/p) file, mutate
in place, and flush — which works identically whether ranks run in the
driver process (virtual backend) or in worker processes (the page cache
keeps file mmaps coherent across processes).

Two access styles, chosen by the address-space math:

- ``open()`` — memory-map the whole file.  Used for *per-rank* files,
  whose O(n/p) mapping is what "peak RSS is O(shard)" budgets for.
- ``read_rows``/``write_rows`` — plain ``seek``-based windowed I/O.  Used
  for the few *global* O(n) result files (final assignment, remap table),
  which must never be mapped wholly: file-backed mappings count toward
  ``RLIMIT_AS``, the cap the CI memory gate enforces.

Handles support ``__array__``, so :class:`~repro.runtime.checkpoint.
CheckpointStore` can serialise a dict of handles with each array
materialised one at a time.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["SpillHandle", "SpillStore"]


def _header_offset(path: str | os.PathLike) -> tuple[int, tuple, np.dtype]:
    """Byte offset of the data block in a ``.npy`` file, plus shape/dtype."""
    with open(path, "rb") as fh:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:  # pragma: no cover - numpy only emits 1.0/2.0 today
            raise ValueError(f"{path}: unsupported .npy version {version}")
        if fortran:
            raise ValueError(f"{path}: Fortran-order spill files are not supported")
        return fh.tell(), shape, dtype


@dataclass(frozen=True)
class SpillHandle:
    """Descriptor of one on-disk ``.npy`` array (picklable, O(1) state)."""

    path: str
    shape: tuple
    dtype: str

    @property
    def rows(self) -> int:
        return int(self.shape[0]) if self.shape else 0

    @property
    def row_bytes(self) -> int:
        itemsize = np.dtype(self.dtype).itemsize
        inner = 1
        for extent in self.shape[1:]:
            inner *= int(extent)
        return itemsize * inner

    @property
    def nbytes(self) -> int:
        return self.rows * self.row_bytes if self.shape else np.dtype(self.dtype).itemsize

    def open(self, mode: str = "r") -> np.memmap:
        """Memory-map the whole file (``"r"`` or ``"r+"``)."""
        return np.lib.format.open_memmap(self.path, mode=mode)

    def read(self) -> np.ndarray:
        """Materialize a private copy of the whole array."""
        return np.load(self.path)

    def __array__(self, dtype=None, copy=None):
        arr = np.load(self.path)
        return arr if dtype is None else arr.astype(dtype, copy=False)

    def read_rows(self, lo: int, hi: int) -> np.ndarray:
        """Materialize rows ``[lo, hi)`` via seek (no mapping of the file)."""
        if not 0 <= lo <= hi <= self.rows:
            raise IndexError(f"rows [{lo}, {hi}) out of [0, {self.rows})")
        offset, shape, dtype = _header_offset(self.path)
        with open(self.path, "rb") as fh:
            fh.seek(offset + lo * self.row_bytes)
            raw = fh.read((hi - lo) * self.row_bytes)
        out = np.frombuffer(raw, dtype=dtype).reshape((hi - lo,) + tuple(shape[1:]))
        return out.copy()

    def write_rows(self, lo: int, array: np.ndarray) -> None:
        """Overwrite rows starting at ``lo`` via seek (no mapping of the file)."""
        arr = np.ascontiguousarray(array, dtype=np.dtype(self.dtype))
        if arr.shape[1:] != tuple(self.shape[1:]):
            raise ValueError(f"row shape {arr.shape[1:]} != {tuple(self.shape[1:])}")
        if lo < 0 or lo + arr.shape[0] > self.rows:
            raise IndexError(f"rows [{lo}, {lo + arr.shape[0]}) out of [0, {self.rows})")
        offset, _, _ = _header_offset(self.path)
        with open(self.path, "r+b") as fh:
            fh.seek(offset + lo * self.row_bytes)
            fh.write(arr.tobytes())


class SpillStore:
    """A directory of named spill files.

    Plain attribute state (a path), so stores pickle into rank closures.
    The creator is responsible for :meth:`cleanup`; ranks only read/write
    through handles.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = str(directory)
        Path(self.directory).mkdir(parents=True, exist_ok=True)

    def path_for(self, name: str) -> str:
        return os.path.join(self.directory, f"{name}.npy")

    def put(self, name: str, array: np.ndarray) -> SpillHandle:
        """Write ``array`` to ``name`` (atomic rename), return its handle."""
        arr = np.ascontiguousarray(array)
        final = self.path_for(name)
        tmp = final + f".tmp-{os.getpid()}"
        with open(tmp, "wb") as fh:
            np.save(fh, arr)
        os.replace(tmp, final)
        return SpillHandle(final, tuple(arr.shape), str(arr.dtype))

    def create(self, name: str, shape: tuple, dtype) -> SpillHandle:
        """Preallocate a zero-filled array file (sparse where the OS allows).

        Header + ``truncate``, never ``open_memmap``: creating the O(n)
        result files must not map them — transient O(n) mappings count
        toward ``RLIMIT_AS`` and would defeat the CI memory gate.
        """
        path = self.path_for(name)
        dt = np.dtype(dtype)
        shape = tuple(int(extent) for extent in shape)
        nbytes = dt.itemsize
        for extent in shape:
            nbytes *= extent
        with open(path, "wb") as fh:
            np.lib.format.write_array_header_1_0(
                fh,
                {"descr": np.lib.format.dtype_to_descr(dt),
                 "fortran_order": False, "shape": shape},
            )
            fh.truncate(fh.tell() + nbytes)
        return SpillHandle(path, shape, str(dt))

    def handle(self, name: str) -> SpillHandle:
        """Handle for an existing file (header read only)."""
        path = self.path_for(name)
        _, shape, dtype = _header_offset(path)
        return SpillHandle(path, tuple(shape), str(dtype))

    def remove(self, *handles_or_names: "SpillHandle | str") -> None:
        for item in handles_or_names:
            path = item.path if isinstance(item, SpillHandle) else self.path_for(item)
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    def cleanup(self) -> None:
        """Delete the whole spill directory."""
        shutil.rmtree(self.directory, ignore_errors=True)
