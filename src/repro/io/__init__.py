"""Out-of-core dataset I/O: sharded on-disk format + per-rank spill files."""

from repro.io.sharded import (
    DEFAULT_SHARD_ROWS,
    ShardDigestError,
    ShardedDataset,
    ShardedDatasetWriter,
    ShardInfo,
    write_sharded,
)
from repro.io.spill import SpillHandle, SpillStore
