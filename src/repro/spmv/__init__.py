"""Distributed SpMV simulation: halo plans and the ``timeComm`` metric.

The paper measures partition quality empirically by redistributing the graph,
running 100 sparse matrix-vector multiplications, and timing the communication
phase (§2, §5.2.4).  We reproduce the pipeline: the partition induces a halo-
exchange plan (who sends which vertex values to whom); an actual blockwise
SpMV validates the plan; the communication time comes from the machine model.
"""

from repro.spmv.halo import HaloPlan, build_halo_plan
from repro.spmv.distspmv import distributed_spmv, spmv_comm_time

__all__ = ["HaloPlan", "build_halo_plan", "distributed_spmv", "spmv_comm_time"]
