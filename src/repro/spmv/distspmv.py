"""Distributed SpMV execution + the ``timeComm`` metric.

``distributed_spmv`` actually executes a blockwise sparse matrix-vector
product: every block computes its rows using only values it owns plus values
delivered by the halo plan.  Agreement with the global product proves the
plan is complete (tested) — the same property the paper relies on when it
measures SpMV communication on the real machine.

The product runs on an execution backend: blocks are placed round-robin on
``nranks`` ranks (:meth:`~repro.spmv.halo.HaloPlan.rank_blocks`) and each
rank computes its blocks' rows.  On the default serial path (``nranks=1``,
no backend) this is a plain loop; with ``backend="process"`` the ranks are
real worker processes.  Row ranges of distinct blocks are disjoint, so the
assembled ``y`` is bit-identical across backends and rank counts (tested).

``spmv_comm_time`` models the communication phase of one SpMV under the
machine model: every block sends its boundary values (8 bytes each) to each
neighbouring block in one message; blocks proceed in parallel, so the time
is the bottleneck block's send+receive cost.  This is the quantity the paper
reports as ``timeSpMVComm`` (averaged over 100 identical multiplications —
deterministic here, so averaging is a no-op).  The modeled figure is
returned on every backend; a process backend's *measured* exchange time is
on the ledger of the communicator passed via ``comm``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from scipy.sparse import csr_matrix

from repro.mesh.graph import GeometricMesh
from repro.runtime.comm import Comm, make_comm
from repro.runtime.costmodel import SUPERMUC_LIKE, MachineModel
from repro.spmv.halo import HaloPlan, build_halo_plan

__all__ = ["distributed_spmv", "spmv_comm_time", "comm_time_from_plan"]

_VALUE_BYTES = 8  # double precision, as in the paper's SpMV benchmark


def comm_time_from_plan(plan: HaloPlan, machine: MachineModel | None = None) -> float:
    """Bottleneck communication time of one halo exchange."""
    m = machine or SUPERMUC_LIKE
    send_msgs = (plan.volume > 0).sum(axis=1)
    recv_msgs = (plan.volume > 0).sum(axis=0)
    send_bytes = plan.volume.sum(axis=1) * _VALUE_BYTES
    recv_bytes = plan.volume.sum(axis=0) * _VALUE_BYTES
    per_block = (
        (send_msgs + recv_msgs) * m.alpha + (send_bytes + recv_bytes) * m.beta
    ) * m.penalty(plan.k)
    return float(per_block.max()) if per_block.size else 0.0


def spmv_comm_time(
    mesh: GeometricMesh,
    assignment: np.ndarray,
    k: int,
    machine: MachineModel | None = None,
) -> float:
    """``timeComm`` metric: modeled SpMV halo-exchange time for a partition."""
    return comm_time_from_plan(build_halo_plan(mesh, assignment, k), machine)


def _block_rows(plan: HaloPlan, adjacency, x: np.ndarray, block: int) -> tuple[np.ndarray, np.ndarray]:
    """Rows of ``y = A x`` owned by ``block``: ``(owned indices, values)``.

    Each block assembles a masked input vector containing exactly its owned
    entries plus the halo values it received; any missing halo entry would
    corrupt ``y`` relative to the global product.
    """
    owned = plan.block_vertices(block)
    if owned.size == 0:
        return owned, np.empty(0)
    x_local = plan.masked_input(x, block, owned=owned)
    return owned, adjacency[owned] @ x_local


def distributed_spmv(
    mesh: GeometricMesh,
    assignment: np.ndarray,
    k: int,
    x: np.ndarray,
    machine: MachineModel | None = None,
    nranks: int = 1,
    backend: str | None = None,
    comm: Comm | None = None,
) -> tuple[np.ndarray, float]:
    """Execute ``y = A x`` blockwise through the halo plan.

    Returns ``(y, comm_time)`` with ``comm_time`` the modeled halo-exchange
    bottleneck (the paper's ``timeSpMVComm``).

    ``nranks``/``backend`` place the ``k`` blocks round-robin on an
    execution backend (``backend=None`` with ``nranks=1`` keeps the plain
    serial loop).  Pass an open communicator via ``comm`` to reuse its
    workers and inspect its measured ledger afterwards; a comm created here
    is closed before returning, and a reused one gets every shared segment
    of this call released and its stage label restored, so repeated SpMVs
    over one communicator keep ``/dev/shm`` flat.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (mesh.n,):
        raise ValueError(f"x must have shape ({mesh.n},), got {x.shape}")
    plan = build_halo_plan(mesh, assignment, k)
    adjacency = mesh.to_scipy()
    y = np.zeros(mesh.n)
    owns_comm = comm is None
    if comm is None and backend is None and nranks == 1:
        for block in range(k):
            owned, values = _block_rows(plan, adjacency, x, block)
            y[owned] = values
        return y, comm_time_from_plan(plan, machine)
    if comm is None:
        comm = make_comm(nranks, backend=backend, machine=machine)
    prev_stage = comm._stage
    shared: list[np.ndarray] = []
    try:
        comm.set_stage("spmv")
        p = comm.nranks  # rank functions must not capture the comm itself
        # everything large the rank functions touch goes through share():
        # the input vector, the plan's per-vertex arrays and the CSR parts
        # ship as shared-memory handles instead of p pickled copies
        def share(arr: np.ndarray) -> np.ndarray:
            shared.append(comm.share(arr))
            return shared[-1]

        x_exec = share(x)
        plan_exec = replace(
            plan,
            owner=share(plan.owner),
            pair_vertices=share(plan.pair_vertices),
            pair_dest=share(plan.pair_dest),
        )
        csr = (share(adjacency.data), share(adjacency.indices),
               share(adjacency.indptr), adjacency.shape)

        def rank_rows(r: int) -> tuple[np.ndarray, np.ndarray]:
            matrix = csr_matrix(csr[:3], shape=csr[3])
            idx_parts: list[np.ndarray] = []
            val_parts: list[np.ndarray] = []
            for block in plan_exec.rank_blocks(r, p):
                owned, values = _block_rows(plan_exec, matrix, x_exec, block)
                if owned.size:
                    idx_parts.append(owned)
                    val_parts.append(values)
            if not idx_parts:
                return np.empty(0, dtype=np.int64), np.empty(0)
            return np.concatenate(idx_parts), np.concatenate(val_parts)

        for owned, values in comm.run_local(rank_rows):
            y[owned] = values
    finally:
        if owns_comm:
            comm.close()
        else:  # leave a reused communicator the way we found it
            comm.release(*shared)
            comm.set_stage(prev_stage)
    return y, comm_time_from_plan(plan, machine)
