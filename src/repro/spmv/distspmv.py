"""Distributed SpMV execution + the ``timeComm`` metric.

``distributed_spmv`` actually executes a blockwise sparse matrix-vector
product: every block computes its rows using only values it owns plus values
delivered by the halo plan.  Agreement with the global product proves the
plan is complete (tested) — the same property the paper relies on when it
measures SpMV communication on the real machine.

``spmv_comm_time`` models the communication phase of one SpMV under the
machine model: every block sends its boundary values (8 bytes each) to each
neighbouring block in one message; blocks proceed in parallel, so the time
is the bottleneck block's send+receive cost.  This is the quantity the paper
reports as ``timeSpMVComm`` (averaged over 100 identical multiplications —
deterministic here, so averaging is a no-op).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.runtime.costmodel import SUPERMUC_LIKE, MachineModel
from repro.spmv.halo import HaloPlan, build_halo_plan

__all__ = ["distributed_spmv", "spmv_comm_time", "comm_time_from_plan"]

_VALUE_BYTES = 8  # double precision, as in the paper's SpMV benchmark


def comm_time_from_plan(plan: HaloPlan, machine: MachineModel | None = None) -> float:
    """Bottleneck communication time of one halo exchange."""
    m = machine or SUPERMUC_LIKE
    send_msgs = (plan.volume > 0).sum(axis=1)
    recv_msgs = (plan.volume > 0).sum(axis=0)
    send_bytes = plan.volume.sum(axis=1) * _VALUE_BYTES
    recv_bytes = plan.volume.sum(axis=0) * _VALUE_BYTES
    per_block = (
        (send_msgs + recv_msgs) * m.alpha + (send_bytes + recv_bytes) * m.beta
    ) * m.penalty(plan.k)
    return float(per_block.max()) if per_block.size else 0.0


def spmv_comm_time(
    mesh: GeometricMesh,
    assignment: np.ndarray,
    k: int,
    machine: MachineModel | None = None,
) -> float:
    """``timeComm`` metric: modeled SpMV halo-exchange time for a partition."""
    return comm_time_from_plan(build_halo_plan(mesh, assignment, k), machine)


def distributed_spmv(
    mesh: GeometricMesh,
    assignment: np.ndarray,
    k: int,
    x: np.ndarray,
    machine: MachineModel | None = None,
) -> tuple[np.ndarray, float]:
    """Execute ``y = A x`` blockwise through the halo plan.

    Returns ``(y, comm_time)``.  Each block assembles a masked input vector
    containing exactly its owned entries plus the halo values it received;
    any missing halo entry would corrupt ``y`` relative to the global
    product, which the test suite checks.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (mesh.n,):
        raise ValueError(f"x must have shape ({mesh.n},), got {x.shape}")
    plan = build_halo_plan(mesh, assignment, k)
    adjacency = mesh.to_scipy()
    y = np.zeros(mesh.n)
    for block in range(k):
        owned = np.flatnonzero(plan.owner == block)
        if owned.size == 0:
            continue
        received = plan.pair_vertices[plan.pair_dest == block]
        x_local = np.zeros(mesh.n)
        x_local[owned] = x[owned]
        x_local[received] = x[received]
        y[owned] = adjacency[owned] @ x_local
    return y, comm_time_from_plan(plan, machine)
