"""Halo-exchange plans derived from a partition.

A vertex on a block boundary must be *sent* to every foreign block that owns
one of its neighbours — exactly the (vertex, foreign block) pairs behind the
communication-volume metric, so ``plan.send_volumes.sum() == totCommVol`` by
construction (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.metrics.commvolume import boundary_pairs
from repro.util.validation import check_assignment

__all__ = ["HaloPlan", "build_halo_plan"]


@dataclass
class HaloPlan:
    """Who sends what to whom during one halo exchange.

    Attributes
    ----------
    k:
        Number of blocks.
    pair_vertices, pair_dest:
        Parallel arrays: vertex ``pair_vertices[i]`` (owned by
        ``owner[pair_vertices[i]]``) is sent to block ``pair_dest[i]``.
    volume:
        ``(k, k)`` dense matrix, ``volume[i, j]`` = number of vertex values
        block ``i`` sends to block ``j`` (zero diagonal).
    """

    k: int
    owner: np.ndarray
    pair_vertices: np.ndarray
    pair_dest: np.ndarray
    volume: np.ndarray

    @property
    def send_volumes(self) -> np.ndarray:
        """Values sent per block — equals the comm-volume metric per block."""
        return self.volume.sum(axis=1)

    @property
    def recv_volumes(self) -> np.ndarray:
        return self.volume.sum(axis=0)

    @property
    def message_counts(self) -> np.ndarray:
        """Messages sent per block (one per non-empty destination)."""
        return (self.volume > 0).sum(axis=1)

    @property
    def total_volume(self) -> int:
        return int(self.volume.sum())

    # -- execution helpers (used by the distributed SpMV backends) ----------

    def rank_blocks(self, rank: int, nranks: int) -> range:
        """Blocks executed by ``rank`` under round-robin block placement.

        With ``nranks < k`` each rank hosts several blocks (the paper's
        ``k`` and ``p`` are independent); the round-robin map is what every
        execution backend uses, so results do not depend on the backend.
        """
        if not 0 <= rank < nranks:
            raise ValueError(f"rank must be in [0, {nranks}), got {rank}")
        return range(rank, self.k, nranks)

    def block_vertices(self, block: int) -> np.ndarray:
        """Vertices owned by ``block``."""
        return np.flatnonzero(self.owner == block)

    def masked_input(self, x: np.ndarray, block: int, owned: np.ndarray | None = None) -> np.ndarray:
        """The input vector as ``block`` sees it during one halo exchange.

        Exactly the entries the block owns plus the halo values delivered to
        it are populated; every other entry is zero, so a missing halo pair
        corrupts the product relative to the global one (which the test
        suite checks).
        """
        if owned is None:
            owned = self.block_vertices(block)
        received = self.pair_vertices[self.pair_dest == block]
        x_local = np.zeros(x.shape[0])
        x_local[owned] = x[owned]
        x_local[received] = x[received]
        return x_local


def build_halo_plan(mesh: GeometricMesh, assignment: np.ndarray, k: int) -> HaloPlan:
    """Construct the halo plan for one partition."""
    a = check_assignment(assignment, mesh.n, k)
    pairs = boundary_pairs(mesh, a, k)
    vertices = pairs[:, 0]
    dest = pairs[:, 1]
    src = a[vertices]
    volume = np.zeros((k, k), dtype=np.int64)
    np.add.at(volume, (src, dest), 1)
    return HaloPlan(k=k, owner=a, pair_vertices=vertices, pair_dest=dest, volume=volume)
