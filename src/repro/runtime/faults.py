"""Deterministic fault injection for the elastic runtime.

A :class:`FaultPlan` is a scripted set of failures — kill rank *r* at
superstep *s*, crash the driver, delay or fail a collective, corrupt a
checkpoint file — and :class:`FaultyComm` wraps any
:class:`~repro.runtime.comm.Comm` to execute the plan at exactly the
scheduled moment.  Because the plan is deterministic (no randomness, faults
addressed by superstep/occurrence ordinals), recovery paths are testable and
reproducible on every backend: the same plan against the same run always
fails at the same instruction.

Plans are wired in through :func:`~repro.runtime.comm.make_comm` — either
the ``faults=`` argument or the ``REPRO_FAULTS`` environment variable, whose
value uses the spec grammar of :meth:`FaultPlan.parse`::

    kill:rank=1,step=5;delay:op=allreduce,index=2,seconds=0.01;corrupt:index=1

Injection semantics per fault kind:

``kill``
    On the process backend, the worker for ``rank`` receives a real
    ``SIGKILL`` immediately before superstep ``step`` is dispatched, which
    exercises :class:`~repro.runtime.procomm.ProcessComm`'s genuine
    detect/respawn/replay machinery.  On driver-resident backends
    (``persistent_state=True``, e.g. virtual) the rank is tombstoned for
    that superstep and its rank function replayed by the driver afterwards —
    exact, because BSP rank functions are independent within a superstep.
    Unsupported on MPI (no process manager to respawn under ``mpiexec``).
``crash``
    Raises :class:`InjectedFault` in the driver before dispatching superstep
    ``step`` — models a killed driver; tests resume from the checkpoint.
``delay``
    Stalls the matching collective call: real ``time.sleep`` on measured
    backends, extra modeled comm-seconds on the ledger otherwise.  With
    ``op=compute`` the spec targets the partitioning service's supervised
    compute instead (:class:`repro.service.resilience.ComputeSupervisor`),
    stalling the matching request inside its executor thread.
``fail``
    The matching collective runs, its result is discarded as a transient
    failure, and the call is retried (charging twice) — the retried result
    is returned, so the final answer never changes.  With ``op=compute`` the
    service's compute does its work and then dies (a mid-request kill); the
    *client's* retry, not the comm layer, restores progress there.
``corrupt``
    Consulted by :meth:`~repro.runtime.checkpoint.CheckpointStore.save`
    (which receives the plan via the comm's ``fault_plan`` attribute):
    the save whose ordinal matches is byte-flipped on disk, exercising the
    integrity digest and the newest-valid-fallback load path.

Every injection and recovery is recorded as an event on the
:class:`~repro.runtime.comm.CostLedger` (``injected_kill``,
``rank_replayed``, ``injected_crash``, ``injected_delay``,
``injected_collective_failure``, ``collective_retried``), so tests and CI
artifacts can assert exactly what happened.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.runtime.comm import Comm

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultyComm",
    "InjectedFault",
]

_KINDS = ("kill", "crash", "delay", "fail", "corrupt")
_COLLECTIVE_OPS = ("allreduce", "allgather", "alltoallv", "broadcast")
#: ``delay``/``fail`` targets: the comm collectives, plus ``"compute"`` — the
#: partitioning service's supervised compute calls
#: (:class:`repro.service.resilience.ComputeSupervisor`), where ``index``
#: addresses the 0-based ordinal of supervised requests instead of a
#: per-collective occurrence.
_FAULT_OPS = _COLLECTIVE_OPS + ("compute",)


class InjectedFault(RuntimeError):
    """Raised when a scripted ``crash`` fault fires."""


@dataclass
class FaultSpec:
    """One scripted failure.  Field meaning depends on ``kind`` (see module docs)."""

    kind: str
    rank: int | None = None  # kill: which rank dies
    step: int | None = None  # kill/crash: 0-based superstep ordinal
    op: str | None = None  # delay/fail: which collective ("allreduce", ...)
    index: int = 0  # delay/fail: Nth call of that op; corrupt: save ordinal
    seconds: float = 0.0  # delay: stall duration
    fired: bool = False  # one-shot bookkeeping

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if self.kind == "kill" and (self.rank is None or self.step is None):
            raise ValueError("kill fault needs rank= and step=")
        if self.kind == "crash" and self.step is None:
            raise ValueError("crash fault needs step=")
        if self.kind in ("delay", "fail"):
            if self.op not in _FAULT_OPS:
                raise ValueError(
                    f"{self.kind} fault needs op= one of {_FAULT_OPS}, got {self.op!r}"
                )
        if self.kind == "delay" and self.seconds < 0:
            raise ValueError("delay fault needs seconds >= 0")


class FaultPlan:
    """An ordered set of one-shot :class:`FaultSpec`\\ s consumed as a run executes."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs = list(specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.specs!r})"

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``kind:key=value,...;kind:...`` spec grammar (see module docs)."""
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, rest = chunk.partition(":")
            kwargs: dict = {}
            for item in filter(None, (s.strip() for s in rest.split(","))):
                key, sep, value = item.partition("=")
                if not sep:
                    raise ValueError(f"bad fault field {item!r} in {chunk!r} (expected key=value)")
                key = key.strip()
                value = value.strip()
                if key in ("rank", "step", "index"):
                    kwargs[key] = int(value)
                elif key == "seconds":
                    kwargs[key] = float(value)
                elif key == "op":
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault field {key!r} in {chunk!r}")
            specs.append(FaultSpec(kind=kind.strip(), **kwargs))
        return cls(specs)

    # -- one-shot queries (each returns a spec at most once) ----------------

    def _take(self, predicate: Callable[[FaultSpec], bool]) -> FaultSpec | None:
        for spec in self.specs:
            if not spec.fired and predicate(spec):
                spec.fired = True
                return spec
        return None

    def take_kill(self, step: int) -> FaultSpec | None:
        return self._take(lambda s: s.kind == "kill" and s.step == step)

    def take_crash(self, step: int) -> FaultSpec | None:
        return self._take(lambda s: s.kind == "crash" and s.step == step)

    def take_collective(self, kind: str, op: str, occurrence: int) -> FaultSpec | None:
        return self._take(
            lambda s: s.kind == kind and s.op == op and s.index == occurrence
        )

    def take_corrupt(self, ordinal: int) -> FaultSpec | None:
        return self._take(lambda s: s.kind == "corrupt" and s.index == ordinal)

    def unfired(self) -> list[FaultSpec]:
        """Specs that never triggered — useful for asserting a plan was consumed."""
        return [s for s in self.specs if not s.fired]


class FaultyComm(Comm):
    """Transparent :class:`Comm` wrapper that executes a :class:`FaultPlan`.

    Counts supersteps (one per :meth:`run_local`) and per-op collective
    occurrences, firing matching specs at the scheduled call.  With an empty
    plan it is pure delegation and does not perturb results, costs, or rank
    semantics on any backend.
    """

    def __init__(self, inner: Comm, plan: FaultPlan) -> None:
        super().__init__(inner.nranks)
        self.inner = inner
        self.fault_plan = plan
        self.kind = inner.kind
        self.measured = inner.measured
        self.persistent_state = inner.persistent_state
        self.ledger = inner.ledger
        self._stage = inner._stage
        self.superstep = 0
        self._op_counts: dict[str, int] = {}

    def set_stage(self, stage: str | None) -> None:
        self._stage = stage
        self.inner.set_stage(stage)

    # -- supersteps ----------------------------------------------------------

    def run_local(self, fn: Callable[[int], object]) -> list:
        step = self.superstep
        self.superstep += 1
        crash = self.fault_plan.take_crash(step)
        if crash is not None:
            self.ledger.record_event("injected_crash", superstep=step, stage=self._stage)
            raise InjectedFault(f"injected driver crash at superstep {step}")
        kill = self.fault_plan.take_kill(step)
        if kill is None:
            return self.inner.run_local(fn)
        return self._run_with_kill(fn, int(kill.rank), step)

    def _run_with_kill(self, fn: Callable[[int], object], rank: int, step: int) -> list:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"kill fault rank {rank} out of range for nranks={self.nranks}")
        self.ledger.record_event(
            "injected_kill", rank=rank, superstep=step, stage=self._stage, backend=self.kind
        )
        if self.persistent_state:
            # Driver-resident ranks: simulate the death by skipping the rank
            # during the superstep, then "respawn" and replay it afterwards.
            # Exact because BSP rank functions are independent within a
            # superstep (they communicate only through collectives).
            results = self.inner.run_local(
                lambda r: _TOMBSTONE if r == rank else fn(r)
            )
            results[rank] = fn(rank)
            self.ledger.record_event(
                "rank_replayed", rank=rank, superstep=step, stage=self._stage
            )
            return results
        workers = getattr(self.inner, "_workers", None)
        if workers is None:
            raise RuntimeError(
                f"kill fault is not supported on the {self.kind!r} backend "
                "(no process manager available to respawn the rank)"
            )
        # Real kill: SIGKILL the worker before the superstep is dispatched, so
        # the lost superstep is exactly replayable by ProcessComm's
        # respawn-and-replay recovery (the worker never started executing it).
        proc = workers[rank]
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(5.0)
        return self.inner.run_local(fn)

    # -- collectives ---------------------------------------------------------

    def _collective(self, op: str, call: Callable[[], object]):
        occurrence = self._op_counts.get(op, 0)
        self._op_counts[op] = occurrence + 1
        delay = self.fault_plan.take_collective("delay", op, occurrence)
        if delay is not None:
            self.ledger.record_event(
                "injected_delay", op=op, occurrence=occurrence,
                seconds=delay.seconds, stage=self._stage,
            )
            if self.measured:
                time.sleep(delay.seconds)
            else:
                self.ledger.charge_comm(delay.seconds, op, self._stage)
        fail = self.fault_plan.take_collective("fail", op, occurrence)
        if fail is None:
            return call()
        # Transient failure: the call's result is lost in flight and the
        # collective is retried.  Both attempts are charged; the retried
        # result is returned, so the computation itself is unaffected.
        call()
        self.ledger.record_event(
            "injected_collective_failure", op=op, occurrence=occurrence, stage=self._stage
        )
        result = call()
        self.ledger.record_event(
            "collective_retried", op=op, occurrence=occurrence, stage=self._stage
        )
        return result

    def allreduce(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        return self._collective("allreduce", lambda: self.inner.allreduce(per_rank))

    def allgather(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        return self._collective("allgather", lambda: self.inner.allgather(per_rank))

    def alltoallv(self, send: Sequence[Sequence[np.ndarray]]) -> list[np.ndarray]:
        return self._collective("alltoallv", lambda: self.inner.alltoallv(send))

    def broadcast(self, value: np.ndarray) -> np.ndarray:
        return self._collective("broadcast", lambda: self.inner.broadcast(value))

    # -- delegation ----------------------------------------------------------

    def share(self, array: np.ndarray) -> np.ndarray:
        return self.inner.share(array)

    def release(self, *arrays: np.ndarray) -> None:
        self.inner.release(*arrays)

    def collect(self, per_rank: Sequence[np.ndarray]) -> list[np.ndarray]:
        return self.inner.collect(per_rank)

    def charge_modeled_compute(self, point_ops: float) -> None:
        self.inner.charge_modeled_compute(point_ops)

    @property
    def topology(self):
        return getattr(self.inner, "topology", None)

    @property
    def machine(self):
        return getattr(self.inner, "machine", None)

    def close(self) -> None:
        self.inner.close()


#: Placeholder a tombstoned (simulated-dead) rank leaves in the superstep
#: results before the driver replays it.
_TOMBSTONE = object()
