"""SPMD entrypoint for the MPI execution backend.

Every rank of an ``mpiexec`` launch runs this module; rank 0 becomes the
driver and every other rank serves supersteps
(:func:`repro.runtime.mpicomm.spmd_main`).  Two modes:

- **CLI forwarding** — any ``repro`` command line runs on rank 0 with
  ``"mpi"`` as the default execution backend::

      mpiexec -n 4 python -m repro.runtime.mpi_main distributed rgg2d \\
          --scale 0.05 -k 8 -p 4
      mpiexec -n 4 python -m repro.runtime.mpi_main scaling weak \\
          --backend mpi --ranks 32 128

  (equivalently: ``mpiexec -n 4 repro mpi distributed ...``).

- **``equivalence``** — the cross-backend bit-identity suite used by the
  ``mpi-backend`` CI job and ``tests/test_backend_equivalence.py``: for
  each requested rank count it runs balanced k-means (plain + weighted),
  the distributed sort, and the distributed SpMV on both the ``mpi`` and
  ``virtual`` backends and demands bit-identical assignments, centers,
  imbalance, sorted orders, and SpMV outputs::

      mpiexec -n 4 python -m repro.runtime.mpi_main equivalence \\
          --ranks 1 2 4 --json results.json

  ``--json`` dumps the MPI-side results so an outside process (pytest,
  running without MPI) can independently compare them against its own
  virtual-backend computation of the same cases.

:func:`equivalence_cases` is importable without :mod:`mpi4py` — only
:func:`main` touches the MPI machinery — so the test suite shares the
exact case definitions instead of duplicating seeds and parameters.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

__all__ = ["compare_cases", "equivalence_cases", "main"]

#: (name, k) of the SpMV scenario; mesh size kept small so the suite stays
#: fast under ``mpiexec`` on CI runners.
_SPMV_N = 400
_SPMV_K = 6
_KMEANS_N = 600


def equivalence_cases(nranks: int, backend: str | None = None) -> dict:
    """Run the equivalence scenarios on ``backend`` and return named results.

    Deterministic given ``nranks``; keys starting with ``"_"`` are metadata
    (backend, measured flag) and excluded from bit-identity comparison.
    """
    from repro.mesh.rgg import rgg_mesh
    from repro.runtime.comm import make_comm
    from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
    from repro.runtime.distsort import distributed_sort
    from repro.spmv.distspmv import distributed_spmv

    out: dict = {}
    pts = np.random.default_rng(0).random((_KMEANS_N, 2))
    res = distributed_balanced_kmeans(pts, k=5, nranks=nranks, rng=7, backend=backend)
    out["kmeans_assignment"] = res.assignment
    out["kmeans_centers"] = res.centers
    out["kmeans_imbalance"] = res.imbalance
    out["kmeans_iterations"] = res.iterations
    out["_measured"] = res.measured
    out["_supersteps"] = res.ledger.supersteps

    weights = np.random.default_rng(1).uniform(1.0, 5.0, _KMEANS_N)
    resw = distributed_balanced_kmeans(
        pts, k=4, nranks=nranks, weights=weights, rng=3, backend=backend
    )
    out["weighted_assignment"] = resw.assignment
    out["weighted_centers"] = resw.centers
    out["weighted_imbalance"] = resw.imbalance

    rng = np.random.default_rng(11)
    sizes = rng.integers(5, 60, size=nranks)
    keys = [rng.integers(0, 1 << 40, size=int(sz)) for sz in sizes]
    payloads = [np.column_stack([kk.astype(np.float64), rng.random(kk.size)]) for kk in keys]
    with make_comm(nranks, backend=backend) as comm:
        sorted_keys, sorted_pay = distributed_sort(
            comm, [kk.copy() for kk in keys], [pl.copy() for pl in payloads]
        )
    out["sort_counts"] = np.array([kk.size for kk in sorted_keys], dtype=np.int64)
    out["sort_keys"] = np.concatenate(sorted_keys)
    out["sort_payload"] = np.concatenate(sorted_pay)

    mesh = rgg_mesh(_SPMV_N, dim=2, rng=0)
    assignment = np.random.default_rng(1).integers(0, _SPMV_K, size=mesh.n)
    assignment[:_SPMV_K] = np.arange(_SPMV_K)  # every block non-empty
    x = np.random.default_rng(2).random(mesh.n)
    y, comm_time = distributed_spmv(
        mesh, assignment, _SPMV_K, x, nranks=nranks, backend=backend
    )
    out["spmv_y"] = y
    out["spmv_comm_time"] = comm_time
    out["_backend"] = res.backend
    return out


def compare_cases(got: dict, want: dict, label: str = "") -> list[str]:
    """Bit-identity comparison of two :func:`equivalence_cases` results."""
    failures = []
    for key in sorted(set(want) | set(got)):
        if key.startswith("_"):
            continue
        if key not in got or key not in want:
            failures.append(f"{label}{key}: missing on one side")
            continue
        a, b = np.asarray(got[key]), np.asarray(want[key])
        if a.shape != b.shape or not np.array_equal(a, b):
            failures.append(f"{label}{key}: not bit-identical")
    return failures


def _jsonable(cases: dict) -> dict:
    return {
        key: value.tolist() if isinstance(value, np.ndarray) else value
        for key, value in cases.items()
    }


def _run_equivalence(args) -> int:
    from repro.runtime.mpicomm import world_size

    ranks = args.ranks or [world_size()]
    bad = [p for p in ranks if p > world_size()]
    if bad:
        print(
            f"FAIL: rank counts {bad} exceed the MPI communicator size "
            f"{world_size()}; relaunch with `mpiexec -n {max(ranks)}`"
        )
        return 2
    failures: list[str] = []
    dumped: dict[str, dict] = {}
    for p in ranks:
        mpi = equivalence_cases(p, backend="mpi")
        virt = equivalence_cases(p, backend="virtual")
        if mpi["_backend"] != "mpi" or not mpi["_measured"]:
            failures.append(f"p={p}: run did not execute on the measured mpi backend")
        if virt["_measured"]:
            failures.append(f"p={p}: virtual reference unexpectedly measured")
        failures.extend(compare_cases(mpi, virt, label=f"p={p}: "))
        dumped[str(p)] = _jsonable(mpi)
        status = "ok" if not any(f.startswith(f"p={p}") for f in failures) else "FAIL"
        print(f"p={p} (world={world_size()}): kmeans/distsort/spmv vs virtual -> {status}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(dumped, fh)
        print(f"wrote MPI-side results to {args.json}")
    if failures:
        print("FAIL: MPI and virtual backends disagree:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"PASS: mpi backend bit-identical to virtual for p in {list(ranks)}")
    return 0


def _equivalence_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.mpi_main equivalence",
        description="cross-backend bit-identity suite (mpi vs virtual)",
    )
    parser.add_argument(
        "--ranks", type=int, nargs="+", default=None,
        help="rank counts to verify (default: the MPI communicator size)",
    )
    parser.add_argument("--json", default=None, help="dump MPI-side results to this path")
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        from repro.runtime.mpicomm import spmd_main
    except ImportError as exc:  # surface the missing optional dependency clearly
        raise SystemExit(
            f"the MPI entrypoint requires mpi4py and an MPI runtime: {exc}"
        ) from exc
    if argv and argv[0] == "equivalence":
        args = _equivalence_parser().parse_args(argv[1:])
        code = spmd_main(lambda: _run_equivalence(args))
    else:

        def driver() -> int:
            os.environ.setdefault("REPRO_BACKEND", "mpi")
            from repro.cli import main as cli_main

            return cli_main(argv)

        code = spmd_main(driver)
    return int(code or 0)


if __name__ == "__main__":
    sys.exit(main())
