"""Simulated SPMD runtime (the MPI substitute).

The paper runs on up to 16 384 MPI processes; this package simulates that
execution model on one machine.  Algorithms are written in bulk-synchronous
style against :class:`VirtualComm`: rank-local numpy arrays plus global
collectives.  Per-superstep wall-clock is ``max`` of the measured rank-local
compute times plus the machine-model cost of the collective — exactly the
BSP cost of the paper's algorithm, whose only communication is global
reductions and one initial redistribution (Algorithms 1-2, blue lines).
"""

from repro.runtime.costmodel import SUPERMUC_LIKE, SUPERMUC_TOPOLOGY, MachineModel, MachineTopology
from repro.runtime.comm import CostLedger, VirtualComm
from repro.runtime.distsort import distributed_sort
from repro.runtime.distributed_kmeans import DistributedKMeansResult, distributed_balanced_kmeans
from repro.runtime.scaling import ScalingPoint, strong_scaling, weak_scaling

__all__ = [
    "MachineModel",
    "MachineTopology",
    "SUPERMUC_LIKE",
    "SUPERMUC_TOPOLOGY",
    "VirtualComm",
    "CostLedger",
    "distributed_sort",
    "distributed_balanced_kmeans",
    "DistributedKMeansResult",
    "weak_scaling",
    "strong_scaling",
    "ScalingPoint",
]
