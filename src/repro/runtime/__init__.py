"""SPMD runtime: execution backends behind one collective protocol.

The paper runs on up to 16 384 MPI processes; this package executes that
model behind the :class:`~repro.runtime.comm.Comm` protocol.  Algorithms
are written in bulk-synchronous style — rank-local numpy arrays plus global
collectives — and run unchanged on any registered backend:

``"virtual"`` (default)
    Ranks execute in the driver process; the ledger charges the
    SuperMUC-like machine model (modeled seconds), which is what the
    paper's scaling figures plot.
``"process"``
    Ranks are real worker processes (``multiprocessing`` + shared memory);
    the ledger holds measured wall-clock per stage.
``"mpi"``
    Ranks are real MPI processes (``mpi4py``, launched under ``mpiexec``
    via ``python -m repro.runtime.mpi_main``); the ledger holds measured
    ``MPI.Wtime`` per stage.  Requires the optional ``mpi4py`` dependency;
    everything else works without it.

Backends produce bit-identical partitions (same collectives, same rank
order); select one per call (``backend="process"``), via an existing
communicator (``comm=...``), or globally with the ``REPRO_BACKEND``
environment variable.
"""

from repro.runtime.costmodel import SUPERMUC_LIKE, SUPERMUC_TOPOLOGY, MachineModel, MachineTopology
from repro.runtime.checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
)
from repro.runtime.comm import (
    BACKENDS,
    Comm,
    CostLedger,
    ShardGrid,
    VirtualComm,
    available_backends,
    backend_max_ranks,
    make_comm,
    register_backend,
    resolve_backend_name,
)
from repro.runtime.distsort import distributed_sort
from repro.runtime.distributed_kmeans import DistributedKMeansResult, distributed_balanced_kmeans
from repro.runtime.faults import FaultPlan, FaultSpec, FaultyComm, InjectedFault
from repro.runtime.scaling import ScalingPoint, strong_scaling, weak_scaling

__all__ = [
    "MachineModel",
    "MachineTopology",
    "SUPERMUC_LIKE",
    "SUPERMUC_TOPOLOGY",
    "BACKENDS",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "Comm",
    "FaultPlan",
    "FaultSpec",
    "FaultyComm",
    "InjectedFault",
    "ShardGrid",
    "VirtualComm",
    "ProcessComm",
    # MPIComm intentionally not in __all__: resolving it needs the optional
    # mpi4py dependency; it is still importable lazily as runtime.MPIComm
    "SharedArray",
    "CostLedger",
    "available_backends",
    "backend_max_ranks",
    "make_comm",
    "register_backend",
    "resolve_backend_name",
    "distributed_sort",
    "distributed_balanced_kmeans",
    "DistributedKMeansResult",
    "weak_scaling",
    "strong_scaling",
    "ScalingPoint",
]


def __getattr__(name):
    # ProcessComm/SharedArray/MPIComm resolve lazily so `import repro` stays
    # light and never requires the optional mpi4py dependency (matching the
    # lazy backend registry in repro.runtime.comm)
    if name in ("ProcessComm", "SharedArray"):
        from repro.runtime import procomm

        return getattr(procomm, name)
    if name == "MPIComm":
        from repro.runtime import mpicomm

        return mpicomm.MPIComm
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
