"""Out-of-core distributed balanced k-means over a :class:`ShardedDataset`.

Runs the exact superstep schedule of
:func:`~repro.runtime.distributed_kmeans.distributed_balanced_kmeans`, but
every O(n) array — per-rank points, weights, ids, assignments, Hamerly
bounds — lives in per-rank spill files (:mod:`repro.io.spill`) instead of
driver memory.  Rank functions receive picklable :class:`SpillHandle`
descriptors, memory-map their own O(n/p) file inside the rank turn,
compute with the very same kernels as the in-memory path, flush, and
return only the small per-superstep products (k-vectors, partial sums)
that flow through the real :class:`~repro.runtime.comm.Comm` collectives.

**Bit-identity.**  On a dataset that also fits in memory, this runner
produces bit-identical assignments, centers, and block weights to the
in-memory path at the same rank count (tested), because every step is the
same computation over the same bytes:

- the global bounding box assembled from per-shard manifest boxes equals
  the in-memory elementwise min/max exactly (min/max are exact and
  grouping-independent);
- the file-mediated sample sort below replicates
  :func:`~repro.runtime.distsort.distributed_sort` operation for
  operation — same stable argsorts, same oversampled splitters, same
  ``searchsorted`` bins, same rank-order piece concatenation, same
  equalising routes — so every rank ends up with the identical sorted
  chunk;
- the balance sweeps call :func:`~repro.core.assign.assign_points` on
  C-contiguous memory maps with ephemeral workspaces, exactly like
  worker-process ranks do on the process backend (whose equivalence to
  the persistent-workspace virtual path is already established): bound
  relaxations apply eagerly, evaluations are exact, assignments match;
- the center/erosion reductions share
  :func:`~repro.core.assign.center_partial_sums` /
  :func:`~repro.core.assign.diameter_partial_sums` with the in-memory
  runner and reduce through the same rank-ordered combine kernels.

**Memory model.**  Peak driver (and per-worker) footprint is O(n/p) — one
rank's working set — never O(n).  The two O(n) artifacts (the final
original-order assignment and the shuffle remap) are written with seek-
based windowed I/O, never mapped wholly, because file-backed mappings
count toward ``RLIMIT_AS`` — the cap the CI memory gate enforces.

Checkpoint/resume uses the same atomic npz store as the in-memory path;
``__meta__.data_digest`` records the dataset's *manifest digest* (cheap to
recompute, covers every shard byte), and the per-shard state arrays are
spilled/loaded one at a time so saving and resuming stay O(n/p) as well.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.core.assign import assign_points, center_partial_sums, diameter_partial_sums
from repro.core.bounds import init_bounds
from repro.core.config import BalancedKMeansConfig
from repro.core.influence import adapt_influence, erode_influence
from repro.core.sampling import doubling_sizes
from repro.core.seeding import seed_positions
from repro.io.sharded import ShardedDataset
from repro.io.spill import SpillHandle, SpillStore
from repro.runtime.checkpoint import (
    CheckpointMismatchError,
    CheckpointStore,
    load_resume_lazy,
    restore_rng,
    rng_state,
    validate_meta,
)
from repro.runtime.comm import Comm, CostLedger, ShardGrid, make_comm
from repro.runtime.costmodel import MachineModel, MachineTopology
from repro.runtime.distributed_kmeans import _relax_influence_local, _relax_movement_local
from repro.sfc.curves import DEFAULT_BITS, sfc_index
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import check_k

__all__ = ["OndiskKMeansResult", "ondisk_distributed_kmeans", "ONDISK_CHECKPOINT_KIND"]

#: ``kind`` tag in checkpoint metadata for out-of-core runs.
ONDISK_CHECKPOINT_KIND = "distributed-kmeans-ondisk"

_SORT_OVERSAMPLE = 8  # matches distributed_sort's default


@dataclass
class OndiskKMeansResult:
    """Out-of-core partition result: handles instead of O(n) arrays.

    ``assignment_handle`` points at the final assignment in the caller's
    original (global row) order; the :attr:`assignment` property
    materialises it — only do that when n fits in memory.  The per-shard
    state handles feed :func:`repro.runtime.shuffle.shuffle_to_disk`.
    """

    assignment_handle: SpillHandle
    centers: np.ndarray
    influence: np.ndarray
    iterations: int
    converged: bool
    imbalance: float
    nranks: int
    block_weights: np.ndarray | None = None
    ledger: CostLedger = field(default_factory=CostLedger)
    backend: str = "virtual"
    measured: bool = False
    spill_dir: str = ""
    shard_points: list[SpillHandle] = field(default_factory=list)
    shard_weights: list[SpillHandle] = field(default_factory=list)
    shard_ids: list[SpillHandle] = field(default_factory=list)
    shard_assignment: list[SpillHandle] = field(default_factory=list)

    @property
    def assignment(self) -> np.ndarray:
        """Materialised original-order assignment (O(n) memory — small runs only)."""
        return self.assignment_handle.read()

    @property
    def simulated_seconds(self) -> float:
        return self.ledger.total_seconds

    def stage_fractions(self) -> dict[str, float]:
        total = self.ledger.total_seconds
        if total <= 0:
            return {}
        return {k: v / total for k, v in sorted(self.ledger.stages.items())}


def _charge_alltoallv(comm: Comm, piece_rows: np.ndarray, row_bytes: int) -> None:
    """Charge the machine model for a file-mediated exchange (modeled backends).

    ``piece_rows[r, j]`` counts rows sent from rank r to rank j; the cost is
    the same bottleneck-bytes formula :func:`combine_alltoallv` charges.
    Measured backends already captured the real I/O time in their supersteps.
    """
    machine = getattr(comm, "machine", None)
    if comm.measured or machine is None:
        return
    p = piece_rows.shape[0]
    bytes_ = piece_rows * row_bytes
    off_diag = bytes_.copy()
    np.fill_diagonal(off_diag, 0)
    max_bytes = int(max(off_diag.sum(axis=1).max(), off_diag.sum(axis=0).max(), 0))
    comm.ledger.charge_comm(machine.alltoallv(max_bytes, comm.nranks), "alltoallv", comm._stage)


def _piece_path(store: SpillStore, tag: str, src: int, dst: int) -> str:
    return os.path.join(store.directory, f"{tag}.{src}to{dst}.npz")


def _exchange(
    comm: Comm,
    store: SpillStore,
    tag: str,
    in_names: dict[str, str],
    out_names: dict[str, str],
    route_of,
    merge_key: str | None = None,
) -> np.ndarray:
    """File-mediated alltoallv: split per-rank arrays by a route, regather.

    ``in_names``/``out_names`` map logical field names to spill-name
    prefixes (``f"{prefix}.{rank}"``).  ``route_of(r, rows)`` returns the
    destination rank of each row of rank ``r``'s arrays.  Receivers
    concatenate pieces in source-rank order — exactly
    :func:`combine_alltoallv`'s ordering — and, when ``merge_key`` names a
    field, stably argsort by it and permute every field (the distributed
    sort's merge step).  Consumed inputs and piece files are deleted.
    Returns the final per-rank row counts.
    """
    p = comm.nranks

    def scatter(r: int) -> np.ndarray:
        first = store.handle(f"{in_names[next(iter(in_names))]}.{r}")
        route = route_of(r, first.rows)
        arrays = {key: np.load(store.path_for(f"{prefix}.{r}")) for key, prefix in in_names.items()}
        counts = np.zeros(p, dtype=np.int64)
        for j in range(p):
            mask = route == j
            counts[j] = int(mask.sum())
            np.savez(_piece_path(store, tag, r, j), **{key: arr[mask] for key, arr in arrays.items()})
        store.remove(*(f"{prefix}.{r}" for prefix in in_names.values()))
        return counts

    piece_rows = np.array(comm.run_local(scatter), dtype=np.int64)
    _charge_alltoallv(comm, piece_rows, _exchange_row_bytes(store, tag, p, piece_rows))

    def gather(r: int) -> np.ndarray:
        handles = [np.load(_piece_path(store, tag, s, r)) for s in range(p)]
        order = None
        if merge_key is not None:
            keys = np.concatenate([h[merge_key] for h in handles])
            order = np.argsort(keys, kind="stable")
        rows = -1
        for key, prefix in out_names.items():
            arr = np.concatenate([h[key] for h in handles])
            if order is not None:
                arr = arr[order]
            store.put(f"{prefix}.{r}", arr)
            rows = arr.shape[0]
        for h in handles:
            h.close()
        for s in range(p):
            os.unlink(_piece_path(store, tag, s, r))
        return np.array([rows], dtype=np.int64)

    rows = comm.run_local(gather)
    return np.concatenate(rows)


def _exchange_row_bytes(store: SpillStore, tag: str, p: int, piece_rows: np.ndarray) -> int:
    """Average bytes per exchanged row, estimated from one non-empty piece."""
    for r in range(p):
        for j in range(p):
            if piece_rows[r, j] > 0:
                size = os.path.getsize(_piece_path(store, tag, r, j))
                return max(1, int(size // int(piece_rows[r, j])))
    return 1


def ondisk_distributed_kmeans(
    dataset: ShardedDataset | str | os.PathLike,
    k: int,
    nranks: int,
    config: BalancedKMeansConfig | None = None,
    machine: MachineModel | None = None,
    rng: int | np.random.Generator | None = None,
    centers: np.ndarray | None = None,
    topology: MachineTopology | None = None,
    backend: str | None = None,
    comm: Comm | None = None,
    spill_dir: str | os.PathLike | None = None,
    keep_scratch: bool = False,
    checkpoint: CheckpointStore | str | None = None,
    checkpoint_every: int = 1,
    resume_from: CheckpointStore | str | None = None,
    provenance: dict | None = None,
) -> OndiskKMeansResult:
    """Out-of-core Geographer over a sharded on-disk dataset.

    Accepts the same knobs as the in-memory runner (weights come from the
    dataset itself); additionally:

    spill_dir:
        Directory for per-rank spill files (default: a fresh temporary
        directory).  The final assignment and per-shard output files live
        here after the call; sort/exchange intermediates are deleted as
        they are consumed unless ``keep_scratch``.
    resume_from:
        Restarts from an out-of-core checkpoint, bit-identically, with
        per-shard state streamed back to spill one shard at a time.
    """
    cfg = config or BalancedKMeansConfig()
    if not isinstance(dataset, ShardedDataset):
        dataset = ShardedDataset(dataset)
    n, dim = dataset.n, dataset.dim
    k = check_k(k, n)
    gen = ensure_rng(rng)
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    ckpt_store = CheckpointStore.ensure(checkpoint)
    input_digest = f"sharded:{dataset.digest}"
    resume = None
    if resume_from is not None:
        arrays, meta = load_resume_lazy(resume_from)
        validate_meta(
            meta,
            kind=ONDISK_CHECKPOINT_KIND,
            config_digest=cfg.digest(),
            input_digest=input_digest,
            checks=[("n", n), ("k", k)],
        )
        gen = restore_rng(meta["rng_state"])
        resume = (arrays, meta)
    if machine is None and topology is not None:
        machine = topology.machine_model()
    owns_comm = comm is None
    if comm is None:
        comm = make_comm(nranks, backend=backend, machine=machine, topology=topology)
    elif comm.nranks != nranks:
        raise ValueError(f"comm has {comm.nranks} ranks but nranks={nranks}")
    if spill_dir is None:
        spill_dir = tempfile.mkdtemp(prefix="repro-ondisk-")
    store = SpillStore(spill_dir)
    prev_stage = comm._stage
    try:
        return _ondisk_kmeans(
            comm, dataset, store, n, dim, k, cfg, gen, centers,
            ckpt_store=ckpt_store, checkpoint_every=checkpoint_every, resume=resume,
            input_digest=input_digest, provenance=provenance, keep_scratch=keep_scratch,
        )
    finally:
        if owns_comm:
            comm.close()
        else:
            comm.set_stage(prev_stage)


def _ondisk_kmeans(
    comm: Comm,
    dataset: ShardedDataset,
    store: SpillStore,
    n: int,
    dim: int,
    k: int,
    cfg: BalancedKMeansConfig,
    gen: np.random.Generator,
    centers: np.ndarray | None,
    ckpt_store: CheckpointStore | None,
    checkpoint_every: int,
    resume: tuple | None,
    input_digest: str,
    provenance: dict | None,
    keep_scratch: bool,
) -> OndiskKMeansResult:
    nshards = int(resume[1]["nshards"]) if resume is not None else comm.nranks
    grid = ShardGrid(comm, nshards)
    if provenance is None and resume is not None:
        provenance = resume[1].get("provenance")
    ckpt_meta = {
        "kind": ONDISK_CHECKPOINT_KIND,
        "config_digest": cfg.digest(),
        "data_digest": input_digest,
        "n": n,
        "k": k,
        "nshards": nshards,
        "checkpoint_every": checkpoint_every,
        "provenance": provenance,
    }
    comm = grid
    p = comm.nranks
    bits = cfg.sfc_bits or DEFAULT_BITS[dim]

    # -- ingest: deal global rows block-wise into per-rank spill files --------
    comm.set_stage("ingest")
    block_bounds = (np.arange(p + 1, dtype=np.int64) * n) // p

    def ingest(r: int) -> np.ndarray:
        lo, hi = int(block_bounds[r]), int(block_bounds[r + 1])
        pts, w, _ = dataset.read_rows(lo, hi)
        if w is None:
            w = np.ones(hi - lo)
        store.put(f"pts0.{r}", pts)
        store.put(f"w0.{r}", w)
        store.put(f"ids0.{r}", np.arange(lo, hi, dtype=np.int64))
        return np.array([hi - lo], dtype=np.int64)

    comm.run_local(ingest)

    # -- global bounding box: exact, straight from the manifest ---------------
    comm.set_stage("sfc_index")
    glo, ghi = dataset.bounding_box()

    def index_rank(r: int) -> np.ndarray:
        pts = store.handle(f"pts0.{r}").open("r")
        keys = sfc_index(np.asarray(pts), curve=cfg.sfc_curve, bits=bits, box=(glo, ghi))
        store.put(f"keys0.{r}", keys)
        return np.zeros(0)

    comm.run_local(index_rank)

    # -- out-of-core sample sort + equalising redistribution ------------------
    comm.set_stage("redistribute")
    counts = _ondisk_sort(comm, store)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])

    try:
        return _ondisk_loop(
            comm, store, counts, offsets, glo, ghi, n, k, dim, cfg, gen, centers,
            ckpt_store=ckpt_store, checkpoint_every=checkpoint_every, resume=resume,
            ckpt_meta=ckpt_meta,
        )
    finally:
        if not keep_scratch:
            _cleanup_scratch(store, p)


def _ondisk_sort(comm: Comm, store: SpillStore) -> np.ndarray:
    """Replicate :func:`distributed_sort` (oversample 8, equalize) on spill files.

    Input: ``keys0.r / pts0.r / w0.r / ids0.r``; output: sorted, equalised
    ``pts.r / w.r / ids.r`` whose rank-order concatenation is the global
    SFC order.  Returns final per-rank row counts.
    """
    p = comm.nranks

    # 1. local stable sort; contribute oversampled splitter candidates
    def local_sort(r: int) -> np.ndarray:
        keys = np.load(store.path_for(f"keys0.{r}"))
        order = np.argsort(keys, kind="stable")
        lk = keys[order]
        store.put(f"k1.{r}", lk)
        for src, dst in (("pts0", "p1"), ("w0", "w1"), ("ids0", "i1")):
            store.put(f"{dst}.{r}", np.load(store.path_for(f"{src}.{r}"))[order])
        store.remove(f"keys0.{r}", f"pts0.{r}", f"w0.{r}", f"ids0.{r}")
        if lk.size == 0:
            return lk[:0]
        # max(oversample, p) samples per rank, like distributed_sort: with
        # fewer the pooled samples collapse into ~oversample quantile
        # clusters and worst-case bins are O(n/oversample) regardless of p,
        # which busts the O(n/p) per-rank budget the memory gate enforces.
        pos = np.linspace(0, lk.size - 1,
                          num=min(max(_SORT_OVERSAMPLE, p), lk.size)).astype(np.int64)
        return lk[pos]

    samples = comm.allgather(comm.run_local(local_sort))
    if p == 1:
        for src, dst in (("p1", "pts"), ("w1", "w"), ("i1", "ids")):
            os.replace(store.path_for(f"{src}.0"), store.path_for(f"{dst}.0"))
        store.remove("k1.0")
        return np.array([store.handle("pts.0").rows], dtype=np.int64)
    samples = np.sort(samples)
    if samples.size == 0:
        raise ValueError("cannot sort an empty dataset")
    splitter_pos = (np.arange(1, p) * samples.size) // p
    splitters = samples[splitter_pos]

    # 2./3. splitter-bin exchange + stable merge by key
    def route_bins(r: int, rows: int) -> np.ndarray:
        keys = store.handle(f"k1.{r}").open("r")
        return np.searchsorted(splitters, np.asarray(keys), side="right")

    counts = _exchange(
        comm, store, "x1",
        in_names={"k": "k1", "p": "p1", "w": "w1", "i": "i1"},
        out_names={"k": "k2", "p": "p2", "w": "w2", "i": "i2"},
        route_of=route_bins,
        merge_key="k",
    )

    # 4. exact equalising redistribution (order-preserving, sizes differ <= 1)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    total = int(counts.sum())

    def route_equalize(r: int, rows: int) -> np.ndarray:
        g = offsets[r] + np.arange(rows, dtype=np.int64)
        return (g * p) // total

    final = _exchange(
        comm, store, "x2",
        in_names={"k": "k2", "p": "p2", "w": "w2", "i": "i2"},
        out_names={"p": "pts", "w": "w", "i": "ids"},
        route_of=route_equalize,
        merge_key=None,
    )
    return final


def _cleanup_scratch(store: SpillStore, p: int) -> None:
    names = []
    for r in range(p):
        names.extend(f"{prefix}.{r}" for prefix in
                     ("keys0", "pts0", "w0", "ids0", "k1", "p1", "w1", "i1",
                      "k2", "p2", "w2", "i2", "perm"))
    store.remove(*names)


def _ondisk_loop(
    comm: Comm,
    store: SpillStore,
    counts: np.ndarray,
    offsets: np.ndarray,
    glo: np.ndarray,
    ghi: np.ndarray,
    n: int,
    k: int,
    dim: int,
    cfg: BalancedKMeansConfig,
    gen: np.random.Generator,
    centers: np.ndarray | None,
    ckpt_store: CheckpointStore | None,
    checkpoint_every: int,
    resume: tuple | None,
    ckpt_meta: dict,
) -> OndiskKMeansResult:
    p = comm.nranks
    PTS = [store.handle(f"pts.{r}") for r in range(p)]
    W = [store.handle(f"w.{r}") for r in range(p)]
    IDS = [store.handle(f"ids.{r}") for r in range(p)]

    resuming = resume is not None
    if resuming:
        arrays, meta = resume
        centers = np.array(arrays["centers"], dtype=np.float64, copy=True)

    # -- SFC seeding from the global sorted order -----------------------------
    comm.set_stage("seeding")
    warm_start = centers is not None
    if warm_start:
        centers = np.array(centers, dtype=np.float64, copy=True)
        if centers.shape != (k, dim):
            raise ValueError(f"warm-start centers must have shape ({k}, {dim})")
    else:
        positions = seed_positions(n, k)

        def local_seeds(r: int) -> np.ndarray:
            inside = (positions >= offsets[r]) & (positions < offsets[r] + counts[r])
            which = np.flatnonzero(inside)
            rows = positions[which] - offsets[r]
            pts = PTS[r].open("r")
            return np.column_stack([which.astype(np.float64), np.asarray(pts[rows])])

        seeds = comm.allgather(comm.run_local(local_seeds)).reshape(-1, dim + 1)
        centers = np.empty((k, dim))
        centers[seeds[:, 0].astype(np.int64)] = seeds[:, 1:]

    influence = np.ones(k)
    total_w = float(comm.allreduce(
        comm.run_local(lambda r: np.array([float(W[r].open("r").sum())]))
    )[0])
    targets = np.full(k, total_w / k)
    extent = ghi - glo
    delta_threshold = cfg.delta_threshold_rel * float(np.linalg.norm(extent))

    # -- per-rank mutable state in spill files --------------------------------
    if resuming:
        influence = np.array(np.asarray(arrays["influence"]), dtype=np.float64, copy=True)
        for s in range(p):
            chunk = np.ascontiguousarray(np.asarray(arrays[f"assign_{s:04d}"]), dtype=np.int64)
            if chunk.shape[0] != int(counts[s]):
                raise CheckpointMismatchError(
                    f"checkpoint shard {s} holds {chunk.shape[0]} points but the "
                    f"redistribution produced {int(counts[s])} — the checkpoint does "
                    "not belong to this dataset/configuration"
                )
            store.put(f"a.{s}", chunk)
            store.put(f"ub.{s}", np.ascontiguousarray(np.asarray(arrays[f"ub_{s:04d}"]), dtype=np.float64))
            store.put(f"lb.{s}", np.ascontiguousarray(np.asarray(arrays[f"lb_{s:04d}"]), dtype=np.float64))
    else:
        for r in range(p):
            store.put(f"a.{r}", np.zeros(int(counts[r]), dtype=np.int64))
            ub, lb = init_bounds(int(counts[r]))
            store.put(f"ub.{r}", ub)
            store.put(f"lb.{r}", lb)
    A = [store.handle(f"a.{r}") for r in range(p)]
    UB = [store.handle(f"ub.{r}") for r in range(p)]
    LB = [store.handle(f"lb.{r}") for r in range(p)]

    rank_rngs = spawn_rngs(gen, p) if not resuming else None

    # -- sampled initialisation rounds ----------------------------------------
    sample_sizes = doubling_sizes(int(counts.min()), cfg) if not warm_start else []
    if not resuming and sample_sizes:
        # same per-rank permutation draws as the in-memory path (each rank's
        # own spawned generator), spilled once and prefix-read per round
        def spill_perm(r: int) -> np.ndarray:
            store.put(f"perm.{r}", rank_rngs[r].permutation(int(counts[r])))
            return np.zeros(0)

        comm.run_local(spill_perm)
    elif not resuming and rank_rngs is not None:
        # in-memory draws the permutations unconditionally; match the draws
        # (they come from the spawned children, not ``gen``) without spilling
        for r in range(p):
            rank_rngs[r].permutation(int(counts[r]))

    incremental = bool(cfg.use_incremental and cfg.use_bounds)

    def one_phase(sample_size: int | None, block_w0: np.ndarray | None = None):
        """Mirror of the in-memory ``one_phase`` on spill handles."""
        nonlocal influence
        if sample_size is None:
            s_pts, s_w, s_a = PTS, W, A
            s_ub, s_lb = UB, LB
            s_targets = targets
        else:
            sub_rows = [min(sample_size, int(counts[r])) for r in range(p)]

            def make_subset(r: int) -> np.ndarray:
                sel = np.asarray(store.handle(f"perm.{r}").open("r")[: sub_rows[r]])
                pts = np.asarray(PTS[r].open("r"))[sel]
                w = np.asarray(W[r].open("r"))[sel]
                store.put(f"s_pts.{r}", pts)
                store.put(f"s_w.{r}", w)
                store.put(f"s_a.{r}", np.zeros(sel.shape[0], dtype=np.int64))
                ub, lb = init_bounds(sel.shape[0])
                store.put(f"s_ub.{r}", ub)
                store.put(f"s_lb.{r}", lb)
                return np.array([float(w.sum())])

            wsums = comm.run_local(make_subset)
            s_pts = [store.handle(f"s_pts.{r}") for r in range(p)]
            s_w = [store.handle(f"s_w.{r}") for r in range(p)]
            s_a = [store.handle(f"s_a.{r}") for r in range(p)]
            s_ub = [store.handle(f"s_ub.{r}") for r in range(p)]
            s_lb = [store.handle(f"s_lb.{r}") for r in range(p)]
            frac = sum(float(ws[0]) for ws in wsums) / total_w
            s_targets = targets * frac
        balanced = False
        block_w = (np.array(block_w0, dtype=np.float64, copy=True)
                   if (incremental and block_w0 is not None) else None)
        for bit in range(cfg.max_balance_iterations):
            comm.set_stage("kmeans")

            if block_w is not None:

                def sweep_delta(r: int) -> np.ndarray:
                    pts = s_pts[r].open("r")
                    w = s_w[r].open("r")
                    a = s_a[r].open("r+")
                    ub = s_ub[r].open("r+")
                    lb = s_lb[r].open("r+")
                    delta = np.zeros(k)
                    assign_points(pts, centers, influence, a, ub, lb, cfg,
                                  workspace=None, weights=w, delta_out=delta)
                    a.flush(); ub.flush(); lb.flush()
                    return delta

                block_w = block_w + comm.allreduce(comm.run_local(sweep_delta))
            else:

                def sweep(r: int) -> np.ndarray:
                    pts = s_pts[r].open("r")
                    w = s_w[r].open("r")
                    a = s_a[r].open("r+")
                    ub = s_ub[r].open("r+")
                    lb = s_lb[r].open("r+")
                    assign_points(pts, centers, influence, a, ub, lb, cfg, workspace=None)
                    a.flush(); ub.flush(); lb.flush()
                    return np.bincount(np.asarray(a), weights=np.asarray(w), minlength=k)

                block_w = comm.allreduce(comm.run_local(sweep))
            imbalance = float((block_w / s_targets).max() - 1.0)
            if imbalance <= cfg.epsilon:
                balanced = True
                break
            if bit == cfg.max_balance_iterations - 1:
                break
            old_influence = influence.copy()
            influence = adapt_influence(
                influence, block_w, s_targets, dim,
                cap=cfg.influence_change_cap, floor=cfg.influence_floor, ceil=cfg.influence_ceil,
            )
            if cfg.use_bounds:

                def relax_rank(r: int) -> np.ndarray:
                    a = s_a[r].open("r")
                    ub = s_ub[r].open("r+")
                    lb = s_lb[r].open("r+")
                    _relax_influence_local((ub, lb), a, old_influence, influence, None, cfg)
                    ub.flush(); lb.flush()
                    return np.zeros(0)

                comm.run_local(relax_rank)
            if not incremental:
                block_w = None

        def partial_sums(r: int) -> np.ndarray:
            return center_partial_sums(s_pts[r].open("r"), s_w[r].open("r"),
                                       s_a[r].open("r"), k)

        totals = comm.allreduce(comm.run_local(partial_sums)).reshape(k, dim + 1)
        wsum = totals[:, dim]
        new_centers = np.where(wsum[:, None] > 0,
                               totals[:, :dim] / np.maximum(wsum, 1e-300)[:, None], centers)
        deltas = np.linalg.norm(new_centers - centers, axis=1)

        old_influence = influence.copy()
        if cfg.use_erosion:

            def diameter_sums(r: int) -> np.ndarray:
                return diameter_partial_sums(s_pts[r].open("r"), s_w[r].open("r"),
                                             s_a[r].open("r"), new_centers)

            dsums = comm.allreduce(comm.run_local(diameter_sums))
            sq_sums, cnts = dsums[:k], dsums[k:]
            with np.errstate(invalid="ignore", divide="ignore"):
                diam = 2.0 * np.sqrt(np.where(cnts > 0, sq_sums / np.maximum(cnts, 1e-300), 0.0))
            positive = diam[diam > 0]
            beta = float(positive.mean()) if positive.size else 0.0
            influence = erode_influence(influence, deltas, beta,
                                        floor=cfg.influence_floor, ceil=cfg.influence_ceil)
        if sample_size is None and cfg.use_bounds:

            def relax_full(r: int) -> np.ndarray:
                a = A[r].open("r")
                ub = UB[r].open("r+")
                lb = LB[r].open("r+")
                _relax_influence_local((ub, lb), a, old_influence, influence, None, cfg)
                _relax_movement_local((ub, lb), a, deltas, influence, None, cfg)
                ub.flush(); lb.flush()
                return np.zeros(0)

            comm.run_local(relax_full)
        if sample_size is not None:
            store.remove(*(f"s_{nm}.{r}" for nm in ("pts", "w", "a", "ub", "lb")
                           for r in range(p)))
        return float(deltas.max()), new_centers, balanced, block_w

    for size in sample_sizes:
        _, centers, _, _ = one_phase(size)

    converged = False
    iterations = 0
    final_imbalance = np.inf
    prev_block_w: np.ndarray | None = None
    start_it = 0
    if resuming:
        start_it = int(meta["iteration"])
        iterations = start_it
        block_w = np.array(np.asarray(arrays["block_w"]), dtype=np.float64, copy=True)
        final_imbalance = float((block_w / targets).max() - 1.0)
        if incremental:
            prev_block_w = block_w
    for it in range(start_it, cfg.max_iterations):
        iterations = it + 1
        max_delta, new_centers, balanced, block_w = one_phase(None, prev_block_w)
        if incremental:
            final_imbalance = float((block_w / targets).max() - 1.0)
            prev_block_w = block_w
        else:

            def full_bincount(r: int) -> np.ndarray:
                return np.bincount(np.asarray(A[r].open("r")),
                                   weights=np.asarray(W[r].open("r")), minlength=k)

            block_w = comm.allreduce(comm.run_local(full_bincount))
            final_imbalance = float((block_w / targets).max() - 1.0)
        if max_delta < delta_threshold and balanced:
            converged = True
            break
        centers = new_centers
        if ckpt_store is not None and (it + 1) % checkpoint_every == 0:
            comm.set_stage("checkpoint")
            ck_arrays: dict = {
                "centers": np.asarray(centers, dtype=np.float64),
                "influence": np.asarray(influence, dtype=np.float64),
                "block_w": np.asarray(block_w, dtype=np.float64),
            }
            for s in range(p):
                ck_arrays[f"assign_{s:04d}"] = A[s]
                ck_arrays[f"ub_{s:04d}"] = UB[s]
                ck_arrays[f"lb_{s:04d}"] = LB[s]
            meta_out = dict(ckpt_meta)
            meta_out["iteration"] = int(it + 1)
            meta_out["rng_state"] = rng_state(gen)
            ckpt_store.save(ck_arrays, meta_out)

    # -- scatter the assignment back to original (global row) order ----------
    comm.set_stage("gather")
    assignment_handle = _scatter_to_original_order(comm, store, A, IDS, n)

    return OndiskKMeansResult(
        assignment_handle=assignment_handle,
        centers=centers,
        influence=influence,
        iterations=iterations,
        converged=converged,
        imbalance=final_imbalance,
        nranks=p,
        block_weights=np.array(block_w, dtype=np.float64, copy=True),
        ledger=comm.ledger,
        backend=comm.kind,
        measured=comm.measured,
        spill_dir=store.directory,
        shard_points=PTS,
        shard_weights=W,
        shard_ids=IDS,
        shard_assignment=A,
    )


def _scatter_to_original_order(
    comm: Comm,
    store: SpillStore,
    values: list[SpillHandle],
    ids: list[SpillHandle],
    n: int,
    name: str = "assignment",
) -> SpillHandle:
    """External scatter: write ``out[ids[r]] = values[r]`` with O(n/p) memory.

    Ranks bucket their (id, value) pairs by contiguous id range; each
    bucket is then assembled in memory (one bucket is O(n/p) rows) and
    written to the output file through seek-based windowed I/O — the O(n)
    result file is never memory-mapped, keeping the address-space footprint
    bounded.  Every id must appear exactly once across ranks.
    """
    p = comm.nranks
    bucket_bounds = (np.arange(p + 1, dtype=np.int64) * n) // p
    dtype = np.dtype(values[0].dtype)

    def scatter(r: int) -> np.ndarray:
        ids_r = np.asarray(ids[r].read())
        vals_r = np.asarray(values[r].read())
        sizes = np.zeros(p, dtype=np.int64)
        for b in range(p):
            mask = (ids_r >= bucket_bounds[b]) & (ids_r < bucket_bounds[b + 1])
            sizes[b] = int(mask.sum())
            np.savez(_piece_path(store, f"fin-{name}", r, b), i=ids_r[mask], v=vals_r[mask])
        return sizes

    piece_rows = np.array(comm.run_local(scatter), dtype=np.int64)
    out = store.create(name, (n,) + tuple(values[0].shape[1:]), dtype)
    for b in range(p):
        lo, hi = int(bucket_bounds[b]), int(bucket_bounds[b + 1])
        got = int(piece_rows[:, b].sum())
        if got != hi - lo:
            raise RuntimeError(
                f"scatter bucket {b} received {got} rows for {hi - lo} ids — "
                "ids are not a permutation of the output range"
            )
        parts = [np.load(_piece_path(store, f"fin-{name}", r, b)) for r in range(p)]
        ids_cat = np.concatenate([prt["i"] for prt in parts])
        vals_cat = np.concatenate([prt["v"] for prt in parts])
        for prt in parts:
            prt.close()
        buf = np.empty((hi - lo,) + tuple(values[0].shape[1:]), dtype=dtype)
        buf[ids_cat - lo] = vals_cat
        out.write_rows(lo, buf)
        for r in range(p):
            os.unlink(_piece_path(store, f"fin-{name}", r, b))
    return out
