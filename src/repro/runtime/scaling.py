"""Weak/strong-scaling drivers (machinery behind Figures 3a, 3b and 4).

Every curve point carries a **modeled** wall-clock on the SuperMUC-like
machine model, derived from per-stage *operation counts* (from the
algorithms' structure) divided by the machine's compute rate, plus the
collective costs of the machine model.  For small rank counts the full
simulated SPMD run also executes ("measured" mode), which serves two
purposes: it validates the op-count structure (iteration and reduction
counts are *calibrated* from the real run, not assumed) and it proves the
algorithm actually produces balanced partitions at that configuration.
Python wall-clock is not comparable to the modeled C++/MPI machine, so
curves always plot the modeled seconds; the measured runs back the points
marked "measured".  EXPERIMENTS.md discusses this substitution.

The tools' cost structures (what the model charges):

- **RCB/RIB**: ``log2 k`` bisection levels, each with a weighted-median
  search (~12 scalar allreduces) *and a data migration* (alltoallv moving
  half the local points).  The per-level migration is what ruins their
  scaling in the paper (Fig. 3).
- **MultiJagged**: ``d`` multisection levels, ~4 cut-refinement rounds with
  one vector allreduce each, *no data migration* — near-flat weak scaling.
- **HSFC**: Hilbert indexing + one distributed sort (alltoallv) — near-flat.
- **Geographer**: Hilbert indexing + one distributed sort + k-means
  iterations, each with a handful of ``k``-float allreduces (assignment
  sweeps are rank-local); per-iteration work also has a ``k log k`` term
  (sorting centers against the local bounding box, Algorithm 1 line 6)
  which grows when k = p rises in strong scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BalancedKMeansConfig
from repro.runtime.comm import backend_max_ranks
from repro.runtime.costmodel import SUPERMUC_LIKE, MachineModel
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
from repro.util.rng import ensure_rng

__all__ = ["ScalingPoint", "CostCalibration", "calibrate", "modeled_time", "weak_scaling", "strong_scaling"]

_TOOLS = ("Geographer", "MultiJagged", "RCB", "RIB", "HSFC")
_POINT_BYTES = 8 * 3  # coords + key payload per point during migration

# Per-point operation counts from the algorithms' inner loops.  These are
# structural constants (loop lengths), not timings: e.g. a Hilbert index is
# ~3 ops per bit level x 24 levels; one k-means candidate evaluation is ~3d
# ops and ~8 candidates survive pruning while ~80 % of points are skipped.
_OPS_HILBERT_PER_POINT = 75.0
_OPS_KMEANS_PER_POINT_SWEEP = 55.0
_OPS_SORT_PER_POINT_PER_LOGN = 2.0
_OPS_MEDIAN_PER_POINT_PER_LEVEL = 6.0
_MEDIAN_ROUNDS = 12.0  # allreduce rounds per weighted-median search
_MJ_REFINE_ROUNDS = 4.0  # cut-refinement rounds per MJ level
_MJ_BINS = 250.0  # weight-histogram bins per cut in MJ's refinement reduce


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve (seconds = modeled machine time)."""

    tool: str
    nranks: int
    n: int
    k: int
    seconds: float
    mode: str  # "measured" (backed by a real run on an execution backend) | "modeled"
    breakdown: dict = field(default_factory=dict)
    measured_wall: float | None = None  # wall-clock of the backing simulated run
    imbalance: float | None = None


@dataclass(frozen=True)
class CostCalibration:
    """Algorithm-structure constants measured from one real simulated run."""

    kmeans_iterations: int
    reduces_per_iteration: float


def calibrate(
    points_per_rank: int = 1500,
    nranks: int = 4,
    machine: MachineModel | None = None,
    rng: int | np.random.Generator | None = None,
    dim: int = 2,
    backend: str | None = None,
) -> CostCalibration:
    """Extract iteration/reduction counts from one small calibration run.

    ``backend`` selects the execution backend of the run; iteration and
    reduction counts are bit-identical across backends, so the calibration
    is too.  Backends with a bounded communicator (MPI: the real
    ``mpiexec`` size) clamp the calibration rank count to what can execute.
    """
    gen = ensure_rng(rng)
    cap = backend_max_ranks(backend)
    if cap is not None:
        nranks = min(nranks, cap)
    n = points_per_rank * nranks
    pts = gen.random((n, dim))
    cfg = BalancedKMeansConfig(use_sampling=False)
    result = distributed_balanced_kmeans(pts, k=nranks, nranks=nranks, config=cfg, machine=machine,
                                         rng=gen, backend=backend)
    iters = max(result.iterations, 1)
    reduces = result.ledger.collective_counts.get("allreduce", iters)
    return CostCalibration(
        kmeans_iterations=iters,
        reduces_per_iteration=max(1.0, reduces / iters),
    )


def modeled_time(
    tool: str,
    n: int,
    nranks: int,
    k: int,
    calib: CostCalibration,
    machine: MachineModel | None = None,
    dim: int = 2,
) -> tuple[float, dict]:
    """Modeled running time of ``tool`` on the machine model.

    Returns ``(seconds, stage breakdown)``.
    """
    m = machine or SUPERMUC_LIKE
    if tool not in _TOOLS:
        raise ValueError(f"unknown tool {tool!r}; choose from {_TOOLS}")
    local_n = max(1.0, n / nranks)
    log_local = max(1.0, math.log2(local_n))
    breakdown: dict[str, float] = {}

    def sfc_stages() -> None:
        breakdown["sfc_index"] = m.compute(_OPS_HILBERT_PER_POINT * local_n)
        breakdown["redistribute"] = (
            m.compute(_OPS_SORT_PER_POINT_PER_LOGN * log_local * local_n)
            + m.allgather(16 * 8, nranks)  # splitter sample
            + 2 * m.alltoallv(local_n * _POINT_BYTES, nranks)  # exchange + equalise
        )

    if tool == "Geographer":
        sfc_stages()
        iters = calib.kmeans_iterations
        sweeps = max(1.0, calib.reduces_per_iteration - 1.0)  # balance sweeps per iteration
        # Hamerly bounds skip ~80 % of points after the first sweep of a phase
        effective_sweeps = 1.0 + 0.25 * (sweeps - 1.0)
        point_ops = _OPS_KMEANS_PER_POINT_SWEEP * local_n * effective_sweeps * iters
        center_ops = iters * sweeps * k * max(1.0, math.log2(max(k, 2)))
        reduce_cost = m.allreduce(k * 8 * (dim + 1), nranks)
        breakdown["kmeans"] = (
            m.compute(point_ops + center_ops)
            + iters * calib.reduces_per_iteration * reduce_cost
        )
    elif tool == "HSFC":
        sfc_stages()
        breakdown["chunking"] = m.allreduce(8 * 8, nranks)
    elif tool == "MultiJagged":
        levels = dim
        per_level_cuts = max(2.0, k ** (1.0 / levels))
        breakdown["multisection"] = (
            m.compute(_OPS_MEDIAN_PER_POINT_PER_LEVEL * local_n * levels * _MJ_REFINE_ROUNDS)
            + levels * _MJ_REFINE_ROUNDS * m.allreduce(per_level_cuts * _MJ_BINS * 8, nranks)
        )
    else:  # RCB / RIB: log2(k) levels with median search AND migration
        levels = max(1.0, math.log2(k))
        extra = 1.4 if tool == "RIB" else 1.0  # RIB adds the inertial projection
        breakdown["bisection"] = (
            m.compute(_OPS_MEDIAN_PER_POINT_PER_LEVEL * _MEDIAN_ROUNDS * local_n * levels * extra)
            + levels * _MEDIAN_ROUNDS * m.allreduce(8, nranks)
            + levels * m.alltoallv(local_n * _POINT_BYTES / 2.0, nranks)
        )
    return sum(breakdown.values()), breakdown


def _curve(
    tool: str,
    configs: list[tuple[int, int, int]],  # (p, n, k)
    measured_max_ranks: int,
    machine: MachineModel | None,
    calib: CostCalibration,
    rng: np.random.Generator,
    dim: int,
    backend: str | None = None,
) -> list[ScalingPoint]:
    out: list[ScalingPoint] = []
    for p, n, k in configs:
        secs, breakdown = modeled_time(tool, n, p, k, calib, machine, dim)
        measured_wall = None
        imbalance = None
        mode = "modeled"
        if p <= measured_max_ranks and n <= 200_000:
            # back the point with a real simulated run
            pts = rng.random((n, dim))
            if tool == "Geographer":
                cfg = BalancedKMeansConfig(use_sampling=False)
                res = distributed_balanced_kmeans(pts, k=k, nranks=p, config=cfg, machine=machine,
                                                  rng=rng, backend=backend)
                measured_wall = res.ledger.total_seconds
                imbalance = res.imbalance
            else:
                import time

                from repro.partitioners.base import get_partitioner

                start = time.perf_counter()
                result = get_partitioner(tool).partition(pts, k)
                measured_wall = time.perf_counter() - start
                imbalance = float(np.bincount(result.assignment, minlength=k).max() / (n / k) - 1.0)
            mode = "measured"
        out.append(ScalingPoint(tool, p, n, k, secs, mode, breakdown, measured_wall, imbalance))
    return out


def _clamp_measured_ranks(measured_max_ranks: int, backend: str | None) -> int:
    """Measured points can only use ranks the backend can actually execute.

    Unbounded backends (virtual, process) keep the requested cutoff; the MPI
    backend caps it at the real communicator size fixed at ``mpiexec``
    launch — larger curve points stay modeled, exactly like points beyond
    the requested ``measured_max_ranks``.
    """
    cap = backend_max_ranks(backend)
    return measured_max_ranks if cap is None else min(measured_max_ranks, cap)


def weak_scaling(
    tools: tuple[str, ...] = _TOOLS,
    points_per_rank: int = 4000,
    rank_counts: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
    measured_max_ranks: int = 16,
    machine: MachineModel | None = None,
    rng: int | np.random.Generator | None = None,
    dim: int = 2,
    backend: str | None = None,
) -> list[ScalingPoint]:
    """Figure 3a: p = k doubles, n/p fixed (paper: 250k/rank, 32..8192 ranks)."""
    gen = ensure_rng(rng)
    measured_max_ranks = _clamp_measured_ranks(measured_max_ranks, backend)
    calib = calibrate(machine=machine, rng=gen, dim=dim, backend=backend)
    out: list[ScalingPoint] = []
    configs = [(p, p * points_per_rank, p) for p in rank_counts]
    for tool in tools:
        out.extend(_curve(tool, configs, measured_max_ranks, machine, calib, gen, dim, backend))
    return out


def strong_scaling(
    tools: tuple[str, ...] = _TOOLS,
    n: int = 2_000_000_000,
    rank_counts: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384),
    measured_max_ranks: int = 16,
    machine: MachineModel | None = None,
    rng: int | np.random.Generator | None = None,
    dim: int = 2,
    backend: str | None = None,
) -> list[ScalingPoint]:
    """Figure 3b: fixed n (paper: Delaunay2B), p = k doubling to 16384."""
    gen = ensure_rng(rng)
    measured_max_ranks = _clamp_measured_ranks(measured_max_ranks, backend)
    calib = calibrate(machine=machine, rng=gen, dim=dim, backend=backend)
    out: list[ScalingPoint] = []
    configs = [(p, n, p) for p in rank_counts]
    for tool in tools:
        out.extend(_curve(tool, configs, measured_max_ranks, machine, calib, gen, dim, backend))
    return out
