"""Distributed Geographer: balanced k-means over the SPMD runtime.

Mirrors the paper's parallelisation exactly (§4.1, Algorithms 1-2):

- points start block-distributed over ``p`` ranks;
- every rank computes Hilbert indices of its local points (global box);
- a distributed sort + equalising redistribution gives each rank a
  contiguous, spatially compact chunk (stage "redistribute");
- initial centers sit at positions ``i*n/k + n/(2k)`` of the *global* sorted
  order — ranks owning those positions contribute them via one allgather;
- each balance iteration performs rank-local assignment sweeps (with the
  same Hamerly bounds / box pruning kernels as the serial code) followed by
  one ``k``-float allreduce of block weights — the *only* communication in
  Algorithm 1 (line 31);
- each movement iteration adds one ``k x (d+1)`` allreduce for the weighted
  center sums (Algorithm 2, line 13).

The algorithm is written against the :class:`~repro.runtime.comm.Comm`
protocol: rank functions return the small per-superstep products (block
weights, partial sums), while all large rank-local state — points, weights,
assignments, Hamerly bounds — lives in :meth:`~repro.runtime.comm.Comm.share`
arrays that rank functions mutate in place, so the same code runs on every
execution backend and each superstep ships only kilobytes of handles and
centers.  On the default ``"virtual"`` backend ranks execute in-process and
the ledger holds the machine-model wall-clock used by the scaling figures;
on the ``"process"`` backend each rank is a real worker process mutating the
shared segments, and on the ``"mpi"`` backend each rank is a real MPI
process mutating its rank-resident copies (driver-side reads of mutated
state go through :meth:`~repro.runtime.comm.Comm.collect`); measured
backends hold measured wall-clock per stage.  Results are bit-identical
across backends (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.assign import assign_points, center_partial_sums, diameter_partial_sums
from repro.core.bounds import (
    init_bounds,
    relax_for_influence,
    relax_for_influence_exclusive,
    relax_for_movement,
    relax_for_movement_exclusive,
)
from repro.core.config import BalancedKMeansConfig
from repro.core.influence import adapt_influence, erode_influence
from repro.core.kernels import SweepWorkspace
from repro.core.sampling import doubling_sizes
from repro.core.seeding import seed_positions
from repro.runtime.checkpoint import (
    CheckpointMismatchError,
    CheckpointStore,
    data_digest,
    load_resume,
    restore_rng,
    rng_state,
    validate_meta,
)
from repro.runtime.comm import Comm, CostLedger, ShardGrid, make_comm
from repro.runtime.costmodel import MachineModel, MachineTopology
from repro.runtime.distsort import distributed_sort
from repro.sfc.curves import DEFAULT_BITS, sfc_index
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import check_k, check_points, check_weights

__all__ = ["DistributedKMeansResult", "distributed_balanced_kmeans"]

#: ``kind`` tag in checkpoint metadata (rejects resuming the wrong algorithm).
CHECKPOINT_KIND = "distributed-kmeans"


@dataclass
class DistributedKMeansResult:
    """Partition plus execution diagnostics.

    ``ledger`` holds modeled seconds on the virtual backend and measured
    wall-clock on process backends (``measured`` records which).
    """

    assignment: np.ndarray  # in the caller's original point order
    centers: np.ndarray
    influence: np.ndarray
    iterations: int
    converged: bool
    imbalance: float
    nranks: int
    ledger: CostLedger = field(default_factory=CostLedger)
    backend: str = "virtual"
    measured: bool = False
    #: final global per-block weights (the k-vector behind ``imbalance``);
    #: exposed so the out-of-core path's bit-identity can be asserted on it
    block_weights: np.ndarray | None = None

    @property
    def simulated_seconds(self) -> float:
        return self.ledger.total_seconds

    def stage_fractions(self) -> dict[str, float]:
        """Share of ledger time per stage (the §5.3.2 component split)."""
        total = self.ledger.total_seconds
        if total <= 0:
            return {}
        return {k: v / total for k, v in sorted(self.ledger.stages.items())}


def _split_blocks(n: int, p: int) -> list[np.ndarray]:
    """Initial block distribution: rank r owns indices [r*n/p, (r+1)*n/p)."""
    bounds = (np.arange(p + 1) * n) // p
    return [np.arange(bounds[r], bounds[r + 1], dtype=np.int64) for r in range(p)]


def _relax_influence_local(bounds, assignment, old_influence, new_influence, workspace, cfg) -> None:
    """Rank-local influence relaxation (exclusive form in incremental mode).

    Module-level so the rank closure ships cleanly to worker processes;
    notifies the rank's persistent workspace (driver-resident backends only —
    worker ranks rebuild ephemeral workspaces and pass ``None``).
    """
    ub, lb = bounds
    if workspace is not None and workspace.queue_relax_influence(assignment, ub, lb, old_influence, new_influence):
        return
    relax = relax_for_influence_exclusive if cfg.use_incremental else relax_for_influence
    ratio_max, ratio_min = relax(ub, lb, assignment, old_influence, new_influence)
    if workspace is not None:
        workspace.note_influence_relax(ratio_max, ratio_min)


def _relax_movement_local(bounds, assignment, deltas, influence, workspace, cfg) -> None:
    """Rank-local movement relaxation (exclusive form in incremental mode)."""
    ub, lb = bounds
    if workspace is not None and workspace.queue_relax_movement(assignment, ub, lb, deltas, influence):
        return
    relax = relax_for_movement_exclusive if cfg.use_incremental else relax_for_movement
    growth, shrink = relax(ub, lb, assignment, deltas, influence)
    if workspace is not None:
        workspace.note_movement_relax(growth, shrink)


def _save_checkpoint(
    comm: Comm,
    store: CheckpointStore,
    meta_base: dict,
    iteration: int,
    gen: np.random.Generator,
    centers: np.ndarray,
    influence: np.ndarray,
    block_w: np.ndarray,
    assignment: list[np.ndarray],
    bound_pairs: list[tuple[np.ndarray, np.ndarray]],
    fault_plan=None,
) -> None:
    """Snapshot the loop state at an iteration boundary (atomic npz).

    Per-shard assignment and Hamerly bounds are read through
    :meth:`~repro.runtime.comm.Comm.collect` (rank-authoritative, so this is
    correct on MPI too).  Bounds relaxations are applied eagerly during the
    sweeps, so the collected (ub, lb) are exactly the values an uninterrupted
    run would carry into the next iteration — which is what makes resume
    bit-identical.
    """
    comm.set_stage("checkpoint")
    arrays = {
        "centers": np.asarray(centers, dtype=np.float64),
        "influence": np.asarray(influence, dtype=np.float64),
        "block_w": np.asarray(block_w, dtype=np.float64),
    }
    assign_chunks = comm.collect(assignment)
    ub_chunks = comm.collect([pair[0] for pair in bound_pairs])
    lb_chunks = comm.collect([pair[1] for pair in bound_pairs])
    for s in range(comm.nranks):
        arrays[f"assign_{s:04d}"] = np.asarray(assign_chunks[s], dtype=np.int64)
        arrays[f"ub_{s:04d}"] = np.asarray(ub_chunks[s], dtype=np.float64)
        arrays[f"lb_{s:04d}"] = np.asarray(lb_chunks[s], dtype=np.float64)
    meta = dict(meta_base)
    meta["iteration"] = int(iteration)
    meta["rng_state"] = rng_state(gen)
    store.save(arrays, meta, faults=fault_plan)


def distributed_balanced_kmeans(
    points: np.ndarray,
    k: int,
    nranks: int,
    weights: np.ndarray | None = None,
    config: BalancedKMeansConfig | None = None,
    machine: MachineModel | None = None,
    rng: int | np.random.Generator | None = None,
    centers: np.ndarray | None = None,
    topology: MachineTopology | None = None,
    backend: str | None = None,
    comm: Comm | None = None,
    checkpoint: CheckpointStore | str | None = None,
    checkpoint_every: int = 1,
    resume_from: CheckpointStore | str | None = None,
    provenance: dict | None = None,
) -> DistributedKMeansResult:
    """Run Geographer on ``nranks`` SPMD processes (virtual or real).

    ``points`` is the global point set; it is dealt out block-wise to the
    ranks (as if read from a partitioned file), then redistributed by
    Hilbert index exactly as the paper describes.

    ``centers`` warm-starts the run (repartitioning): SFC seeding's allgather
    and the sampled initialisation rounds are skipped, exactly as in the
    serial :func:`~repro.core.balanced_kmeans.balanced_kmeans` path.

    ``topology`` attaches a machine hierarchy so every allreduce is costed as
    staged per-level reductions (cores → nodes → islands) instead of one flat
    tree; ``topology.total`` must equal ``nranks``.

    ``backend`` selects the execution backend (``"virtual"`` | ``"process"``
    | ``"mpi"``; default: the ``REPRO_BACKEND`` env var, then ``"virtual"``;
    ``"mpi"`` requires an SPMD launch, see :mod:`repro.runtime.mpi_main`).
    Pass an existing communicator via ``comm`` instead to reuse its workers and read
    its ledger afterwards; a comm this function creates is always closed
    before returning, even on error, and a reused comm gets every segment
    this run shared released and its stage label restored.

    ``checkpoint`` (a :class:`~repro.runtime.checkpoint.CheckpointStore` or a
    directory path) snapshots the full algorithm state every
    ``checkpoint_every`` iterations; ``resume_from`` (a store, directory, or
    checkpoint file) restarts from such a snapshot and is **bit-identical**
    to the uninterrupted run — including on a different ``nranks``: the run's
    original rank count becomes the fixed logical shard grid
    (:class:`~repro.runtime.comm.ShardGrid`), so re-sharding never changes
    any floating-point reduction order.  The checkpoint is validated against
    the configuration and input data (loud
    :class:`~repro.runtime.checkpoint.CheckpointMismatchError` on any
    mismatch).  ``provenance`` is an optional JSON-serialisable dict stored
    in checkpoint metadata so the CLI can rebuild the dataset on ``resume``.

    ``points`` may also be a :class:`~repro.io.sharded.ShardedDataset`
    (weights then come from the dataset): the call delegates to the
    out-of-core runner
    (:func:`~repro.runtime.ondisk.ondisk_distributed_kmeans`), which is
    bit-identical on fitting data and returns an
    :class:`~repro.runtime.ondisk.OndiskKMeansResult`.
    """
    from repro.io.sharded import ShardedDataset  # runtime<->io import cycle guard

    if isinstance(points, ShardedDataset):
        if weights is not None:
            raise ValueError("a ShardedDataset carries its own weights; pass weights=None")
        from repro.runtime.ondisk import ondisk_distributed_kmeans

        return ondisk_distributed_kmeans(
            points, k, nranks, config=config, machine=machine, rng=rng,
            centers=centers, topology=topology, backend=backend, comm=comm,
            checkpoint=checkpoint, checkpoint_every=checkpoint_every,
            resume_from=resume_from, provenance=provenance,
        )
    cfg = config or BalancedKMeansConfig()
    pts = check_points(points)
    n = pts.shape[0]
    k = check_k(k, n)
    w = check_weights(weights, n)
    gen = ensure_rng(rng)
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    store = CheckpointStore.ensure(checkpoint)
    input_digest = data_digest(pts, w, extra=f"n={n},k={k}")
    resume = None
    if resume_from is not None:
        arrays, meta = load_resume(resume_from)
        validate_meta(
            meta,
            kind=CHECKPOINT_KIND,
            config_digest=cfg.digest(),
            input_digest=input_digest,
            checks=[("n", n), ("k", k)],
        )
        gen = restore_rng(meta["rng_state"])
        resume = (arrays, meta)
    if machine is None and topology is not None:
        machine = topology.machine_model()
    owns_comm = comm is None
    if comm is None:
        comm = make_comm(nranks, backend=backend, machine=machine, topology=topology)
    elif comm.nranks != nranks:
        raise ValueError(f"comm has {comm.nranks} ranks but nranks={nranks}")
    prev_stage = comm._stage
    try:
        return _distributed_balanced_kmeans(
            comm, pts, k, w, cfg, gen, centers,
            store=store, checkpoint_every=checkpoint_every, resume=resume,
            input_digest=input_digest, provenance=provenance,
        )
    finally:
        if owns_comm:
            comm.close()
        else:  # leave a reused communicator the way we found it
            comm.set_stage(prev_stage)


def _distributed_balanced_kmeans(
    comm: Comm,
    pts: np.ndarray,
    k: int,
    w: np.ndarray,
    cfg: BalancedKMeansConfig,
    gen: np.random.Generator,
    centers: np.ndarray | None,
    store: CheckpointStore | None = None,
    checkpoint_every: int = 1,
    resume: tuple[dict, dict] | None = None,
    input_digest: str | None = None,
    provenance: dict | None = None,
) -> DistributedKMeansResult:
    # The logical shard count is fixed at the run's first launch and recorded
    # in every checkpoint: a resume on a different physical rank count keeps
    # computing over the *same* S shards (ShardGrid maps them onto whatever
    # workers exist), so block splits, the distributed sort, and every
    # floating-point reduction order are preserved bit-for-bit.
    nshards = int(resume[1]["nshards"]) if resume is not None else comm.nranks
    grid = ShardGrid(comm, nshards)
    fault_plan = getattr(comm, "fault_plan", None)
    if provenance is None and resume is not None:
        provenance = resume[1].get("provenance")
    ckpt_meta = {
        "kind": CHECKPOINT_KIND,
        "config_digest": cfg.digest(),
        "data_digest": input_digest,
        "n": pts.shape[0],
        "k": k,
        "nshards": nshards,
        "checkpoint_every": checkpoint_every,
        "provenance": provenance,
    }
    comm = grid
    p = comm.nranks
    n = pts.shape[0]
    dim = pts.shape[1]
    bits = cfg.sfc_bits or DEFAULT_BITS[dim]

    # -- initial block distribution (payload: coords | weight | original id)
    owned = _split_blocks(n, p)
    payload = [comm.share(np.column_stack([pts[ix], w[ix], ix.astype(np.float64)])) for ix in owned]

    # -- global bounding box: local boxes + tiny allgather ------------------
    comm.set_stage("sfc_index")
    local_boxes = comm.run_local(lambda r: np.concatenate([payload[r][:, :dim].min(axis=0),
                                                           payload[r][:, :dim].max(axis=0)]))
    boxes = comm.allgather(local_boxes).reshape(p, 2 * dim)
    glo = boxes[:, :dim].min(axis=0)
    ghi = boxes[:, dim:].max(axis=0)

    # -- Hilbert indices (rank-local, measured) ------------------------------
    keys = comm.run_local(
        lambda r: sfc_index(payload[r][:, :dim], curve=cfg.sfc_curve, bits=bits, box=(glo, ghi))
    )

    # -- distributed sort + equalising redistribution ------------------------
    comm.set_stage("redistribute")
    _, sorted_payload = distributed_sort(comm, keys, payload)
    # post-redistribution rank state: shared segments mutated in place by the
    # rank functions; the pre-sort payload segments are released immediately
    # so only one shared copy of the data remains
    local_pts = [comm.share(np.ascontiguousarray(sp[:, :dim])) for sp in sorted_payload]
    local_w = [comm.share(np.ascontiguousarray(sp[:, dim])) for sp in sorted_payload]
    local_ids = [sp[:, dim + 1].astype(np.int64) for sp in sorted_payload]
    comm.release(*payload)
    del payload
    counts = np.array([lp.shape[0] for lp in local_pts], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])

    assignment: list[np.ndarray] = []
    bound_pairs: list[tuple[np.ndarray, np.ndarray]] = []
    try:
        return _kmeans_loop(comm, local_pts, local_w, local_ids, counts, offsets,
                            assignment, bound_pairs, glo, ghi, n, k, dim, cfg, gen, centers,
                            store=store, checkpoint_every=checkpoint_every, resume=resume,
                            ckpt_meta=ckpt_meta, fault_plan=fault_plan)
    finally:
        # a reused communicator gets this run's segments back immediately;
        # on an owned comm close() (in the caller) covers the error paths
        comm.release(*local_pts, *local_w, *assignment,
                     *(b for pair in bound_pairs for b in pair))


def _kmeans_loop(
    comm: Comm,
    local_pts: list[np.ndarray],
    local_w: list[np.ndarray],
    local_ids: list[np.ndarray],
    counts: np.ndarray,
    offsets: np.ndarray,
    assignment: list[np.ndarray],
    bound_pairs: list[tuple[np.ndarray, np.ndarray]],
    glo: np.ndarray,
    ghi: np.ndarray,
    n: int,
    k: int,
    dim: int,
    cfg: BalancedKMeansConfig,
    gen: np.random.Generator,
    centers: np.ndarray | None,
    store: CheckpointStore | None = None,
    checkpoint_every: int = 1,
    resume: tuple[dict, dict] | None = None,
    ckpt_meta: dict | None = None,
    fault_plan=None,
) -> DistributedKMeansResult:
    p = comm.nranks

    # -- restore checkpointed state (skips seeding + sampled init) -----------
    resuming = resume is not None
    if resuming:
        arrays, meta = resume
        centers = np.array(arrays["centers"], dtype=np.float64, copy=True)

    # -- SFC seeding from the global sorted order (Algorithm 2, line 7) ------
    comm.set_stage("seeding")
    warm_start = centers is not None
    if warm_start:
        centers = np.array(centers, dtype=np.float64, copy=True)
        if centers.shape != (k, dim):
            raise ValueError(f"warm-start centers must have shape ({k}, {dim})")
    else:
        positions = seed_positions(n, k)

        def local_seeds(r: int) -> np.ndarray:
            inside = (positions >= offsets[r]) & (positions < offsets[r] + counts[r])
            which = np.flatnonzero(inside)
            rows = positions[which] - offsets[r]
            return np.column_stack([which.astype(np.float64), local_pts[r][rows]])

        seeds = comm.allgather(comm.run_local(local_seeds)).reshape(-1, dim + 1)
        centers = np.empty((k, dim))
        centers[seeds[:, 0].astype(np.int64)] = seeds[:, 1:]

    influence = np.ones(k)
    total_w = float(comm.allreduce(comm.run_local(lambda r: np.array([float(local_w[r].sum())])))[0])
    targets = np.full(k, total_w / k)
    extent = ghi - glo
    delta_threshold = cfg.delta_threshold_rel * float(np.linalg.norm(extent))

    # -- per-rank mutable state: shared, mutated in place by rank functions --
    if resuming:
        influence = np.array(arrays["influence"], dtype=np.float64, copy=True)
        for s in range(p):
            chunk = arrays[f"assign_{s:04d}"]
            if chunk.shape[0] != int(counts[s]):
                raise CheckpointMismatchError(
                    f"checkpoint shard {s} holds {chunk.shape[0]} points but the "
                    f"redistribution produced {int(counts[s])} — the checkpoint does "
                    "not belong to this dataset/configuration"
                )
            assignment.append(comm.share(np.ascontiguousarray(chunk, dtype=np.int64)))
            bound_pairs.append((
                comm.share(np.ascontiguousarray(arrays[f"ub_{s:04d}"], dtype=np.float64)),
                comm.share(np.ascontiguousarray(arrays[f"lb_{s:04d}"], dtype=np.float64)),
            ))
    else:
        assignment.extend(comm.share(np.zeros(c, dtype=np.int64)) for c in counts)
        bound_pairs.extend(tuple(comm.share(b) for b in init_bounds(int(c))) for c in counts)
    # On resume the restored RNG state already reflects the first launch's
    # spawn/permutation draws, and the sampled init never re-runs — spawning
    # again would only advance the generator past its checkpointed state.
    rank_rngs = spawn_rngs(gen, p) if not resuming else None
    # rank-local kernel workspaces: when ranks run in the driver process
    # (persistent_state), one workspace per rank survives across every
    # sweep/iteration (point norms + static block boxes are sweep-invariant).
    # Worker-process ranks rebuild an ephemeral workspace per sweep instead
    # (assign_points does this when given None) — bit-identical results, the
    # caches are exact — so the unpicklable workspace never crosses a pipe;
    # their device affinity comes from the rank hint each worker sets at
    # startup (repro.core.xp.set_rank_hint).  rank=r gives torch-cuda
    # workspaces per-rank device affinity (cuda:(r % device_count)).
    keep_state = comm.persistent_state
    workspaces = [SweepWorkspace(local_pts[r], cfg, k, rank=r) if keep_state else None
                  for r in range(p)]

    # -- sampled initialisation rounds (per rank, §4.5) -----------------------
    # (skipped on warm starts: the previous centers are already near-optimal)
    sample_sizes = doubling_sizes(int(counts.min()), cfg) if not warm_start else []
    sample_perms = ([rank_rngs[r].permutation(int(counts[r])) for r in range(p)]
                    if not resuming else None)

    incremental = bool(cfg.use_incremental and cfg.use_bounds)

    def one_phase(
        subset: list[np.ndarray] | None, block_w0: np.ndarray | None = None
    ) -> tuple[float, np.ndarray, bool, np.ndarray]:
        """One assign-and-balance phase + center update.

        Returns ``(max delta, new centers, balanced, block weights)``.  In
        incremental mode the global block weights are maintained from the
        allreduced k-vector of per-rank assignment *deltas* (bit-identical
        across backends via the shared combine kernels) — one full bincount
        reduction seeds the phase unless ``block_w0`` carries the previous
        phase's weights in.
        """
        nonlocal influence
        if subset is None:
            s_pts, s_w, s_assign = local_pts, local_w, assignment
            s_bounds = bound_pairs
            s_targets = targets
            s_workspaces = workspaces
        else:
            s_pts = [comm.share(local_pts[r][subset[r]]) for r in range(p)]
            s_w = [comm.share(local_w[r][subset[r]]) for r in range(p)]
            s_assign = [comm.share(np.zeros(len(subset[r]), dtype=np.int64)) for r in range(p)]
            s_bounds = [tuple(comm.share(b) for b in init_bounds(len(subset[r]))) for r in range(p)]
            frac = sum(float(sw.sum()) for sw in s_w) / total_w
            s_targets = targets * frac
            s_workspaces = [SweepWorkspace(s_pts[r], cfg, k, rank=r) if keep_state else None
                            for r in range(p)]
        balanced = False
        block_w = np.array(block_w0, dtype=np.float64, copy=True) if (incremental and block_w0 is not None) else None
        for bit in range(cfg.max_balance_iterations):
            comm.set_stage("kmeans")

            if block_w is not None:

                def sweep_delta(r: int) -> np.ndarray:
                    ub, lb = s_bounds[r]
                    delta = np.zeros(k)
                    assign_points(s_pts[r], centers, influence, s_assign[r], ub, lb, cfg,
                                  workspace=s_workspaces[r], weights=s_w[r], delta_out=delta)
                    return delta

                block_w = block_w + comm.allreduce(comm.run_local(sweep_delta))
            else:

                def sweep(r: int) -> np.ndarray:
                    ub, lb = s_bounds[r]
                    assign_points(s_pts[r], centers, influence, s_assign[r], ub, lb, cfg,
                                  workspace=s_workspaces[r])
                    return np.bincount(s_assign[r], weights=np.asarray(s_w[r]), minlength=k)

                block_w = comm.allreduce(comm.run_local(sweep))
            imbalance = float((block_w / s_targets).max() - 1.0)
            if imbalance <= cfg.epsilon:
                balanced = True
                break
            if bit == cfg.max_balance_iterations - 1:
                break
            old_influence = influence.copy()
            influence = adapt_influence(
                influence, block_w, s_targets, dim,
                cap=cfg.influence_change_cap, floor=cfg.influence_floor, ceil=cfg.influence_ceil,
            )
            if cfg.use_bounds:
                comm.run_local(
                    lambda r: _relax_influence_local(s_bounds[r], s_assign[r], old_influence,
                                                     influence, s_workspaces[r], cfg)
                )
            if not incremental:
                block_w = None  # force a fresh bincount reduction next iteration
        # center update: one allreduce of k x (d+1) partial sums
        def partial_sums(r: int) -> np.ndarray:
            return center_partial_sums(s_pts[r], s_w[r], s_assign[r], k)

        totals = comm.allreduce(comm.run_local(partial_sums)).reshape(k, dim + 1)
        wsum = totals[:, dim]
        new_centers = np.where(wsum[:, None] > 0, totals[:, :dim] / np.maximum(wsum, 1e-300)[:, None], centers)
        deltas = np.linalg.norm(new_centers - centers, axis=1)

        old_influence = influence.copy()
        if cfg.use_erosion:
            # beta(C) = average cluster diameter (2 x rms radius), computed
            # like the serial code but with the partial sums allreduced —
            # one extra k+k-float reduction per movement round.
            def diameter_sums(r: int) -> np.ndarray:
                return diameter_partial_sums(s_pts[r], s_w[r], s_assign[r], new_centers)

            dsums = comm.allreduce(comm.run_local(diameter_sums))
            sq_sums, cnts = dsums[:k], dsums[k:]
            with np.errstate(invalid="ignore", divide="ignore"):
                diam = 2.0 * np.sqrt(np.where(cnts > 0, sq_sums / np.maximum(cnts, 1e-300), 0.0))
            positive = diam[diam > 0]
            beta = float(positive.mean()) if positive.size else 0.0
            influence = erode_influence(influence, deltas, beta,
                                        floor=cfg.influence_floor, ceil=cfg.influence_ceil)
        if subset is None and cfg.use_bounds:
            comm.run_local(lambda r: _relax_influence_local(bound_pairs[r], assignment[r],
                                                            old_influence, influence,
                                                            workspaces[r], cfg))
            comm.run_local(lambda r: _relax_movement_local(bound_pairs[r], assignment[r],
                                                           deltas, influence, workspaces[r], cfg))
        if subset is not None:
            comm.release(*s_pts, *s_w, *s_assign, *(b for pair in s_bounds for b in pair))
        return float(deltas.max()), new_centers, balanced, block_w

    for size in sample_sizes:
        subset = [sample_perms[r][: min(size, int(counts[r]))] for r in range(p)]
        _, centers, _, _ = one_phase(subset)

    converged = False
    iterations = 0
    final_imbalance = np.inf
    prev_block_w: np.ndarray | None = None
    start_it = 0
    if resuming:
        # Re-enter the loop exactly where the checkpoint was cut: iteration
        # counting, convergence bookkeeping, and (in incremental mode) the
        # carried block weights all continue as if never interrupted.
        start_it = int(meta["iteration"])
        iterations = start_it
        block_w = np.array(arrays["block_w"], dtype=np.float64, copy=True)
        final_imbalance = float((block_w / targets).max() - 1.0)
        if incremental:
            prev_block_w = block_w
    for it in range(start_it, cfg.max_iterations):
        iterations = it + 1
        max_delta, new_centers, balanced, block_w = one_phase(None, prev_block_w)
        if incremental:
            # assignments are untouched after the phase's last sweep, so the
            # phase's delta-maintained block weights *are* the global ones —
            # no extra bincount reduction, and the next phase seeds from them
            final_imbalance = float((block_w / targets).max() - 1.0)
            prev_block_w = block_w
        else:
            block_w = comm.allreduce(comm.run_local(lambda r: np.bincount(assignment[r], weights=local_w[r], minlength=k)))
            final_imbalance = float((block_w / targets).max() - 1.0)
        if max_delta < delta_threshold and balanced:
            converged = True
            break
        centers = new_centers
        if store is not None and (it + 1) % checkpoint_every == 0:
            _save_checkpoint(comm, store, ckpt_meta, it + 1, gen, centers, influence,
                             block_w, assignment, bound_pairs, fault_plan)

    # -- gather assignment back to original order -----------------------------
    # collect() returns each rank's authoritative copy: the driver's own view
    # on driver-visible backends, the rank-resident copy over the wire on MPI
    full_assignment = np.empty(n, dtype=np.int64)
    for r, chunk in enumerate(comm.collect(assignment)):
        full_assignment[local_ids[r]] = chunk

    return DistributedKMeansResult(
        assignment=full_assignment,
        centers=centers,
        influence=influence,
        iterations=iterations,
        converged=converged,
        imbalance=final_imbalance,
        nranks=p,
        ledger=comm.ledger,
        backend=comm.kind,
        measured=comm.measured,
        block_weights=np.array(block_w, dtype=np.float64, copy=True),
    )
