"""Distributed sample sort + exact redistribution over the :class:`Comm` protocol.

Stands in for the scalable distributed quicksort of Axtmann et al. used by
the paper (§4.1): points are globally sorted by space-filling-curve index and
redistributed so every rank owns an equal, contiguous (hence spatially
compact) chunk.  Sample sort has the same communication pattern (one
splitter allgather + one alltoallv), which is what the cost model charges.

The sort is written in pure-superstep style (rank functions return fresh
arrays, nothing is mutated in place), so it runs unchanged on every
execution backend; the global sorted order is bit-identical across backends
and independent of how the input was distributed over ranks (both tested).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.comm import Comm

__all__ = ["distributed_sort"]


def distributed_sort(
    comm: Comm,
    keys: list[np.ndarray],
    payloads: list[np.ndarray] | None = None,
    oversample: int = 8,
    equalize: bool = True,
) -> tuple[list[np.ndarray], list[np.ndarray] | None]:
    """Globally sort per-rank ``keys`` (with optional per-rank ``payloads``).

    Returns per-rank sorted chunks such that the rank-order concatenation is
    globally sorted.  With ``equalize`` (the Geographer redistribution step),
    chunk sizes differ by at most one element.

    Parameters
    ----------
    payloads:
        Per-rank arrays of the same lengths as ``keys`` (e.g. point rows);
        permuted and exchanged alongside the keys.
    oversample:
        Samples contributed per rank for splitter selection; at least ``p``
        are always taken.  With fewer than ``p`` the pooled sample array
        degenerates into ~``oversample`` clusters of near-identical
        quantiles and consecutive splitters collapse onto the same cluster,
        leaving worst-case bins of ~``n/oversample`` rows no matter how
        many ranks there are.  ``max(oversample, p)`` keeps the splitter
        stride at or above the cluster size, so bins stay O(n/p).
        Splitters only shape the *intermediate* distribution: equal keys
        always land in the same bin, the merge is stable in source-rank
        order and the equalising redistribution targets fixed global
        positions, so the final output is identical for any splitter
        choice.
    """
    p = comm.nranks
    if len(keys) != p:
        raise ValueError(f"expected {p} per-rank key arrays, got {len(keys)}")
    if payloads is not None and any(len(a) != len(b) for a, b in zip(keys, payloads)):
        raise ValueError("payload lengths must match key lengths per rank")

    # 1. local sort (measured)
    orders = comm.run_local(lambda r: np.argsort(keys[r], kind="stable"))
    local_keys = [keys[r][orders[r]] for r in range(p)]
    local_pay = [payloads[r][orders[r]] for r in range(p)] if payloads is not None else None

    if p == 1:
        return local_keys, local_pay

    # 2. splitter selection: oversampled allgather, then global quantiles
    per_rank_samples = max(oversample, p)

    def pick_samples(r: int) -> np.ndarray:
        lk = local_keys[r]
        if lk.size == 0:
            return lk[:0]
        pos = np.linspace(0, lk.size - 1, num=min(per_rank_samples, lk.size)).astype(np.int64)
        return lk[pos]

    samples = comm.allgather(comm.run_local(pick_samples))
    samples = np.sort(samples)
    if samples.size == 0:
        return local_keys, local_pay
    splitter_pos = (np.arange(1, p) * samples.size) // p
    splitters = samples[splitter_pos]

    # 3. alltoallv exchange by splitter bins
    def bins_for(r: int) -> np.ndarray:
        return np.searchsorted(splitters, local_keys[r], side="right")

    dest = comm.run_local(bins_for)
    send_keys = [[local_keys[r][dest[r] == j] for j in range(p)] for r in range(p)]
    recv_keys = comm.alltoallv(send_keys)
    if local_pay is not None:
        send_pay = [[local_pay[r][dest[r] == j] for j in range(p)] for r in range(p)]
        recv_pay = comm.alltoallv(send_pay)
    else:
        recv_pay = None

    # 4. local merge (measured; received runs are already sorted per source)
    merge_orders = comm.run_local(lambda r: np.argsort(recv_keys[r], kind="stable"))
    sorted_keys = [recv_keys[r][merge_orders[r]] for r in range(p)]
    sorted_pay = [recv_pay[r][merge_orders[r]] for r in range(p)] if recv_pay is not None else None

    if not equalize:
        return sorted_keys, sorted_pay

    # 5. exact redistribution to equal chunk sizes (order-preserving):
    # element with global index g goes to rank (g * p) // total, which deals
    # out floor(n/p) or ceil(n/p) elements per rank (sizes differ by <= 1).
    counts = np.array([a.size for a in sorted_keys], dtype=np.int64)
    total = int(counts.sum())
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    if total == 0:
        return sorted_keys, sorted_pay

    def route(r: int) -> np.ndarray:
        g = offsets[r] + np.arange(counts[r], dtype=np.int64)
        return (g * p) // total

    routes = comm.run_local(route)
    send_keys = [[sorted_keys[r][routes[r] == j] for j in range(p)] for r in range(p)]
    final_keys = comm.alltoallv(send_keys)
    if sorted_pay is not None:
        send_pay = [[sorted_pay[r][routes[r] == j] for j in range(p)] for r in range(p)]
        final_pay = comm.alltoallv(send_pay)
    else:
        final_pay = None
    return final_keys, final_pay
