"""MPI execution backend: ranks are real ``mpiexec``-launched processes.

:class:`MPIComm` implements the :class:`~repro.runtime.comm.Comm` protocol
on :mod:`mpi4py`.  The repo's algorithms are written driver-centric (the
driver holds per-rank lists and calls collectives on them), while MPI is
SPMD (every process runs the same program), so this module also provides
the bridge between the two models:

- MPI rank 0 is the **driver**: it constructs :class:`MPIComm`, runs the
  algorithm, and plays worker for rank 0 itself.  Every other rank sits in
  :func:`worker_loop`, serving supersteps.  :func:`spmd_main` wires the two
  together (``python -m repro.runtime.mpi_main`` is the packaged
  entrypoint); a communicator asked for fewer ranks than ``mpiexec``
  launched simply leaves the surplus ranks idle, which is how the
  equivalence suite runs p ∈ {1, 2, 4} inside one ``mpiexec -n 4`` job.
- :meth:`MPIComm.run_local` broadcasts the rank function — a driver-local
  closure, marshalled by the freezing machinery shared with the process
  backend (:mod:`repro.runtime._shipping`) — executes rank 0 in the
  driver, and gathers every rank's return value back.
- :meth:`MPIComm.share` broadcasts the array once and each rank keeps a
  **rank-resident copy** that its rank function mutates in place across
  supersteps; inside shipped closures the array travels as a small integer
  handle, not data.  The driver's copy is authoritative only for rank 0,
  so driver-side reads of worker-mutated state must go through
  :meth:`MPIComm.collect`, which fetches each rank's authoritative copy
  (identity on the other backends).  Slices or derived arrays pickle by
  value from the driver copy — capture the whole shared array in closures,
  as the superstep contract already requires.
- collectives execute in the driver on the gathered per-rank values using
  the exact ``combine_*`` kernels every backend shares, so collective
  results — and therefore assignments, centers, sorted orders, SpMV
  outputs — are **bit-identical** to the virtual and process backends by
  construction (pinned by ``tests/test_backend_equivalence.py`` and the
  ``mpi-backend`` CI job).
- the ledger holds **measured** ``MPI.Wtime`` per stage: the slowest
  rank's in-closure time is charged as compute, the broadcast/gather
  remainder as communication under op ``"dispatch"`` (mirroring the
  process backend's measured split).

This module imports :mod:`mpi4py` at import time and must only be imported
through the lazy backend registry (``make_comm(..., backend="mpi")``) or
by SPMD entry code; importing repro itself never touches it, and a missing
``mpi4py`` surfaces as a :class:`RuntimeError` naming the package.
"""

from __future__ import annotations

import atexit
import pickle
import sys
import traceback
import weakref
from typing import Callable, Sequence

import numpy as np
from mpi4py import MPI

from repro.runtime._shipping import freeze_function, thaw_function
from repro.runtime.comm import (
    Comm,
    combine_allgather,
    combine_allreduce,
    combine_alltoallv,
    register_backend,
)
from repro.runtime.costmodel import SUPERMUC_LIKE, MachineModel, MachineTopology

__all__ = [
    "MPIComm",
    "MPIShared",
    "is_driver",
    "spmd_main",
    "stop_workers",
    "worker_loop",
    "world_size",
]


def is_driver() -> bool:
    """True on the MPI rank that may construct communicators (rank 0)."""
    return MPI.COMM_WORLD.Get_rank() == 0


def world_size() -> int:
    """Real communicator size fixed at ``mpiexec`` launch (1 outside MPI)."""
    return MPI.COMM_WORLD.Get_size()


# -- rank-resident shared arrays ---------------------------------------------

#: Arrays this rank holds, keyed by handle.  On rank 0 this is the driver's
#: store (authoritative for rank 0's mutations); on workers it holds the
#: rank-resident copies their rank functions mutate across supersteps.
_STORE: dict[int, "MPIShared"] = {}

_next_handle = iter(range(1, 1 << 62)).__next__


def _lookup_shared(handle: int) -> "MPIShared":
    arr = _STORE.get(handle)
    if arr is None:
        raise RuntimeError(
            f"shared array {handle} is not resident on MPI rank "
            f"{MPI.COMM_WORLD.Get_rank()} (released, or shared by another run?)"
        )
    return arr


class MPIShared(np.ndarray):
    """ndarray with a rank-resident copy on every MPI rank.

    On the driver (rank 0) the canonical object pickles as its integer
    handle, so shipped closures cost bytes, not data; each receiving rank
    resolves the handle to its own resident copy and mutates that in
    place.  On workers — and for any slice or derived array anywhere —
    pickling falls back to ordinary by-value ndarray semantics, which is
    exactly right for worker return values: the data that comes back to
    the driver is the rank's authoritative copy.
    """

    def __array_finalize__(self, obj):
        self._handle = getattr(obj, "_handle", None)

    def __reduce__(self):
        handle = getattr(self, "_handle", None)
        if handle is not None and _STORE.get(handle) is self and is_driver():
            return (_lookup_shared, (handle,))
        return self.view(np.ndarray).__reduce__()


def _store_shared(handle: int, arr: np.ndarray) -> "MPIShared":
    view = np.ascontiguousarray(arr).view(MPIShared)
    view._handle = handle
    _STORE[handle] = view
    return view


# -- worker side --------------------------------------------------------------

_STOPPED = False


def worker_loop() -> None:
    """Serve supersteps on an MPI rank > 0 until the driver sends ``stop``.

    Every message is a broadcast from rank 0, so idle ranks (those beyond a
    communicator's ``nranks``) stay synchronised by consuming each message
    and contributing ``None`` to the reply gathers.
    """
    world = MPI.COMM_WORLD
    rank = world.Get_rank()
    if rank == 0:
        raise RuntimeError("worker_loop serves ranks > 0; rank 0 is the driver")
    # device affinity for the kernel backends: ephemeral SweepWorkspaces
    # built on this rank pick their CUDA device from this hint
    from repro.core.xp import set_rank_hint

    set_rank_hint(rank)
    while True:
        msg = world.bcast(None, root=0)
        op = msg[0]
        # Any exception escaping an op handler here would silently end this
        # rank's loop while the driver and the other ranks continue — the
        # next collective would then deadlock forever.  "run"/"collect"
        # already report errors through their reply gathers; for everything
        # else the only safe exits are a served message or a loud abort of
        # the whole communicator.
        try:
            if op == "run":
                _, nranks, blob = msg
                reply = None
                if rank < nranks:
                    try:
                        # the closure arrives pre-pickled so idle ranks (which
                        # hold no resident copies its handles resolve to) never
                        # unpickle it
                        fn = thaw_function(pickle.loads(blob))
                        start = MPI.Wtime()
                        value = fn(rank)
                        reply = ("ok", value, MPI.Wtime() - start)
                        pickle.dumps(reply)  # unpicklable result: report, don't die
                    except BaseException:
                        reply = ("err", traceback.format_exc())
                world.gather(reply, root=0)
            elif op == "share":
                _, nranks, handle, arr = msg
                # handles only resolve inside "run"/"collect" messages gated on
                # rank < nranks, so idle ranks consume the bcast but keep no copy
                if rank < nranks:
                    _store_shared(handle, arr)
            elif op == "release":
                for handle in msg[1]:
                    _STORE.pop(handle, None)
            elif op == "collect":
                _, nranks, handles = msg
                reply = None
                if rank < nranks and handles[rank] is not None:
                    arr = _STORE.get(handles[rank])
                    if arr is None:
                        reply = ("err", f"shared array {handles[rank]} not resident")
                    else:
                        reply = ("ok", arr)
                world.gather(reply, root=0)
            else:  # "stop"
                _STORE.clear()
                return
        except BaseException:  # pragma: no cover - exercised via stub MPI
            print(f"[repro] rank {rank} worker loop failed on {op!r}:", file=sys.stderr)
            traceback.print_exc()
            sys.stderr.flush()
            world.Abort(1)
            raise  # only reached when Abort is mocked out


def spmd_main(driver: Callable[[], object]):
    """SPMD bridge: run ``driver()`` on rank 0, serve supersteps elsewhere.

    Returns the driver's return value on rank 0 and ``None`` on every other
    rank; the workers are always released (even when the driver raises), so
    ``mpiexec`` jobs terminate instead of hanging in a broadcast.
    """
    if not is_driver():
        worker_loop()
        return None
    try:
        return driver()
    finally:
        stop_workers()


def stop_workers() -> None:
    """Close live communicators and end every :func:`worker_loop`.  Idempotent.

    Called by :func:`spmd_main` when the driver finishes and by an
    ``atexit`` hook as a safety net, so a driver script that forgets it
    does not leave worker ranks blocked in a broadcast forever.
    """
    global _STOPPED
    if _STOPPED or not is_driver():
        return
    for comm in list(_LIVE_COMMS):
        comm.close()
    _STOPPED = True
    if world_size() > 1:
        MPI.COMM_WORLD.bcast(("stop",), root=0)
    _STORE.clear()


# -- the backend --------------------------------------------------------------

_LIVE_COMMS: "weakref.WeakSet[MPIComm]" = weakref.WeakSet()


class MPIComm(Comm):
    """Run ranks as real MPI processes; report measured ``MPI.Wtime``.

    Construct on MPI rank 0 only, with every other rank serving in
    :func:`worker_loop` (use :func:`spmd_main` or ``python -m
    repro.runtime.mpi_main``).  ``nranks`` may be any value up to the real
    communicator size — surplus ranks idle — but never above it: MPI
    cannot invent processes after launch, so measured rank counts are
    capped at the communicator size (see
    :func:`~repro.runtime.comm.backend_max_ranks`).

    Parameters
    ----------
    nranks:
        Number of participating ranks (the paper's ``p``),
        ``<= mpiexec -n``.
    machine:
        Accepted for constructor parity with the other backends; kept for
        reference but never charged — the ledger is measured.
    topology:
        Accepted for parity and validated against ``nranks``; real
        hardware provides its own hierarchy.
    """

    kind = "mpi"
    measured = True
    persistent_state = False

    def __init__(
        self,
        nranks: int,
        machine: MachineModel | None = None,
        topology: MachineTopology | None = None,
    ) -> None:
        super().__init__(nranks)
        self.machine = machine or SUPERMUC_LIKE
        if topology is not None and topology.total != self.nranks:
            raise ValueError(
                f"topology has {topology.total} leaves but communicator has {self.nranks} ranks"
            )
        self.topology = topology
        self._world = MPI.COMM_WORLD
        self._size = self._world.Get_size()
        if self._world.Get_rank() != 0:
            raise RuntimeError(
                "MPIComm must be constructed on MPI rank 0; ranks > 0 serve "
                "supersteps from repro.runtime.mpicomm.worker_loop().  Launch "
                "SPMD programs via `mpiexec -n <p> python -m "
                "repro.runtime.mpi_main ...` or wrap the driver in "
                "repro.runtime.mpicomm.spmd_main()."
            )
        if nranks > self._size:
            raise RuntimeError(
                f"backend 'mpi' was asked for {nranks} ranks but the MPI "
                f"communicator has {self._size} process(es); launch with "
                f"`mpiexec -n {nranks} python -m repro.runtime.mpi_main ...`"
            )
        if _STOPPED and self._size > 1:
            raise RuntimeError(
                "the MPI worker loops have already been stopped (the SPMD "
                "driver finished); communicators cannot be created afterwards"
            )
        self._handles: set[int] = set()
        self._closed = False
        _LIVE_COMMS.add(self)

    @classmethod
    def max_ranks(cls) -> int | None:
        return MPI.COMM_WORLD.Get_size()

    # -- local compute -------------------------------------------------------

    def run_local(self, fn: Callable[[int], object]) -> list:
        """Broadcast ``fn``, run every rank concurrently, gather the results.

        Rank 0 executes in the driver process itself (on the driver's
        authoritative shared copies); the closure is frozen *before* the
        broadcast so an invalid capture (e.g. the communicator) raises
        without desynchronising the workers.  Exceptions on any rank
        re-raise in the driver with the rank's traceback after the gather
        completes, so the worker loops stay usable.
        """
        self._ensure_open()
        # freeze + pickle before the collective: a bad capture raises without
        # desynchronising the workers (freeze always runs so the capture
        # check is uniform), and idle ranks never unpickle the blob
        frozen = freeze_function(fn)
        blob = pickle.dumps(frozen) if self._size > 1 else None
        wall_start = MPI.Wtime()
        if self._size > 1:
            self._world.bcast(("run", self.nranks, blob), root=0)
        start = MPI.Wtime()
        try:
            own = ("ok", fn(0), MPI.Wtime() - start)
        except BaseException:
            own = ("err", traceback.format_exc())
        # rank 0's value stays in-process (never pickled): contribute None to
        # the gather and splice the local reply in afterwards
        replies = self._world.gather(None, root=0) if self._size > 1 else [None]
        replies[0] = own
        results: list = []
        worst = 0.0
        failure: tuple[int, str] | None = None
        for rank in range(self.nranks):
            reply = replies[rank]
            if reply is None:
                failure = failure or (rank, "no reply (rank not in worker_loop?)")
            elif reply[0] == "err":
                failure = failure or (rank, reply[1])
            else:
                results.append(reply[1])
                worst = max(worst, reply[2])
        if failure is not None:
            raise RuntimeError(f"rank {failure[0]} raised during run_local:\n{failure[1]}")
        wall = MPI.Wtime() - wall_start
        self.ledger.charge_compute(worst, self._stage)
        self.ledger.charge_comm(max(0.0, wall - worst), "dispatch", self._stage)
        self.ledger.supersteps += 1
        return results

    # -- collectives ---------------------------------------------------------

    def allreduce(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        self._check_ranks(per_rank)
        start = MPI.Wtime()
        out = combine_allreduce(per_rank)
        self.ledger.charge_comm(MPI.Wtime() - start, "allreduce", self._stage)
        return out

    def allgather(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        self._check_ranks(per_rank)
        start = MPI.Wtime()
        out, _ = combine_allgather(per_rank)
        self.ledger.charge_comm(MPI.Wtime() - start, "allgather", self._stage)
        return out

    def alltoallv(self, send: Sequence[Sequence[np.ndarray]]) -> list[np.ndarray]:
        self._check_ranks(send)
        start = MPI.Wtime()
        recv, _ = combine_alltoallv(send, self.nranks)
        self.ledger.charge_comm(MPI.Wtime() - start, "alltoallv", self._stage)
        return recv

    def broadcast(self, value: np.ndarray) -> np.ndarray:
        # the value already lives in the driver and travels inside the next
        # superstep's closure, exactly like the process backend
        arr = np.asarray(value)
        self.ledger.charge_comm(0.0, "broadcast", self._stage)
        return arr

    # -- rank-resident data + lifecycle --------------------------------------

    def share(self, array: np.ndarray) -> np.ndarray:
        """Broadcast ``array`` once; every rank keeps a resident copy.

        The returned :class:`MPIShared` pickles as a ~50-byte handle inside
        shipped closures; each rank resolves it to its own copy and may
        mutate it in place across supersteps.  Read worker-side mutations
        back through :meth:`collect` — the driver copy only tracks rank 0.
        """
        self._ensure_open()
        arr = np.ascontiguousarray(array)
        if arr.nbytes == 0:
            return arr
        handle = _next_handle()
        if self._size > 1:
            # the raw ndarray goes over the wire (by value); registering the
            # driver's proxy afterwards keeps this broadcast handle-free
            self._world.bcast(("share", self.nranks, handle, arr), root=0)
        shared = _store_shared(handle, arr)
        self._handles.add(handle)
        return shared

    def collect(self, per_rank: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Fetch each rank's authoritative copy of its shared array."""
        self._check_ranks(per_rank)
        self._ensure_open()
        handles = [self._owned_handle(arr) for arr in per_rank]
        if self._size == 1 or all(h is None for h in handles[1:]):
            return list(per_rank)
        start = MPI.Wtime()
        self._world.bcast(("collect", self.nranks, handles), root=0)
        replies = self._world.gather(None, root=0)
        out: list[np.ndarray] = []
        for rank in range(self.nranks):
            if rank == 0 or handles[rank] is None:
                out.append(np.asarray(per_rank[rank]))
            else:
                reply = replies[rank]
                if reply is None or reply[0] != "ok":
                    detail = "no reply" if reply is None else reply[1]
                    raise RuntimeError(f"collect failed on rank {rank}: {detail}")
                out.append(reply[1])
        self.ledger.charge_comm(MPI.Wtime() - start, "collect", self._stage)
        return out

    def release(self, *arrays: np.ndarray) -> None:
        """Drop the resident copies of ``arrays`` on every rank.

        A no-op on a closed communicator (close already released
        everything), so cleanup paths may call it unconditionally.
        """
        if self._closed:
            return
        handles = [h for h in (self._owned_handle(arr) for arr in arrays) if h is not None]
        if not handles:
            return
        if self._size > 1 and not _STOPPED:
            self._world.bcast(("release", handles), root=0)
        for handle in handles:
            self._handles.discard(handle)
            _STORE.pop(handle, None)

    def close(self) -> None:
        """Release every shared array of this communicator.  Idempotent.

        Does *not* end the worker loops — they are program-scoped and shut
        down by :func:`stop_workers` / :func:`spmd_main`, so a program may
        open and close many communicators (the p ∈ {1, 2, 4} equivalence
        sweep) against one ``mpiexec`` launch.
        """
        if self._closed:
            return
        handles = sorted(self._handles)
        if handles and self._size > 1 and not _STOPPED:
            self._world.bcast(("release", handles), root=0)
        for handle in handles:
            _STORE.pop(handle, None)
        self._handles.clear()
        self._closed = True
        _LIVE_COMMS.discard(self)

    def _owned_handle(self, arr) -> int | None:
        handle = getattr(arr, "_handle", None)
        return handle if handle in self._handles else None

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("MPIComm is closed")


register_backend("mpi", MPIComm)
if is_driver():
    atexit.register(stop_workers)
