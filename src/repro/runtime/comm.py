"""Execution-backend substrate: the :class:`Comm` protocol + virtual backend.

Programs in this repo are written in bulk-synchronous SPMD style turned
inside out: instead of one process per rank, the *driver* holds lists
indexed by rank and calls collectives on them.  :class:`Comm` is the
contract those programs are written against:

- :meth:`Comm.run_local` runs ``fn(rank)`` for every rank (the BSP
  superstep).  Rank functions must follow a **superstep contract**: state
  that survives from one superstep to the next either (a) is *returned*
  fresh and carried forward by the driver, or (b) lives in a
  :meth:`Comm.share` array mutated in place — in-driver backends share the
  driver's memory trivially, process backends through shared memory.
  Mutating an ordinary captured array works only on in-driver backends and
  is a bug.
- :meth:`Comm.allreduce` / :meth:`Comm.allgather` / :meth:`Comm.alltoallv`
  / :meth:`Comm.broadcast` combine per-rank arrays exactly, in rank order,
  on every backend — the module-level ``combine_*`` helpers below are the
  single implementation both backends call, which is what makes results
  *bit-identical* across backends (tested by
  ``tests/test_backend_equivalence.py``).
- :meth:`Comm.share` places a large read-mostly array (points, weights)
  where workers can reach it cheaply; process backends use
  ``multiprocessing.shared_memory``, the virtual backend returns the array
  unchanged.
- every collective and superstep charges the :class:`CostLedger`.  The
  virtual backend charges the *machine model* (modeled seconds on a
  SuperMUC-like machine, feeding the paper's scaling figures); process
  backends charge *measured* wall-clock (``Comm.measured`` tells which).

Backends register under a name in :data:`BACKENDS`; :func:`make_comm`
resolves a name (argument > ``REPRO_BACKEND`` env var > ``"virtual"``) and
constructs the communicator.  The ``"process"`` backend
(:class:`repro.runtime.procomm.ProcessComm`) runs every rank as a real
worker process; the ``"mpi"`` backend
(:class:`repro.runtime.mpicomm.MPIComm`) runs ranks as ``mpiexec``-launched
MPI processes via :mod:`mpi4py`.  Both are imported lazily on first use, so
importing repro never requires their optional dependencies; a missing
dependency surfaces as a :class:`RuntimeError` naming the package.
"""

from __future__ import annotations

import importlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.runtime.costmodel import SUPERMUC_LIKE, MachineModel, MachineTopology

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "FAULTS_ENV",
    "Comm",
    "CostLedger",
    "ShardGrid",
    "VirtualComm",
    "available_backends",
    "backend_max_ranks",
    "make_comm",
    "register_backend",
    "resolve_backend_name",
]


@dataclass
class CostLedger:
    """Accumulated wall-clock, split into compute and communication.

    The same ledger shape serves both backend families: the virtual backend
    fills it with machine-model (modeled) seconds, the process backend with
    measured seconds.  ``Comm.measured`` says which interpretation applies.
    """

    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    supersteps: int = 0
    collectives: dict[str, float] = field(default_factory=dict)
    collective_counts: dict[str, int] = field(default_factory=dict)
    stages: dict[str, float] = field(default_factory=dict)
    #: Discrete runtime events (worker respawns, injected faults, checkpoint
    #: saves), each a dict with at least a ``"kind"`` key.  Orthogonal to the
    #: time accounting: recovery actions are rare and their interesting
    #: payload is *what happened where*, not a duration.
    events: list[dict] = field(default_factory=list)
    #: Named monotone counters (service cache hits/misses/evictions, batched
    #: requests, ...) — cheap enough to bump on every request, unlike
    #: :attr:`events` which records one dict per occurrence.
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    def charge_compute(self, seconds: float, stage: str | None = None) -> None:
        self.compute_seconds += seconds
        if stage:
            self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def charge_comm(self, seconds: float, op: str, stage: str | None = None) -> None:
        self.comm_seconds += seconds
        self.collectives[op] = self.collectives.get(op, 0.0) + seconds
        self.collective_counts[op] = self.collective_counts.get(op, 0) + 1
        if stage:
            self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def count(self, name: str, delta: int = 1) -> int:
        """Bump counter ``name`` by ``delta``; returns the new value."""
        value = self.counters.get(name, 0) + int(delta)
        self.counters[name] = value
        return value

    def record_event(self, kind: str, **info) -> None:
        """Append a discrete runtime event (JSON-serialisable values only)."""
        event = {"kind": str(kind)}
        event.update(info)
        self.events.append(event)

    def events_of(self, kind: str) -> list[dict]:
        """Events of one kind, in recording order."""
        return [e for e in self.events if e.get("kind") == kind]

    def merge(self, other: "CostLedger") -> None:
        self.compute_seconds += other.compute_seconds
        self.comm_seconds += other.comm_seconds
        self.supersteps += other.supersteps
        for key, val in other.collectives.items():
            self.collectives[key] = self.collectives.get(key, 0.0) + val
        for key, val in other.collective_counts.items():
            self.collective_counts[key] = self.collective_counts.get(key, 0) + val
        for key, val in other.stages.items():
            self.stages[key] = self.stages.get(key, 0.0) + val
        self.events.extend(other.events)
        for key, val in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + val


# -- shared collective combination kernels ----------------------------------
# Both backends call these, so the combined values (and their floating-point
# reduction order: strictly rank 0, 1, 2, ...) are identical by construction.


def combine_allreduce(per_rank: Sequence[np.ndarray]) -> np.ndarray:
    """Sum-allreduce in rank order (deterministic reduction order)."""
    out = np.array(per_rank[0], dtype=np.float64, copy=True)
    for arr in per_rank[1:]:
        out += arr
    return out


def combine_allgather(per_rank: Sequence[np.ndarray]) -> tuple[np.ndarray, int]:
    """Rank-order concatenation; also returns the largest per-rank byte count."""
    arrays = [np.atleast_1d(np.asarray(a)) for a in per_rank]
    return np.concatenate(arrays), max(a.nbytes for a in arrays)


def combine_alltoallv(send: Sequence[Sequence[np.ndarray]], nranks: int) -> tuple[list[np.ndarray], int]:
    """Personalised exchange ``recv[j] = concat_i send[i][j]`` (rank order).

    Also returns the bottleneck byte count (max over ranks of off-rank bytes
    sent or received), which is what the machine model charges.
    """
    recv: list[np.ndarray] = []
    for j in range(nranks):
        parts = [np.atleast_1d(np.asarray(send[i][j])) for i in range(nranks)]
        recv.append(np.concatenate(parts))
    max_bytes = 0
    for i in range(nranks):
        out_bytes = sum(np.asarray(send[i][j]).nbytes for j in range(nranks) if j != i)
        in_bytes = sum(np.asarray(send[i2][i]).nbytes for i2 in range(nranks) if i2 != i)
        max_bytes = max(max_bytes, out_bytes, in_bytes)
    return recv, max_bytes


class Comm:
    """Base class / protocol for execution backends.

    Subclasses implement :meth:`run_local` plus the four collectives and set
    the class attributes below.  Construction signature is shared:
    ``Backend(nranks, machine=None, topology=None)``.

    Attributes
    ----------
    kind:
        Registry name of the backend (``"virtual"``, ``"process"``, ...).
    measured:
        ``True`` when the ledger holds measured wall-clock seconds,
        ``False`` when it holds machine-model (modeled) seconds.
    persistent_state:
        ``True`` when rank functions run in the driver process, so closures
        share driver memory across supersteps (rank-local caches such as
        :class:`~repro.core.kernels.SweepWorkspace` survive between calls).
        ``False`` when rank functions execute in worker processes and only
        returned values persist.
    """

    kind: str = "abstract"
    measured: bool = False
    persistent_state: bool = True

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self.ledger = CostLedger()
        self._stage: str | None = None

    def set_stage(self, stage: str | None) -> None:
        """Mutable label under which subsequent costs are recorded."""
        self._stage = stage

    # -- backend surface (implemented by subclasses) ------------------------

    def run_local(self, fn: Callable[[int], object]) -> list:
        raise NotImplementedError

    def allreduce(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def allgather(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def alltoallv(self, send: Sequence[Sequence[np.ndarray]]) -> list[np.ndarray]:
        raise NotImplementedError

    def broadcast(self, value: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- shared-data + lifecycle --------------------------------------------

    def share(self, array: np.ndarray) -> np.ndarray:
        """Place a read-mostly array where rank functions can reach it cheaply.

        The virtual backend returns the array as-is (ranks already share the
        driver's memory); the process backend copies it into a
        ``multiprocessing.shared_memory`` segment so shipping a closure that
        captures it costs a few bytes of handle, not the array.
        """
        return np.asarray(array)

    def release(self, *arrays: np.ndarray) -> None:
        """Free shared arrays before :meth:`close` (no-op on in-driver backends).

        Long runs that :meth:`share` a dataset, transform it, and share the
        result should release the stale segments so the peak shared-memory
        footprint stays at one copy.  Released views must not be used again.
        """

    def collect(self, per_rank: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Return the rank-authoritative copy of each rank's shared array.

        ``per_rank[r]`` is the :meth:`share` array rank ``r`` has been
        mutating in place; the returned list holds the values as rank ``r``
        last left them.  On backends where ranks mutate driver-visible
        memory (virtual: driver arrays; process: shared-memory segments)
        this is the identity, and charges nothing.  On the MPI backend the
        copies live in each rank's address space and are fetched over the
        wire, so algorithms must funnel every driver-side read of
        worker-mutated state through this method.
        """
        self._check_ranks(per_rank)
        return list(per_rank)

    @classmethod
    def max_ranks(cls) -> int | None:
        """Largest ``nranks`` this backend can execute, or ``None`` (unbounded).

        Driver-centric backends simulate or fork as many ranks as asked;
        the MPI backend is capped by the real communicator size fixed at
        ``mpiexec`` launch.
        """
        return None

    def close(self) -> None:
        """Release backend resources (workers, shared memory).  Idempotent."""

    def __enter__(self) -> "Comm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- helpers ------------------------------------------------------------

    def _check_ranks(self, seq: Sequence) -> None:
        if len(seq) != self.nranks:
            raise ValueError(f"expected {self.nranks} per-rank entries, got {len(seq)}")


class VirtualComm(Comm):
    """A simulated MPI communicator over ``nranks`` virtual processes.

    Each collective (a) computes the combined value exactly (so simulated
    algorithms produce real output) and (b) charges the machine-model cost
    to the ledger.  Local compute is timed per rank by :meth:`run_local`;
    the superstep contributes the *maximum* rank time, which is what a
    barrier-synchronised MPI program would experience.

    Parameters
    ----------
    nranks:
        Number of simulated ranks (the paper's ``p``).
    machine:
        Cost model; defaults to the SuperMUC-like configuration.
    topology:
        Optional machine hierarchy; allreduces are then costed as staged
        per-level reductions (cores → nodes → islands).
    """

    kind = "virtual"
    measured = False
    persistent_state = True

    def __init__(
        self,
        nranks: int,
        machine: MachineModel | None = None,
        topology: "MachineTopology | None" = None,
    ) -> None:
        super().__init__(nranks)
        self.machine = machine or SUPERMUC_LIKE
        if topology is not None and topology.total != self.nranks:
            raise ValueError(
                f"topology has {topology.total} leaves but communicator has {self.nranks} ranks"
            )
        self.topology = topology

    # -- local compute -----------------------------------------------------

    def run_local(self, fn: Callable[[int], object]) -> list:
        """Run ``fn(rank)`` for every rank; charge max measured time.

        This is the BSP superstep: all ranks compute independently, the
        slowest one determines the wall clock.
        """
        results = []
        worst = 0.0
        for rank in range(self.nranks):
            start = time.perf_counter()
            results.append(fn(rank))
            worst = max(worst, time.perf_counter() - start)
        self.ledger.charge_compute(worst, self._stage)
        self.ledger.supersteps += 1
        return results

    def charge_modeled_compute(self, point_ops: float) -> None:
        """Charge modeled (not measured) local work, e.g. for extrapolated runs."""
        self.ledger.charge_compute(self.machine.compute(point_ops), self._stage)
        self.ledger.supersteps += 1

    # -- collectives ---------------------------------------------------------

    def allreduce(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        """Sum-allreduce of equal-shaped per-rank arrays; result is replicated.

        Summation runs in rank order, making the simulation deterministic.
        With a :class:`MachineTopology` attached, the cost is that of staged
        per-level reductions (cores → nodes → islands) instead of one flat
        tree over all ranks.
        """
        self._check_ranks(per_rank)
        out = combine_allreduce(per_rank)
        if self.topology is not None:
            cost = self.machine.hierarchical_allreduce(out.nbytes, self.topology)
        else:
            cost = self.machine.allreduce(out.nbytes, self.nranks)
        self.ledger.charge_comm(cost, "allreduce", self._stage)
        return out

    def allgather(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank arrays; every rank receives the full result."""
        self._check_ranks(per_rank)
        out, per_rank_bytes = combine_allgather(per_rank)
        self.ledger.charge_comm(
            self.machine.allgather(per_rank_bytes, self.nranks), "allgather", self._stage
        )
        return out

    def alltoallv(self, send: Sequence[Sequence[np.ndarray]]) -> list[np.ndarray]:
        """Personalised exchange: ``send[i][j]`` goes from rank i to rank j.

        Returns per-rank concatenations ``recv[j] = concat_i send[i][j]``
        (in rank order, so a globally sorted sequence stays sorted).
        """
        self._check_ranks(send)
        recv, max_bytes = combine_alltoallv(send, self.nranks)
        self.ledger.charge_comm(
            self.machine.alltoallv(max_bytes, self.nranks), "alltoallv", self._stage
        )
        return recv

    def broadcast(self, value: np.ndarray) -> np.ndarray:
        """Broadcast from rank 0 (cost of a tree broadcast = allreduce shape)."""
        arr = np.asarray(value)
        self.ledger.charge_comm(
            self.machine.allreduce(arr.nbytes, self.nranks), "broadcast", self._stage
        )
        return arr


class ShardGrid(Comm):
    """Present ``nshards`` *logical* ranks over any physical communicator.

    The elastic checkpoint/resume story (``runtime/checkpoint.py``) fixes the
    algorithmic decomposition — the paper's ``p`` — at the *first* launch and
    calls it the shard count ``S``.  A resumed run may execute on a different
    physical rank count ``p'``: this adapter maps each physical rank to a
    contiguous range of shards and presents ``nranks == S`` to the algorithm,
    so rank functions, shared arrays and collectives are all indexed by shard
    exactly as on the original launch.

    Bit-identity across ``p'`` holds by construction: collectives on the
    misaligned path feed the per-*shard* arrays to the very same ``combine_*``
    kernels the backends use per rank, reducing strictly in shard order —
    the same floating-point grouping as a run whose physical rank count
    equals ``S``.  When ``nshards == inner.nranks`` (every fresh run) the
    grid delegates every call verbatim, so behaviour, costs and ledger are
    exactly those of the bare communicator.

    The grid shares the inner communicator's ledger and never owns the inner
    resources — closing the grid is a no-op; close the inner comm as usual.
    """

    def __init__(self, inner: Comm, nshards: int) -> None:
        super().__init__(nshards)
        self.inner = inner
        self.kind = inner.kind
        self.measured = inner.measured
        self.persistent_state = inner.persistent_state
        self.ledger = inner.ledger
        self.machine = getattr(inner, "machine", None)
        self._stage = inner._stage
        p = inner.nranks
        bounds = (np.arange(p + 1) * nshards) // p
        #: shard range [lo, hi) executed by each physical rank (contiguous,
        #: so within-rank concatenation order equals global shard order)
        self.shard_ranges: list[tuple[int, int]] = [
            (int(bounds[r]), int(bounds[r + 1])) for r in range(p)
        ]
        self.aligned = nshards == p

    def set_stage(self, stage: str | None) -> None:
        self._stage = stage
        self.inner.set_stage(stage)

    def run_local(self, fn: Callable[[int], object]) -> list:
        """One physical superstep executing every shard (shard order per rank)."""
        if self.aligned:
            return self.inner.run_local(fn)
        ranges = self.shard_ranges
        per_rank = self.inner.run_local(lambda r: [fn(s) for s in range(ranges[r][0], ranges[r][1])])
        return [value for chunk in per_rank for value in chunk]

    def _charge_combined(self, op: str, nbytes: int, start: float) -> None:
        # modeled backends charge the machine model at the *physical* rank
        # count (that is what executes); measured backends charge wall-clock
        if self.measured or self.machine is None:
            self.ledger.charge_comm(time.perf_counter() - start, op, self._stage)
            return
        topology = getattr(self.inner, "topology", None)
        if op == "allreduce" and topology is not None:
            cost = self.machine.hierarchical_allreduce(nbytes, topology)
        elif op in ("allreduce", "broadcast"):
            cost = self.machine.allreduce(nbytes, self.inner.nranks)
        elif op == "allgather":
            cost = self.machine.allgather(nbytes, self.inner.nranks)
        else:
            cost = self.machine.alltoallv(nbytes, self.inner.nranks)
        self.ledger.charge_comm(cost, op, self._stage)

    def allreduce(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        if self.aligned:
            return self.inner.allreduce(per_rank)
        self._check_ranks(per_rank)
        start = time.perf_counter()
        out = combine_allreduce(per_rank)
        self._charge_combined("allreduce", out.nbytes, start)
        return out

    def allgather(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        if self.aligned:
            return self.inner.allgather(per_rank)
        self._check_ranks(per_rank)
        start = time.perf_counter()
        out, per_rank_bytes = combine_allgather(per_rank)
        self._charge_combined("allgather", per_rank_bytes, start)
        return out

    def alltoallv(self, send: Sequence[Sequence[np.ndarray]]) -> list[np.ndarray]:
        if self.aligned:
            return self.inner.alltoallv(send)
        self._check_ranks(send)
        start = time.perf_counter()
        recv, max_bytes = combine_alltoallv(send, self.nranks)
        self._charge_combined("alltoallv", max_bytes, start)
        return recv

    def broadcast(self, value: np.ndarray) -> np.ndarray:
        return self.inner.broadcast(value)

    def share(self, array: np.ndarray) -> np.ndarray:
        return self.inner.share(array)

    def release(self, *arrays: np.ndarray) -> None:
        self.inner.release(*arrays)

    def collect(self, per_rank: Sequence[np.ndarray]) -> list[np.ndarray]:
        if self.aligned:
            return self.inner.collect(per_rank)
        self._check_ranks(per_rank)
        # layered collects: round j fetches the j-th shard of every physical
        # rank at once; ranks with fewer shards contribute an empty
        # placeholder, which every backend's collect passes through untouched
        width = max(hi - lo for lo, hi in self.shard_ranges)
        placeholder = np.zeros(0)
        out: list[np.ndarray | None] = [None] * self.nranks
        for j in range(width):
            layer = [per_rank[lo + j] if lo + j < hi else placeholder
                     for lo, hi in self.shard_ranges]
            got = self.inner.collect(layer)
            for r, (lo, hi) in enumerate(self.shard_ranges):
                if lo + j < hi:
                    out[lo + j] = got[r]
        return list(out)  # type: ignore[arg-type]

    def close(self) -> None:
        """No-op: the grid does not own the inner communicator's resources."""


# -- backend registry --------------------------------------------------------

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment variable holding a default fault-injection plan (see
#: :mod:`repro.runtime.faults`); applied by :func:`make_comm` to every
#: communicator it constructs, on any backend.
FAULTS_ENV = "REPRO_FAULTS"

#: Registered backend constructors, keyed by name.
BACKENDS: dict[str, type[Comm]] = {}

#: Backends imported on first use (keeps ``import repro`` light, avoids a
#: circular import — both backend modules import this one — and keeps the
#: optional ``mpi4py`` dependency out of every non-MPI code path).
_LAZY_BACKENDS: dict[str, str] = {
    "process": "repro.runtime.procomm",
    "mpi": "repro.runtime.mpicomm",
}

#: Appended to the RuntimeError when a lazy backend fails to import.
_BACKEND_HINTS: dict[str, str] = {
    "process": "it needs the multiprocessing machinery (fork or spawn support)",
    "mpi": "install the optional dependency mpi4py (pip install mpi4py) plus an "
           "MPI runtime such as MPICH or Open MPI, and launch under mpiexec — "
           "see `python -m repro.runtime.mpi_main --help`",
}


def register_backend(name: str, cls: type[Comm]) -> None:
    """Register an execution backend under ``name``.

    Registering an already-taken name replaces the previous constructor
    (last registration wins), which is how a lazily imported module
    overrides its placeholder and how tests inject instrumented backends.
    """
    BACKENDS[name] = cls


def available_backends() -> list[str]:
    """Names accepted by :func:`make_comm` (including lazily imported ones)."""
    return sorted(set(BACKENDS) | set(_LAZY_BACKENDS))


def resolve_backend_name(backend: str | None = None) -> str:
    """Resolve a backend name: explicit argument > ``REPRO_BACKEND`` > virtual."""
    return backend or os.environ.get(BACKEND_ENV) or "virtual"


def _backend_class(name: str) -> type[Comm]:
    """Resolve ``name`` to a backend class, importing lazy backends on demand.

    Unknown names raise :class:`ValueError` listing the choices; a known
    lazy backend whose import fails (missing optional dependency such as
    ``mpi4py``, or a platform without fork) raises :class:`RuntimeError`
    naming the missing package instead of surfacing an import traceback.
    """
    if name not in BACKENDS and name in _LAZY_BACKENDS:
        module = _LAZY_BACKENDS[name]
        try:
            importlib.import_module(module)
        except ImportError as exc:
            hint = _BACKEND_HINTS.get(name)
            raise RuntimeError(
                f"execution backend {name!r} is unavailable: importing {module!r} "
                f"failed ({exc})" + (f"; {hint}" if hint else "")
            ) from exc
        if name not in BACKENDS:
            raise RuntimeError(
                f"execution backend {name!r} is unavailable: importing {module!r} "
                f"did not register it"
            )
    if name not in BACKENDS:
        raise ValueError(f"unknown execution backend {name!r}; choose from {available_backends()}")
    return BACKENDS[name]


def backend_max_ranks(backend: str | None = None) -> int | None:
    """Largest ``nranks`` the resolved backend can execute (``None`` = unbounded).

    Virtual and process backends simulate or fork any number of ranks; the
    MPI backend is capped at the real communicator size fixed by ``mpiexec``.
    Callers that sweep rank counts (e.g. the scaling experiments) clamp
    their measured runs to this.
    """
    return _backend_class(resolve_backend_name(backend)).max_ranks()


def make_comm(
    nranks: int,
    backend: str | None = None,
    machine: MachineModel | None = None,
    topology: MachineTopology | None = None,
    faults: "object | str | None" = None,
) -> Comm:
    """Construct a communicator for ``nranks`` ranks on the chosen backend.

    Process backends own real resources — close them (``with make_comm(...)
    as comm:`` or ``comm.close()``) when done; algorithm entry points that
    build their own communicator do this automatically.

    ``faults`` wraps the communicator in a deterministic fault injector
    (:class:`repro.runtime.faults.FaultyComm`): a
    :class:`~repro.runtime.faults.FaultPlan` or a spec string such as
    ``"kill:rank=1,step=5"``.  When omitted, the ``REPRO_FAULTS``
    environment variable supplies a plan (empty/unset = no injection), so
    recovery paths are exercisable on any backend without code changes.
    """
    name = resolve_backend_name(backend)
    comm: Comm = _backend_class(name)(nranks, machine=machine, topology=topology)
    plan = faults if faults is not None else os.environ.get(FAULTS_ENV) or None
    if plan is not None:
        # imported lazily: faults.py imports this module
        from repro.runtime.faults import FaultPlan, FaultyComm

        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"faults must be a FaultPlan or spec string, got {type(plan).__name__}")
        comm = FaultyComm(comm, plan)
    return comm


register_backend("virtual", VirtualComm)
