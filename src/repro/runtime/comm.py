"""Virtual communicator: rank-local state + collectives with cost accounting.

Programs written against :class:`VirtualComm` look like mpi4py code turned
inside out: instead of one process per rank, the driver holds *lists indexed
by rank* and calls collectives on them.  Each collective (a) computes the
combined value exactly (so simulated algorithms produce real output) and
(b) charges the machine-model cost to the ledger.  Local compute is timed
per rank by :meth:`run_local`; the superstep contributes the *maximum* rank
time, which is what a barrier-synchronised MPI program would experience.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.runtime.costmodel import SUPERMUC_LIKE, MachineModel, MachineTopology

__all__ = ["CostLedger", "VirtualComm"]


@dataclass
class CostLedger:
    """Accumulated simulated wall-clock, split into compute and communication."""

    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    supersteps: int = 0
    collectives: dict[str, float] = field(default_factory=dict)
    collective_counts: dict[str, int] = field(default_factory=dict)
    stages: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    def charge_compute(self, seconds: float, stage: str | None = None) -> None:
        self.compute_seconds += seconds
        if stage:
            self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def charge_comm(self, seconds: float, op: str, stage: str | None = None) -> None:
        self.comm_seconds += seconds
        self.collectives[op] = self.collectives.get(op, 0.0) + seconds
        self.collective_counts[op] = self.collective_counts.get(op, 0) + 1
        if stage:
            self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def merge(self, other: "CostLedger") -> None:
        self.compute_seconds += other.compute_seconds
        self.comm_seconds += other.comm_seconds
        self.supersteps += other.supersteps
        for key, val in other.collectives.items():
            self.collectives[key] = self.collectives.get(key, 0.0) + val
        for key, val in other.stages.items():
            self.stages[key] = self.stages.get(key, 0.0) + val


class VirtualComm:
    """A simulated MPI communicator over ``nranks`` virtual processes.

    Parameters
    ----------
    nranks:
        Number of simulated ranks (the paper's ``p``).
    machine:
        Cost model; defaults to the SuperMUC-like configuration.
    stage:
        Mutable label under which subsequent costs are recorded (set via
        :meth:`set_stage`), feeding the §5.3.2 component breakdown.
    """

    def __init__(
        self,
        nranks: int,
        machine: MachineModel | None = None,
        topology: "MachineTopology | None" = None,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self.machine = machine or SUPERMUC_LIKE
        if topology is not None and topology.total != self.nranks:
            raise ValueError(
                f"topology has {topology.total} leaves but communicator has {self.nranks} ranks"
            )
        self.topology = topology
        self.ledger = CostLedger()
        self._stage: str | None = None

    def set_stage(self, stage: str | None) -> None:
        self._stage = stage

    # -- local compute -----------------------------------------------------

    def run_local(self, fn: Callable[[int], object]) -> list:
        """Run ``fn(rank)`` for every rank; charge max measured time.

        This is the BSP superstep: all ranks compute independently, the
        slowest one determines the wall clock.
        """
        results = []
        worst = 0.0
        for rank in range(self.nranks):
            start = time.perf_counter()
            results.append(fn(rank))
            worst = max(worst, time.perf_counter() - start)
        self.ledger.charge_compute(worst, self._stage)
        self.ledger.supersteps += 1
        return results

    def charge_modeled_compute(self, point_ops: float) -> None:
        """Charge modeled (not measured) local work, e.g. for extrapolated runs."""
        self.ledger.charge_compute(self.machine.compute(point_ops), self._stage)
        self.ledger.supersteps += 1

    # -- collectives ---------------------------------------------------------

    def allreduce(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        """Sum-allreduce of equal-shaped per-rank arrays; result is replicated.

        Summation runs in rank order, making the simulation deterministic.
        With a :class:`MachineTopology` attached, the cost is that of staged
        per-level reductions (cores → nodes → islands) instead of one flat
        tree over all ranks.
        """
        self._check_ranks(per_rank)
        out = np.array(per_rank[0], dtype=np.float64, copy=True)
        for arr in per_rank[1:]:
            out += arr
        if self.topology is not None:
            cost = self.machine.hierarchical_allreduce(out.nbytes, self.topology)
        else:
            cost = self.machine.allreduce(out.nbytes, self.nranks)
        self.ledger.charge_comm(cost, "allreduce", self._stage)
        return out

    def allgather(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank arrays; every rank receives the full result."""
        self._check_ranks(per_rank)
        arrays = [np.atleast_1d(np.asarray(a)) for a in per_rank]
        out = np.concatenate(arrays)
        per_rank_bytes = max(a.nbytes for a in arrays)
        self.ledger.charge_comm(
            self.machine.allgather(per_rank_bytes, self.nranks), "allgather", self._stage
        )
        return out

    def alltoallv(self, send: Sequence[Sequence[np.ndarray]]) -> list[np.ndarray]:
        """Personalised exchange: ``send[i][j]`` goes from rank i to rank j.

        Returns per-rank concatenations ``recv[j] = concat_i send[i][j]``
        (in rank order, so a globally sorted sequence stays sorted).
        """
        self._check_ranks(send)
        recv: list[np.ndarray] = []
        for j in range(self.nranks):
            parts = [np.atleast_1d(np.asarray(send[i][j])) for i in range(self.nranks)]
            recv.append(np.concatenate(parts))
        max_bytes = 0
        for i in range(self.nranks):
            out_bytes = sum(np.asarray(send[i][j]).nbytes for j in range(self.nranks) if j != i)
            in_bytes = sum(np.asarray(send[i2][i]).nbytes for i2 in range(self.nranks) if i2 != i)
            max_bytes = max(max_bytes, out_bytes, in_bytes)
        self.ledger.charge_comm(
            self.machine.alltoallv(max_bytes, self.nranks), "alltoallv", self._stage
        )
        return recv

    def broadcast(self, value: np.ndarray) -> np.ndarray:
        """Broadcast from rank 0 (cost of a tree broadcast = allreduce shape)."""
        arr = np.asarray(value)
        self.ledger.charge_comm(
            self.machine.allreduce(arr.nbytes, self.nranks), "broadcast", self._stage
        )
        return arr

    def _check_ranks(self, seq: Sequence) -> None:
        if len(seq) != self.nranks:
            raise ValueError(f"expected {self.nranks} per-rank entries, got {len(seq)}")
