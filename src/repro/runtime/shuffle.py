"""Post-partition shuffle: route every point to the rank that owns its block.

A partition run leaves each point's *assignment* wherever the point
happened to live (SFC order for the distributed runners); downstream
consumers — a solver, a renumbering pass, a per-block writer — want each
rank to hold exactly the payloads of *its own* blocks.  The shuffle
redistributes per-point payloads (features, weights, original ids,
assignments) to the owning rank and records a global→local id remap so
original-order data can still be addressed afterwards.

Block ownership is the contiguous map ``owner(b) = (b * nranks) // k``
(:func:`block_owner`), the same arithmetic the hierarchy uses to fold
blocks onto ranks, so block ids stay sorted across the rank sequence.

Two paths, one canonical output order:

- :func:`shuffle_partition` — in-memory, per-rank chunk lists through one
  packed :meth:`~repro.runtime.comm.Comm.alltoallv`.
- :func:`shuffle_to_disk` — out-of-core, over the per-rank spill handles
  of an :class:`~repro.runtime.ondisk.OndiskKMeansResult`, emitting
  ``rank-NNNN.{points,weights,ids,assignment}.npy`` files plus an O(n)
  ``remap.npy`` table (``[owner_rank, local_index]`` per global id,
  written with seek-based windowed I/O — never mapped wholly) and a
  ``shuffle.json`` manifest with per-file digests.

Within each destination rank, rows are stably ordered by ``(assignment,
original id)`` — so the two paths produce bit-identical rank files for
the same partition regardless of how the inputs were distributed.

:func:`verify_shuffle` re-checks conservation from the files alone: every
global id appears in exactly one rank file exactly once (a packed bitset
keeps this O(n/8) bytes), every row landed on the rank that owns its
block, and the remap table is consistent with the rank file sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.io.sharded import _atomic_write_json, _file_digest
from repro.io.spill import SpillHandle, SpillStore
from repro.runtime.comm import Comm, make_comm
from repro.runtime.costmodel import MachineModel, MachineTopology

__all__ = [
    "SHUFFLE_MANIFEST_NAME",
    "ShuffleOutput",
    "ShuffleVerificationError",
    "ShuffledPartition",
    "block_owner",
    "shuffle_partition",
    "shuffle_to_disk",
    "verify_shuffle",
]

SHUFFLE_FORMAT = "repro-shuffle"
SHUFFLE_VERSION = 1
SHUFFLE_MANIFEST_NAME = "shuffle.json"

_VERIFY_WINDOW = 1 << 16  # rows per streaming window in verify_shuffle (1 MiB of remap rows)


class ShuffleVerificationError(RuntimeError):
    """The shuffled output violates conservation or ownership."""


def block_owner(k: int, nranks: int) -> np.ndarray:
    """Owning rank of each block: the contiguous map ``(b * nranks) // k``.

    Monotone in ``b``, so each rank owns a contiguous block range and the
    concatenation of rank outputs is globally block-sorted.
    """
    if k < 1 or nranks < 1:
        raise ValueError(f"need k >= 1 and nranks >= 1, got k={k}, nranks={nranks}")
    return (np.arange(k, dtype=np.int64) * nranks) // k


def _canonical_order(assignment: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Stable within-rank order: by assignment, ties by original id."""
    return np.lexsort((ids, assignment))


@dataclass
class ShuffledPartition:
    """In-memory shuffle result: per-rank payload chunks in canonical order."""

    points: list[np.ndarray]
    weights: list[np.ndarray]
    ids: list[np.ndarray]
    assignment: list[np.ndarray]
    k: int
    owner: np.ndarray

    @property
    def nranks(self) -> int:
        return len(self.points)

    @property
    def counts(self) -> np.ndarray:
        return np.array([a.shape[0] for a in self.assignment], dtype=np.int64)


def shuffle_partition(
    comm: Comm,
    k: int,
    points: list[np.ndarray],
    weights: list[np.ndarray],
    ids: list[np.ndarray],
    assignment: list[np.ndarray],
) -> ShuffledPartition:
    """Redistribute per-rank payload chunks to block owners via ``alltoallv``.

    Each of ``points``/``weights``/``ids``/``assignment`` is a per-rank
    list (``len == comm.nranks``).  Payloads are packed into one float64
    matrix per destination (coords | weight | id | assignment) so the
    exchange is a single collective, exactly like the runner's sort.
    """
    p = comm.nranks
    if not (len(points) == len(weights) == len(ids) == len(assignment) == p):
        raise ValueError(f"need {p} per-rank chunks for every field")
    owners = block_owner(k, p)
    comm.set_stage("shuffle")
    dim = points[0].shape[1] if points[0].ndim == 2 else 1

    def pack(r: int) -> np.ndarray:
        pts = np.asarray(points[r], dtype=np.float64).reshape(-1, dim)
        return np.column_stack([
            pts,
            np.asarray(weights[r], dtype=np.float64),
            np.asarray(ids[r], dtype=np.float64),
            np.asarray(assignment[r], dtype=np.float64),
        ])

    def split(r: int) -> list[np.ndarray]:
        payload = pack(r)
        route = owners[np.asarray(assignment[r], dtype=np.int64)]
        return [payload[route == j] for j in range(p)]

    recv = comm.alltoallv(comm.run_local(split))
    out_pts, out_w, out_ids, out_a = [], [], [], []
    for j in range(p):
        payload = recv[j].reshape(-1, dim + 3)
        ids_j = payload[:, dim + 1].astype(np.int64)
        a_j = payload[:, dim + 2].astype(np.int64)
        order = _canonical_order(a_j, ids_j)
        out_pts.append(np.ascontiguousarray(payload[order, :dim]))
        out_w.append(np.ascontiguousarray(payload[order, dim]))
        out_ids.append(ids_j[order])
        out_a.append(a_j[order])
    return ShuffledPartition(out_pts, out_w, out_ids, out_a, k=k, owner=owners)


@dataclass
class ShuffleOutput:
    """Handle on a shuffled on-disk partition directory."""

    directory: str
    n: int
    k: int
    nranks: int
    counts: np.ndarray
    owner: np.ndarray
    digests: dict = field(default_factory=dict)

    def _rank_path(self, rank: int, fld: str) -> str:
        return os.path.join(self.directory, f"rank-{rank:04d}.{fld}.npy")

    def open_rank(self, rank: int, fld: str) -> np.ndarray:
        """Memory-map one rank's field file (O(n/p) mapping)."""
        return np.load(self._rank_path(rank, fld), mmap_mode="r")

    def load_rank(self, rank: int) -> dict[str, np.ndarray]:
        """Materialise one rank's payload (points/weights/ids/assignment)."""
        return {fld: np.load(self._rank_path(rank, fld))
                for fld in ("points", "weights", "ids", "assignment")}

    @property
    def remap(self) -> SpillHandle:
        """Seek-access handle on the (n, 2) [owner_rank, local_index] table."""
        return SpillStore(self.directory).handle("remap")

    @classmethod
    def open(cls, directory: str | os.PathLike) -> "ShuffleOutput":
        import json

        path = Path(directory) / SHUFFLE_MANIFEST_NAME
        with open(path) as fh:
            body = json.load(fh)
        if body.get("format") != SHUFFLE_FORMAT:
            raise ValueError(f"{path}: not a {SHUFFLE_FORMAT} manifest")
        return cls(
            directory=str(directory),
            n=int(body["n"]),
            k=int(body["k"]),
            nranks=int(body["nranks"]),
            counts=np.array(body["counts"], dtype=np.int64),
            owner=block_owner(int(body["k"]), int(body["nranks"])),
            digests=dict(body.get("digests", {})),
        )


def shuffle_to_disk(
    result,
    out_dir: str | os.PathLike,
    comm: Comm | None = None,
    backend: str | None = None,
    machine: MachineModel | None = None,
    topology: MachineTopology | None = None,
    keep_scratch: bool = False,
) -> ShuffleOutput:
    """Out-of-core shuffle of an :class:`OndiskKMeansResult` into ``out_dir``.

    Reads the run's per-rank spill handles (``shard_points`` etc.), routes
    rows to block owners through a file-mediated alltoallv (npz piece files,
    charged to the machine model on modeled backends), and writes per rank:
    ``rank-NNNN.points.npy`` / ``.weights.npy`` / ``.ids.npy`` /
    ``.assignment.npy`` in canonical (assignment, id) order, plus the global
    ``remap.npy`` and the ``shuffle.json`` manifest.  Peak memory is
    O(n/p); the O(n) remap file is written through seek-based windows.
    """
    from repro.runtime.ondisk import (
        _charge_alltoallv,
        _exchange_row_bytes,
        _piece_path,
        _scatter_to_original_order,
    )

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    PTS, W = result.shard_points, result.shard_weights
    IDS, A = result.shard_ids, result.shard_assignment
    p = result.nranks
    if not (len(PTS) == len(W) == len(IDS) == len(A) == p):
        raise ValueError("result is missing per-rank shard handles (materialised result?)")
    k = int(result.centers.shape[0])
    n = int(sum(h.rows for h in IDS))
    owners = block_owner(k, p)
    owns_comm = comm is None
    if comm is None:
        comm = make_comm(p, backend=backend, machine=machine, topology=topology)
    elif comm.nranks != p:
        raise ValueError(f"comm has {comm.nranks} ranks but the result has {p}")
    scratch = SpillStore(out / ".scratch")
    prev_stage = comm._stage
    comm.set_stage("shuffle")
    try:
        def scatter(r: int) -> np.ndarray:
            a = np.asarray(A[r].read())
            route = owners[a]
            pts = np.asarray(PTS[r].read())
            w = np.asarray(W[r].read())
            ids = np.asarray(IDS[r].read())
            sizes = np.zeros(p, dtype=np.int64)
            for j in range(p):
                mask = route == j
                sizes[j] = int(mask.sum())
                np.savez(_piece_path(scratch, "shuffle", r, j),
                         p=pts[mask], w=w[mask], i=ids[mask], a=a[mask])
            return sizes

        piece_rows = np.array(comm.run_local(scatter), dtype=np.int64)
        _charge_alltoallv(comm, piece_rows,
                          _exchange_row_bytes(scratch, "shuffle", p, piece_rows))

        def gather(j: int) -> np.ndarray:
            pieces = [np.load(_piece_path(scratch, "shuffle", s, j)) for s in range(p)]
            ids_j = np.concatenate([pc["i"] for pc in pieces])
            a_j = np.concatenate([pc["a"] for pc in pieces])
            order = _canonical_order(a_j, ids_j)
            ids_j, a_j = ids_j[order], a_j[order]
            pts_j = np.concatenate([pc["p"] for pc in pieces])[order]
            w_j = np.concatenate([pc["w"] for pc in pieces])[order]
            for pc in pieces:
                pc.close()
            for s in range(p):
                os.unlink(_piece_path(scratch, "shuffle", s, j))
            for fld, arr in (("points", pts_j), ("weights", w_j),
                             ("ids", ids_j), ("assignment", a_j)):
                np.save(os.path.join(out, f"rank-{j:04d}.{fld}.npy"),
                        np.ascontiguousarray(arr))
            # remap source: global id -> (owner rank, local index)
            scratch.put(f"rmv.{j}", np.column_stack([
                np.full(ids_j.shape[0], j, dtype=np.int64),
                np.arange(ids_j.shape[0], dtype=np.int64),
            ]))
            scratch.put(f"rmi.{j}", ids_j)
            return np.array([ids_j.shape[0]], dtype=np.int64)

        counts = np.concatenate(comm.run_local(gather))
        remap = _scatter_to_original_order(
            comm, scratch,
            values=[scratch.handle(f"rmv.{j}") for j in range(p)],
            ids=[scratch.handle(f"rmi.{j}") for j in range(p)],
            n=n, name="remap",
        )
        os.replace(remap.path, os.path.join(out, "remap.npy"))

        digests = {"remap.npy": _file_digest(out / "remap.npy")}
        for j in range(p):
            for fld in ("points", "weights", "ids", "assignment"):
                name = f"rank-{j:04d}.{fld}.npy"
                digests[name] = _file_digest(out / name)
        _atomic_write_json(out / SHUFFLE_MANIFEST_NAME, {
            "format": SHUFFLE_FORMAT,
            "version": SHUFFLE_VERSION,
            "n": n,
            "k": k,
            "nranks": p,
            "counts": [int(c) for c in counts],
            "digests": digests,
        })
        return ShuffleOutput(directory=str(out), n=n, k=k, nranks=p,
                             counts=counts, owner=owners, digests=digests)
    finally:
        if not keep_scratch:
            scratch.cleanup()
        if owns_comm:
            comm.close()
        else:
            comm.set_stage(prev_stage)


def verify_shuffle(target: ShuffleOutput | str | os.PathLike) -> dict:
    """Streaming conservation check of a shuffled output directory.

    Verifies, without ever holding more than a window of rows plus an
    n-bit set in memory:

    - every global id in ``[0, n)`` appears in exactly one rank file,
      exactly once (packed bitset, duplicates and gaps both fatal);
    - every row's block is owned by the rank file it landed in;
    - rank file sizes match the manifest counts;
    - the remap table references each rank exactly ``counts[rank]`` times
      with in-range local indices.

    Returns a small report dict; raises :class:`ShuffleVerificationError`
    on the first violation.
    """
    output = target if isinstance(target, ShuffleOutput) else ShuffleOutput.open(target)
    n, p = output.n, output.nranks
    owners = output.owner
    seen = np.zeros((n + 7) // 8, dtype=np.uint8)
    for j in range(p):
        ids = output.open_rank(j, "ids")
        assignment = output.open_rank(j, "assignment")
        if ids.shape[0] != int(output.counts[j]):
            raise ShuffleVerificationError(
                f"rank {j}: ids file has {ids.shape[0]} rows, manifest says {int(output.counts[j])}")
        for lo in range(0, ids.shape[0], _VERIFY_WINDOW):
            chunk = np.asarray(ids[lo:lo + _VERIFY_WINDOW])
            a = np.asarray(assignment[lo:lo + _VERIFY_WINDOW])
            if chunk.size and (chunk.min() < 0 or chunk.max() >= n):
                raise ShuffleVerificationError(f"rank {j}: id out of range [0, {n})")
            if np.unique(chunk).size != chunk.size:
                raise ShuffleVerificationError(f"rank {j}: duplicate ids within a window")
            if not np.all(owners[a] == j):
                raise ShuffleVerificationError(f"rank {j}: holds a block it does not own")
            byte, bit = chunk >> 3, (chunk & 7).astype(np.uint8)
            if np.any((seen[byte] >> bit) & 1):
                raise ShuffleVerificationError(f"rank {j}: id already owned by another row")
            np.bitwise_or.at(seen, byte, np.uint8(1) << bit)
    covered = int(np.unpackbits(seen).sum())
    if covered != n:
        raise ShuffleVerificationError(f"only {covered} of {n} global ids are covered")

    remap = output.remap
    if tuple(remap.shape) != (n, 2):
        raise ShuffleVerificationError(f"remap has shape {remap.shape}, expected ({n}, 2)")
    tally = np.zeros(p, dtype=np.int64)
    for lo in range(0, n, _VERIFY_WINDOW):
        rows = remap.read_rows(lo, min(lo + _VERIFY_WINDOW, n))
        rank, local = rows[:, 0], rows[:, 1]
        if rows.size and (rank.min() < 0 or rank.max() >= p):
            raise ShuffleVerificationError("remap references a rank out of range")
        if np.any(local < 0) or np.any(local >= output.counts[rank]):
            raise ShuffleVerificationError("remap local index out of range for its rank")
        tally += np.bincount(rank, minlength=p)
    if not np.array_equal(tally, output.counts):
        raise ShuffleVerificationError(
            f"remap rank tallies {tally.tolist()} != counts {output.counts.tolist()}")
    return {
        "n": n,
        "k": output.k,
        "nranks": p,
        "counts": [int(c) for c in output.counts],
        "conserved": True,
    }
