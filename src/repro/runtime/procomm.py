"""Process-parallel execution backend: real worker processes per rank.

:class:`ProcessComm` implements the :class:`~repro.runtime.comm.Comm`
protocol with one long-lived worker *process* per rank:

- :meth:`ProcessComm.run_local` ships the rank function to every worker
  over a pipe and executes all ranks concurrently.  Rank functions are
  driver-local closures, which standard pickle refuses to serialise, so
  they are shipped *by value* through the freezing machinery of
  :mod:`repro.runtime._shipping` (shared with the MPI backend): the code
  object via :mod:`marshal`, the closure cells and defaults via pickle
  (recursively, so closures capturing other local functions work), and
  globals resolved in the worker by importing the defining module.
  Workers are forked from the driver, so
  every module the driver can see, they can see.  The message is pickled
  once per superstep (not once per worker), but a closure that captures a
  whole per-rank list ships that list to *every* worker — keep large
  captured state in :meth:`ProcessComm.share` arrays, whose handles cost
  ~100 bytes, and return only what changed.
- large read-mostly arrays go through :meth:`ProcessComm.share`, which
  copies them into a ``multiprocessing.shared_memory`` segment once.  The
  returned :class:`SharedArray` is a normal ndarray in every respect except
  that pickling it (inside a shipped closure, or in a worker's return
  value) costs a ~100-byte handle instead of the data.  Views that still
  point into the segment also ship as handles; slices/copies whose data has
  left the segment silently fall back to ordinary by-value pickling.
- collectives reuse the exact combination kernels of the virtual backend
  (``combine_*`` in :mod:`repro.runtime.comm`), executed in the driver on
  the values the workers returned — so collective results are bit-identical
  across backends by construction.
- the ledger holds **measured** wall-clock: per superstep, the slowest
  worker's in-process compute time is charged as compute and the remaining
  dispatch/serialisation time as communication under op ``"dispatch"``;
  collectives charge their measured driver-side time.

Lifecycle: workers are started in ``__init__`` and torn down by
:meth:`ProcessComm.close` (idempotent; also a context manager, mirroring
the LRU/atexit pattern of :mod:`repro.core.parallel`).  An ``atexit`` hook
closes every communicator still alive at interpreter shutdown, joining the
workers and unlinking all shared-memory segments, so crashes and test
failures do not leak ``/dev/shm`` blocks or zombie processes.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
import traceback
import weakref
from multiprocessing import shared_memory
from multiprocessing.reduction import ForkingPickler
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.runtime._shipping import freeze_function, thaw_function
from repro.runtime.comm import (
    Comm,
    combine_allgather,
    combine_allreduce,
    combine_alltoallv,
    register_backend,
)
from repro.runtime.costmodel import SUPERMUC_LIKE, MachineModel, MachineTopology

__all__ = [
    "MAX_RESPAWNS_ENV",
    "ProcessComm",
    "SharedArray",
    "SUPERSTEP_TIMEOUT_ENV",
    "assert_no_leaks",
    "leaked_resources",
    "share_array",
    "share_array_from_rows",
    "shutdown_process_comms",
    "unlink_array",
]

try:  # numpy >= 2.0 moved byte_bounds out of the top-level namespace
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - numpy < 2.0
    _byte_bounds = np.byte_bounds

_JOIN_TIMEOUT = 5.0
_POLL_INTERVAL = 0.05

#: How many dead workers a communicator will re-fork before giving up.
MAX_RESPAWNS_ENV = "REPRO_MAX_RESPAWNS"
_DEFAULT_MAX_RESPAWNS = 2

#: Optional wall-clock limit (seconds) a superstep may run on one worker
#: before the worker is presumed hung, killed, and respawned.  Unset/0 means
#: wait forever (the pre-PR-7 behavior).
SUPERSTEP_TIMEOUT_ENV = "REPRO_SUPERSTEP_TIMEOUT"


# -- shared-memory arrays ----------------------------------------------------

# Segments this process has attached to (worker side), keyed by name.  One
# attachment per segment per process; closed when the worker exits.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _disable_shm_tracking() -> None:
    """Stop this process's resource tracker from tracking shared memory.

    Workers only ever *attach* to segments the driver created; the driver
    owns unlink.  A forked worker shares the driver's tracker process, so a
    worker-side register/unregister would corrupt the driver's accounting
    (spurious KeyErrors in the tracker, or segments untracked while still
    live).  Called once at worker startup, before any attachment.
    """
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        original_unregister = resource_tracker.unregister

        def register(name, rtype):
            if rtype != "shared_memory":
                original_register(name, rtype)

        def unregister(name, rtype):
            if rtype != "shared_memory":
                original_unregister(name, rtype)

        resource_tracker.register = register
        resource_tracker.unregister = unregister
    except Exception:
        pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
    return shm


def _close_attachments() -> None:
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except BufferError:  # arrays still alive; the OS unmaps at process exit
            pass
    _ATTACHED.clear()


def _attach_view(name: str, offset: int, shape: tuple, strides: tuple, dtype: str) -> "SharedArray":
    shm = _attach_segment(name)
    arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset, strides=strides)
    view = arr.view(SharedArray)
    view._shm = shm
    return view


def share_array(array: np.ndarray) -> "SharedArray | np.ndarray":
    """Copy ``array`` into a fresh shared-memory segment owned by the caller.

    The standalone counterpart of :meth:`ProcessComm.share` for code that
    owns segments without a communicator (e.g. the partitioning service,
    which keeps one segment per registered dataset for the server's whole
    lifetime).  The caller must eventually pass the returned view to
    :func:`unlink_array`; zero-byte arrays are returned as-is (nothing to
    share, nothing to unlink).
    """
    arr = np.ascontiguousarray(array)
    if arr.nbytes == 0:
        return arr
    seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr
    shared = view.view(SharedArray)
    shared._shm = seg
    return shared


def share_array_from_rows(chunks, shape: tuple, dtype) -> "SharedArray | np.ndarray":
    """Fill a fresh shared segment from an iterable of row chunks.

    The streaming counterpart of :func:`share_array` for data that never
    exists as one in-memory array — e.g. the partitioning service
    registering a sharded on-disk dataset shard-at-a-time.  ``chunks`` must
    yield row blocks that concatenate to exactly ``shape[0]`` rows.
    """
    shape = tuple(int(s) for s in shape)
    dt = np.dtype(dtype)
    nbytes = int(np.prod(shape)) * dt.itemsize
    if nbytes == 0:
        return np.empty(shape, dtype=dt)
    seg = shared_memory.SharedMemory(create=True, size=nbytes)
    view = np.ndarray(shape, dtype=dt, buffer=seg.buf)
    row = 0
    try:
        for chunk in chunks:
            arr = np.ascontiguousarray(chunk, dtype=dt)
            if arr.shape[1:] != shape[1:]:
                raise ValueError(f"chunk row shape {arr.shape[1:]} != {shape[1:]}")
            if row + arr.shape[0] > shape[0]:
                raise ValueError(f"chunks exceed the declared {shape[0]} rows")
            view[row : row + arr.shape[0]] = arr
            row += arr.shape[0]
        if row != shape[0]:
            raise ValueError(f"chunks supplied {row} of {shape[0]} declared rows")
    except Exception:
        del view
        _unlink_segment(seg)
        raise
    shared = view.view(SharedArray)
    shared._shm = seg
    return shared


def unlink_array(array: np.ndarray) -> None:
    """Close and unlink the segment backing a :func:`share_array` view.

    Safe to call on plain ndarrays (no-op) and idempotent per segment; the
    view must not be used afterwards.
    """
    seg = getattr(array, "_shm", None)
    if seg is not None:
        _unlink_segment(seg)


def _unlink_segment(seg: shared_memory.SharedMemory) -> None:
    # the owning process may also hold an attachment under this name (it
    # unpickles worker-returned handles through _attach_segment)
    attached = _ATTACHED.pop(seg.name, None)
    for handle in (attached, seg):
        if handle is None:
            continue
        try:
            handle.close()
        except BufferError:  # a view is still alive; unmapped at gc/exit
            pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass


class SharedArray(np.ndarray):
    """ndarray view over a ``multiprocessing.shared_memory`` segment.

    Pickles as a ``(segment, offset, shape, strides, dtype)`` handle while
    the viewed bytes lie inside the segment — which holds for the array
    itself and any slice of it — and falls back to ordinary by-value
    ndarray pickling for derived arrays (fancy-index results, ``.copy()``,
    reductions) whose data has left the segment.
    """

    def __array_finalize__(self, obj):
        self._shm = getattr(obj, "_shm", None)

    def __reduce__(self):
        shm = getattr(self, "_shm", None)
        if shm is not None and self.size > 0:
            seg_lo = np.frombuffer(shm.buf, dtype=np.uint8).__array_interface__["data"][0]
            lo, hi = _byte_bounds(self)
            if seg_lo <= lo and hi <= seg_lo + shm.size:
                return (
                    _attach_view,
                    (shm.name, int(lo - seg_lo), self.shape, self.strides, self.dtype.str),
                )
        return self.view(np.ndarray).__reduce__()


# -- worker loop -------------------------------------------------------------


def _worker_main(rank: int, conn) -> None:
    """Worker process: execute shipped rank functions until told to exit."""
    _disable_shm_tracking()
    # device affinity for the kernel backends: ephemeral SweepWorkspaces
    # built inside this worker pick their CUDA device from this hint
    from repro.core.xp import set_rank_hint

    set_rank_hint(rank)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "run":
                try:
                    fn = thaw_function(msg[1])
                    start = time.perf_counter()
                    value = fn(rank)
                    reply = ("ok", value, time.perf_counter() - start)
                except BaseException:
                    reply = ("err", traceback.format_exc())
                try:
                    conn.send(reply)
                except Exception:  # unpicklable result: report, don't die
                    conn.send(("err", traceback.format_exc()))
                # drop references so released segments can actually unmap
                fn = value = reply = msg = None
            elif msg[0] == "release":
                shm = _ATTACHED.pop(msg[1], None)
                if shm is not None:
                    try:
                        shm.close()
                    except BufferError:  # a view survived; unmapped at exit
                        pass
            else:  # "exit"
                break
    finally:
        _close_attachments()
        try:
            conn.close()
        except Exception:
            pass


# -- the backend -------------------------------------------------------------

_LIVE_COMMS: "weakref.WeakSet[ProcessComm]" = weakref.WeakSet()


#: Per-escalation-step join budget on the atexit path.  Interpreter exit must
#: never block on a wedged worker longer than ~3x this (join, terminate, kill).
_ATEXIT_JOIN_TIMEOUT = 1.0


def shutdown_process_comms(join_timeout: float = _ATEXIT_JOIN_TIMEOUT) -> None:
    """Close every live :class:`ProcessComm` (tests and the ``atexit`` hook).

    Bounded: each close escalates join → terminate → kill with
    ``join_timeout`` per step, so a SIGSTOPped or wedged worker cannot hang
    interpreter shutdown.
    """
    for comm in list(_LIVE_COMMS):
        comm.close(join_timeout=join_timeout)


class ProcessComm(Comm):
    """Run ranks as real worker processes; report measured wall-clock.

    Parameters
    ----------
    nranks:
        Number of worker processes (the paper's ``p``).  Each rank is one
        OS process, so keep this near the core count.
    machine:
        Accepted for constructor parity with :class:`VirtualComm`; kept for
        reference (e.g. modeled-vs-measured comparisons) but never charged.
    topology:
        Accepted for parity; validated against ``nranks`` like the virtual
        backend but otherwise unused — real hardware provides its own
        hierarchy.
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (required for shipping closures defined in non-importable
        modules, e.g. test files, since forked workers inherit
        ``sys.modules``).
    """

    kind = "process"
    measured = True
    persistent_state = False

    def __init__(
        self,
        nranks: int,
        machine: MachineModel | None = None,
        topology: MachineTopology | None = None,
        start_method: str | None = None,
    ) -> None:
        super().__init__(nranks)
        self.machine = machine or SUPERMUC_LIKE
        if topology is not None and topology.total != self.nranks:
            raise ValueError(
                f"topology has {topology.total} leaves but communicator has {self.nranks} ranks"
            )
        self.topology = topology
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else None
        self._ctx = mp.get_context(start_method)
        self._workers: list = []
        self._conns: list = []
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        self._respawns_left = int(os.environ.get(MAX_RESPAWNS_ENV, _DEFAULT_MAX_RESPAWNS))
        timeout = float(os.environ.get(SUPERSTEP_TIMEOUT_ENV, 0) or 0)
        self._superstep_timeout: float | None = timeout if timeout > 0 else None
        try:
            for rank in range(self.nranks):
                parent, proc = self._spawn(rank)
                self._workers.append(proc)
                self._conns.append(parent)
        except BaseException:
            self.close()
            raise
        _LIVE_COMMS.add(self)

    def _spawn(self, rank: int):
        """Fork one worker process; returns ``(driver_conn, process)``."""
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(rank, child), daemon=True,
            name=f"repro-rank-{rank}",
        )
        proc.start()
        child.close()
        return parent, proc

    # -- local compute -----------------------------------------------------

    def run_local(self, fn: Callable[[int], object]) -> list:
        """Ship ``fn`` to every worker, run all ranks concurrently, gather results.

        Charges the slowest worker's in-process time as compute and the
        dispatch/serialisation remainder as communication (op ``"dispatch"``).
        Exceptions raised by any rank re-raise in the driver with the
        worker's traceback; the workers survive and stay usable.

        A worker that died (or, when ``REPRO_SUPERSTEP_TIMEOUT`` is set,
        hangs) is detected here, re-forked, and the lost superstep is
        re-dispatched to it — exactly replayable when the worker never
        started the superstep (the injected-kill case) and best-effort for
        a genuine mid-superstep death, where checkpoint/resume is the
        backstop.  Each recovery consumes one unit of the respawn budget
        (``REPRO_MAX_RESPAWNS``, default 2) and is recorded as a
        ``worker_respawn`` ledger event; with the budget exhausted the
        communicator closes and raises.
        """
        self._ensure_open()
        start = time.perf_counter()
        # serialise once, send the same bytes to every worker: Connection.send
        # would re-pickle the (possibly large) captured state p times.
        # Connection.recv on the worker side is byte-compatible with
        # send_bytes(ForkingPickler.dumps(...)).
        blob = ForkingPickler.dumps(("run", freeze_function(fn)))
        for rank, conn in enumerate(self._conns):
            try:
                conn.send_bytes(blob)
            except (OSError, ValueError):
                # dead before dispatch; _recv_reply respawns and re-sends
                pass
        results: list = []
        worst = 0.0
        failure: tuple[int, str] | None = None
        for rank in range(self.nranks):
            reply = self._recv_reply(rank, blob)
            if reply[0] == "err":
                failure = failure or (rank, reply[1])
            else:
                results.append(reply[1])
                worst = max(worst, reply[2])
        if failure is not None:
            raise RuntimeError(f"rank {failure[0]} raised during run_local:\n{failure[1]}")
        wall = time.perf_counter() - start
        self.ledger.charge_compute(worst, self._stage)
        self.ledger.charge_comm(max(0.0, wall - worst), "dispatch", self._stage)
        self.ledger.supersteps += 1
        return results

    # -- failure detection + recovery ----------------------------------------

    def _recv_reply(self, rank: int, blob: bytes):
        """Await rank's superstep reply, recovering from death or hang."""
        deadline = (
            None if self._superstep_timeout is None
            else time.perf_counter() + self._superstep_timeout
        )
        while True:
            conn = self._conns[rank]
            proc = self._workers[rank]
            try:
                if conn.poll(_POLL_INTERVAL):
                    return conn.recv()
            except (EOFError, OSError, ValueError):
                self._recover(rank, blob, reason="worker pipe broke mid-superstep")
                deadline = None  # replay gets a fresh (unlimited) window
                continue
            if not proc.is_alive():
                self._recover(
                    rank, blob, reason=f"worker exited with code {proc.exitcode}"
                )
                deadline = None
                continue
            if deadline is not None and time.perf_counter() > deadline:
                proc.kill()
                proc.join(_JOIN_TIMEOUT)
                self._recover(
                    rank, blob,
                    reason=f"superstep exceeded {self._superstep_timeout:g}s timeout",
                )
                deadline = None

    def _recover(self, rank: int, blob: bytes, reason: str) -> None:
        """Re-fork a dead worker and re-dispatch the lost superstep to it."""
        if self._respawns_left <= 0:
            self.close()
            raise RuntimeError(
                f"rank {rank} died ({reason}) and the respawn budget is exhausted "
                f"(raise {MAX_RESPAWNS_ENV} to allow more recoveries, or resume "
                "from the latest checkpoint)"
            )
        self._respawns_left -= 1
        self._respawn(rank)
        self.ledger.record_event(
            "worker_respawn",
            rank=rank,
            superstep=self.ledger.supersteps,
            reason=reason,
            respawns_left=self._respawns_left,
        )
        self._conns[rank].send_bytes(blob)

    def _respawn(self, rank: int) -> None:
        """Replace a dead worker with a fresh fork under the same rank.

        The new worker re-attaches :class:`SharedArray` segments lazily: the
        replayed superstep's closure carries segment *handles*, and
        unpickling them in the fresh process maps the segments again — no
        driver-side bookkeeping is needed.
        """
        old_proc = self._workers[rank]
        if old_proc.is_alive():  # pragma: no cover - defensive
            old_proc.kill()
        old_proc.join(_JOIN_TIMEOUT)
        try:
            self._conns[rank].close()
        except OSError:  # pragma: no cover - already broken
            pass
        parent, proc = self._spawn(rank)
        self._workers[rank] = proc
        self._conns[rank] = parent

    # -- collectives ---------------------------------------------------------

    def allreduce(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        self._check_ranks(per_rank)
        start = time.perf_counter()
        out = combine_allreduce(per_rank)
        self.ledger.charge_comm(time.perf_counter() - start, "allreduce", self._stage)
        return out

    def allgather(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        self._check_ranks(per_rank)
        start = time.perf_counter()
        out, _ = combine_allgather(per_rank)
        self.ledger.charge_comm(time.perf_counter() - start, "allgather", self._stage)
        return out

    def alltoallv(self, send: Sequence[Sequence[np.ndarray]]) -> list[np.ndarray]:
        self._check_ranks(send)
        start = time.perf_counter()
        recv, _ = combine_alltoallv(send, self.nranks)
        self.ledger.charge_comm(time.perf_counter() - start, "alltoallv", self._stage)
        return recv

    def broadcast(self, value: np.ndarray) -> np.ndarray:
        arr = np.asarray(value)
        self.ledger.charge_comm(0.0, "broadcast", self._stage)
        return arr

    # -- shared memory + lifecycle ------------------------------------------

    def share(self, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into a shared-memory segment owned by this comm.

        The segment lives until :meth:`close`; the returned
        :class:`SharedArray` (and its slices) pickle as tiny handles.
        Shared views are invalidated by :meth:`close` — copy anything that
        must outlive the communicator (``np.array(view)``) first.
        """
        self._ensure_open()
        arr = np.ascontiguousarray(array)
        if arr.nbytes == 0:
            return arr
        seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        shared = view.view(SharedArray)
        shared._shm = seg
        self._segments.append(seg)
        return shared

    def release(self, *arrays: np.ndarray) -> None:
        """Unlink the segments backing ``arrays`` and detach them everywhere.

        Workers drop their attachment at the next message; the driver closes
        and unlinks immediately, so a run that shares a dataset, transforms
        it, and shares the result keeps only one copy in ``/dev/shm``.  The
        released views (driver- and worker-side) must not be used again.
        A no-op on a closed comm (close already unlinked everything), so
        cleanup paths may call it unconditionally.
        """
        if self._closed:
            return
        for arr in arrays:
            seg = getattr(arr, "_shm", None)
            if seg is None or seg not in self._segments:
                continue
            for conn in self._conns:
                try:
                    conn.send(("release", seg.name))
                except (OSError, ValueError):
                    # a dead worker cannot detach, but it cannot hold the
                    # mapping either — the driver still owns the unlink, so
                    # teardown stays graceful and leak-free
                    pass
            self._segments.remove(seg)
            self._drop_segment(seg)

    @staticmethod
    def _drop_segment(seg: shared_memory.SharedMemory) -> None:
        _unlink_segment(seg)

    def close(self, join_timeout: float = _JOIN_TIMEOUT) -> None:
        """Join workers (escalating to terminate, then kill) and unlink memory.

        Idempotent and *bounded*: a worker that ignores the exit message is
        sent SIGTERM after ``join_timeout`` seconds and SIGKILL after
        another ``join_timeout`` — SIGKILL also reaps workers that are
        stopped (SIGSTOP) or wedged in uninterruptible state, where SIGTERM
        merely stays pending.  This keeps the ``atexit`` path from hanging
        interpreter shutdown on a wedged worker.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for escalate in (None, "terminate", "kill"):
            deadline = time.perf_counter() + join_timeout
            alive = False
            for proc in self._workers:
                if escalate is not None and proc.is_alive():
                    getattr(proc, escalate)()
                proc.join(timeout=max(0.0, deadline - time.perf_counter()))
                alive = alive or proc.is_alive()
            if not alive:
                break
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for seg in self._segments:
            self._drop_segment(seg)
        self._segments.clear()
        _LIVE_COMMS.discard(self)

    def __del__(self):  # pragma: no cover - gc-order dependent
        try:
            self.close()
        except Exception:
            pass

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessComm is closed")


# -- leak auditing -----------------------------------------------------------

_SHM_DIR = Path("/dev/shm")


def leaked_resources() -> dict[str, list[str]]:
    """Snapshot of process-backend resources currently live on this host.

    Returns ``{"segments": [...], "workers": [...]}``: anonymous
    shared-memory segments (``psm_*`` under ``/dev/shm``) and live
    ``repro-rank-*`` worker processes of this driver.  Take a snapshot
    before creating a communicator and diff after teardown with
    :func:`assert_no_leaks` — graceful teardown (even with dead workers)
    must leave both lists unchanged.
    """
    segments: list[str] = []
    if _SHM_DIR.is_dir():  # pragma: no branch - always true on Linux
        segments = sorted(p.name for p in _SHM_DIR.iterdir() if p.name.startswith("psm_"))
    workers = sorted(
        proc.name for proc in mp.active_children() if proc.name.startswith("repro-rank-")
    )
    return {"segments": segments, "workers": workers}


def assert_no_leaks(before: dict[str, list[str]] | None = None) -> None:
    """Raise ``AssertionError`` if segments/workers appeared since ``before``.

    With ``before=None`` asserts that *nothing* repro-owned is live.  Worker
    processes are given a short grace period to be reaped — ``close()`` has
    joined them, but ``active_children`` only drops a child once waited on.
    """
    base = before or {"segments": [], "workers": []}
    deadline = time.perf_counter() + _JOIN_TIMEOUT
    while True:
        now = leaked_resources()
        new_segments = [s for s in now["segments"] if s not in base["segments"]]
        new_workers = [w for w in now["workers"] if w not in base["workers"]]
        if not new_segments and not new_workers:
            return
        if time.perf_counter() > deadline:
            raise AssertionError(
                f"process backend leaked resources: segments={new_segments}, "
                f"workers={new_workers}"
            )
        time.sleep(_POLL_INTERVAL)


register_backend("process", ProcessComm)
atexit.register(shutdown_process_comms)
