"""Closure shipping shared by the process and MPI execution backends.

Rank functions handed to :meth:`~repro.runtime.comm.Comm.run_local` are
driver-local closures, which standard pickle refuses to serialise ("Can't
pickle local object").  Both out-of-process backends therefore ship them
*by value*: the code object via :mod:`marshal`, the closure cells and
defaults via pickle (recursively, so closures capturing other local
functions work), and globals resolved on the receiving side by importing
the defining module.  That last step is what makes the scheme work on both
transports:

- :class:`~repro.runtime.procomm.ProcessComm` forks its workers, so every
  module the driver can see (including non-importable test modules already
  in ``sys.modules``) the workers can see;
- :class:`~repro.runtime.mpicomm.MPIComm` ranks are separate ``mpiexec``
  processes running the *same program*, so the defining module is either
  importable or is the very ``__main__`` every rank executed.

:func:`freeze_function` refuses to capture a live communicator — it owns
processes, pipes, or an MPI handle, none of which belong inside a shipped
closure — mirroring the superstep contract documented on
:class:`~repro.runtime.comm.Comm`.
"""

from __future__ import annotations

import importlib
import marshal
import types

__all__ = ["_FrozenFunction", "freeze_function", "thaw_function"]


class _FrozenFunction:
    """A driver-local function serialised by value (code + cells + defaults)."""

    __slots__ = ("code", "module", "defaults", "kwdefaults", "cells")

    def __init__(self, code: bytes, module: str, defaults: tuple, kwdefaults, cells: tuple):
        self.code = code
        self.module = module
        self.defaults = defaults
        self.kwdefaults = kwdefaults
        self.cells = cells

    def __getstate__(self):
        return (self.code, self.module, self.defaults, self.kwdefaults, self.cells)

    def __setstate__(self, state):
        self.code, self.module, self.defaults, self.kwdefaults, self.cells = state


def freeze_function(obj):
    """Recursively convert function objects into picklable blobs.

    Plain data passes through untouched (pickle handles it); function
    objects — including lambdas and nested closures, which pickle rejects —
    become :class:`_FrozenFunction`.  Cells and defaults are frozen
    recursively so a closure may capture other local functions.
    """
    from repro.runtime.comm import Comm

    if isinstance(obj, types.FunctionType):
        cells = tuple(freeze_function(c.cell_contents) for c in (obj.__closure__ or ()))
        defaults = tuple(freeze_function(d) for d in (obj.__defaults__ or ()))
        kwdefaults = (
            {name: freeze_function(v) for name, v in obj.__kwdefaults__.items()}
            if obj.__kwdefaults__ else None
        )
        return _FrozenFunction(marshal.dumps(obj.__code__), obj.__module__, defaults,
                               kwdefaults, cells)
    if isinstance(obj, Comm):
        raise TypeError(
            "rank functions must not capture the communicator (it owns processes "
            "and pipes); capture comm.nranks or precomputed values instead"
        )
    return obj


def thaw_function(obj):
    """Inverse of :func:`freeze_function`; globals come from the defining module."""
    if isinstance(obj, _FrozenFunction):
        code = marshal.loads(obj.code)
        try:
            glb = importlib.import_module(obj.module).__dict__
        except Exception:  # module not importable in the worker: builtins only
            glb = {"__builtins__": __builtins__}
        defaults = tuple(thaw_function(d) for d in obj.defaults) or None
        cells = tuple(types.CellType(thaw_function(v)) for v in obj.cells)
        fn = types.FunctionType(code, glb, code.co_name, defaults, cells)
        if obj.kwdefaults:
            fn.__kwdefaults__ = {name: thaw_function(v) for name, v in obj.kwdefaults.items()}
        return fn
    return obj
