"""Machine model for the simulated MPI runtime.

An alpha-beta (latency-bandwidth) model with a SuperMUC-like island topology:
communication crossing an island boundary pays a penalty factor.  The paper
attributes the running-time increase from 8 192 to 16 384 processes exactly
to this effect ("an island in SuperMUC contains 8 192 cores and communication
is more expensive across islands", §5.3.2); the penalty lets the simulated
scaling curves reproduce that kink.

Collective costs use standard implementations: logarithmic trees for
reduce/broadcast-style collectives, linear exchange for alltoallv.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MachineModel", "SUPERMUC_LIKE"]


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated machine.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-byte transfer time in seconds (inverse bandwidth).
    island_size:
        Number of ranks per island; jobs larger than one island pay
        ``island_factor`` on every communication.
    compute_rate:
        Point-operations per second used when local work is *modeled*
        instead of measured (scaling extrapolation).
    """

    alpha: float = 5.0e-6
    beta: float = 5.0e-10
    island_size: int = 8192
    island_factor: float = 4.0
    compute_rate: float = 5.0e8

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if self.island_size < 1 or self.island_factor < 1.0:
            raise ValueError("island_size >= 1 and island_factor >= 1 required")
        if self.compute_rate <= 0:
            raise ValueError("compute_rate must be positive")

    def penalty(self, nranks: int) -> float:
        """Island penalty: 1 inside a single island, ``island_factor`` beyond."""
        return 1.0 if nranks <= self.island_size else self.island_factor

    def point_to_point(self, nbytes: float, nranks: int = 1) -> float:
        """One message of ``nbytes``."""
        return (self.alpha + self.beta * float(nbytes)) * self.penalty(nranks)

    def allreduce(self, nbytes: float, nranks: int) -> float:
        """Tree allreduce: ceil(log2 p) rounds of alpha + beta * nbytes."""
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        return rounds * (self.alpha + self.beta * float(nbytes)) * self.penalty(nranks)

    def allgather(self, nbytes_per_rank: float, nranks: int) -> float:
        """Recursive-doubling allgather: log rounds, doubling payloads."""
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        total = 0.0
        payload = float(nbytes_per_rank)
        for _ in range(rounds):
            total += self.alpha + self.beta * payload
            payload *= 2.0
        return total * self.penalty(nranks)

    def alltoallv(self, max_bytes_per_rank: float, nranks: int) -> float:
        """Linear alltoallv: p-1 messages, bandwidth bound by the largest rank."""
        if nranks <= 1:
            return 0.0
        return ((nranks - 1) * self.alpha + self.beta * float(max_bytes_per_rank)) * self.penalty(nranks)

    def compute(self, point_ops: float) -> float:
        """Modeled local compute time for ``point_ops`` point-operations."""
        return float(point_ops) / self.compute_rate


#: Default machine: tuned so simulated absolute times land in the same
#: seconds-range as the paper's SuperMUC runs (shape is what matters).
SUPERMUC_LIKE = MachineModel()
