"""Machine model for the simulated MPI runtime.

An alpha-beta (latency-bandwidth) model with a SuperMUC-like island topology:
communication crossing an island boundary pays a penalty factor.  The paper
attributes the running-time increase from 8 192 to 16 384 processes exactly
to this effect ("an island in SuperMUC contains 8 192 cores and communication
is more expensive across islands", §5.3.2); the penalty lets the simulated
scaling curves reproduce that kink.

Collective costs use standard implementations: logarithmic trees for
reduce/broadcast-style collectives, linear exchange for alltoallv.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MachineModel", "MachineTopology", "SUPERMUC_LIKE", "SUPERMUC_TOPOLOGY"]


@dataclass(frozen=True)
class MachineTopology:
    """The process hierarchy of a machine: islands → nodes → cores.

    ``branching`` lists the fan-out per level from the root down, e.g.
    ``(2, 3, 4)`` for 2 islands of 3 nodes of 4 cores = 24 ranks.  The same
    object drives both sides of topology-aware partitioning: the
    :class:`~repro.partitioners.hierarchical.HierarchicalPartitioner` uses it
    as the factorisation ``k = k1 x k2 x ...`` (one partitioning level per
    machine level), and the simulated runtime uses it to cost collectives as
    staged per-level reductions instead of one flat tree.
    """

    branching: tuple[int, ...]
    level_names: tuple[str, ...] = ()

    _DEFAULT_NAMES = ("island", "node", "core")

    def __post_init__(self) -> None:
        branching = tuple(int(b) for b in self.branching)
        if not branching or any(b < 1 for b in branching):
            raise ValueError(f"branching must be positive integers, got {self.branching}")
        object.__setattr__(self, "branching", branching)
        if not self.level_names:
            if len(branching) <= len(self._DEFAULT_NAMES):
                names = self._DEFAULT_NAMES[-len(branching):]
            else:
                names = tuple(f"level{i}" for i in range(len(branching)))
            object.__setattr__(self, "level_names", names)
        elif len(self.level_names) != len(branching):
            raise ValueError("level_names must match branching in length")

    @property
    def nlevels(self) -> int:
        return len(self.branching)

    @property
    def total(self) -> int:
        """Total leaf count (ranks / blocks)."""
        return math.prod(self.branching)

    def subtree_size(self, level: int) -> int:
        """Leaves under one level-``level`` group (``total`` at the root, 1 past the leaves)."""
        return math.prod(self.branching[level:])

    @classmethod
    def from_factorization(cls, *branching: int) -> "MachineTopology":
        """Build from an explicit factorisation, e.g. ``from_factorization(2, 3, 4)``."""
        return cls(branching=tuple(branching))

    def machine_model(self, **kwargs) -> "MachineModel":
        """A :class:`MachineModel` whose island size matches this hierarchy."""
        kwargs.setdefault("island_size", self.subtree_size(1) if self.nlevels > 1 else self.total)
        return MachineModel(**kwargs)

    def __str__(self) -> str:
        parts = [f"{n} {name}s" for n, name in zip(self.branching, self.level_names)]
        return f"MachineTopology({' x '.join(parts)} = {self.total})"


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated machine.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-byte transfer time in seconds (inverse bandwidth).
    island_size:
        Number of ranks per island; jobs larger than one island pay
        ``island_factor`` on every communication.
    compute_rate:
        Point-operations per second used when local work is *modeled*
        instead of measured (scaling extrapolation).
    """

    alpha: float = 5.0e-6
    beta: float = 5.0e-10
    island_size: int = 8192
    island_factor: float = 4.0
    compute_rate: float = 5.0e8

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if self.island_size < 1 or self.island_factor < 1.0:
            raise ValueError("island_size >= 1 and island_factor >= 1 required")
        if self.compute_rate <= 0:
            raise ValueError("compute_rate must be positive")

    def penalty(self, nranks: int) -> float:
        """Island penalty: 1 inside a single island, ``island_factor`` beyond."""
        return 1.0 if nranks <= self.island_size else self.island_factor

    def point_to_point(self, nbytes: float, nranks: int = 1) -> float:
        """One message of ``nbytes``."""
        return (self.alpha + self.beta * float(nbytes)) * self.penalty(nranks)

    def allreduce(self, nbytes: float, nranks: int) -> float:
        """Tree allreduce: ceil(log2 p) rounds of alpha + beta * nbytes."""
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        return rounds * (self.alpha + self.beta * float(nbytes)) * self.penalty(nranks)

    def allgather(self, nbytes_per_rank: float, nranks: int) -> float:
        """Recursive-doubling allgather: log rounds, doubling payloads."""
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        total = 0.0
        payload = float(nbytes_per_rank)
        for _ in range(rounds):
            total += self.alpha + self.beta * payload
            payload *= 2.0
        return total * self.penalty(nranks)

    def alltoallv(self, max_bytes_per_rank: float, nranks: int) -> float:
        """Linear alltoallv: p-1 messages, bandwidth bound by the largest rank."""
        if nranks <= 1:
            return 0.0
        return ((nranks - 1) * self.alpha + self.beta * float(max_bytes_per_rank)) * self.penalty(nranks)

    def hierarchical_allreduce(self, nbytes: float, topology: "MachineTopology") -> float:
        """Topology-aware allreduce: staged per-level tree reductions.

        Reduce within the innermost groups first (cores of a node, then nodes
        of an island), crossing the island boundary only at the root stage —
        so only ``ceil(log2(#islands))`` rounds pay the island penalty, versus
        every round in the flat tree.  This is the reduction structure the
        hierarchical partitioner's per-level block layout enables.
        """
        total = 0.0
        for level, fanout in enumerate(topology.branching):
            if fanout <= 1:
                continue
            rounds = math.ceil(math.log2(fanout))
            penalty = self.island_factor if level == 0 and topology.total > self.island_size else 1.0
            total += rounds * (self.alpha + self.beta * float(nbytes)) * penalty
        return total

    def compute(self, point_ops: float) -> float:
        """Modeled local compute time for ``point_ops`` point-operations."""
        return float(point_ops) / self.compute_rate


#: Default machine: tuned so simulated absolute times land in the same
#: seconds-range as the paper's SuperMUC runs (shape is what matters).
SUPERMUC_LIKE = MachineModel()

#: A SuperMUC-like hierarchy: 2 islands x 512 nodes x 16 cores = 16 384 ranks,
#: matching the paper's largest strong-scaling configuration.
SUPERMUC_TOPOLOGY = MachineTopology(branching=(2, 512, 16))
