"""Atomic superstep checkpointing for the elastic runtime.

The algorithm state of a balanced-k-means run is small and phase-aligned —
centers, influence, per-shard Hamerly bounds, assignments, block weights,
RNG state and an iteration counter — which makes exact checkpoint/resume
cheap: :class:`CheckpointStore` snapshots that state as one ``.npz`` file
per phase boundary and the resume paths
(:func:`repro.runtime.distributed_kmeans.distributed_balanced_kmeans`,
:func:`repro.core.balanced_kmeans.balanced_kmeans`,
:func:`repro.experiments.repartitioning.run`) rebuild a run that is
bit-identical to one that was never interrupted — including on a *different*
physical rank count, via :class:`~repro.runtime.comm.ShardGrid`.

Format and guarantees:

- **Atomicity** — the file is written to a temporary sibling and moved into
  place with :func:`os.replace`, so a crash mid-save leaves the previous
  checkpoint intact and never a torn file under the final name.
- **Integrity** — a SHA-256 digest over every array (name, dtype, shape,
  bytes) plus the JSON metadata is stored inside the file; a corrupt or
  truncated checkpoint fails the digest (or the zip CRC) and
  :meth:`CheckpointStore.load` falls back to the newest older valid file.
- **Identity** — metadata records a digest of the
  :class:`~repro.core.config.BalancedKMeansConfig` and of the input data, so
  resuming against a different configuration or dataset fails loudly
  (:class:`CheckpointMismatchError`) instead of silently diverging.
- **Rotation** — only the newest ``keep`` checkpoints are retained; ordinals
  keep increasing across resumed runs so rotation and "latest" stay correct.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointConcurrencyError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "LazyCheckpointArrays",
    "data_digest",
    "load_resume_lazy",
    "rng_state",
    "restore_rng",
    "sanitize_run_id",
]

#: Bumped when the on-disk layout changes incompatibly.
CHECKPOINT_VERSION = 1

_META_KEY = "__meta__"
_DIGEST_KEY = "__digest__"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, unreadable, or fails its digest."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint is valid but belongs to a different run configuration."""


class CheckpointConcurrencyError(CheckpointError):
    """Another writer saved into this store's namespace since it was opened.

    Two live stores sharing one (directory, prefix) interleave rotation and
    ordinal continuation and can clobber each other's "latest"; the fix is a
    per-run namespace (``CheckpointStore(..., run_id=...)``), not retrying.
    """


def data_digest(*arrays: np.ndarray, extra: str = "") -> str:
    """Digest of the input data a run was launched with.

    Stored in checkpoint metadata and re-validated on resume, so a
    checkpoint can never silently resume against different points/weights.
    """
    h = hashlib.sha256()
    h.update(extra.encode())
    for arr in arrays:
        a = np.ascontiguousarray(np.asarray(arr))
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def rng_state(gen: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of a numpy Generator's state."""
    return gen.bit_generator.state


def restore_rng(state: Mapping) -> np.random.Generator:
    """Rebuild a Generator from a :func:`rng_state` snapshot."""
    bg_cls = getattr(np.random, state["bit_generator"])
    bg = bg_cls()
    bg.state = dict(state)
    return np.random.Generator(bg)


def _payload_digest(arrays: Mapping[str, np.ndarray], meta_json: str) -> str:
    h = hashlib.sha256()
    h.update(meta_json.encode())
    for key in sorted(arrays):
        arr = np.ascontiguousarray(np.asarray(arrays[key]))
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def sanitize_run_id(run_id: str) -> str:
    """Collapse a run id to a safe single path component (no separators)."""
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "_", str(run_id)).strip("._")
    if not cleaned:
        raise ValueError(f"run_id {run_id!r} has no usable filename characters")
    return cleaned


def _encode_str(text: str) -> np.ndarray:
    return np.frombuffer(text.encode("utf-8"), dtype=np.uint8).copy()


def _decode_str(arr: np.ndarray) -> str:
    return np.asarray(arr, dtype=np.uint8).tobytes().decode("utf-8")


class CheckpointStore:
    """Rotating directory of atomic ``.npz`` checkpoints.

    Parameters
    ----------
    directory:
        Created on first save if missing.  One store per run; sharing a
        directory between unrelated runs is detected at resume time by the
        config/data digests, not prevented.
    prefix:
        Filename prefix; files are ``{prefix}-{ordinal:06d}.npz``.
    keep:
        Newest checkpoints retained after each save (older ones unlinked).
        At least 2 is recommended so a checkpoint corrupted on disk still
        leaves a valid predecessor to fall back to.
    run_id:
        Optional per-run namespace: checkpoints land in
        ``directory/run_id/`` so many concurrent runs (e.g. service
        sessions) can share one root directory without interleaving
        rotation or ordinal continuation.  Sanitised to a safe filename.
        Concurrent writers *within* one namespace are still an error —
        :meth:`save` detects a foreign file at or past its own ordinal and
        raises :class:`CheckpointConcurrencyError` instead of clobbering.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        prefix: str = "ckpt",
        keep: int = 3,
        run_id: str | None = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.run_id = None
        if run_id is not None:
            self.run_id = sanitize_run_id(run_id)
            self.directory = self.directory / self.run_id
        self.prefix = str(prefix)
        self.keep = int(keep)
        self._pattern = re.compile(re.escape(self.prefix) + r"-(\d{6,})\.npz$")
        self._ordinal = self._next_ordinal()

    @classmethod
    def ensure(cls, value: "CheckpointStore | str | os.PathLike | None") -> "CheckpointStore | None":
        """Coerce a store argument: pass stores through, wrap paths, keep None."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    # -- enumeration ---------------------------------------------------------

    def candidates(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.iterdir():
            m = self._pattern.match(path.name)
            if m:
                found.append((int(m.group(1)), path))
        return [path for _, path in sorted(found)]

    def latest(self) -> Path | None:
        """Newest checkpoint file (not necessarily valid), or ``None``."""
        paths = self.candidates()
        return paths[-1] if paths else None

    def _next_ordinal(self) -> int:
        paths = self.candidates()
        if not paths:
            return 0
        return int(self._pattern.match(paths[-1].name).group(1)) + 1

    def path_for(self, ordinal: int) -> Path:
        return self.directory / f"{self.prefix}-{ordinal:06d}.npz"

    # -- save ----------------------------------------------------------------

    def save(self, arrays: Mapping[str, np.ndarray], meta: Mapping, faults=None) -> Path:
        """Atomically write one checkpoint; returns its path.

        ``arrays`` maps names to ndarrays (saved verbatim); ``meta`` must be
        JSON-serialisable and is stored alongside, extended with the format
        version and this file's ordinal.  ``faults`` optionally injects
        deterministic corruption (a :class:`~repro.runtime.faults.FaultPlan`
        whose ``corrupt`` spec matches this save's ordinal), which exercises
        the fall-back-to-previous-checkpoint path in tests.
        """
        for key in arrays:
            if key.startswith("__"):
                raise ValueError(f"array name {key!r} is reserved")
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_sole_writer()
        ordinal = self._ordinal
        self._ordinal += 1
        full_meta = dict(meta)
        full_meta["version"] = CHECKPOINT_VERSION
        full_meta["ordinal"] = ordinal
        meta_json = json.dumps(full_meta, sort_keys=True)
        digest = _payload_digest(arrays, meta_json)
        # values stay lazy: np.savez coerces each entry (via __array__ for
        # spill handles) one at a time while writing, and _payload_digest
        # above also materialised transiently per key — so a dict of
        # on-disk handles checkpoints with O(largest array) peak memory,
        # which is what keeps the out-of-core runner's saves O(n/p)
        payload: dict = dict(arrays)
        payload[_META_KEY] = _encode_str(meta_json)
        payload[_DIGEST_KEY] = _encode_str(digest)

        final = self.path_for(ordinal)
        tmp = final.with_name(final.name + f".tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **payload)
                fh.flush()
                os.fsync(fh.fileno())
            if faults is not None and faults.take_corrupt(ordinal):
                _corrupt_file(tmp)
            os.replace(tmp, final)
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed save
                tmp.unlink()
        self._rotate()
        return final

    def _check_sole_writer(self) -> None:
        """Raise loudly when another store wrote into this namespace.

        Every ordinal this store will write is strictly greater than any
        ordinal that existed when it was opened, so a file on disk at or
        past ``self._ordinal`` can only come from a concurrent writer.
        """
        paths = self.candidates()
        if not paths:
            return
        newest = int(self._pattern.match(paths[-1].name).group(1))
        if newest >= self._ordinal:
            raise CheckpointConcurrencyError(
                f"concurrent checkpoint writer detected under {self.directory}: "
                f"found on-disk ordinal {newest} but this store would write "
                f"{self._ordinal}.  Two live CheckpointStores are sharing one "
                "namespace; give each run its own run_id "
                "(CheckpointStore(dir, run_id=...)) or directory."
            )

    def _rotate(self) -> None:
        paths = self.candidates()
        for path in paths[: max(0, len(paths) - self.keep)]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # -- load ----------------------------------------------------------------

    def load(self, path: str | os.PathLike | None = None) -> tuple[dict, dict]:
        """Load ``(arrays, meta)`` from ``path`` or the newest *valid* file.

        With an explicit ``path`` a corrupt file raises
        :class:`CheckpointError`.  Without one, corrupt/unreadable files are
        skipped with a warning (newest first) — a checkpoint damaged on disk
        costs at most the work since its predecessor.
        """
        if path is not None:
            return _load_file(Path(path))
        errors: list[str] = []
        for candidate in reversed(self.candidates()):
            try:
                return _load_file(candidate)
            except CheckpointError as exc:
                warnings.warn(f"skipping corrupt checkpoint {candidate}: {exc}", stacklevel=2)
                errors.append(f"{candidate.name}: {exc}")
        detail = f" (rejected: {'; '.join(errors)})" if errors else ""
        raise CheckpointError(f"no valid checkpoint under {self.directory}{detail}")


def _corrupt_file(path: Path) -> None:
    """Deterministically flip bytes in the middle of ``path`` (fault injection)."""
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.seek(size // 2)
        chunk = fh.read(64)
        fh.seek(size // 2)
        fh.write(bytes(b ^ 0xFF for b in chunk))


def _load_file(path: Path) -> tuple[dict, dict]:
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as npz:
            names = list(npz.files)
            if _META_KEY not in names or _DIGEST_KEY not in names:
                raise CheckpointError(f"checkpoint {path} lacks metadata/digest entries")
            meta_json = _decode_str(npz[_META_KEY])
            stored_digest = _decode_str(npz[_DIGEST_KEY])
            arrays = {name: npz[name] for name in names if not name.startswith("__")}
    except CheckpointError:
        raise
    except Exception as exc:  # zip CRC errors, truncation, bad JSON bytes, ...
        raise CheckpointError(f"checkpoint {path} is unreadable: {exc!r}") from exc
    if _payload_digest(arrays, meta_json) != stored_digest:
        raise CheckpointError(f"checkpoint {path} failed its integrity digest")
    try:
        meta = json.loads(meta_json)
    except ValueError as exc:
        raise CheckpointError(f"checkpoint {path} holds invalid metadata: {exc}") from exc
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {meta.get('version')!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return arrays, meta


def load_resume(source: "CheckpointStore | str | os.PathLike") -> tuple[dict, dict]:
    """Resolve a resume source: a store or directory (newest valid) or a file."""
    if isinstance(source, CheckpointStore):
        return source.load()
    path = Path(source)
    if path.is_dir():
        store = _store_for_directory(path)
        return store.load()
    return _load_file(path)


class LazyCheckpointArrays(Mapping):
    """Mapping over a *verified* checkpoint's arrays, read one at a time.

    :func:`load_resume_lazy` digest-checks the file streaming (each array
    materialised transiently), then hands out this view; ``[]`` reopens the
    npz and reads just the requested entry, so a resuming out-of-core run
    never holds more than one per-shard array in memory.
    """

    def __init__(self, path: Path, names: tuple[str, ...]) -> None:
        self._path = Path(path)
        self._names = tuple(names)

    def __getitem__(self, key: str) -> np.ndarray:
        if key not in self._names:
            raise KeyError(key)
        with np.load(self._path, allow_pickle=False) as npz:
            return npz[key]

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


def _load_file_lazy(path: Path) -> tuple[LazyCheckpointArrays, dict]:
    """Like :func:`_load_file` but with O(largest array) peak memory."""
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as npz:
            names = list(npz.files)
            if _META_KEY not in names or _DIGEST_KEY not in names:
                raise CheckpointError(f"checkpoint {path} lacks metadata/digest entries")
            meta_json = _decode_str(npz[_META_KEY])
            stored_digest = _decode_str(npz[_DIGEST_KEY])
            array_names = tuple(n for n in names if not n.startswith("__"))
            # digest exactly as _payload_digest, one array resident at a time
            h = hashlib.sha256()
            h.update(meta_json.encode())
            for key in sorted(array_names):
                arr = np.ascontiguousarray(npz[key])
                h.update(key.encode())
                h.update(str(arr.dtype).encode())
                h.update(str(arr.shape).encode())
                h.update(arr.tobytes())
                del arr
    except CheckpointError:
        raise
    except Exception as exc:  # zip CRC errors, truncation, bad JSON bytes, ...
        raise CheckpointError(f"checkpoint {path} is unreadable: {exc!r}") from exc
    if h.hexdigest() != stored_digest:
        raise CheckpointError(f"checkpoint {path} failed its integrity digest")
    try:
        meta = json.loads(meta_json)
    except ValueError as exc:
        raise CheckpointError(f"checkpoint {path} holds invalid metadata: {exc}") from exc
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {meta.get('version')!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return LazyCheckpointArrays(path, array_names), meta


def load_resume_lazy(
    source: "CheckpointStore | str | os.PathLike",
) -> tuple[LazyCheckpointArrays, dict]:
    """:func:`load_resume` with lazily-read arrays (out-of-core resume path).

    Same source resolution and corrupt-fallback behaviour; arrays are
    digest-verified streaming and then read on demand via
    :class:`LazyCheckpointArrays`.
    """
    if isinstance(source, CheckpointStore):
        store = source
    else:
        path = Path(source)
        if not path.is_dir():
            return _load_file_lazy(path)
        store = _store_for_directory(path)
    errors: list[str] = []
    for candidate in reversed(store.candidates()):
        try:
            return _load_file_lazy(candidate)
        except CheckpointError as exc:
            warnings.warn(f"skipping corrupt checkpoint {candidate}: {exc}", stacklevel=2)
            errors.append(f"{candidate.name}: {exc}")
    detail = f" (rejected: {'; '.join(errors)})" if errors else ""
    raise CheckpointError(f"no valid checkpoint under {store.directory}{detail}")


def _store_for_directory(path: Path) -> CheckpointStore:
    """Build a store matching whatever prefix the directory's files carry."""
    prefixes = {m.group(1) for m in (re.match(r"(.+)-\d{6,}\.npz$", p.name) for p in path.iterdir())
                if m}
    if len(prefixes) == 1:
        return CheckpointStore(path, prefix=prefixes.pop())
    return CheckpointStore(path)


def validate_meta(
    meta: Mapping,
    *,
    kind: str,
    config_digest: str | None = None,
    input_digest: str | None = None,
    checks: Iterable[tuple[str, object]] = (),
) -> None:
    """Fail loudly when a checkpoint does not belong to the resuming run."""
    if meta.get("kind") != kind:
        raise CheckpointMismatchError(
            f"checkpoint holds a {meta.get('kind')!r} run, cannot resume a {kind!r} run"
        )
    if config_digest is not None and meta.get("config_digest") != config_digest:
        raise CheckpointMismatchError(
            "checkpoint was written under a different configuration "
            f"(checkpoint config digest {meta.get('config_digest')!r}, this run "
            f"{config_digest!r}); resume with the exact configuration of the "
            "original launch — results would otherwise silently diverge"
        )
    if input_digest is not None and meta.get("data_digest") != input_digest:
        raise CheckpointMismatchError(
            "checkpoint was written for different input data "
            f"(checkpoint data digest {meta.get('data_digest')!r}, this run "
            f"{input_digest!r}); pass the same points/weights the original run used"
        )
    for key, expected in checks:
        if meta.get(key) != expected:
            raise CheckpointMismatchError(
                f"checkpoint {key}={meta.get(key)!r} does not match this run's {key}={expected!r}"
            )
