"""Balanced k-means driver (Algorithm 2).

Single-address-space implementation; the SPMD version that mirrors the
paper's MPI structure lives in :mod:`repro.runtime.distributed_kmeans` and
reuses the same kernels (`assign_and_balance`, influence/bound updates) on
rank-local arrays.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro.core.assign import assign_and_balance
from repro.core.bounds import (
    init_bounds,
    relax_for_influence,
    relax_for_influence_exclusive,
    relax_for_movement,
    relax_for_movement_exclusive,
)
from repro.core.config import BalancedKMeansConfig
from repro.core.influence import erode_influence, estimate_cluster_diameters
from repro.core.kernels import SweepWorkspace
from repro.core.result import IterationStats, KMeansResult
from repro.core.sampling import sample_schedule
from repro.core.seeding import seed_centers
from repro.geometry.boxes import BoundingBox
from repro.runtime.checkpoint import (
    CheckpointStore,
    data_digest,
    load_resume,
    restore_rng,
    rng_state,
    validate_meta,
)
from repro.sfc.curves import sfc_index
from repro.util.rng import ensure_rng
from repro.util.timers import StageTimer
from repro.util.validation import check_k, check_points, check_weights, normalize_targets

__all__ = ["balanced_kmeans", "compute_sfc_order", "weighted_center_update"]

#: ``kind`` tag in checkpoint metadata (rejects resuming the wrong algorithm).
CHECKPOINT_KIND = "serial-kmeans"


def weighted_center_update(
    points: np.ndarray,
    weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    previous: np.ndarray,
) -> np.ndarray:
    """New centers = weighted mean of assigned points; empty clusters keep their center.

    One fused ``bincount`` over a combined (cluster, dimension) key computes
    all weighted coordinate sums at once (Algorithm 2, line 12-13); in the
    distributed version the per-rank partial sums feed an allreduce.
    """
    d = points.shape[1]
    wsum = np.bincount(assignment, weights=weights, minlength=k)
    keys = (assignment[:, None] * d + np.arange(d)).ravel()
    sums = np.bincount(keys, weights=(weights[:, None] * points).ravel(), minlength=k * d)
    sums = sums.reshape(k, d)
    with np.errstate(invalid="ignore"):
        return np.where(wsum[:, None] > 0, sums / np.maximum(wsum, 1e-300)[:, None], previous)


def _reseed_empty(
    points: np.ndarray,
    weights: np.ndarray,
    assignment: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    block_weights: np.ndarray,
    rng: np.random.Generator,
) -> bool:
    """Relocate centers of empty clusters into the heaviest cluster.

    Rare with SFC seeding (the paper relies on erosion to avoid anomalies),
    but random seeding on heterogeneous densities can produce empties; each
    is moved to the point farthest from the heaviest cluster's center.

    ``block_weights`` is updated between relocations — the chosen point's
    weight moves from the donor cluster to the relocated center — and chosen
    points are excluded from later picks, so several simultaneous empties
    land on *distinct* points (possibly of distinct donors) instead of all
    collapsing onto the same farthest point.  Returns True if anything
    changed; the caller must then reset the runner-up bounds (a relocated
    center may be anyone's new runner-up).
    """
    empty = np.flatnonzero(block_weights <= 0.0)
    if empty.size == 0:
        return False
    taken: list[int] = []
    for c in empty:
        heaviest = int(np.argmax(block_weights))
        members = np.flatnonzero(assignment == heaviest)
        if taken:
            members = members[~np.isin(members, taken)]
        if members.size <= 1:
            far = int(rng.integers(points.shape[0]))
            centers[c] = points[far]
            block_weights[c] = 0.0  # will be refilled next sweep
        else:
            diffs = points[members] - centers[heaviest]
            far = int(members[int(np.argmax(np.einsum("ij,ij->i", diffs, diffs)))])
            centers[c] = points[far]
            w_far = float(weights[far])
            block_weights[heaviest] -= w_far
            block_weights[c] = w_far  # the stolen point seeds the new cluster
        taken.append(far)
        influence[c] = 1.0
    return True


def compute_sfc_order(points: np.ndarray, config: BalancedKMeansConfig | None = None) -> np.ndarray:
    """The stable SFC sort order :func:`balanced_kmeans` derives from ``points``.

    Long-lived callers (the partitioning service) compute this once per
    dataset and pass it back via ``sfc_order=`` so repeated runs over fixed
    geometry skip the per-call Hilbert/Morton index + argsort.
    """
    cfg = config or BalancedKMeansConfig()
    pts = check_points(points)
    return np.argsort(sfc_index(pts, curve=cfg.sfc_curve, bits=cfg.sfc_bits), kind="stable")


def balanced_kmeans(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None = None,
    config: BalancedKMeansConfig | None = None,
    rng: int | np.random.Generator | None = None,
    target_weights: np.ndarray | None = None,
    centers: np.ndarray | None = None,
    checkpoint: CheckpointStore | str | None = None,
    checkpoint_every: int = 1,
    resume_from: CheckpointStore | str | None = None,
    workspace: SweepWorkspace | None = None,
    sfc_order: np.ndarray | None = None,
) -> KMeansResult:
    """Partition ``points`` into ``k`` balanced clusters (Algorithm 2).

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates, d in {2, 3}.
    k:
        Number of clusters; independent of any process count.
    weights:
        Optional per-point loads; cluster *weights* are balanced.
    target_weights:
        Optional per-cluster target weights (footnote 1: heterogeneous
        architectures); defaults to ``total_weight / k`` each.
    centers:
        Optional warm-start centers overriding the configured seeding.
    checkpoint / checkpoint_every / resume_from:
        Snapshot the main-loop state every ``checkpoint_every`` iterations
        into ``checkpoint`` (a :class:`~repro.runtime.checkpoint
        .CheckpointStore` or directory path); ``resume_from`` restarts from
        such a snapshot with the final assignment, centers, influence and
        imbalance bit-identical to the uninterrupted run (per-iteration
        skip/pruning statistics may differ — the fresh kernel workspace
        rebuilds its pruning caches, which never changes results).  The
        checkpoint is validated against the configuration and input data
        with a loud mismatch error.
    workspace:
        Optional warm :class:`~repro.core.kernels.SweepWorkspace` from a
        previous run over the *identical* (SFC-sorted points, config, k)
        triple — validated via :meth:`~repro.core.kernels.SweepWorkspace
        .matches`, with a loud error on mismatch.  Reuse skips rebuilding
        point norms and static block boxes; results are bit-identical
        either way (workspace state only affects skip statistics).
    sfc_order:
        Optional precomputed :func:`compute_sfc_order` result for
        ``points``; skips the per-call SFC index + argsort.  The caller
        asserts it equals what this call would compute — a wrong order
        changes seeding and block locality (not correctness of balance,
        but results would differ from a cold call).

    Returns
    -------
    :class:`~repro.core.result.KMeansResult`
    """
    cfg = config or BalancedKMeansConfig()
    pts = check_points(points)
    n = pts.shape[0]
    k = check_k(k, n)
    w = check_weights(weights, n)
    gen = ensure_rng(rng)
    timers = StageTimer()

    total_w = w.sum()
    targets = normalize_targets(target_weights, k, total_w)

    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    store = CheckpointStore.ensure(checkpoint)
    input_digest = data_digest(pts, w, targets, extra=f"n={n},k={k}")
    resume = None
    if resume_from is not None:
        r_arrays, r_meta = load_resume(resume_from)
        validate_meta(
            r_meta,
            kind=CHECKPOINT_KIND,
            config_digest=cfg.digest(),
            input_digest=input_digest,
            checks=[("n", n), ("k", k)],
        )
        gen = restore_rng(r_meta["rng_state"])
        resume = (r_arrays, r_meta)

    if k == 1:
        return KMeansResult(
            assignment=np.zeros(n, dtype=np.int64),
            centers=((w[:, None] * pts).sum(axis=0) / total_w)[None, :],
            influence=np.ones(1),
            iterations=0,
            converged=True,
            imbalance=0.0,
            timers=timers,
        )

    # --- SFC sort for chunk locality + seeding (Algorithm 2, lines 4-7) ---
    order = None
    if cfg.sfc_sort or cfg.seeding == "sfc":
        if sfc_order is not None:
            order = np.asarray(sfc_order, dtype=np.int64)
            if order.shape != (n,):
                raise ValueError(f"sfc_order must have shape ({n},), got {order.shape}")
        else:
            with timers.stage("sfc_index"):
                order = np.argsort(sfc_index(pts, curve=cfg.sfc_curve, bits=cfg.sfc_bits), kind="stable")
    if cfg.sfc_sort:
        with timers.stage("redistribute"):
            work_pts = pts[order]
            work_w = w[order]
            seeding_order = np.arange(n, dtype=np.int64)
    else:
        work_pts, work_w = pts, w
        seeding_order = order

    if resume is not None:
        # seeding and sampled init already happened in the first launch; the
        # restored RNG state reflects every draw they consumed
        centers = np.array(resume[0]["centers"], dtype=np.float64, copy=True)
    elif centers is None:
        with timers.stage("seeding"):
            centers = seed_centers(
                work_pts, k, cfg.seeding, gen, curve=cfg.sfc_curve, bits=cfg.sfc_bits, order=seeding_order
            )
    else:
        centers = np.array(centers, dtype=np.float64, copy=True)
        if centers.shape != (k, pts.shape[1]):
            raise ValueError(f"warm-start centers must have shape ({k}, {pts.shape[1]})")

    influence = np.ones(k)
    delta_threshold = cfg.delta_threshold_rel * BoundingBox.from_points(work_pts).diagonal
    history: list[IterationStats] = []

    # --- sampled initialisation rounds (§4.5; skipped entirely on resume) --
    with timers.stage("sampling"):
        sample_ws: SweepWorkspace | None = None
        prev_sample_idx: np.ndarray | None = None
        for sample_idx in (sample_schedule(n, cfg, gen) if resume is None else ()):
            s_pts = work_pts[sample_idx]
            s_w = work_w[sample_idx]
            s_targets = targets * (s_w.sum() / total_w)
            s_assign = np.zeros(sample_idx.shape[0], dtype=np.int64)
            s_ub, s_lb = init_bounds(sample_idx.shape[0])
            # rounds of equal sample size draw the identical prefix of one
            # permutation — reuse the workspace (point norms, block boxes)
            # instead of rebuilding it; bounds are reset, so the stale block
            # aggregates must be dropped
            if sample_ws is None or prev_sample_idx is None or not np.array_equal(sample_idx, prev_sample_idx):
                sample_ws = SweepWorkspace(s_pts, cfg, k)
            else:
                sample_ws.invalidate_block_bounds()
            prev_sample_idx = sample_idx
            outcome = assign_and_balance(
                s_pts, s_w, centers, influence, s_assign, s_ub, s_lb, s_targets, cfg, sample_ws
            )
            influence = outcome.influence
            new_centers = weighted_center_update(s_pts, s_w, s_assign, k, centers)
            deltas = np.linalg.norm(new_centers - centers, axis=1)
            history.append(
                IterationStats(
                    iteration=len(history),
                    max_delta=float(deltas.max()),
                    imbalance=outcome.imbalance,
                    balance_iterations=outcome.balance_iterations,
                    skip_fraction=outcome.stats.skip_fraction,
                    pruning_fraction=outcome.stats.pruning_fraction,
                    sample_size=sample_idx.shape[0],
                )
            )
            if cfg.use_erosion:
                beta = estimate_cluster_diameters(s_pts, s_assign, new_centers, s_w)
                influence = erode_influence(
                    influence, deltas, float(beta[beta > 0].mean()) if np.any(beta > 0) else 0.0,
                    floor=cfg.influence_floor, ceil=cfg.influence_ceil,
                )
            centers = new_centers

    # --- main loop (Algorithm 2, lines 10-19) ------------------------------
    # One workspace for the whole run: per-point squared norms and the static
    # SFC block boxes are computed once here, then reused by every sweep.  A
    # warm workspace from a previous run over the same problem is accepted
    # after validation; its leftover aggregates are dropped.
    if workspace is not None:
        if not workspace.matches(work_pts, cfg, k):
            raise ValueError(
                "warm workspace does not match this run: it was built for a "
                "different (points, config, k) triple — build a fresh "
                "SweepWorkspace (or let balanced_kmeans build one) instead"
            )
        workspace.invalidate_block_bounds()
    else:
        workspace = SweepWorkspace(work_pts, cfg, k)
    assignment = np.zeros(n, dtype=np.int64)
    ub, lb = init_bounds(n)
    converged = False
    final_imbalance = np.inf
    iterations = 0
    prev_block_w: np.ndarray | None = None
    start_it = 0
    ckpt_meta = {
        "kind": CHECKPOINT_KIND,
        "config_digest": cfg.digest(),
        "data_digest": input_digest,
        "n": n,
        "k": k,
    }
    if resume is not None:
        # The checkpointed (ub, lb) are exactly the bounds an uninterrupted
        # run carries into this iteration (relaxations apply eagerly); the
        # fresh workspace lacks the old pruning aggregates, which only costs
        # skipped-block certifications, never changes an assignment.
        r_arrays, r_meta = resume
        influence = np.array(r_arrays["influence"], dtype=np.float64, copy=True)
        assignment[:] = r_arrays["assignment"]
        ub[:] = r_arrays["ub"]
        lb[:] = r_arrays["lb"]
        if "block_w" in r_arrays:
            prev_block_w = np.array(r_arrays["block_w"], dtype=np.float64, copy=True)
        start_it = int(r_meta["iteration"])
        iterations = start_it
        final_imbalance = float(r_meta["imbalance"])
        history = [IterationStats(**stats) for stats in r_meta["history"]]
    for it in range(start_it, cfg.max_iterations):
        iterations = it + 1
        with timers.stage("assign"):
            outcome = assign_and_balance(
                work_pts, work_w, centers, influence, assignment, ub, lb, targets, cfg,
                workspace, initial_block_weights=prev_block_w,
            )
        influence = outcome.influence
        final_imbalance = outcome.imbalance

        if _reseed_empty(work_pts, work_w, assignment, centers, influence, outcome.block_weights, gen):
            lb[:] = 0.0  # a relocated center may now be anyone's runner-up
            workspace.invalidate_block_bounds()
            prev_block_w = None  # reseed redistributed the weight estimates
            continue
        # assignments are untouched between phases, so the next phase can
        # seed its incremental block weights from this outcome directly
        prev_block_w = outcome.block_weights

        with timers.stage("update"):
            new_centers = weighted_center_update(work_pts, work_w, assignment, k, centers)
        deltas = np.linalg.norm(new_centers - centers, axis=1)
        history.append(
            IterationStats(
                iteration=len(history),
                max_delta=float(deltas.max()),
                imbalance=outcome.imbalance,
                balance_iterations=outcome.balance_iterations,
                skip_fraction=outcome.stats.skip_fraction,
                pruning_fraction=outcome.stats.pruning_fraction,
                sample_size=n,
            )
        )
        if deltas.max() < delta_threshold and outcome.balanced:
            converged = True
            break

        old_influence = influence.copy()
        if cfg.use_erosion:
            beta = estimate_cluster_diameters(work_pts, assignment, new_centers, work_w)
            influence = erode_influence(
                influence, deltas, float(beta[beta > 0].mean()) if np.any(beta > 0) else 0.0,
                floor=cfg.influence_floor, ceil=cfg.influence_ceil,
            )
        centers = new_centers
        if cfg.use_bounds:
            incremental = workspace.incremental
            if not (incremental and workspace.queue_relax_influence(assignment, ub, lb, old_influence, influence)):
                relax_infl = relax_for_influence_exclusive if incremental else relax_for_influence
                ratio_max, ratio_min = relax_infl(ub, lb, assignment, old_influence, influence)
                workspace.note_influence_relax(ratio_max, ratio_min)
            if not (incremental and workspace.queue_relax_movement(assignment, ub, lb, deltas, influence)):
                relax_move = relax_for_movement_exclusive if incremental else relax_for_movement
                growth, shrink = relax_move(ub, lb, assignment, deltas, influence)
                workspace.note_movement_relax(growth, shrink)

        if store is not None and (it + 1) % checkpoint_every == 0:
            arrays = {
                "centers": centers,
                "influence": influence,
                "assignment": assignment,
                "ub": ub,
                "lb": lb,
            }
            if prev_block_w is not None:
                arrays["block_w"] = prev_block_w
            meta = dict(ckpt_meta)
            meta["iteration"] = it + 1
            meta["imbalance"] = final_imbalance
            meta["rng_state"] = rng_state(gen)
            meta["history"] = [asdict(stats) for stats in history]
            store.save(arrays, meta)

    if cfg.sfc_sort:
        final_assignment = np.empty(n, dtype=np.int64)
        final_assignment[order] = assignment
    else:
        final_assignment = assignment

    return KMeansResult(
        assignment=final_assignment,
        centers=centers,
        influence=influence,
        iterations=iterations,
        converged=converged,
        imbalance=final_imbalance,
        history=history,
        timers=timers,
    )
