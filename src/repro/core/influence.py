"""Influence adaptation (Eq. 1) and erosion (Eq. 2-3).

Reproduction note on Eq. (1).  The paper defines "the ratio of the target
size and current size" gamma and prints ``influence <- influence / gamma^(1/d)``.
Taken literally (gamma = target/current) this *grows* oversized clusters,
contradicting both the surrounding text ("the influence value of oversized
blocks is decreased") and the paper's own expected-size derivation, which
only yields ``size_new = size_target`` when gamma = current/target.  We
therefore implement

    influence[c] *= (target(c) / current(c)) ** (1/d)

which decreases influence for oversized blocks and makes the derivation
check out: effective distances scale by (current/target)^(1/d), so the
cluster's volume — and, under locally uniform density, its size — scales by
target/current, landing on the target.
"""

from __future__ import annotations

import numpy as np

__all__ = ["adapt_influence", "erode_influence", "estimate_cluster_diameters"]


def adapt_influence(
    influence: np.ndarray,
    current_weights: np.ndarray,
    target_weights: np.ndarray,
    dim: int,
    cap: float = 0.05,
    floor: float = 1e-9,
    ceil: float = 1e9,
) -> np.ndarray:
    """One influence-adaptation step (Eq. 1 with the 5 % cap).

    Empty clusters (current weight 0) receive the maximum allowed increase so
    they start attracting points again.
    """
    influence = np.asarray(influence, dtype=np.float64)
    current = np.asarray(current_weights, dtype=np.float64)
    target = np.asarray(target_weights, dtype=np.float64)
    if np.any(target <= 0):
        raise ValueError("target weights must be positive")
    with np.errstate(divide="ignore"):
        factor = np.where(current > 0.0, (target / np.maximum(current, 1e-300)) ** (1.0 / dim), np.inf)
    np.clip(factor, 1.0 - cap, 1.0 + cap, out=factor)
    out = influence * factor
    np.clip(out, floor, ceil, out=out)
    return out


def estimate_cluster_diameters(
    points: np.ndarray,
    assignment: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Cheap per-cluster diameter estimate: twice the RMS radius.

    The erosion scheme needs beta(C), "the average cluster diameter"; an
    exact diameter is quadratic, so we use 2 * rms distance to the center,
    which is exact for a uniform ball up to a constant and cheap to compute
    with one pass.  Empty clusters get diameter 0.
    """
    k = centers.shape[0]
    diff = points - centers[assignment]
    sq = np.einsum("ij,ij->i", diff, diff)
    w = np.ones(points.shape[0]) if weights is None else np.asarray(weights, dtype=np.float64)
    sums = np.bincount(assignment, weights=sq * w, minlength=k)
    counts = np.bincount(assignment, weights=w, minlength=k)
    with np.errstate(invalid="ignore", divide="ignore"):
        rms = np.sqrt(np.where(counts > 0, sums / np.maximum(counts, 1e-300), 0.0))
    return 2.0 * rms


def erode_influence(
    influence: np.ndarray,
    deltas: np.ndarray,
    mean_diameter: float,
    floor: float = 1e-9,
    ceil: float = 1e9,
) -> np.ndarray:
    """Influence erosion after center movement (Eq. 2-3).

    ``alpha(c) = 2 / (1 + exp(-delta(c)/beta)) - 1`` rises from 0 (no
    movement) towards 1 (moved much farther than the average cluster
    diameter ``beta``); the influence is then regressed towards 1 via
    ``influence**(1 - alpha)``, because an influence tuned for one
    neighbourhood of clusters is meaningless after a long move.
    """
    influence = np.asarray(influence, dtype=np.float64)
    deltas = np.asarray(deltas, dtype=np.float64)
    if np.any(deltas < 0):
        raise ValueError("center movement distances must be non-negative")
    beta = float(mean_diameter)
    if beta <= 0.0:
        return influence.copy()
    alpha = 2.0 / (1.0 + np.exp(-deltas / beta)) - 1.0
    out = np.exp((1.0 - alpha) * np.log(influence))
    np.clip(out, floor, ceil, out=out)
    return out
