"""Shared-memory parallel backend for the assignment kernel.

The paper's per-node parallelism is MPI ranks; the Python equivalent for the
chunked assignment sweep is a thread pool over chunks — the dominant cost per
chunk is a GEMM inside :func:`pairwise_sq_distances`, which releases the GIL.
Chunks write to disjoint index ranges of the shared output arrays, so no
locking is needed.  Speedup depends on chunk size: large chunks amortise the
GIL-bound per-chunk bookkeeping (box pruning, bound updates); with the
default chunk size the gain is modest and the value of the backend is that
it exists behind a switch with bit-identical results.

Enable via ``BalancedKMeansConfig(n_threads=...)``; results are bit-identical
to the serial path (same chunks, same kernels — only the schedule differs).

Pool lifecycle: pools are cached per worker count and reused across k-means
iterations and runs (thread startup is ~ms, the assignment sweep may be
called hundreds of times).  At most :data:`_MAX_POOLS` distinct sizes are
kept alive — least-recently-used sizes are shut down on demand, so a
long-lived session sweeping over many ``n_threads`` values does not leak one
pool per size — and an ``atexit`` hook tears everything down at interpreter
shutdown.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ThreadPoolExecutor

__all__ = ["resolve_threads", "get_executor", "shutdown_executors"]

_POOLS: dict[int, ThreadPoolExecutor] = {}  # insertion order = LRU order
_MAX_POOLS = 2


def resolve_threads(n_threads: int) -> int:
    """Resolve the configured thread count (0 = one per available core)."""
    if n_threads < 0:
        raise ValueError(f"n_threads must be >= 0, got {n_threads}")
    if n_threads == 0:
        return max(1, os.cpu_count() or 1)
    return n_threads


def get_executor(n_threads: int) -> ThreadPoolExecutor | None:
    """A cached thread pool for ``n_threads`` workers, or ``None`` for serial.

    Requesting a size marks it most-recently-used; stale sizes beyond
    :data:`_MAX_POOLS` are shut down and evicted.
    """
    workers = resolve_threads(n_threads)
    if workers <= 1:
        return None
    pool = _POOLS.pop(workers, None)
    if pool is None:
        pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-assign")
    _POOLS[workers] = pool  # re-insert as most recently used
    while len(_POOLS) > _MAX_POOLS:
        oldest = next(iter(_POOLS))
        _POOLS.pop(oldest).shutdown(wait=False)
    return pool


def shutdown_executors() -> None:
    """Tear down all cached pools (tests and the ``atexit`` hook)."""
    for pool in _POOLS.values():
        pool.shutdown(wait=True)
    _POOLS.clear()


atexit.register(shutdown_executors)
