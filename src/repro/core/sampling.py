"""Sampled initialisation rounds (§4.5 "random initialization").

Early k-means rounds move centers and influence values wildly, so full
precision is wasted: the paper permutes the local points, starts with a
100-point sample, runs one assign-and-balance + movement round, doubles the
sample, and repeats — about ``log2(n/100)`` rounds costing roughly one full
round in total, but advancing the centers much further.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BalancedKMeansConfig
from repro.util.rng import ensure_rng

__all__ = ["doubling_sizes", "sample_schedule"]


def doubling_sizes(n: int, config: BalancedKMeansConfig) -> list[int]:
    """Sample sizes of the doubling rounds for a point set of ``n`` points.

    Empty when sampling is disabled or ``n`` is already small (<= 2x the
    initial sample size).  Shared by the serial schedule below and the
    distributed/out-of-core runners (which apply it to the smallest rank's
    count) so every path runs the same rounds.
    """
    if not config.use_sampling:
        return []
    size = config.initial_sample_size
    if n <= 2 * size:
        return []
    sizes: list[int] = []
    while size < n:
        sizes.append(size)
        size *= 2
    return sizes


def sample_schedule(
    n: int,
    config: BalancedKMeansConfig,
    rng: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Index arrays of the doubling sample rounds (excluding the full set).

    Returns an empty list when sampling is disabled or the point set is
    already small (<= 2x the initial sample size, where sampling cannot help).
    """
    sizes = doubling_sizes(n, config)
    if not sizes:
        return []
    gen = ensure_rng(rng)
    perm = gen.permutation(n)
    return [perm[:size] for size in sizes]
