"""Sampled initialisation rounds (§4.5 "random initialization").

Early k-means rounds move centers and influence values wildly, so full
precision is wasted: the paper permutes the local points, starts with a
100-point sample, runs one assign-and-balance + movement round, doubles the
sample, and repeats — about ``log2(n/100)`` rounds costing roughly one full
round in total, but advancing the centers much further.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BalancedKMeansConfig
from repro.util.rng import ensure_rng

__all__ = ["sample_schedule"]


def sample_schedule(
    n: int,
    config: BalancedKMeansConfig,
    rng: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Index arrays of the doubling sample rounds (excluding the full set).

    Returns an empty list when sampling is disabled or the point set is
    already small (<= 2x the initial sample size, where sampling cannot help).
    """
    if not config.use_sampling:
        return []
    size = config.initial_sample_size
    if n <= 2 * size:
        return []
    gen = ensure_rng(rng)
    perm = gen.permutation(n)
    rounds: list[np.ndarray] = []
    while size < n:
        rounds.append(perm[:size])
        size *= 2
    return rounds
