"""The k-means objective and related diagnostics.

The paper's objective (§4): minimise the sum of squared point-center
distances subject to the balance constraint.  Plain Lloyd iterations
decrease the unconstrained objective monotonically; the influence mechanism
trades some objective value for balance.  These helpers make that trade-off
measurable (used by tests and the ablation benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_assignment, check_points, check_weights

__all__ = ["kmeans_objective", "lloyd_kmeans"]


def kmeans_objective(
    points: np.ndarray,
    assignment: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Weighted sum of squared distances of points to their cluster centers."""
    pts = check_points(points)
    a = check_assignment(assignment, pts.shape[0], centers.shape[0])
    w = check_weights(weights, pts.shape[0])
    diff = pts - np.asarray(centers)[a]
    return float(np.sum(w * np.einsum("ij,ij->i", diff, diff)))


def lloyd_kmeans(
    points: np.ndarray,
    centers: np.ndarray,
    max_iterations: int = 50,
    weights: np.ndarray | None = None,
    tol: float = 1e-7,
) -> tuple[np.ndarray, np.ndarray, list[float]]:
    """Plain (unbalanced) Lloyd k-means from given initial centers.

    The reference point for the balanced variant: its objective trajectory is
    monotonically non-increasing (tested), and its final objective lower-
    bounds what balanced k-means can achieve from the same seeding.

    Returns ``(assignment, centers, objective_history)``.
    """
    pts = check_points(points)
    w = check_weights(weights, pts.shape[0])
    centers = np.array(centers, dtype=np.float64, copy=True)
    k = centers.shape[0]
    history: list[float] = []
    assignment = np.zeros(pts.shape[0], dtype=np.int64)
    for _ in range(max_iterations):
        # assignment step
        from repro.geometry.distances import pairwise_sq_distances

        sq = pairwise_sq_distances(pts, centers)
        assignment = sq.argmin(axis=1)
        history.append(float(np.sum(w * sq[np.arange(pts.shape[0]), assignment])))
        # update step
        wsum = np.bincount(assignment, weights=w, minlength=k)
        new_centers = centers.copy()
        for d in range(pts.shape[1]):
            sums = np.bincount(assignment, weights=w * pts[:, d], minlength=k)
            new_centers[:, d] = np.where(wsum > 0, sums / np.maximum(wsum, 1e-300), centers[:, d])
        if np.linalg.norm(new_centers - centers, axis=1).max() < tol:
            centers = new_centers
            break
        centers = new_centers
    return assignment, centers, history
