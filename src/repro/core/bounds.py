"""Hamerly-style distance bounds adapted to effective distances (§4.3).

Invariants maintained between exact recomputations, for every point ``p``
with assigned cluster ``a(p)``:

- ``ub[p] >= eff(p, a(p))``            (upper bound on own effective distance)
- ``lb[p] <= min_{c != a(p)} eff(p, c)``  (lower bound on the runner-up)

When ``ub[p] < lb[p]`` the assignment of ``p`` provably cannot change and the
inner loop over centers is skipped (Algorithm 1, line 9).

Reproduction note on Eq. (4)-(5).  The paper prints ``ub' = ub - delta/I``
and ``lb' = lb + max(...)``; with those signs the quantities stop being
bounds (a center that moved *away* from a point could then be skipped while
actually having become the runner-up).  Hamerly's original scheme — which the
paper says it adapts — widens the gap: the upper bound grows by the own
center's (effective) movement, the lower bound shrinks by the largest
(effective) movement of any center.  We implement those directions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["init_bounds", "relax_for_movement", "relax_for_influence"]


def init_bounds(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Fresh bounds forcing full evaluation: ub = +inf, lb = 0 (Algorithm 2, line 9)."""
    return np.full(n, np.inf), np.zeros(n)


def relax_for_movement(
    ub: np.ndarray,
    lb: np.ndarray,
    assignment: np.ndarray,
    deltas: np.ndarray,
    influence: np.ndarray,
) -> None:
    """Relax bounds in place after centers moved by ``deltas`` (Eq. 4-5, fixed signs).

    A center move of ``delta(c)`` changes any point's distance to ``c`` by at
    most ``delta(c)``, hence its *effective* distance by at most
    ``delta(c) / influence(c)``.
    """
    eff_delta = np.asarray(deltas, dtype=np.float64) / np.asarray(influence, dtype=np.float64)
    if np.any(eff_delta < 0):
        raise ValueError("deltas and influence must be non-negative/positive")
    ub += eff_delta[assignment]
    lb -= eff_delta.max()
    np.maximum(lb, 0.0, out=lb)


def relax_for_influence(
    ub: np.ndarray,
    lb: np.ndarray,
    assignment: np.ndarray,
    old_influence: np.ndarray,
    new_influence: np.ndarray,
) -> None:
    """Rescale bounds in place after influence values changed.

    Effective distances transform exactly: ``eff_new(c) = eff_old(c) * I_old(c)/I_new(c)``.
    The own-center bound rescales exactly; the runner-up bound is multiplied
    by the *smallest* ratio over all centers, which keeps it a valid lower
    bound regardless of which center is the runner-up.
    """
    old = np.asarray(old_influence, dtype=np.float64)
    new = np.asarray(new_influence, dtype=np.float64)
    if np.any(old <= 0) or np.any(new <= 0):
        raise ValueError("influence values must be strictly positive")
    ratio = old / new
    ub *= ratio[assignment]
    lb *= ratio.min()
