"""Hamerly-style distance bounds adapted to effective distances (§4.3).

Invariants maintained between exact recomputations, for every point ``p``
with assigned cluster ``a(p)``:

- ``ub[p] >= eff(p, a(p))``            (upper bound on own effective distance)
- ``lb[p] <= min_{c != a(p)} eff(p, c)``  (lower bound on the runner-up)

When ``ub[p] < lb[p]`` the assignment of ``p`` provably cannot change and the
inner loop over centers is skipped (Algorithm 1, line 9).

Reproduction note on Eq. (4)-(5).  The paper prints ``ub' = ub - delta/I``
and ``lb' = lb + max(...)``; with those signs the quantities stop being
bounds (a center that moved *away* from a point could then be skipped while
actually having become the runner-up).  Hamerly's original scheme — which the
paper says it adapts — widens the gap: the upper bound grows by the own
center's (effective) movement, the lower bound shrinks by the largest
(effective) movement of any center.  We implement those directions.

Cluster-exact (per-point-exclusive) forms.  The plain relaxations shrink
every point's runner-up bound by the *global* worst case — ``lb *=
ratio.min()`` / ``lb -= eff_delta.max()`` — so an influence change or center
move in one region invalidates bounds everywhere.  But the runner-up of
``p`` is by definition a center ``c != a(p)``, so the worst case only needs
to range over the *other* clusters: a top-2 over the per-cluster factors
yields, for each point, the exact exclusive extremum (the global extremum,
or the second one when the extremal cluster is the point's own).  The
``*_exclusive`` variants implement that; they keep strictly tighter bounds
at the cost of one ``O(n)`` ``where`` and never change results (bounds only
gate which points are re-evaluated).  All four functions return the factors
a caller needs to adjust block-level bound aggregates analytically (see
:class:`repro.core.kernels.SweepWorkspace`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "init_bounds",
    "relax_for_movement",
    "relax_for_influence",
    "relax_for_movement_exclusive",
    "relax_for_influence_exclusive",
]


def init_bounds(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Fresh bounds forcing full evaluation: ub = +inf, lb = 0 (Algorithm 2, line 9)."""
    return np.full(n, np.inf), np.zeros(n)


def _eff_deltas(deltas: np.ndarray, influence: np.ndarray) -> np.ndarray:
    eff_delta = np.asarray(deltas, dtype=np.float64) / np.asarray(influence, dtype=np.float64)
    if np.any(eff_delta < 0):
        raise ValueError("deltas and influence must be non-negative/positive")
    return eff_delta


def _influence_ratio(old_influence: np.ndarray, new_influence: np.ndarray) -> np.ndarray:
    old = np.asarray(old_influence, dtype=np.float64)
    new = np.asarray(new_influence, dtype=np.float64)
    if np.any(old <= 0) or np.any(new <= 0):
        raise ValueError("influence values must be strictly positive")
    return old / new


def _bottom2(values: np.ndarray) -> tuple[int, float, float]:
    """(argmin, min, second-min) of a k-vector; second-min is inf for k == 1."""
    j = int(np.argmin(values))
    lo = float(values[j])
    if values.shape[0] == 1:
        return j, lo, np.inf
    rest = np.delete(values, j)
    return j, lo, float(rest.min())


def relax_for_movement(
    ub: np.ndarray,
    lb: np.ndarray,
    assignment: np.ndarray,
    deltas: np.ndarray,
    influence: np.ndarray,
) -> tuple[float, float]:
    """Relax bounds in place after centers moved by ``deltas`` (Eq. 4-5, fixed signs).

    A center move of ``delta(c)`` changes any point's distance to ``c`` by at
    most ``delta(c)``, hence its *effective* distance by at most
    ``delta(c) / influence(c)``.  Returns ``(max own-bound growth, max
    runner-up shrink)`` — the scalars a block-aggregate maintainer needs.
    """
    eff_delta = _eff_deltas(deltas, influence)
    worst = float(eff_delta.max())
    ub += eff_delta[assignment]
    lb -= worst
    np.maximum(lb, 0.0, out=lb)
    return worst, worst


def relax_for_movement_exclusive(
    ub: np.ndarray,
    lb: np.ndarray,
    assignment: np.ndarray,
    deltas: np.ndarray,
    influence: np.ndarray,
) -> tuple[float, float]:
    """Cluster-exact :func:`relax_for_movement`: each point's runner-up bound
    shrinks by the largest effective movement over centers *other than its
    own* (top-2 over the per-cluster movements), so a relocation in one
    region stops invalidating bounds everywhere else.
    """
    eff_delta = _eff_deltas(deltas, influence)
    j, hi, hi2 = _bottom2(-eff_delta)
    hi, hi2 = -hi, -hi2 if np.isfinite(hi2) else 0.0
    ub += eff_delta[assignment]
    lb -= np.where(assignment == j, hi2, hi)
    np.maximum(lb, 0.0, out=lb)
    return hi, hi


def relax_for_influence(
    ub: np.ndarray,
    lb: np.ndarray,
    assignment: np.ndarray,
    old_influence: np.ndarray,
    new_influence: np.ndarray,
) -> tuple[float, float]:
    """Rescale bounds in place after influence values changed.

    Effective distances transform exactly: ``eff_new(c) = eff_old(c) * I_old(c)/I_new(c)``.
    The own-center bound rescales exactly; the runner-up bound is multiplied
    by the *smallest* ratio over all centers, which keeps it a valid lower
    bound regardless of which center is the runner-up.  Returns ``(max
    ratio, min ratio)`` for block-aggregate maintenance.
    """
    ratio = _influence_ratio(old_influence, new_influence)
    lo = float(ratio.min())
    hi = float(ratio.max())
    ub *= ratio[assignment]
    lb *= lo
    return hi, lo


def relax_for_influence_exclusive(
    ub: np.ndarray,
    lb: np.ndarray,
    assignment: np.ndarray,
    old_influence: np.ndarray,
    new_influence: np.ndarray,
) -> tuple[float, float]:
    """Cluster-exact :func:`relax_for_influence`: each point's runner-up
    bound is multiplied by the smallest ratio over centers *other than its
    own* (top-2 over the per-cluster ratios), keeping bounds tight when only
    one cluster's influence dropped sharply.
    """
    ratio = _influence_ratio(old_influence, new_influence)
    j, lo, lo2 = _bottom2(ratio)
    if not np.isfinite(lo2):
        lo2 = 1.0
    ub *= ratio[assignment]
    lb *= np.where(assignment == j, lo2, lo)
    return float(ratio.max()), lo
