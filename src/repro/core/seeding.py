"""Initial-center selection.

The paper seeds from the space-filling curve (Algorithm 2, line 7): after
sorting points by Hilbert index, center ``i`` is the point at position
``i * n/k + n/(2k)`` — i.e. the middle of the ``i``-th of ``k`` equal-sized
curve segments.  This gives a well-spread, density-adapted seeding in O(n log n)
with no sequential dependence, unlike k-means++ (provided for comparison,
§3.3 discusses why it is too expensive at scale).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.distances import pairwise_sq_distances
from repro.sfc.curves import sfc_index
from repro.util.rng import ensure_rng
from repro.util.validation import check_k, check_points

__all__ = ["seed_positions", "sfc_seeding", "random_seeding", "kmeanspp_seeding", "seed_centers"]


def seed_positions(n: int, k: int) -> np.ndarray:
    """Global sorted-order positions of the ``k`` SFC seeds.

    Center ``i`` sits at ``i*n/k + n/(2k)`` (clipped to the last point) —
    the middle of the ``i``-th of ``k`` equal curve segments.  Shared by the
    serial, distributed, and out-of-core paths so they pick bit-identical
    seeds from the same sorted order.
    """
    positions = (np.arange(k, dtype=np.int64) * n) // k + n // (2 * k)
    return np.minimum(positions, n - 1)


def sfc_seeding(
    points: np.ndarray,
    k: int,
    curve: str = "hilbert",
    bits: int | None = None,
    order: np.ndarray | None = None,
) -> np.ndarray:
    """Centers at equal intervals along the space-filling curve.

    Parameters
    ----------
    order:
        Optional precomputed SFC sort order of ``points`` (saves recomputing
        the index when the caller already sorted).
    """
    pts = check_points(points)
    n = pts.shape[0]
    k = check_k(k, n)
    if order is None:
        order = np.argsort(sfc_index(pts, curve=curve, bits=bits), kind="stable")
    return pts[order[seed_positions(n, k)]].copy()


def random_seeding(
    points: np.ndarray, k: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """k distinct uniform-random points (the erratic baseline of §3.3)."""
    pts = check_points(points)
    k = check_k(k, pts.shape[0])
    gen = ensure_rng(rng)
    idx = gen.choice(pts.shape[0], size=k, replace=False)
    return pts[idx].copy()


def kmeanspp_seeding(
    points: np.ndarray, k: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """k-means++ D^2 seeding (Arthur & Vassilvitskii), O(n k).

    Included as a quality reference for the seeding ablation; the paper
    rejects it for scalability reasons, not quality.
    """
    pts = check_points(points)
    n = pts.shape[0]
    k = check_k(k, n)
    gen = ensure_rng(rng)
    centers = np.empty((k, pts.shape[1]))
    centers[0] = pts[gen.integers(n)]
    closest_sq = pairwise_sq_distances(pts, centers[:1]).ravel()
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:  # all points coincide with chosen centers
            centers[i:] = centers[0]
            break
        probs = closest_sq / total
        centers[i] = pts[gen.choice(n, p=probs)]
        new_sq = pairwise_sq_distances(pts, centers[i : i + 1]).ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


def seed_centers(
    points: np.ndarray,
    k: int,
    method: str,
    rng: int | np.random.Generator | None = None,
    curve: str = "hilbert",
    bits: int | None = None,
    order: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch on the seeding method name used in :class:`BalancedKMeansConfig`."""
    if method == "sfc":
        return sfc_seeding(points, k, curve=curve, bits=bits, order=order)
    if method == "random":
        return random_seeding(points, k, rng)
    if method == "kmeans++":
        return kmeanspp_seeding(points, k, rng)
    raise ValueError(f"unknown seeding method {method!r}")
