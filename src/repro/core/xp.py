"""Array-namespace shim and kernel-backend registry for the sweep engine.

The assignment-sweep kernels (:mod:`repro.core.kernels`,
:mod:`repro.geometry.distances`) are written against *one* array namespace
selected here instead of calling ``np.*`` of a hardwired backend.  Four
kernel backends are registered out of the box:

==============  ==========================================================
``numpy``       vectorised squared-space kernels (always available)
``numba``       fused JIT loops over the same arrays (needs ``numba``)
``torch-cpu``   device-resident torch engine on the CPU (needs ``torch``)
``torch-cuda``  the same engine on a CUDA device (needs ``torch`` + GPU)
==============  ==========================================================

``numpy`` and ``numba`` share the numpy namespace — the numba kernels JIT
over numpy arrays — so :func:`get_namespace` returns :mod:`numpy` for both
and every result stays bit-identical between them away from floating-point
ties.  The torch backends run the sweep on a *device-resident* engine
(:mod:`repro.core.torch_engine`): large state (points, squared norms, block
boxes, Hamerly bounds, weights) crosses the host boundary once per phase,
only k-sized vectors (centers, influence, block-weight deltas) cross per
sweep.

This registry is the single source of truth for backend names: config
validation (:class:`repro.core.config.BalancedKMeansConfig`), the CLI
``--kernel-backend`` flag and the workspace resolver all consult it, so a
new backend registers in exactly one place.

Resolution rules (:func:`resolve_kernel_backend`):

- the ``REPRO_KERNEL_BACKEND`` environment variable, when set and
  non-empty, overrides the configured name (mirrors ``REPRO_BACKEND`` for
  the execution backends; lets a whole run switch engines without touching
  configs);
- an unavailable backend degrades along its registered fallback chain
  (``torch-cuda`` → ``torch-cpu`` → ``numpy``; ``numba`` → ``numpy``) and
  emits a **one-time** :class:`RuntimeWarning` naming the missing
  dependency — behavior is otherwise identical to the requested backend's
  fallback, so configs remain portable across environments.

Per-rank device affinity: the process and MPI execution backends record
their rank via :func:`set_rank_hint` when a worker starts; ``torch-cuda``
engines pick ``cuda:(rank % device_count)`` from that hint (or from an
explicit ``rank=`` passed to :class:`repro.core.kernels.SweepWorkspace`),
so co-scheduled ranks spread over the node's GPUs.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "KernelBackendSpec",
    "register_kernel_backend",
    "kernel_backend_names",
    "kernel_backend_spec",
    "available_kernel_backends",
    "resolve_kernel_backend",
    "get_namespace",
    "set_rank_hint",
    "get_rank_hint",
    "torch_runtime",
]

ENV_VAR = "REPRO_KERNEL_BACKEND"


def _module_exists(name: str) -> bool:
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):  # pragma: no cover - broken installs
        return False


HAVE_NUMBA = _module_exists("numba")
HAVE_TORCH = _module_exists("torch")

_CUDA_PROBE: bool | None = None


def _have_cuda() -> bool:
    """True when torch can see at least one CUDA device (probe cached).

    Importing torch is expensive, so the probe only runs when a CUDA
    backend is actually requested, never at registry import.
    """
    global _CUDA_PROBE
    if _CUDA_PROBE is None:
        if not HAVE_TORCH:
            _CUDA_PROBE = False
        else:  # pragma: no cover - requires torch
            try:
                import torch

                _CUDA_PROBE = bool(torch.cuda.is_available())
            except Exception:
                _CUDA_PROBE = False
    return _CUDA_PROBE


@dataclass(frozen=True)
class KernelBackendSpec:
    """One registered kernel backend.

    ``requires`` names the dependency reported by the fallback warning;
    ``fallback`` is the backend tried next when this one is unavailable
    (``None`` means the backend must always be available); ``device`` marks
    backends whose sweeps run on the device-resident torch engine.
    """

    name: str
    probe: Callable[[], bool]
    requires: str | None = None
    fallback: str | None = None
    device: bool = False

    @property
    def available(self) -> bool:
        return bool(self.probe())


_REGISTRY: dict[str, KernelBackendSpec] = {}


def register_kernel_backend(spec: KernelBackendSpec) -> None:
    """Register (or replace) a kernel backend. The registry preserves
    insertion order, which is the order CLI choices and docs list."""
    if spec.fallback is not None and spec.fallback not in _REGISTRY and spec.fallback != spec.name:
        raise ValueError(f"fallback {spec.fallback!r} of backend {spec.name!r} is not registered")
    _REGISTRY[spec.name] = spec


register_kernel_backend(KernelBackendSpec("numpy", probe=lambda: True))
register_kernel_backend(
    KernelBackendSpec("numba", probe=lambda: HAVE_NUMBA, requires="numba", fallback="numpy")
)
register_kernel_backend(
    KernelBackendSpec(
        "torch-cpu", probe=lambda: HAVE_TORCH, requires="torch", fallback="numpy", device=True
    )
)
register_kernel_backend(
    KernelBackendSpec(
        "torch-cuda", probe=_have_cuda, requires="torch (with CUDA)", fallback="torch-cpu", device=True
    )
)


def kernel_backend_names() -> tuple[str, ...]:
    """All registered backend names (the whitelist config/CLI validate against)."""
    return tuple(_REGISTRY)


def kernel_backend_spec(name: str) -> KernelBackendSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def available_kernel_backends() -> tuple[str, ...]:
    """Names of the backends whose availability probe passes right now."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.available)


_WARNED_FALLBACKS: set[tuple[str, str]] = set()


def _reset_fallback_warnings() -> None:
    """Test hook: forget which fallbacks have already warned."""
    _WARNED_FALLBACKS.clear()


def resolve_kernel_backend(name: str, env: os._Environ | dict | None = None) -> str:
    """Resolve a configured backend name to an available one.

    ``REPRO_KERNEL_BACKEND`` (when set and non-empty) overrides ``name``;
    an unavailable backend degrades along its fallback chain, warning once
    per (requested, fallback) pair with the missing dependency named.
    """
    env = os.environ if env is None else env
    override = env.get(ENV_VAR, "").strip()
    if override:
        name = override
    spec = kernel_backend_spec(name)
    requested = spec
    while not spec.available:
        if spec.fallback is None:  # pragma: no cover - numpy probe is constant True
            raise RuntimeError(f"kernel backend {spec.name!r} unavailable and has no fallback")
        next_spec = kernel_backend_spec(spec.fallback)
        key = (requested.name, next_spec.name)
        if key not in _WARNED_FALLBACKS:
            _WARNED_FALLBACKS.add(key)
            warnings.warn(
                f"kernel backend {requested.name!r} is unavailable "
                f"({spec.requires or spec.name} is not installed); falling back to {next_spec.name!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        spec = next_spec
    return spec.name


def get_namespace(backend: str):
    """The array namespace the named backend's host-side kernels run on.

    ``numpy`` and ``numba`` share :mod:`numpy` (the numba kernels JIT over
    numpy arrays, so caches computed through this namespace feed both);
    the torch backends also keep their *host-side* caches in numpy — the
    device-resident tensors live in :class:`repro.core.torch_engine
    .TorchSweepEngine`, constructed via :func:`torch_runtime`.
    """
    kernel_backend_spec(backend)  # validate
    return np


# -- per-rank device affinity -------------------------------------------------

_RANK_HINT: int | None = None

_MPI_RANK_ENV_VARS = (
    # set by the common MPI launchers before python starts, so ephemeral
    # workspaces built inside an mpiexec-launched rank can find their rank
    # without importing mpi4py
    "OMPI_COMM_WORLD_RANK",
    "PMI_RANK",
    "PMIX_RANK",
    "SLURM_PROCID",
)


def set_rank_hint(rank: int | None) -> None:
    """Record the executing rank (process/MPI workers call this on startup)."""
    global _RANK_HINT
    _RANK_HINT = None if rank is None else int(rank)


def get_rank_hint() -> int | None:
    """The rank hint for device affinity: explicit hint, then MPI env vars."""
    if _RANK_HINT is not None:
        return _RANK_HINT
    for var in _MPI_RANK_ENV_VARS:
        value = os.environ.get(var)
        if value is not None:
            try:
                return int(value)
            except ValueError:
                continue
    return None


def torch_runtime(backend: str, rank: int | None = None):
    """Import torch and pick the device for ``backend`` / ``rank``.

    Returns ``(torch module, torch.device)``.  For ``torch-cuda`` the
    device index is ``rank % device_count`` with the rank taken from the
    explicit argument, then the process/MPI rank hint, then 0 — the
    "per-rank device affinity" of the distributed backends.
    """
    spec = kernel_backend_spec(backend)
    if not spec.device:
        raise ValueError(f"backend {backend!r} has no torch runtime")
    import torch  # deferred: resolve_kernel_backend guarantees availability

    if backend == "torch-cuda":  # pragma: no cover - requires CUDA
        if rank is None:
            rank = get_rank_hint() or 0
        count = max(1, torch.cuda.device_count())
        return torch, torch.device("cuda", int(rank) % count)
    return torch, torch.device("cpu")
