"""Device-resident torch sweep engine (``torch-cpu`` / ``torch-cuda`` backends).

The assignment sweep is embarrassingly data-parallel, so on the torch
backends the whole inner loop — Hamerly bound test, squared-space masked
top-2, bound writes, weight-delta accumulation, block-weight reduction and
the influence relaxation between balance iterations — runs on device
tensors.  The residency contract mirrors the host workspace's cache
lifetimes, with the host boundary crossed as rarely as the cache is
recomputed:

====================================  =====================================
device tensor                         crosses the host boundary
====================================  =====================================
points, squared norms, block boxes,   once per engine (= per workspace;
point→block map                       never re-uploaded)
weights                               once per engine (cached by identity)
assignment, ub, lb                    once per phase *session* (uploaded by
                                      :meth:`begin_session`, downloaded by
                                      :meth:`end_session`); per sweep only
                                      outside a session
centers, center norms, block          once per phase (:meth:`begin_phase`)
min/max squared ranges
influence, ``influence**-2``,         once per sweep (k-sized)
candidate masks
block-weight / delta k-vectors        once per sweep (k-sized, downloads)
====================================  =====================================

:class:`repro.core.kernels.SweepWorkspace` owns one engine per point set and
``assign_and_balance`` brackets each phase's balance loop in a session, so
across balance iterations only k-sized vectors move — the "transferred once
per phase (not per sweep)" model.  Callers that sweep without a session
(the distributed runtime's per-rank sweep closures, which interleave
host-side relaxations between sweeps) get per-sweep bound transfers and
still never re-upload the point set.

Every transfer is counted in :attr:`transfer_log` (tag → count/bytes per
direction), which is how the equivalence tests assert the residency model
instead of trusting this docstring.

Numerics: all tensors are float64 and every elementwise op (clamp, sqrt,
divide) matches the host kernels exactly; only the matmul's accumulation
order may differ from the host GEMM, so results match the host backends to
the last ulp away from floating-point near-ties (same caveat as the numba
backend) — the equivalence gate asserts identical assignments and block
weights, centers within 1e-9.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.bounds import _influence_ratio
from repro.core.xp import torch_runtime

__all__ = ["TorchSweepEngine"]

# rows per top-2 launch: bounds the (rows, k) squared/scaled temporaries
# (64k x 64 doubles = 32 MiB each) while keeping launches large enough to
# saturate a device
_CHUNK_ROWS = 65536


class TorchSweepEngine:
    """Device-side mirror of one :class:`~repro.core.kernels.SweepWorkspace`.

    Constructed once per workspace with the static geometry (points, squared
    norms, block boxes, point→block map), which is uploaded exactly once.
    ``rank`` feeds per-rank device affinity on ``torch-cuda`` (device index
    ``rank % device_count``; see :func:`repro.core.xp.torch_runtime`).
    """

    def __init__(
        self,
        backend: str,
        points: np.ndarray,
        points_sq: np.ndarray,
        block_lo: np.ndarray | None,
        block_hi: np.ndarray | None,
        point_block: np.ndarray | None,
        k: int,
        rank: int | None = None,
        chunk_rows: int = _CHUNK_ROWS,
    ):
        self.backend = backend
        self.torch, self.device = torch_runtime(backend, rank)
        self.k = int(k)
        self.n = int(points.shape[0])
        self.chunk_rows = int(chunk_rows)
        self.transfer_log: dict[str, dict[str, list[int]]] = {"h2d": {}, "d2h": {}}
        t = self.torch
        self.d_points = self._h2d(points, "points")
        self.d_points_sq = self._h2d(points_sq, "points")
        self.has_blocks = block_lo is not None and point_block is not None
        if self.has_blocks:
            self.d_block_lo = self._h2d(block_lo, "points")
            self.d_block_hi = self._h2d(block_hi, "points")
            self.d_point_block = self._h2d(point_block, "points")
        else:
            self.d_block_lo = self.d_block_hi = self.d_point_block = None
        # per-phase / per-sweep state (set by begin_phase / prepare)
        self.d_centers_t: "t.Tensor | None" = None
        self.d_centers_sq = None
        self.d_influence = None
        self.d_inv2 = None
        self.d_block_min_sq = self.d_block_max_sq = None
        self.d_cand_mask = self.d_cand_counts = None
        # session state (begin_session / end_session)
        self._session: tuple[weakref.ref, weakref.ref, weakref.ref] | None = None
        self.d_assign = self.d_ub = self.d_lb = None
        # weights are fixed per run like the points: cached by identity
        self._weights_ref: weakref.ref | None = None
        self.d_weights = None

    # -- transfer accounting -------------------------------------------------

    def _count(self, direction: str, tag: str, nbytes: int) -> None:
        entry = self.transfer_log[direction].setdefault(tag, [0, 0])
        entry[0] += 1
        entry[1] += int(nbytes)

    def _h2d(self, array: np.ndarray, tag: str):
        tensor = self.torch.from_numpy(np.ascontiguousarray(array)).to(self.device)
        self._count("h2d", tag, array.nbytes)
        return tensor

    def _d2h(self, tensor, tag: str, out: np.ndarray | None = None) -> np.ndarray:
        host = tensor.cpu().numpy()
        self._count("d2h", tag, host.nbytes)
        if out is not None:
            out[...] = host
            return out
        return host

    def transfer_stats(self) -> dict[str, dict[str, dict[str, int]]]:
        """Transfer counts/bytes per direction and tag (for tests and docs)."""
        return {
            direction: {tag: {"count": c, "bytes": b} for tag, (c, b) in tags.items()}
            for direction, tags in self.transfer_log.items()
        }

    # -- phase / sweep setup ---------------------------------------------------

    def begin_phase(self, centers: np.ndarray, centers_sq: np.ndarray) -> None:
        """Upload the centers and derive the block distance ranges on device."""
        t = self.torch
        self.d_centers_t = self._h2d(centers, "phase").T.contiguous()
        self.d_centers_sq = self._h2d(centers_sq, "phase")
        if self.has_blocks:
            # blocks_min_max_sq, elementwise-identical on device
            c = self.d_centers_t.T.unsqueeze(0)  # (1, k, d)
            lo = self.d_block_lo.unsqueeze(1)  # (nblocks, 1, d)
            hi = self.d_block_hi.unsqueeze(1)
            below = t.clamp(lo - c, min=0.0)
            above = t.clamp(c - hi, min=0.0)
            self.d_block_min_sq = (below * below + above * above).sum(-1)
            farthest = t.maximum((c - lo).abs(), (c - hi).abs())
            self.d_block_max_sq = (farthest * farthest).sum(-1)

    def prepare(self, influence: np.ndarray, inv_influence_sq: np.ndarray) -> None:
        """Per-sweep k-sized uploads + the §4.4 candidate masks on device."""
        t = self.torch
        self.d_influence = self._h2d(influence, "sweep")
        self.d_inv2 = self._h2d(inv_influence_sq, "sweep")
        self.d_cand_mask = self.d_cand_counts = None
        if self.has_blocks and self.k > 2 and self.d_block_min_sq is not None:
            min_eff = self.d_block_min_sq * self.d_inv2.unsqueeze(0)
            max_eff = self.d_block_max_sq * self.d_inv2.unsqueeze(0)
            threshold = t.kthvalue(max_eff, 2, dim=1).values
            self.d_cand_mask = min_eff <= threshold.unsqueeze(1)
            self.d_cand_counts = self.d_cand_mask.sum(dim=1)

    # -- bound-array sessions --------------------------------------------------

    @property
    def in_session(self) -> bool:
        return self._session is not None

    def begin_session(
        self,
        assignment: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Upload the per-point state once for a whole balance loop."""
        if self._session is not None:
            raise RuntimeError("a device session is already active")
        self.d_assign = self._h2d(assignment, "session")
        self.d_ub = self._h2d(ub, "session")
        self.d_lb = self._h2d(lb, "session")
        if weights is not None:
            self._ensure_weights(weights)
        self._session = (weakref.ref(assignment), weakref.ref(ub), weakref.ref(lb))

    def end_session(self) -> None:
        """Flush the device state back into the session's host arrays."""
        if self._session is None:
            return
        a_ref, ub_ref, lb_ref = self._session
        a, ub, lb = a_ref(), ub_ref(), lb_ref()
        if a is not None:
            self._d2h(self.d_assign, "session", out=a)
        if ub is not None:
            self._d2h(self.d_ub, "session", out=ub)
        if lb is not None:
            self._d2h(self.d_lb, "session", out=lb)
        self._session = None
        self.d_assign = self.d_ub = self.d_lb = None

    def _session_matches(self, assignment: np.ndarray, ub: np.ndarray, lb: np.ndarray) -> bool:
        if self._session is None:
            return False
        a_ref, ub_ref, lb_ref = self._session
        return a_ref() is assignment and ub_ref() is ub and lb_ref() is lb

    def _ensure_weights(self, weights: np.ndarray):
        if self._weights_ref is None or self._weights_ref() is not weights:
            self.d_weights = self._h2d(np.asarray(weights, dtype=np.float64), "weights")
            self._weights_ref = weakref.ref(weights)
        return self.d_weights

    # -- kernels ---------------------------------------------------------------

    def sweep(
        self,
        assignment: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
        use_bounds: bool,
        weights: np.ndarray | None = None,
    ) -> tuple[int, int, int, np.ndarray | None]:
        """One whole assignment sweep on device.

        Inside a session the host arrays are *not* touched (they are stale
        until :meth:`end_session`); outside one, bounds are uploaded before
        and downloaded after the sweep.  Returns ``(evaluated,
        center_evals, changed, delta)`` where ``delta`` is the per-cluster
        weight delta of the changed assignments (``None`` unless ``weights``
        is given) — a k-sized download, the only per-sweep result transfer.
        """
        session = self._session is not None
        if session and not self._session_matches(assignment, ub, lb):
            raise RuntimeError(
                "device sweep called with arrays other than the active session's; "
                "end the session first"
            )
        if not session:
            self.d_assign = self._h2d(assignment, "bounds")
            self.d_ub = self._h2d(ub, "bounds")
            self.d_lb = self._h2d(lb, "bounds")
        try:
            result = self._sweep_core(use_bounds, weights)
        finally:
            if not session:
                self._d2h(self.d_assign, "bounds", out=assignment)
                self._d2h(self.d_ub, "bounds", out=ub)
                self._d2h(self.d_lb, "bounds", out=lb)
                self.d_assign = self.d_ub = self.d_lb = None
        return result

    def _sweep_core(
        self, use_bounds: bool, weights: np.ndarray | None
    ) -> tuple[int, int, int, np.ndarray | None]:
        t = self.torch
        k = self.k
        collect = weights is not None
        delta = t.zeros(k, dtype=t.float64, device=self.device) if collect else None
        if self.n == 0:
            return 0, 0, 0, (self._d2h(delta, "sweep") if collect else None)
        d_w = self._ensure_weights(weights) if collect else None
        if use_bounds:
            need = t.nonzero(self.d_ub >= self.d_lb).squeeze(1)
        else:
            need = t.arange(self.n, device=self.device)
        evaluated = int(need.numel())
        if evaluated == 0:
            return 0, 0, 0, (self._d2h(delta, "sweep") if collect else None)
        changed_total = t.zeros((), dtype=t.int64, device=self.device)
        center_evals = t.zeros((), dtype=t.int64, device=self.device)
        inf = float("inf")
        for start in range(0, evaluated, self.chunk_rows):
            idx = need[start : start + self.chunk_rows]
            pts = self.d_points.index_select(0, idx)
            sq = (
                self.d_points_sq.index_select(0, idx).unsqueeze(1)
                - 2.0 * (pts @ self.d_centers_t)
                + self.d_centers_sq.unsqueeze(0)
            )
            sq.clamp_(min=0.0)
            scaled = sq * self.d_inv2.unsqueeze(0)
            if self.d_cand_mask is not None:
                mask = self.d_cand_mask.index_select(0, self.d_point_block.index_select(0, idx))
                scaled = scaled.masked_fill(~mask, inf)
                center_evals += mask.sum()
            else:
                center_evals += k * idx.numel()
            s0, j0 = scaled.min(dim=1)
            sq0 = sq.gather(1, j0.unsqueeze(1)).squeeze(1)
            new_ub = t.sqrt(sq0) / self.d_influence.index_select(0, j0)
            if k == 1:
                new_lb = t.full_like(new_ub, inf)
            else:
                scaled.scatter_(1, j0.unsqueeze(1), inf)
                _, j1 = scaled.min(dim=1)
                sq1 = sq.gather(1, j1.unsqueeze(1)).squeeze(1)
                new_lb = t.sqrt(sq1) / self.d_influence.index_select(0, j1)
            old = self.d_assign.index_select(0, idx)
            changed = j0 != old
            changed_total += changed.sum()
            self.d_assign.index_copy_(0, idx, j0)
            self.d_ub.index_copy_(0, idx, new_ub)
            self.d_lb.index_copy_(0, idx, new_lb)
            if collect:
                wc = d_w.index_select(0, idx)[changed]
                delta.index_add_(0, j0[changed], wc)
                delta.index_add_(0, old[changed], -wc)
        return (
            evaluated,
            int(center_evals.item()),
            int(changed_total.item()),
            self._d2h(delta, "sweep") if collect else None,
        )

    def block_weights(self, assignment: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Per-cluster weight sums (``bincount``) on device; k-sized download."""
        t = self.torch
        if self._session is not None:
            if self._session[0]() is not assignment:
                raise RuntimeError("block_weights called with a non-session assignment")
            d_assign = self.d_assign
        else:
            d_assign = self._h2d(assignment, "bounds")
        d_w = self._ensure_weights(weights)
        out = t.zeros(self.k, dtype=t.float64, device=self.device)
        if self.n:
            out.index_add_(0, d_assign, d_w)
        return self._d2h(out, "sweep")

    def relax_influence(
        self, old_influence: np.ndarray, new_influence: np.ndarray
    ) -> tuple[float, float]:
        """:func:`repro.core.bounds.relax_for_influence` on the session tensors.

        Same math, same order of operations — the ratio is computed on the
        host (k-sized) and applied on device, so host and device trajectories
        stay elementwise identical.
        """
        if self._session is None:
            raise RuntimeError("relax_influence requires an active device session")
        ratio = _influence_ratio(old_influence, new_influence)
        lo = float(ratio.min())
        hi = float(ratio.max())
        if self.n:
            d_ratio = self._h2d(ratio, "sweep")
            self.d_ub *= d_ratio.index_select(0, self.d_assign)
            self.d_lb *= lo
        return hi, lo
