"""Configuration for balanced k-means.

Defaults follow the paper: epsilon = 3 % (§5.2.5), influence change capped at
5 % per balance step (§4.2), Hamerly bounds and bounding-box pruning on
(§4.3-4.4), sampled initialisation starting from 100 points per process
(§4.5), SFC seeding (Algorithm 2).  Every optimisation has an off-switch so
the ablation benchmarks can isolate its effect.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace

from repro.core.xp import kernel_backend_names

__all__ = ["BalancedKMeansConfig"]


@dataclass(frozen=True)
class BalancedKMeansConfig:
    """Tuning parameters of Algorithms 1 and 2.

    Attributes
    ----------
    epsilon:
        Balance tolerance; the assign-and-balance loop stops early once the
        weighted imbalance drops below it.
    max_iterations:
        Maximum center-movement rounds (Algorithm 2's ``maxIter``).
    max_balance_iterations:
        Maximum influence-adaptation rounds per assignment phase
        (Algorithm 1's ``maxBalanceIter``).
    influence_change_cap:
        Per-step multiplicative cap on influence updates ("restrict the
        maximum influence change in one step to 5 %").
    delta_threshold_rel:
        Convergence threshold for the maximum center movement, relative to
        the bounding-box diagonal.
    use_bounds / use_box_pruning / use_erosion / use_sampling:
        Toggles for the geometric optimisations (§4.3-4.5); disabling any of
        them must not change results except sampling (which alters the
        center trajectory), only speed.
    seeding:
        ``"sfc"`` (paper default), ``"random"``, or ``"kmeans++"``.
    sfc_sort:
        Sort points in Hilbert order internally so that chunks of the
        assignment loop are spatially compact (mirrors the paper's global
        sort + redistribution, §4.1).
    chunk_size:
        Points per chunk in the vectorised assignment kernel; bounds the
        ``chunk x k`` distance matrix.  Doubles as the static SFC block size
        for the cached pruning boxes.  The default keeps the two
        ``chunk x k`` scratch matrices L2-resident for typical ``k`` (the
        elementwise passes of the squared-space kernel are memory-bound;
        2048 x 64 doubles = 1 MiB per buffer) while giving the §4.4 rule
        tight boxes — measured ~2x faster end-to-end than 8192 on the
        ``n=200k, k=64`` trajectory workload.
    n_threads:
        Shared-memory workers for the assignment sweep: 1 = serial
        (default), 0 = one per core, n = exactly n threads.  Results are
        identical to serial; only wall-clock changes.
    use_incremental:
        Incremental sweep engine (on by default): per-static-block bound
        aggregates certify whole blocks unchanged in ``O(n/B)`` so the
        per-sweep active-point scan never touches skipped blocks, block
        weights are maintained from per-sweep assignment *deltas* instead of
        a full ``bincount`` every balance iteration, and bound relaxations
        use the per-point-exclusive (cluster-exact) forms.  With
        integer-valued weights (including the default unit weights) every
        result — assignments, centers, influence, imbalance and the
        delta-maintained block weights — is bit-identical to the full
        (``use_incremental=False``) path; arbitrary float weights can
        differ in the last ulp (the delta sum associates differently),
        which is deterministic and backend-identical but may steer the
        influence trajectory to an equally valid partition.  Requires
        ``use_bounds`` and the static SFC blocks
        (``sfc_sort`` + ``use_box_pruning``) to engage; silently inert
        otherwise.
    incremental_block_size:
        Granularity (points) of the incremental engine's bound aggregates.
        Finer sub-blocks certify more aggressively — a sub-block is skipped
        only when *every* point in it is certified, so the probability
        decays with size — at the cost of a longer aggregate vector.
        Clipped to ``chunk_size`` (aggregates never span static blocks).
    kernel_backend:
        Kernel backend for the assignment sweep, validated against the
        registry in :mod:`repro.core.xp`: ``"numpy"`` (default, vectorised
        squared-space kernel), ``"numba"`` (fused JIT loop avoiding the
        dense ``chunk x k`` matrix), ``"torch-cpu"`` or ``"torch-cuda"``
        (device-resident torch engine; state crosses the host boundary once
        per phase).  Unavailable backends degrade along their registered
        fallback chain (``torch-cuda`` → ``torch-cpu`` → ``numpy``;
        ``numba`` → ``numpy``) with a one-time warning naming the missing
        dependency, so any registered name is safe to request; the
        ``REPRO_KERNEL_BACKEND`` environment variable overrides this field.
        The numba/torch paths' dot-product accumulation order differs from
        the host GEMM, so their bounds can differ in the last ulp and an
        assignment can flip at an exact floating-point near-tie; away from
        ties the partitions agree.
    influence_floor / influence_ceil:
        Hard guards against degenerate influence values on pathological
        inputs.
    """

    epsilon: float = 0.03
    max_iterations: int = 50
    max_balance_iterations: int = 20
    influence_change_cap: float = 0.05
    delta_threshold_rel: float = 2e-4
    use_bounds: bool = True
    use_box_pruning: bool = True
    use_erosion: bool = True
    use_sampling: bool = True
    initial_sample_size: int = 100
    seeding: str = "sfc"
    sfc_curve: str = "hilbert"
    sfc_bits: int | None = None
    sfc_sort: bool = True
    chunk_size: int = 2048
    n_threads: int = 1
    use_incremental: bool = True
    incremental_block_size: int = 256
    kernel_backend: str = "numpy"
    influence_floor: float = 1e-9
    influence_ceil: float = 1e9
    track_stats: bool = True

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.max_iterations < 1 or self.max_balance_iterations < 1:
            raise ValueError("iteration limits must be >= 1")
        if not (0.0 < self.influence_change_cap < 1.0):
            raise ValueError(f"influence_change_cap must be in (0, 1), got {self.influence_change_cap}")
        if self.delta_threshold_rel <= 0:
            raise ValueError("delta_threshold_rel must be positive")
        if self.seeding not in ("sfc", "random", "kmeans++"):
            raise ValueError(f"unknown seeding {self.seeding!r}")
        if self.initial_sample_size < 1:
            raise ValueError("initial_sample_size must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.incremental_block_size < 1:
            raise ValueError("incremental_block_size must be >= 1")
        if self.n_threads < 0:
            raise ValueError("n_threads must be >= 0 (0 = one per core)")
        if self.kernel_backend not in kernel_backend_names():
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                f"registered: {', '.join(kernel_backend_names())}"
            )
        if not (0 < self.influence_floor < 1 < self.influence_ceil):
            raise ValueError("need influence_floor < 1 < influence_ceil")

    def with_(self, **kwargs) -> "BalancedKMeansConfig":
        """Functional update (configs are frozen)."""
        return replace(self, **kwargs)

    def digest(self) -> str:
        """Short stable hash over every field value.

        Stored in checkpoint metadata and re-validated on resume: two runs
        with different configurations take different influence/assignment
        trajectories, so resuming under the wrong configuration must fail
        loudly instead of silently producing a hybrid result.
        """
        text = ",".join(f"{f.name}={getattr(self, f.name)!r}" for f in fields(self))
        return hashlib.sha256(text.encode()).hexdigest()[:16]
