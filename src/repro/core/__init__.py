"""Balanced k-means — the paper's core contribution (§4).

Public entry point: :func:`balanced_kmeans` (Algorithm 2), configured via
:class:`BalancedKMeansConfig`.  The vectorised assign-and-balance phase
(Algorithm 1) lives in :mod:`repro.core.assign`; influence adaptation and
erosion (Eq. 1-3) in :mod:`repro.core.influence`; the Hamerly-style bound
maintenance (Eq. 4-5) in :mod:`repro.core.bounds`.
"""

from repro.core.config import BalancedKMeansConfig
from repro.core.kernels import SweepWorkspace, resolve_backend
from repro.core.result import IterationStats, KMeansResult
from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.seeding import kmeanspp_seeding, random_seeding, sfc_seeding
from repro.core.xp import available_kernel_backends, kernel_backend_names

__all__ = [
    "BalancedKMeansConfig",
    "SweepWorkspace",
    "resolve_backend",
    "kernel_backend_names",
    "available_kernel_backends",
    "KMeansResult",
    "IterationStats",
    "balanced_kmeans",
    "sfc_seeding",
    "random_seeding",
    "kmeanspp_seeding",
]
