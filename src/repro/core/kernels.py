"""Kernel engine for the assignment sweep: cached geometry + backend dispatch.

The assignment sweep (Algorithm 1's inner loop) is the hot path of the whole
partitioner, and most of its inputs are invariant across large parts of a
run:

- per-point squared norms never change while the point set is fixed
  (computed once per :class:`SweepWorkspace`);
- per-center squared norms and the block-box-to-center distance ranges only
  change when the *centers* move (once per assign-and-balance phase, not per
  balance iteration);
- ``influence ** -2`` and the box-pruning candidate sets only change once
  per sweep (not per chunk);
- the ``(chunk, k)`` distance scratch can be preallocated once and reused
  via ``out=`` kwargs (per worker thread, since chunks may run in a pool).

:class:`SweepWorkspace` owns all of that cached state and threads it through
:func:`repro.core.assign.assign_points`; the actual top-2 reduction runs in
squared space (see :mod:`repro.geometry.distances`) on one of two backends:

``"numpy"``
    Vectorised two-pass masked ``argmin`` over the scaled squared-distance
    matrix (the default; always available).
``"numba"``
    A fused JIT loop that computes the dot product, scaled comparison and
    top-2 tracking per point without materialising the ``(chunk, k)``
    matrix.  Falls back silently to ``"numpy"`` when numba is not
    installed, so the backend switch is safe to enable unconditionally.

Static SFC block decomposition (§4.4 accelerated): when ``sfc_sort`` is on
the points are processed in space-filling-curve order, so the workspace cuts
them once into fixed ``chunk_size`` blocks and caches each block's bounding
box *and* its raw squared min/max distances to every center (refreshed only
when centers move).  A balance iteration then derives its pruning candidate
sets by rescaling those ranges with the current ``influence ** -2`` — a
``(nblocks, k)`` elementwise pass — instead of re-deriving boxes from raw
points for every chunk of every sweep.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.geometry.boxes import block_bounds, blocks_min_max_sq
from repro.geometry.distances import top2_effective

__all__ = ["HAVE_NUMBA", "resolve_backend", "SweepWorkspace"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    HAVE_NUMBA = False

_NUMBA_KERNEL = None


def resolve_backend(name: str) -> str:
    """Resolve a configured backend name to an available one.

    ``"numba"`` silently degrades to ``"numpy"`` when numba is missing, so
    configs are portable across environments.
    """
    if name not in ("numpy", "numba"):
        raise ValueError(f"unknown kernel backend {name!r}")
    if name == "numba" and not HAVE_NUMBA:
        return "numpy"
    return name


def _get_numba_kernel():
    """Compile (once) and return the fused top-2 kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:  # pragma: no cover - requires numba
        from numba import njit

        @njit(nogil=True, cache=False)
        def _top2(points, centers, p_sq, c_sq, inv2, influence):
            m, d = points.shape
            k = centers.shape[0]
            assign = np.empty(m, dtype=np.int64)
            best = np.empty(m, dtype=np.float64)
            second = np.empty(m, dtype=np.float64)
            for i in range(m):
                s0 = np.inf
                s1 = np.inf
                j0 = 0
                j1 = -1
                sq0 = 0.0
                sq1 = 0.0
                for j in range(k):
                    dot = 0.0
                    for dd in range(d):
                        dot += points[i, dd] * centers[j, dd]
                    sq = p_sq[i] - 2.0 * dot + c_sq[j]
                    if sq < 0.0:
                        sq = 0.0
                    s = sq * inv2[j]
                    if s < s0:
                        s1 = s0
                        j1 = j0
                        sq1 = sq0
                        s0 = s
                        j0 = j
                        sq0 = sq
                    elif s < s1:
                        s1 = s
                        j1 = j
                        sq1 = sq
                assign[i] = j0
                best[i] = np.sqrt(sq0) / influence[j0]
                if j1 >= 0:
                    second[i] = np.sqrt(sq1) / influence[j1]
                else:
                    second[i] = np.inf
            return assign, best, second

        _NUMBA_KERNEL = _top2
    return _NUMBA_KERNEL


class SweepWorkspace:
    """Sweep-invariant cached geometry for assignment sweeps over one point set.

    Lifetimes of the cached pieces:

    ==========================  =========================================
    cached                      recomputed when
    ==========================  =========================================
    ``points_sq``               never (points are fixed per workspace)
    static block boxes          never (SFC order is fixed per workspace)
    ``centers_sq``, block       :meth:`begin_phase` — i.e. when the center
    min/max squared ranges      array changes (checked by identity)
    ``inv_influence_sq``,       every :meth:`prepare` call (per sweep)
    pruning candidate sets
    scratch buffers             never (allocated lazily per worker thread)
    ==========================  =========================================

    Center changes are detected by object identity, so callers that mutate a
    center array *in place* must call :meth:`begin_phase` explicitly
    (``assign_and_balance`` does this once per phase).
    """

    def __init__(self, points: np.ndarray, config, k: int):
        self.points = np.ascontiguousarray(points, dtype=np.float64)
        self.k = int(k)
        self.config = config
        self.backend = resolve_backend(getattr(config, "kernel_backend", "numpy"))
        self.points_sq = np.einsum("ij,ij->i", self.points, self.points)
        self._tls = threading.local()
        self._centers_ref: np.ndarray | None = None
        self.centers: np.ndarray | None = None
        self.centers_sq: np.ndarray | None = None
        self.influence: np.ndarray | None = None
        self.inv_influence_sq: np.ndarray | None = None
        # static SFC block decomposition (boxes computed once per run);
        # empty point sets (e.g. an empty rank in the distributed runtime)
        # have nothing to sweep, so no blocks
        self.block_size = int(config.chunk_size)
        self.has_static_blocks = bool(
            config.sfc_sort and config.use_box_pruning and self.k > 2 and self.points.shape[0] > 0
        )
        if self.has_static_blocks:
            self.block_lo, self.block_hi = block_bounds(self.points, self.block_size)
            self.n_blocks = self.block_lo.shape[0]
        else:
            self.block_lo = self.block_hi = None
            self.n_blocks = 0
        self._block_min_sq: np.ndarray | None = None
        self._block_max_sq: np.ndarray | None = None
        self._block_cand_mask: np.ndarray | None = None
        self._block_cand_counts: np.ndarray | None = None
        self._block_cand_cache: dict[int, np.ndarray | None] = {}

    # -- phase / sweep setup ------------------------------------------------

    def begin_phase(self, centers: np.ndarray) -> None:
        """Cache geometry that only depends on the centers (once per phase)."""
        if centers.shape[0] != self.k:
            raise ValueError(f"expected {self.k} centers, got {centers.shape[0]}")
        self._centers_ref = centers
        self.centers = np.ascontiguousarray(centers, dtype=np.float64)
        self.centers_sq = np.einsum("ij,ij->i", self.centers, self.centers)
        if self.has_static_blocks:
            self._block_min_sq, self._block_max_sq = blocks_min_max_sq(
                self.block_lo, self.block_hi, self.centers
            )

    def prepare(self, centers: np.ndarray, influence: np.ndarray) -> None:
        """Per-sweep setup: refresh center caches if needed, rescale for influence."""
        if centers is not self._centers_ref:
            self.begin_phase(centers)
        influence = np.asarray(influence, dtype=np.float64)
        if np.any(influence <= 0):
            raise ValueError("influence values must be strictly positive")
        self.influence = influence
        self.inv_influence_sq = influence**-2.0
        self._block_cand_cache.clear()
        if self.has_static_blocks:
            # exact §4.4 rule in squared space, all blocks at once: a center
            # whose min effective distance to the box exceeds the
            # second-smallest max effective distance can be neither best nor
            # runner-up for any point in the box.
            min_eff = self._block_min_sq * self.inv_influence_sq[None, :]
            max_eff = self._block_max_sq * self.inv_influence_sq[None, :]
            threshold = np.partition(max_eff, 1, axis=1)[:, 1]
            self._block_cand_mask = min_eff <= threshold[:, None]
            self._block_cand_counts = self._block_cand_mask.sum(axis=1)

    # -- pruning ------------------------------------------------------------

    def block_candidates(self, block: int) -> np.ndarray | None:
        """Candidate centers for static block ``block`` under the current sweep.

        Returns ``None`` for "evaluate all centers" (no pruning possible).
        """
        if self._block_cand_mask is None:
            return None
        if self._block_cand_counts[block] >= self.k:
            return None
        cached = self._block_cand_cache.get(block, False)
        if cached is False:
            cached = np.flatnonzero(self._block_cand_mask[block])
            self._block_cand_cache[block] = cached
        return cached

    # -- kernels ------------------------------------------------------------

    def _scratch(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-thread ``(chunk_size, k)`` scratch (chunks may run in a pool)."""
        bufs = getattr(self._tls, "bufs", None)
        if bufs is None:
            bufs = (
                np.empty((self.block_size, self.k)),
                np.empty((self.block_size, self.k)),
            )
            self._tls.bufs = bufs
        return bufs

    def top2(
        self,
        chunk_points: np.ndarray,
        chunk_idx: np.ndarray | slice,
        candidate_idx: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Top-2 effective distances for one chunk, using all cached geometry.

        ``chunk_idx`` selects the chunk's rows within the workspace point set
        (index array or slice) so the cached per-point norms line up with
        ``chunk_points``.
        """
        p_sq = self.points_sq[chunk_idx]
        if self.backend == "numba":  # pragma: no cover - requires numba
            kernel = _get_numba_kernel()
            if candidate_idx is None:
                centers, c_sq = self.centers, self.centers_sq
                inv2, infl = self.inv_influence_sq, self.influence
            else:
                centers = self.centers[candidate_idx]
                c_sq = self.centers_sq[candidate_idx]
                inv2 = self.inv_influence_sq[candidate_idx]
                infl = self.influence[candidate_idx]
            assign, best, second = kernel(
                np.ascontiguousarray(chunk_points), centers, p_sq, c_sq, inv2, infl
            )
            if candidate_idx is not None:
                assign = np.asarray(candidate_idx, dtype=np.int64)[assign]
            return assign, best, second
        sq_out = scaled_out = None
        if candidate_idx is None and chunk_points.shape[0] <= self.block_size:
            sq_out, scaled_out = self._scratch()
        return top2_effective(
            chunk_points,
            self.centers,
            self.influence,
            candidate_idx,
            p_sq=p_sq,
            c_sq=self.centers_sq,
            inv_influence_sq=self.inv_influence_sq,
            sq_out=sq_out,
            scaled_out=scaled_out,
        )
